"""Table 1: the benchmark programs.

Checks the suite composition the paper evaluates: seven SPEC JVM98
programs, eight DaCapo programs (chart/eclipse/xalan excluded), and
pseudojbb.
"""

from conftest import write_result

from repro.harness import experiments as ex
from repro.harness.report import format_table1
from repro.workloads import suite


def test_table1_benchmark_list(benchmark):
    rows = benchmark.pedantic(ex.table1, rounds=1, iterations=1)
    names = [r.name for r in rows]
    assert len(rows) == 16
    assert names == suite.all_names()
    for excluded in ("chart", "eclipse", "xalan"):
        assert excluded not in names
    jvm98 = [r for r in rows if "JVM98" in r.origin]
    dacapo = [r for r in rows if "DaCapo" in r.origin]
    jbb = [r for r in rows if "JBB2000" in r.origin]
    assert len(jvm98) == 7
    assert len(dacapo) == 8
    assert len(jbb) == 1
    write_result("table1.txt", format_table1(rows))


def test_table1_programs_build_and_verify(benchmark):
    """Every workload builds a verified program with a pseudo-adaptive
    compilation plan and a plausible minimum heap."""

    def build_all():
        return [suite.build(name) for name in suite.all_names()]

    workloads = benchmark.pedantic(build_all, rounds=1, iterations=1)
    for workload in workloads:
        assert workload.program.main is not None
        assert len(workload.plan) >= 1
        assert workload.min_heap_bytes >= 256 * 1024
        assert workload.program.total_bytecodes() > 50
