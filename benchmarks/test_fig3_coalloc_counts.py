"""Figure 3: number of co-allocated objects at different intervals.

Paper shapes:

* compress and mpegaudio co-allocate **zero** objects (large arrays /
  few objects: no candidates),
* the programs with many co-allocated objects (db, pseudojbb, hsqldb,
  luindex, pmd) are insensitive to the interval choice,
* the remaining programs have counts orders of magnitude lower and are
  more sensitive to the interval.
"""

from conftest import write_result

from repro.harness import experiments as ex
from repro.harness.report import format_fig3

HIGH_COUNT = ("db", "pseudojbb", "hsqldb", "luindex", "pmd")
ZERO_COUNT = ("compress", "mpegaudio")


def test_fig3_coalloc_counts(benchmark, benchmarks):
    rows = benchmark.pedantic(ex.fig3_coalloc_counts, args=(benchmarks,),
                              rounds=1, iterations=1)
    write_result("fig3.txt", format_fig3(rows))
    by_name = {r.name: r for r in rows}

    for name in ZERO_COUNT:
        if name in by_name:
            assert all(c == 0 for c in by_name[name].counts.values()), \
                by_name[name]

    for name in HIGH_COUNT:
        if name in by_name:
            counts = by_name[name].counts
            # Large counts at every interval...
            assert min(counts.values()) > 1000, (name, counts)
            # ...and insensitive to the interval (the largest interval
            # already covers most objects).
            assert max(counts.values()) <= 4 * max(1, min(counts.values())), \
                (name, counts)

    # db has the tallest bar, as in the paper's log-scale plot.
    if "db" in by_name and len(by_name) > 1:
        db_min = min(by_name["db"].counts.values())
        others = [max(r.counts.values()) for n, r in by_name.items()
                  if n != "db"]
        assert db_min > max(others)

    # Several of the remaining programs are interval-sensitive: their
    # counts drop (often to zero) at the coarsest interval.
    light_names = [n for n in by_name
                   if n not in HIGH_COUNT and n not in ZERO_COUNT]
    if len(light_names) >= 4:
        sensitive = sum(
            1 for n in light_names
            if by_name[n].counts.get("100K", 0)
            < by_name[n].counts.get("25K", 0)
        )
        assert sensitive >= 2, (sensitive, light_names)
