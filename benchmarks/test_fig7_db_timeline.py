"""Figure 7: cache misses sampled for String objects (db) over time.

Paper shapes:

* 7(a): the cumulative miss count for ``String::value`` bends when
  co-allocation kicks in after the warm-up,
* 7(b): the per-period miss rate drops at the same time; the 3-period
  moving average follows the trend without the local fluctuations,
* the co-allocated String/char[] pairs cut the misses on those objects
  substantially (paper: ~60% on db's String objects; we require the
  with-co-allocation steady state to be well below the without-one).
"""

from conftest import write_result

from repro.harness import experiments as ex
from repro.harness.report import format_fig7
from repro.harness.runner import RunSpec, measure
from repro.workloads import suite


def _steady_state(values, fraction=0.33):
    tail = values[int(len(values) * (1 - fraction)):]
    return sum(tail) / max(1, len(tail))


def test_fig7_timeline_shape(benchmark):
    result = benchmark.pedantic(ex.fig7_db_timeline, rounds=1, iterations=1)
    write_result("fig7.txt", format_fig7(result))

    values = [n for _, n in result.per_period]
    assert len(values) > 30, "need a meaningful number of periods"
    assert result.coallocated > 1000

    # 7(a): cumulative series is monotone non-decreasing.
    cumulative = [c for _, c in result.cumulative]
    assert all(b >= a for a, b in zip(cumulative, cumulative[1:]))
    assert cumulative[-1] > 0

    # 7(b): the miss rate declines from the post-warm-up peak to the
    # steady state (the "drop ... after the warm-up phase").
    third = max(3, len(values) // 3)
    warmup_peak = max(result.moving_average[:third])
    steady = _steady_state(result.moving_average)
    assert steady < warmup_peak, (warmup_peak, steady)

    # The moving average fluctuates less than the raw series.
    def spread(series):
        mean = sum(series) / len(series)
        return sum((v - mean) ** 2 for v in series) / len(series)

    assert spread(result.moving_average) <= spread([float(v) for v in values])


def test_fig7_coalloc_cuts_string_misses(benchmark):
    """Steady-state String::value misses: with co-allocation well below
    without (paper: ~60% reduction on those objects)."""

    def run_off():
        res = measure(RunSpec(benchmark="db", heap_mult=4.0, coalloc=False,
                              monitoring=True)).result
        name = suite.build("db").program.string_class.field(
            "value").qualified_name
        return [n for _, n in res.series(name)]

    off_series = benchmark.pedantic(run_off, rounds=1, iterations=1)
    on = ex.fig7_db_timeline()
    on_steady = _steady_state([n for _, n in on.per_period])
    off_steady = _steady_state(off_series)
    assert on_steady < 0.70 * off_steady, (on_steady, off_steady)
