"""Table 2: space overhead — size of the machine-code maps.

Paper's findings to reproduce in shape:

* machine-code maps are "4 to 5 times as large as the GC maps" for the
  application corpus (we accept 2.5x..7x),
* the per-application map sizes are tiny compared to the boot image,
* jython has by far the largest compiled corpus,
* the boot-image MC maps (library/application subset only) stay below
  the boot-image GC maps, matching the paper's 8260 KB vs 10380 KB.
"""

from conftest import write_result

from repro.harness import experiments as ex
from repro.harness.report import format_table2


def test_table2_space_overhead(benchmark, benchmarks):
    rows = benchmark.pedantic(ex.table2, args=(benchmarks,),
                              rounds=1, iterations=1)
    write_result("table2.txt", format_table2(rows))
    by_name = {r.name: r for r in rows}
    boot = by_name.pop("boot image")
    apps = list(by_name.values())

    # MC maps dominate GC maps per application corpus (paper: 4-5x).
    for row in apps:
        assert row.mc_maps_kb >= 2 * row.gc_maps_kb, row
        assert row.mc_maps_kb <= 8 * max(1, row.gc_maps_kb), row
        # MC maps ~2.5x the machine code itself (the fat Jikes encoding).
        assert row.mc_maps_kb >= 1.5 * row.machine_code_kb, row

    # Application maps are small relative to the boot image.
    largest_app = max(r.mc_maps_kb for r in apps)
    assert boot.mc_maps_kb > 3 * largest_app, (boot, largest_app)

    # Boot image: MC maps cover only the library/application subset, so
    # they come out *below* the pre-existing GC maps (paper: 8260 < 10380).
    assert boot.mc_maps_kb < boot.gc_maps_kb

    if "jython" in by_name:
        others = [r.machine_code_kb for r in apps if r.name != "jython"]
        assert by_name["jython"].machine_code_kb >= max(others)


def test_table2_boot_image_growth(benchmark):
    """The paper reports the whole boot image growing ~20% (45 -> 54 MB)
    from the added MC maps; check the analogous relative growth."""
    growth = benchmark.pedantic(ex.boot_image_growth, rounds=1, iterations=1)
    assert 0.10 <= growth <= 0.35, f"boot-image growth {growth:.2f}"
