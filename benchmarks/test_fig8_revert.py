"""Figure 8: detecting and reverting a poorly performing optimization.

The controlled experiment of section 6.4: starting from a good
allocation order, the GC is manually instructed to place one cache line
(128 bytes) of empty space between each String and its char[] —
undoing the benefit.  The monitoring feedback must (a) observe the miss
rate rising for the affected class, (b) trigger the switch back after
several measurement periods, and (c) see the rate return toward its
old value as newly promoted objects follow the restored policy.
"""

from conftest import write_result

from repro.harness import experiments as ex
from repro.harness.report import format_fig8


def test_fig8_revert(benchmark):
    result = benchmark.pedantic(ex.fig8_revert, rounds=1, iterations=1)
    write_result("fig8.txt", format_fig8(result))

    # The bad placement was detected and reverted.
    assert result.reverted, "feedback failed to revert the bad placement"
    assert result.reverted_period is not None
    assert result.reverted_period > result.gap_applied_period

    # The paper's heuristic waits several measurement periods.
    waited = result.reverted_period - result.gap_applied_period
    assert waited >= 2, f"reverted suspiciously fast ({waited} periods)"

    # The rate visibly regressed under the gap...
    assert result.peak_rate > 1.2 * result.baseline_rate, (
        result.peak_rate, result.baseline_rate)

    # ...and returned toward the old value after the revert ("the miss
    # rate returns to its old value").
    assert result.final_rate < 0.75 * result.peak_rate, (
        result.final_rate, result.peak_rate)


def test_fig8_no_revert_without_regression(benchmark):
    """Control: with no gap, the feedback engine never reverts."""
    from repro.harness.runner import RunSpec, measure

    def run_normal():
        res = measure(RunSpec(benchmark="db", heap_mult=4.0, coalloc=True,
                              monitoring=True)).result
        return res.reverted_experiments

    reverted = benchmark.pedantic(run_normal, rounds=1, iterations=1)
    assert reverted == []
