"""Figure 5: execution time relative to the baseline across heap sizes.

Paper shapes:

* three programs speed up (db, pseudojbb, bloat); db by up to ~14%,
* several programs are *slightly* slowed down (worst about +2%, the
  monitoring overhead),
* db still shows a clear speedup at the minimum heap size and is the
  only program with a large one there.
"""

from conftest import write_result

from repro.harness import experiments as ex
from repro.harness.report import format_fig5


def test_fig5_exec_time(benchmark, benchmarks, heap_mults):
    rows = benchmark.pedantic(
        ex.fig5_exec_time, args=(benchmarks, heap_mults),
        rounds=1, iterations=1)
    write_result("fig5.txt", format_fig5(rows))
    by_name = {r.name: r for r in rows}
    large = max(heap_mults)
    small = min(heap_mults)

    # db: double-digit speedup at large heaps, still clearly winning at
    # the minimum heap (paper: 13.9% / 9.3%).
    if "db" in by_name:
        db = by_name["db"]
        assert db.normalized[large] <= 0.93, db.normalized
        assert db.normalized[small] <= 0.95, db.normalized

    # The other winners show smaller speedups at large heaps.
    for name in ("pseudojbb", "bloat"):
        if name in by_name:
            assert by_name[name].normalized[large] <= 1.00, (
                name, by_name[name].normalized)

    # Slowdowns stay small (paper worst case ~+2.1%).
    for row in rows:
        for mult, value in row.normalized.items():
            assert value <= 1.05, (row.name, mult, value)

    # At the minimum heap, db has the best normalized time.
    if "db" in by_name and len(rows) > 1:
        db_small = by_name["db"].normalized[small]
        others = [r.normalized[small] for r in rows if r.name != "db"]
        assert db_small <= min(others) + 0.02


def test_fig5_no_candidate_programs_pay_only_overhead(benchmark, benchmarks):
    """compress/mpegaudio see only the sampling overhead at any heap."""
    names = [n for n in ("compress", "mpegaudio") if n in benchmarks]
    if not names:
        return
    rows = benchmark.pedantic(ex.fig5_exec_time, args=(names, (1.0, 4.0)),
                              rounds=1, iterations=1)
    for row in rows:
        for mult, value in row.normalized.items():
            assert 0.98 <= value <= 1.04, (row.name, mult, value)
