"""Shared fixtures for the benchmark harness.

Runs are memoized process-wide (see repro.harness.runner) and persisted
to the on-disk result cache (repro.harness.diskcache), so figures that
share configurations (Figure 4's large-heap points are Figure 5's 4x
points) pay for them once — and a re-run against unchanged code pays
for nothing at all.

A session-scoped fixture warms the entire suite's run matrix through
the parallel engine before the first test, so on a multi-core machine
the figures' serial ``measure`` loops are pure cache hits.  Control the
worker count with ``REPRO_JOBS`` (1 = serial).

Set ``REPRO_QUICK=1`` to run a reduced matrix (three benchmarks, two
heap sizes) — useful while iterating; the full matrix is the default
and regenerates every table and figure of the paper.
"""

import os

import pytest

from repro.harness import engine
from repro.harness import experiments as ex
from repro.workloads import suite

QUICK = bool(int(os.environ.get("REPRO_QUICK", "0")))

#: Benchmarks exercised per figure.
ALL_BENCHMARKS = suite.all_names()
QUICK_BENCHMARKS = ["compress", "db", "pseudojbb"]

BENCHMARKS = QUICK_BENCHMARKS if QUICK else ALL_BENCHMARKS
HEAP_MULTS = (1.0, 4.0) if QUICK else (1.0, 1.5, 2.0, 3.0, 4.0)


def pytest_report_header(config):
    mode = "QUICK (REPRO_QUICK=1)" if QUICK else "full"
    return (f"repro benchmark harness: {mode} matrix, "
            f"{len(BENCHMARKS)} benchmarks")


@pytest.fixture(autouse=True, scope="session")
def _warm_suite():
    """Precompute the suite's run matrix across cores (or recall it from
    the disk cache) before the first figure asserts on it."""
    engine.warm(ex.figure_specs(list(BENCHMARKS), tuple(HEAP_MULTS)))


@pytest.fixture(scope="session")
def benchmarks():
    return list(BENCHMARKS)


@pytest.fixture(scope="session")
def heap_mults():
    return tuple(HEAP_MULTS)


RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                           "results")
os.makedirs(RESULTS_DIR, exist_ok=True)


def write_result(name: str, text: str) -> None:
    """Persist a formatted table/figure under results/."""
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print(f"\n{text}\n[written to {path}]")
