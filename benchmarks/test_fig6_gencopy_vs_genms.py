"""Figure 6: GenCopy vs GenMS with co-allocation on db.

Paper shapes:

* GenMS + co-allocation outperforms GenCopy **throughout all heap
  sizes** (from ~7% at large heaps to ~10% at a small heap),
* GenCopy's locality advantage over plain GenMS exists at large heaps
  but evaporates at small heaps (the copy reserve halves the usable
  mature space, forcing many more collections),
* the maximum speedup of co-allocation versus GenCopy is smaller than
  versus plain GenMS.
"""

from conftest import write_result

from repro.harness import experiments as ex
from repro.harness.report import format_fig6


def test_fig6_gencopy_vs_genms(benchmark, heap_mults):
    result = benchmark.pedantic(ex.fig6_gencopy_vs_genms,
                                args=("db", heap_mults),
                                rounds=1, iterations=1)
    write_result("fig6.txt", format_fig6(result))
    large = max(heap_mults)
    small = min(heap_mults)

    # GenMS+coalloc beats GenCopy at every heap size.
    for mult in heap_mults:
        co = result.normalized(mult, "genms+coalloc")
        gencopy = result.normalized(mult, "gencopy")
        assert co < gencopy, (mult, co, gencopy)
        assert co < 1.0, (mult, co)

    # GenCopy deteriorates relative to GenMS as the heap shrinks.
    assert (result.normalized(small, "gencopy")
            >= result.normalized(large, "gencopy") - 0.01)

    # Speedup vs GenCopy is smaller than vs plain GenMS (paper: 10% vs
    # 13.9%).
    vs_genms = 1.0 - result.normalized(large, "genms+coalloc")
    vs_gencopy = 1.0 - (result.cycles[large]["genms+coalloc"]
                        / result.cycles[large]["gencopy"])
    assert vs_gencopy <= vs_genms + 0.01


def test_fig6_gencopy_full_gc_pressure(benchmark, heap_mults):
    """The mechanism behind the crossover: GenCopy's copy reserve forces
    far more full collections at the minimum heap."""
    from repro.harness.runner import RunSpec, measure

    small = min(heap_mults)

    def run_both():
        genms = measure(RunSpec(benchmark="db", heap_mult=small,
                                coalloc=False, monitoring=False))
        gencopy = measure(RunSpec(benchmark="db", heap_mult=small,
                                  coalloc=False, monitoring=False,
                                  gc_plan="gencopy"))
        return genms.result.gc_stats, gencopy.result.gc_stats

    genms_stats, gencopy_stats = benchmark.pedantic(run_both, rounds=1,
                                                    iterations=1)
    assert gencopy_stats.full_gcs >= 2 * max(1, genms_stats.full_gcs)
