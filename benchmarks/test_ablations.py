"""Ablations of the design choices (beyond the paper's figures).

Each is anchored in a claim the paper makes in passing — see
repro.harness.ablations for the sources.
"""

from conftest import write_result

from repro.harness import ablations as ab


def test_tlb_driven_guidance_does_not_beat_l1(benchmark):
    """Section 6.3: 'Using TLB misses as driver for the optimization
    decisions does not improve the results' (pseudojbb)."""
    result = benchmark.pedantic(ab.event_driver_ablation,
                                rounds=1, iterations=1)
    l1_cycles, _, l1_coalloc = result.by_event["L1D_MISS"]
    tlb_cycles, _, _ = result.by_event["DTLB_MISS"]
    # DTLB guidance must not be meaningfully better.
    assert tlb_cycles >= l1_cycles * 0.99, result.by_event
    assert l1_coalloc > 0
    lines = [f"ablation: event driver on {result.benchmark} "
             f"(baseline {result.baseline_cycles} cycles)"]
    for event, (cycles, l1m, co) in result.by_event.items():
        lines.append(f"  {event:10s}: cycles={cycles} l1_misses={l1m} "
                     f"coallocated={co}")
    write_result("ablation_event_driver.txt", "\n".join(lines))


def test_online_guidance_approaches_static_oracle(benchmark):
    """The warm-up costs something, but online HPM guidance must deliver
    a large share of the oracle's benefit (this is the paper's thesis:
    cheap online feedback is good enough to optimize with)."""
    result = benchmark.pedantic(ab.static_oracle_ablation,
                                rounds=1, iterations=1)
    assert result.oracle_speedup > 0.05
    assert result.online_speedup > 0.5 * result.oracle_speedup, (
        result.online_speedup, result.oracle_speedup)
    # The oracle co-allocates at least as much (it never waits for data).
    assert result.oracle_coalloc >= result.online_coalloc * 0.9
    write_result(
        "ablation_oracle.txt",
        f"ablation: static oracle on {result.benchmark}\n"
        f"  baseline cycles : {result.baseline_cycles}\n"
        f"  online  speedup : {result.online_speedup:.3f} "
        f"(coalloc {result.online_coalloc})\n"
        f"  oracle  speedup : {result.oracle_speedup:.3f} "
        f"(coalloc {result.oracle_coalloc})")


def test_prefetcher_matters_for_streams_not_chases(benchmark):
    """The P4 stream prefetcher hides sequential misses (compress) and
    is nearly irrelevant to shuffled pointer chasing (db)."""

    def run_both():
        return (ab.prefetcher_ablation("compress"),
                ab.prefetcher_ablation("db"))

    compress, db = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert compress.l2_misses_without > 2 * compress.l2_misses_with
    assert compress.slowdown_without > 0.02
    assert db.slowdown_without < compress.slowdown_without
    write_result(
        "ablation_prefetcher.txt",
        "ablation: stream prefetcher off\n"
        f"  compress: +{compress.slowdown_without:.1%} time, "
        f"L2 misses {compress.l2_misses_with} -> "
        f"{compress.l2_misses_without}\n"
        f"  db:       +{db.slowdown_without:.1%} time, "
        f"L2 misses {db.l2_misses_with} -> {db.l2_misses_without}")


def test_duty_cycle_cuts_overhead_for_candidate_free_programs(benchmark):
    """The paper's suggested extension (section 6.3): pause sampling when
    no candidate objects are being found.  For compress (zero
    candidates) most of the monitoring overhead disappears; db (full of
    candidates) keeps its benefit."""
    from repro.core.config import GCConfig, MonitorConfig, SystemConfig
    from repro.vm.vmcore import run_program
    from repro.workloads import suite

    def run(name, duty, coalloc):
        w = suite.build(name)
        cfg = SystemConfig(gc=GCConfig(heap_bytes=w.min_heap_bytes * 4),
                           coalloc=coalloc,
                           monitor=MonitorConfig(duty_cycle=duty))
        return run_program(w.program, cfg, compilation_plan=w.plan)

    def run_all():
        return (run("compress", True, False), run("compress", False, False),
                run("db", True, True), run("db", False, True))

    c_on, c_off, db_on, db_off = benchmark.pedantic(run_all, rounds=1,
                                                    iterations=1)
    # compress: most monitoring work eliminated.
    assert c_on.monitoring_cycles < 0.6 * c_off.monitoring_cycles
    # db: co-allocation still delivers (within 3% of always-on).
    assert db_on.cycles <= db_off.cycles * 1.03
    assert db_on.gc_stats.coallocated_objects > 0
    write_result(
        "ablation_duty_cycle.txt",
        "ablation: monitoring duty cycle (paper's 6.3 suggestion)\n"
        f"  compress monitoring cycles: {c_off.monitoring_cycles} -> "
        f"{c_on.monitoring_cycles} "
        f"({1 - c_on.monitoring_cycles / c_off.monitoring_cycles:.0%} saved, "
        f"{c_on.monitor_summary['duty_pauses']} pauses)\n"
        f"  db cycles: {db_off.cycles} -> {db_on.cycles} "
        f"(coalloc {db_on.gc_stats.coallocated_objects} vs "
        f"{db_off.gc_stats.coallocated_objects})")


def test_sampling_beats_software_instrumentation(benchmark):
    """Section 6.2: the <1% sampling overhead 'is low compared to
    software-only profiling techniques.'  Compare HPM sampling against
    Georges-style method-boundary instrumentation on db."""
    from repro.core.config import GCConfig, SystemConfig
    from repro.vm.vmcore import run_program
    from repro.workloads import suite

    def run(monitoring, profiling):
        w = suite.build("db")
        cfg = SystemConfig(gc=GCConfig(heap_bytes=w.min_heap_bytes * 4),
                           coalloc=False, monitoring=monitoring,
                           method_profiling=profiling)
        return run_program(w.program, cfg, compilation_plan=w.plan)

    def run_all():
        return run(False, False), run(True, False), run(False, True)

    plain, sampled, instrumented = benchmark.pedantic(run_all, rounds=1,
                                                      iterations=1)
    sampling_overhead = sampled.cycles / plain.cycles - 1
    instr_overhead = instrumented.cycles / plain.cycles - 1
    assert sampling_overhead < 0.03
    assert instr_overhead > 2 * sampling_overhead, (
        sampling_overhead, instr_overhead)
    # And the software profiler's data is method-granular only: it cannot
    # name the field to co-allocate, while sampling attributes misses to
    # String::value directly (the paper's accuracy argument).
    ranked = instrumented.vm.method_profiler.ranked()
    assert ranked[0].method.qualified_name in ("App.scan", "String.make")
    write_result(
        "ablation_profiling.txt",
        "ablation: HPM sampling vs software instrumentation (db)\n"
        f"  plain cycles          : {plain.cycles}\n"
        f"  sampling overhead     : {sampling_overhead:+.2%}\n"
        f"  instrumentation ovrhd : {instr_overhead:+.2%}\n"
        f"  hottest method (instr): {ranked[0].method.qualified_name} "
        f"({ranked[0].events} exclusive L1 misses)")
