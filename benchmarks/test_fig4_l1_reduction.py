"""Figure 4: L1 miss reduction with co-allocation (heap = 4x min).

Paper shapes:

* db benefits most — 28% fewer L1 misses (we require >= 12%),
* noticeable reductions for jess, pseudojbb, bloat, pmd,
* pseudojbb's reduction is small (2-6%: its hot children are long[]
  arrays wider than a cache line),
* no reduction for the no-candidate programs (compress, mpegaudio).
"""

from conftest import write_result

from repro.harness import experiments as ex
from repro.harness.report import format_fig4


def test_fig4_l1_reduction(benchmark, benchmarks):
    rows = benchmark.pedantic(ex.fig4_l1_reduction, args=(benchmarks,),
                              rounds=1, iterations=1)
    write_result("fig4.txt", format_fig4(rows))
    by_name = {r.name: r for r in rows}

    # db gets the most benefit.
    if "db" in by_name:
        db = by_name["db"]
        assert db.reduction >= 0.12, f"db reduction {db.reduction:.3f}"
        best = max(rows, key=lambda r: r.reduction)
        assert best.name == "db" or best.reduction - db.reduction < 0.05

    # Noticeable reductions for the other winners.
    for name in ("jess", "bloat", "pmd"):
        if name in by_name:
            assert by_name[name].reduction >= 0.05, (
                name, by_name[name].reduction)

    # pseudojbb: many co-allocated objects, little line-level benefit.
    if "pseudojbb" in by_name:
        assert 0.0 <= by_name["pseudojbb"].reduction <= 0.12, \
            by_name["pseudojbb"].reduction

    # No-candidate programs show ~no change.
    for name in ("compress", "mpegaudio"):
        if name in by_name:
            assert abs(by_name[name].reduction) < 0.05, (
                name, by_name[name].reduction)
