"""Figure 2: execution-time overhead of runtime event sampling.

Paper shapes:

* average overhead below ~1% for the 100K and auto intervals,
* worst case ~3% at the finest interval (25K),
* overhead roughly proportional to the sampling rate for sample-heavy
  programs (db, pseudojbb); constant-dominated for sample-light ones.
"""

from conftest import write_result

from repro.harness import experiments as ex
from repro.harness.report import format_fig2


def test_fig2_sampling_overhead(benchmark, benchmarks):
    rows = benchmark.pedantic(ex.fig2_sampling_overhead, args=(benchmarks,),
                              rounds=1, iterations=1)
    write_result("fig2.txt", format_fig2(rows))
    by_name = {r.name: r for r in rows}

    # Average overhead for the coarse/auto settings stays low.
    for interval in ("100K", "auto"):
        avg = sum(r.overhead[interval] for r in rows) / len(rows)
        assert avg < 0.02, f"avg overhead {avg:.3f} at {interval}"

    # Worst case stays within a few percent even at 25K.
    worst = max(r.overhead["25K"] for r in rows)
    assert worst < 0.06, f"worst 25K overhead {worst:.3f}"

    # Monotonicity for the sample-heavy programs: finer interval, more
    # overhead (paper: "the time overhead is proportional to the
    # sampling rate (e.g. db and pseudojbb)").
    for name in ("db", "pseudojbb"):
        if name in by_name:
            o = by_name[name].overhead
            assert o["25K"] >= o["100K"] - 0.002, (name, o)

    # Nothing should get *faster* from sampling beyond noise.
    for row in rows:
        for interval, value in row.overhead.items():
            assert value > -0.02, (row.name, interval, value)
