"""Tests for the telemetry package: metrics, tracing, exporters, and
the pure-observer invariant (telemetry must never perturb the
simulation)."""

import json

import pytest

from repro.harness.runner import RunSpec, execute
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.export import (
    chrome_trace,
    format_timeline,
    jsonl_records,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.metrics import MetricsRegistry, NullMetricsRegistry
from repro.telemetry.tracer import NullTracer, Tracer


class TestMetricsRegistry:
    def test_counter_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("requests", "help text")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert reg.value("requests") == 5

    def test_factories_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_labels_create_children(self):
        reg = MetricsRegistry()
        c = reg.counter("by_event")
        c.labels("L1D_MISS").inc(3)
        c.labels("L2_MISS").inc()
        assert c.labels("L1D_MISS").value == 3
        assert c.labels("L2_MISS").value == 1
        assert c.labels("L1D_MISS") is c.labels("L1D_MISS")

    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("fill")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12

    def test_histogram_power_of_two_buckets(self):
        h = MetricsRegistry().histogram("pause")
        for v in (1, 2, 3, 100):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 106
        assert h.mean == pytest.approx(26.5)
        bounds = dict(h.bucket_bounds())
        assert bounds[2] == 1      # value 1 -> [1, 2)
        assert bounds[4] == 2      # values 2, 3 -> [2, 4)
        assert bounds[128] == 1    # value 100 -> [64, 128)

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.counter("plain").inc(7)
        reg.counter("labeled").labels("a", "b").inc(2)
        reg.histogram("dist").observe(5)
        snap = reg.snapshot()
        assert snap["plain"] == 7
        assert snap["labeled"] == {"a,b": 2}
        assert snap["dist"]["count"] == 1
        assert snap["dist"]["sum"] == 5

    def test_render_lines(self):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        reg.gauge("g").set(3)
        text = reg.render()
        assert "counter n 1" in text
        assert "gauge g 3" in text

    def test_null_registry_records_nothing(self):
        reg = NullMetricsRegistry()
        assert not reg.enabled
        c = reg.counter("anything")
        c.inc(100)
        c.labels("x").inc()
        assert c.value == 0
        assert reg.snapshot() == {}
        # All kinds share one no-op instrument.
        assert reg.counter("a") is reg.gauge("b") is reg.histogram("c")


class TestTracer:
    def make(self):
        clock = {"now": 0}
        tracer = Tracer(clock=lambda: clock["now"])
        return tracer, clock

    def test_span_timestamps_from_clock(self):
        tracer, clock = self.make()
        clock["now"] = 100
        tracer.begin("work", cat="gc")
        clock["now"] = 250
        ev = tracer.end()
        assert (ev.name, ev.cat, ev.ts, ev.dur) == ("work", "gc", 100, 150)

    def test_nesting_depth(self):
        tracer, clock = self.make()
        tracer.begin("outer")
        tracer.begin("inner")
        inner = tracer.end()
        outer = tracer.end()
        assert inner.depth == 1
        assert outer.depth == 0
        assert tracer.open_spans == 0

    def test_end_merges_extra_args(self):
        tracer, _ = self.make()
        tracer.begin("b", cat="gc", phase="minor")
        ev = tracer.end(promoted=12)
        assert ev.args == {"phase": "minor", "promoted": 12}

    def test_span_context_manager(self):
        tracer, clock = self.make()
        with tracer.span("cm", cat="jit"):
            clock["now"] = 50
        assert len(tracer.spans) == 1
        assert tracer.spans[0].dur == 50

    def test_instants_and_samples(self):
        tracer, clock = self.make()
        clock["now"] = 7
        tracer.instant("mark", cat="controller", reason="test")
        tracer.sample("fill", 42, cat="perfmon")
        assert tracer.instants[0].ts == 7
        assert tracer.samples[0].value == 42
        assert tracer.end_cycle() == 7

    def test_categories_first_appearance_order(self):
        tracer, _ = self.make()
        tracer.begin("a", cat="jit")
        tracer.end()
        tracer.instant("b", cat="gc")
        assert tracer.categories() == ["jit", "gc"]

    def test_event_cap_counts_drops(self):
        tracer, _ = self.make()
        tracer.max_events = 2
        for _ in range(4):
            tracer.begin("s")
            tracer.end()
        assert len(tracer.spans) == 2
        assert tracer.dropped_events == 2

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        with tracer.span("x"):
            pass
        tracer.begin("y")
        assert tracer.end() is None
        tracer.instant("z")
        tracer.sample("s", 1)
        assert not tracer.spans and not tracer.instants and not tracer.samples

    def test_null_telemetry_singleton_disabled(self):
        assert not NULL_TELEMETRY.enabled
        assert not NULL_TELEMETRY.metrics.enabled
        # Binding a clock on the null bundle must stay a no-op.
        NULL_TELEMETRY.bind_clock(lambda: 99)
        NULL_TELEMETRY.tracer.begin("a")
        assert NULL_TELEMETRY.tracer.end() is None


class TestExporters:
    def traced(self):
        tracer, clock = TestTracer().make()
        tracer.begin("gc.minor", cat="gc")
        clock["now"] = 1000
        tracer.end(promoted=3)
        tracer.instant("controller.period_close", cat="controller")
        tracer.sample("perfmon.kernel.buffer_fill", 12, cat="perfmon")
        return tracer

    def test_chrome_trace_schema(self):
        tracer = self.traced()
        reg = MetricsRegistry()
        reg.counter("gc.minor_collections").inc()
        doc = chrome_trace(tracer, reg, metadata={"benchmark": "t"})
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"M", "X", "i", "C"} <= phases
        span = next(e for e in events if e["ph"] == "X")
        assert span["ts"] == 0 and span["dur"] == 1000
        assert span["args"]["promoted"] == 3
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert {"gc", "controller", "perfmon"} <= names
        assert doc["otherData"]["clock"] == "simulated cycles"
        assert doc["otherData"]["benchmark"] == "t"
        assert doc["metrics"]["gc.minor_collections"] == 1

    def test_chrome_trace_roundtrips_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), self.traced())
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_jsonl_sorted_with_metrics_tail(self, tmp_path):
        reg = MetricsRegistry()
        reg.gauge("vm.cycles").set(1000)
        path = tmp_path / "trace.jsonl"
        write_jsonl(str(path), self.traced(), reg)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[-1] == {"type": "metrics",
                               "data": {"vm.cycles": 1000}}
        body = records[:-1]
        assert {r["type"] for r in body} == {"span", "instant", "sample"}
        assert [r["ts"] for r in body] == sorted(r["ts"] for r in body)

    def test_jsonl_records_without_metrics(self):
        assert all("type" in r for r in jsonl_records(self.traced()))

    def test_timeline_text(self):
        text = format_timeline(self.traced(), total_cycles=2000, width=20)
        assert "timeline: 0 .. 2,000 cycles" in text
        assert "gc |" in text
        assert "longest spans:" in text
        assert "gc/gc.minor" in text

    def test_timeline_empty(self):
        assert format_timeline(Tracer()) == "timeline: no spans recorded"


class TestTelemetryBundle:
    def test_enabled_bundle_gets_real_backends(self):
        tele = Telemetry()
        assert tele.enabled
        assert isinstance(tele.metrics, MetricsRegistry)
        assert not isinstance(tele.metrics, NullMetricsRegistry)
        assert not isinstance(tele.tracer, NullTracer)

    def test_bind_clock(self):
        tele = Telemetry()
        tele.bind_clock(lambda: 77)
        tele.tracer.begin("a")
        assert tele.tracer.end().ts == 77


class TestVMIntegration:
    def test_monitored_run_traces_four_layers(self):
        tele = Telemetry()
        result = execute(RunSpec(benchmark="db", coalloc=True),
                         telemetry=tele)
        cats = set(tele.tracer.categories())
        assert {"perfmon", "controller", "gc", "jit"} <= cats
        assert tele.tracer.open_spans == 0
        snap = tele.metrics.snapshot()
        assert snap["vm.cycles"] == result.cycles
        assert snap["gc.minor_collections"] == result.gc_stats.minor_gcs
        assert snap["controller.batches"] == result.monitor_summary["batches"]
        # Canonical summary export: every summary key has a gauge twin.
        for key, value in result.monitor_summary.items():
            assert snap[f"controller.summary.{key}"] == value
        assert result.telemetry is tele

    def test_coalloc_decisions_counted(self):
        tele = Telemetry()
        result = execute(RunSpec(benchmark="db", coalloc=True),
                         telemetry=tele)
        accepted = tele.metrics.get("gc.coalloc.accepted")
        total = sum(c.value for c in accepted.children.values())
        assert total == result.gc_stats.coalloc_pairs

    def test_jit_compilations_labeled(self):
        tele = Telemetry()
        execute(RunSpec(benchmark="compress"), telemetry=tele)
        comp = tele.metrics.get("jit.compilations")
        assert comp.labels("baseline").value > 0

    def test_telemetry_off_runs_cycle_identical(self):
        """The pure-observer invariant: enabling telemetry must not
        change a single simulated number (cycles, instructions, hardware
        counters, GC statistics, monitoring summary)."""
        spec = RunSpec(benchmark="compress", coalloc=True)
        off = execute(spec)
        on = execute(spec, telemetry=Telemetry())
        assert on.cycles == off.cycles
        assert on.instructions == off.instructions
        assert on.app_cycles == off.app_cycles
        assert on.gc_cycles == off.gc_cycles
        assert on.monitoring_cycles == off.monitoring_cycles
        assert on.counters == off.counters
        assert on.gc_stats.summary() == off.gc_stats.summary()
        assert on.monitor_summary == off.monitor_summary
        assert off.telemetry is NULL_TELEMETRY
