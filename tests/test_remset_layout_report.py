"""Direct tests for the remembered set, the address-space layout, and
the report formatters."""

import pytest

from repro.gc import layout
from repro.gc.remset import RememberedSet
from repro.harness import experiments as ex
from repro.harness.report import (
    format_fig2,
    format_fig3,
    format_fig4,
    format_fig5,
    format_fig6,
    format_fig8,
    format_table2,
)
from repro.vm.model import ClassInfo
from repro.vm.objects import SPACE_MATURE, SPACE_NURSERY, HeapArray, HeapObject


def make_objects():
    k = ClassInfo("A")
    k.add_field("r", "ref")
    k.seal()
    mature = HeapObject(k, space=SPACE_MATURE)
    young = HeapObject(k, space=SPACE_NURSERY)
    return k, mature, young


class TestRememberedSet:
    def test_mature_to_nursery_recorded(self):
        k, mature, young = make_objects()
        rs = RememberedSet()
        assert rs.record_store(mature, 0, young) is True
        assert len(rs) == 1

    def test_nursery_to_nursery_not_recorded(self):
        k, mature, young = make_objects()
        other = HeapObject(k, space=SPACE_NURSERY)
        rs = RememberedSet()
        assert rs.record_store(young, 0, other) is False
        assert len(rs) == 0

    def test_null_store_not_recorded(self):
        k, mature, young = make_objects()
        rs = RememberedSet()
        assert rs.record_store(mature, 0, None) is False

    def test_mature_target_not_recorded(self):
        k, mature, young = make_objects()
        other = HeapObject(k, space=SPACE_MATURE)
        rs = RememberedSet()
        assert rs.record_store(mature, 0, other) is False

    def test_duplicate_slot_suppressed(self):
        k, mature, young = make_objects()
        rs = RememberedSet()
        rs.record_store(mature, 0, young)
        assert rs.record_store(mature, 0, young) is False
        assert len(rs) == 1
        assert rs.barrier_stores == 2

    def test_targets_read_current_slot_value(self):
        k, mature, young = make_objects()
        rs = RememberedSet()
        mature.write(0, young)
        rs.record_store(mature, 0, young)
        # Overwrite the slot after recording: the remset must see the
        # *current* value.
        newer = HeapObject(k, space=SPACE_NURSERY)
        mature.write(0, newer)
        assert list(rs.targets()) == [newer]

    def test_targets_skip_promoted_values(self):
        k, mature, young = make_objects()
        rs = RememberedSet()
        mature.write(0, young)
        rs.record_store(mature, 0, young)
        young.space = SPACE_MATURE  # promoted meanwhile
        assert list(rs.targets()) == []

    def test_array_holder(self):
        k, mature, young = make_objects()
        arr = HeapArray("ref", 4, space=SPACE_MATURE)
        arr.write(2, young)
        rs = RememberedSet()
        rs.record_store(arr, 2, young)
        assert list(rs.targets()) == [young]

    def test_clear(self):
        k, mature, young = make_objects()
        rs = RememberedSet()
        rs.record_store(mature, 0, young)
        rs.clear()
        assert len(rs) == 0
        # The same slot can be re-recorded after a clear.
        assert rs.record_store(mature, 0, young) is True


class TestLayout:
    def test_regions_disjoint_and_ordered(self):
        bounds = [
            (layout.STACK_BASE, layout.STACK_LIMIT),
            (layout.STATICS_BASE, layout.STATICS_LIMIT),
            (layout.CODE_BASE, layout.CODE_LIMIT),
            (layout.NURSERY_BASE, layout.NURSERY_LIMIT),
            (layout.MATURE_BASE, layout.MATURE_LIMIT),
            (layout.LOS_BASE, layout.LOS_LIMIT),
        ]
        for (b1, l1), (b2, l2) in zip(bounds, bounds[1:]):
            assert b1 < l1 <= b2 < l2

    def test_region_predicates(self):
        assert layout.in_code_space(layout.CODE_BASE)
        assert not layout.in_code_space(layout.CODE_LIMIT)
        assert layout.in_nursery(layout.NURSERY_BASE + 8)
        assert layout.in_mature(layout.MATURE_BASE + 8)
        assert layout.in_los(layout.LOS_BASE + 8)

    def test_region_name(self):
        assert layout.region_name(layout.CODE_BASE) == "code"
        assert layout.region_name(layout.NURSERY_BASE) == "nursery"
        assert layout.region_name(0) == "unmapped"


class TestReportFormatting:
    def test_table2_formatting(self):
        rows = [ex.Table2Row("db", 2, 1, 5),
                ex.Table2Row("boot image", 700, 260, 250)]
        text = format_table2(rows)
        assert "db" in text and "boot image" in text
        assert "machine code" in text

    def test_fig2_formatting_with_average(self):
        rows = [ex.OverheadRow("db", {"25K": 0.03, "auto": 0.005}),
                ex.OverheadRow("fop", {"25K": 0.01, "auto": 0.001})]
        text = format_fig2(rows)
        assert "average" in text
        assert "3.00%" in text

    def test_fig3_formatting(self):
        rows = [ex.CoallocRow("db", {"25K": 20000, "100K": 19000})]
        text = format_fig3(rows)
        assert "20000" in text

    def test_fig4_reduction_property(self):
        row = ex.MissReductionRow("db", 100, 72)
        assert row.reduction == pytest.approx(0.28)
        assert "28.0%" in format_fig4([row])

    def test_fig4_zero_baseline(self):
        row = ex.MissReductionRow("empty", 0, 0)
        assert row.reduction == 0.0

    def test_fig5_formatting(self):
        rows = [ex.ExecTimeRow("db", {1.0: 0.91, 4.0: 0.89})]
        text = format_fig5(rows)
        assert "0.890" in text

    def test_fig6_normalization(self):
        comp = ex.GCPlanComparison("db", {
            1.0: {"genms": 100, "genms+coalloc": 87, "gencopy": 101}})
        assert comp.normalized(1.0, "genms+coalloc") == pytest.approx(0.87)
        text = format_fig6(comp)
        assert "gencopy" in text

    def test_fig8_formatting_markers(self):
        result = ex.RevertResult(
            benchmark="db", per_period=[(100, 5), (200, 9), (300, 4)],
            moving_average=[5.0, 7.0, 6.0], gap_applied_period=1,
            reverted=True, reverted_period=2, baseline_rate=5.0,
            peak_rate=9.0, final_rate=4.0)
        text = format_fig8(result)
        assert "gap inserted" in text
        assert "reverted" in text
