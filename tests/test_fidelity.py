"""The sampling-fidelity auditor.

Two contracts under test:

* **Purity** — the exact-attribution oracle is a pure observer: a run
  with the oracle attached is bit-identical (cycles, counters, GC
  statistics, monitoring summary, PEBS samples taken) to one without.
* **Accuracy** — the paper's claim, checked against the simulator's
  ground truth: at the default (densest) sampling interval the sampled
  hot-method set matches the exact one (overlap >= 0.8), and fidelity
  never *improves* as the interval grows.
"""

import pytest

from repro.analysis import fidelity
from repro.analysis.fidelity import (ExactAttributionOracle, audit_benchmark,
                                     audit_run, hot_set, normalized_abs_error,
                                     overlap_coefficient, spearman)
from repro.harness.runner import RunSpec, make_vm

AUDITED = RunSpec(benchmark="db", coalloc=True, monitoring=True)


# ---------------------------------------------------------------------------
# Metric unit tests
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_hot_set_orders_by_count_then_name(self):
        profile = {"b": 5, "a": 5, "c": 9, "d": 1}
        assert hot_set(profile, 3) == ["c", "a", "b"]
        assert hot_set(profile, 10) == ["c", "a", "b", "d"]
        assert hot_set({}, 3) == []

    def test_overlap_coefficient_basics(self):
        exact = {"a": 10, "b": 5, "c": 1}
        assert overlap_coefficient(exact, exact) == 1.0
        assert overlap_coefficient(exact, {"a": 3, "b": 1}, top_n=2) == 1.0
        assert overlap_coefficient(exact, {"x": 7, "y": 2}) == 0.0

    def test_overlap_coefficient_empty_profiles(self):
        assert overlap_coefficient({}, {}) == 1.0
        assert overlap_coefficient({"a": 1}, {}) == 0.0
        assert overlap_coefficient({}, {"a": 1}) == 0.0

    def test_spearman_perfect_and_reversed(self):
        exact = {"a": 30, "b": 20, "c": 10}
        same_order = {"a": 3, "b": 2, "c": 1}
        reversed_order = {"a": 1, "b": 2, "c": 3}
        assert spearman(exact, exact) == pytest.approx(1.0)
        assert spearman(exact, same_order) == pytest.approx(1.0)
        assert spearman(exact, reversed_order) == pytest.approx(-1.0)

    def test_spearman_missing_names_count_as_zero(self):
        # "c" missing from the sampled profile ranks below a and b.
        rho = spearman({"a": 30, "b": 20, "c": 10},
                       {"a": 3, "b": 2})
        assert rho == pytest.approx(1.0)

    def test_spearman_degenerate_single_name(self):
        # One name: ordering is trivial; what matters is whether the
        # sampled profile saw the same name at all.  The estimate being
        # off (5 vs 500) must not score 0.
        assert spearman({"a": 500}, {"a": 5}) == 1.0
        assert spearman({"a": 500}, {}) == 0.0
        assert spearman({}, {}) == 1.0

    def test_spearman_constant_profile(self):
        assert spearman({"a": 1, "b": 1}, {"a": 7, "b": 7}) == 1.0

    def test_normalized_abs_error(self):
        exact = {"a": 100, "b": 50}
        assert normalized_abs_error(exact, exact) == 0.0
        assert normalized_abs_error(exact, {}) == 1.0
        assert normalized_abs_error(exact, {"a": 100, "b": 20}) == \
            pytest.approx(30 / 150)
        # A name only the sampled profile saw is pure error mass.
        assert normalized_abs_error({}, {"x": 5}) == 5.0


# ---------------------------------------------------------------------------
# The oracle
# ---------------------------------------------------------------------------

class TestOracle:
    def test_pure_observer_bit_identity(self):
        """Attaching the oracle must not change a single simulated
        number, including the PEBS sample stream it is scored against."""
        vm_a, _ = make_vm(AUDITED.benchmark, AUDITED)
        oracle = ExactAttributionOracle(vm_a.codecache)
        oracle.attach(vm_a)
        audited = vm_a.run()
        vm_b, _ = make_vm(AUDITED.benchmark, AUDITED)
        plain = vm_b.run()

        assert audited.cycles == plain.cycles
        assert audited.instructions == plain.instructions
        assert audited.app_cycles == plain.app_cycles
        assert audited.gc_cycles == plain.gc_cycles
        assert audited.monitoring_cycles == plain.monitoring_cycles
        assert audited.counters == plain.counters
        assert audited.gc_stats.summary() == plain.gc_stats.summary()
        assert audited.monitor_summary == plain.monitor_summary
        assert vm_a.pebs.samples_taken == vm_b.pebs.samples_taken
        assert oracle.total_events > 0, "oracle actually observed the run"

    def test_oracle_accounting_adds_up(self):
        vm, _ = make_vm(AUDITED.benchmark, AUDITED)
        oracle = ExactAttributionOracle(vm.codecache)
        oracle.attach(vm)
        vm.run()
        assert (oracle.dropped_foreign + oracle.dropped_baseline +
                oracle.unattributed + oracle.attributed) == \
            oracle.total_events
        in_opt_code = oracle.total_events - oracle.dropped_foreign \
            - oracle.dropped_baseline
        assert sum(oracle.method_events.values()) == in_opt_code
        assert sum(oracle.bytecode_events.values()) == in_opt_code
        assert sum(oracle.field_events.values()) == oracle.attributed

    def test_exact_sees_more_than_sampling(self):
        """The oracle sees every event; PEBS sees every n-th."""
        audit, _result = audit_run(AUDITED)
        assert audit.exact_events > audit.samples_taken
        assert audit.exact_attributed >= audit.sampled_attributed

    def test_unknown_event_rejected(self):
        vm, _ = make_vm(AUDITED.benchmark, AUDITED)
        with pytest.raises(ValueError):
            vm.memsys.attach_observer("BOGUS_EVENT", lambda eip: None)

    def test_detach_stops_observation(self):
        vm, _ = make_vm(AUDITED.benchmark, AUDITED)
        oracle = ExactAttributionOracle(vm.codecache)
        oracle.attach(vm)
        vm.memsys.detach_observer()
        vm.run()
        assert oracle.total_events == 0

    def test_audit_requires_monitoring(self):
        spec = RunSpec(benchmark="fop", monitoring=False)
        with pytest.raises(ValueError, match="monitoring"):
            audit_run(spec)


# ---------------------------------------------------------------------------
# The interval sweep (acceptance thresholds)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def fop_report():
    return audit_benchmark("fop")


class TestAuditSweep:
    def test_hot_method_overlap_at_default_interval(self, fop_report):
        first = fop_report.intervals[0]
        assert first.interval == fidelity.DEFAULT_INTERVALS[0]
        assert first.method_overlap >= 0.8

    def test_fidelity_monotone_non_increasing(self, fop_report):
        scores = [ia.fidelity for ia in fop_report.intervals]
        assert all(a >= b for a, b in zip(scores, scores[1:]))

    def test_sparser_sampling_costs_less(self, fop_report):
        samples = [ia.samples_taken for ia in fop_report.intervals]
        assert all(a >= b for a, b in zip(samples, samples[1:]))
        assert fop_report.intervals[0].overhead >= \
            fop_report.intervals[-1].overhead
        assert all(0.0 <= ia.overhead < 1.0 for ia in fop_report.intervals)

    def test_report_json_schema(self, fop_report):
        doc = fop_report.to_json()
        assert doc["schema"] == fidelity.AUDIT_SCHEMA_VERSION
        assert doc["benchmark"] == "fop"
        assert len(doc["intervals"]) == len(fidelity.DEFAULT_INTERVALS)
        required = {"interval", "scaled_interval", "cycles",
                    "monitoring_cycles", "overhead", "samples_taken",
                    "exact_events", "exact_attributed",
                    "sampled_attributed", "fidelity", "method_overlap",
                    "field_overlap", "method_spearman", "field_spearman",
                    "field_abs_error", "top_methods_exact",
                    "top_methods_sampled", "top_fields_exact",
                    "top_fields_sampled"}
        for entry in doc["intervals"]:
            assert required <= set(entry)

    def test_frontier_shape(self, fop_report):
        frontier = fop_report.frontier()
        assert len(frontier) == len(fop_report.intervals)
        for (overhead, score), ia in zip(frontier, fop_report.intervals):
            assert overhead == ia.overhead and score == ia.fidelity

    def test_format_report_renders(self, fop_report):
        text = fidelity.format_report(fop_report)
        assert "fidelity audit: fop" in text
        assert "m.overlap" in text
        assert "hottest methods at 25K" in text
