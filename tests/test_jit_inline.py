"""Tests for opt-compiler method inlining (repro.jit.inline)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.helpers import BASELINE_ONLY
from repro.core.config import GCConfig, JITConfig, SystemConfig
from repro.core.interest import analyze_function
from repro.jit.aos import CompilationPlan
from repro.jit.hir import build_hir
from repro.jit.inline import can_inline, inline_bytecode, inlined_view
from repro.jit.opt import compile_opt
from repro.vm.bytecode import analyze
from repro.vm.program import Program
from repro.vm.vmcore import run_program
from repro.workloads.synth import Fn


def getter_program():
    """p.getY().i — the access path only visible after inlining."""
    p = Program("t")
    app = p.define_class("App")
    app.add_static("out", "int")
    app.seal()
    a = p.define_class("A")
    a.add_field("y", "ref")
    a.add_field("i", "int")
    a.seal()
    getter = Fn(p, app, "getY", args=["ref"], returns="ref")
    getter.rload(0).getfield(a, "y").rret()
    get_y = getter.finish()
    fn = Fn(p, app, "chase", args=["ref"], returns="int")
    fn.rload(0).call(get_y).getfield(a, "i").iret()
    return p, app, a, get_y, fn.finish()


class TestEligibility:
    def test_small_static_leaf_inlinable(self):
        p, app, a, get_y, chase = getter_program()
        assert can_inline(chase, get_y)

    def test_self_call_not_inlinable(self):
        p, app, a, get_y, chase = getter_program()
        assert not can_inline(get_y, get_y)

    def test_large_callee_rejected(self):
        p, app, a, get_y, chase = getter_program()
        assert not can_inline(chase, get_y, max_callee_bytecodes=1)

    def test_callee_with_calls_rejected(self):
        p, app, a, get_y, chase = getter_program()
        wrapper = Fn(p, app, "wrap", args=["ref"], returns="ref")
        wrapper.rload(0).call(get_y).rret()
        wrap = wrapper.finish()
        assert not can_inline(chase, wrap)


class TestSplicing:
    def test_call_site_removed(self):
        p, app, a, get_y, chase = getter_program()
        code, locals_, count = inline_bytecode(chase)
        assert count == 1
        assert not any(i.op == "invokestatic" for i in code)

    def test_inlined_code_verifies(self):
        p, app, a, get_y, chase = getter_program()
        shadow = inlined_view(chase)
        assert shadow is not None
        analyze(shadow)  # must not raise

    def test_locals_relocated(self):
        p, app, a, get_y, chase = getter_program()
        code, locals_, _ = inline_bytecode(chase)
        assert locals_ == chase.max_locals + get_y.max_locals
        # The callee's rload 0 must have been shifted.
        loads = [i.a for i in code if i.op == "rload"]
        assert chase.max_locals in loads

    def test_no_candidates_returns_none(self):
        p, app, a, get_y, chase = getter_program()
        assert inlined_view(get_y) is None

    def test_multi_return_callee(self):
        p = Program("t")
        app = p.define_class("App")
        app.add_static("out", "int")
        app.seal()
        absfn = Fn(p, app, "iabs", args=["int"], returns="int")
        absfn.iload(0).iconst(0)
        neg = absfn.fresh_label()
        absfn.emit("if_icmp", "lt", neg)
        absfn.iload(0).iret()
        absfn.label(neg)
        absfn.iload(0).emit("ineg").iret()
        iabs = absfn.finish()
        fn = Fn(p, app, "main")
        fn.iconst(-5).call(iabs)
        fn.iconst(3).call(iabs)
        fn.emit("iadd").putstatic(app, "out")
        fn.ret()
        main = fn.finish()
        p.set_main(main)
        shadow = inlined_view(main)
        assert shadow is not None
        analyze(shadow)
        # Execute the inlined version.
        cfg = SystemConfig(monitoring=False)
        run_program(p, cfg, compilation_plan=CompilationPlan(["App.main"]))
        assert app.static_values[0] == 8


class TestInterestThroughInlining:
    def test_getter_exposes_interest_pair(self):
        """Without inlining, chase's heap access has an opaque base (a
        call result); with inlining, the (S, A::y) pair appears —
        inlining widens what the monitoring can attribute."""
        p, app, a, get_y, chase = getter_program()
        plain = analyze_function(build_hir(chase))
        assert plain == {}
        cm = compile_opt(chase, inline=True)
        inlined = analyze_function(cm.hir)
        assert [f.qualified_name for f in inlined.values()] == ["A::y"]


class TestSemanticEquivalence:
    def run_chase(self, inline):
        p, app, a, get_y, chase = getter_program()
        fn = Fn(p, app, "main")
        box1 = fn.local()
        box2 = fn.local()
        fn.new(a).rstore(box1)
        fn.new(a).rstore(box2)
        fn.rload(box1).rload(box2).putfield(a, "y")
        fn.rload(box2).iconst(77).putfield(a, "i")
        fn.rload(box1).call(chase).putstatic(app, "out")
        fn.ret()
        p.set_main(fn.finish())
        cfg = SystemConfig(monitoring=False,
                           jit=JITConfig(inline=inline))
        run_program(p, cfg, compilation_plan=CompilationPlan(
            ["App.chase", "App.getY", "App.main"]))
        return app.static_values[0]

    def test_inline_on_off_agree(self):
        assert self.run_chase(True) == self.run_chase(False) == 77

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=6),
           st.integers(1, 20))
    @settings(max_examples=25, deadline=None)
    def test_helpers_inline_correctly(self, constants, loop_n):
        """Random caller invoking small helpers in a loop: inlined and
        non-inlined compilation must agree."""
        def build_and_run(inline):
            p = Program("t")
            app = p.define_class("App")
            app.add_static("out", "int")
            app.seal()
            helper = Fn(p, app, "mix", args=["int", "int"], returns="int")
            helper.iload(0).iload(1).emit("ixor")
            helper.iload(1).emit("iadd").iret()
            mix = helper.finish()
            fn = Fn(p, app, "work", args=["int"], returns="int")
            acc = fn.local()
            fn.iload(0).istore(acc)
            with fn.loop(loop_n):
                for c in constants:
                    fn.iload(acc).iconst(c).call(mix).istore(acc)
            fn.iload(acc).iret()
            work = fn.finish()
            main = Fn(p, app, "main")
            main.iconst(9).call(work).putstatic(app, "out")
            main.ret()
            p.set_main(main.finish())
            cfg = SystemConfig(monitoring=False,
                               jit=JITConfig(inline=inline))
            run_program(p, cfg,
                        compilation_plan=CompilationPlan(["App.work"]))
            return app.static_values[0]

        assert build_and_run(True) == build_and_run(False)

    def test_inlined_code_is_faster(self):
        """Inlining removes call overhead: fewer cycles on a call-dense
        loop."""
        def run(inline):
            p = Program("t")
            app = p.define_class("App")
            app.add_static("out", "int")
            app.seal()
            helper = Fn(p, app, "inc", args=["int"], returns="int")
            helper.iload(0).iconst(1).emit("iadd").iret()
            inc = helper.finish()
            fn = Fn(p, app, "work", args=["int"], returns="int")
            acc = fn.local()
            fn.iload(0).istore(acc)
            with fn.loop(300):
                fn.iload(acc).call(inc).istore(acc)
            fn.iload(acc).iret()
            work = fn.finish()
            main = Fn(p, app, "main")
            main.iconst(0).call(work).putstatic(app, "out")
            main.ret()
            p.set_main(main.finish())
            cfg = SystemConfig(monitoring=False,
                               jit=JITConfig(inline=inline))
            return run_program(p, cfg,
                               compilation_plan=CompilationPlan(["App.work"]))

        fast = run(True)
        slow = run(False)
        assert fast.cycles < slow.cycles
