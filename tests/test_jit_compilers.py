"""Tests for the baseline and optimizing compilers, HIR, and liveness."""

import pytest

from repro.hw.isa import (
    GC_POINT_OPS,
    M_BC, M_BR, M_CALL, M_GETF, M_LDF, M_MOV, M_NEW, M_STF,
)
from repro.jit.baseline import compile_baseline
from repro.jit.codecache import LEVEL_BASELINE, LEVEL_OPT
from repro.jit.hir import build_hir
from repro.jit.liveness import compute_gc_maps, compute_liveness, uses_defs
from repro.jit.lowering import lower, sequentialize_moves
from repro.jit.opt import compile_opt
from repro.jit.optimizer import optimize
from repro.vm.program import Program
from repro.workloads.synth import Fn


def simple_program():
    p = Program("t")
    app = p.define_class("App")
    app.add_static("out", "int")
    app.seal()
    box = p.define_class("Box")
    box.add_field("child", "ref")
    box.add_field("v", "int")
    box.seal()
    return p, app, box


def field_chase_method(p, app, box):
    """int chase(Box b): return b.child.v   (the paper's p.y.i shape)."""
    fn = Fn(p, app, "chase", args=["ref"], returns="int")
    fn.rload(0).getfield(box, "child").getfield(box, "v").iret()
    return fn.finish()


class TestBaselineCompiler:
    def test_every_instruction_has_bytecode_index(self):
        p, app, box = simple_program()
        m = field_chase_method(p, app, box)
        cm = compile_baseline(m)
        assert cm.level == LEVEL_BASELINE
        assert all(0 <= bc < len(m.code) for bc in cm.bc_map)

    def test_prologue_spills_arguments(self):
        p, app, box = simple_program()
        m = field_chase_method(p, app, box)
        cm = compile_baseline(m)
        assert cm.code[0].op == M_STF
        assert cm.code[0].imm == 0  # arg 0 -> local slot 0

    def test_operand_stack_lives_in_frame_memory(self):
        p, app, box = simple_program()
        m = field_chase_method(p, app, box)
        cm = compile_baseline(m)
        ops = [inst.op for inst in cm.code]
        assert M_LDF in ops and M_STF in ops

    def test_branch_fixups_point_to_instruction_starts(self):
        p, app, box = simple_program()
        fn = Fn(p, app, "looped", args=["int"], returns="int")
        acc = fn.local()
        fn.iconst(0).istore(acc)
        with fn.loop(10):
            fn.iload(acc).iconst(1).emit("iadd").istore(acc)
        fn.iload(acc).iret()
        cm = compile_baseline(fn.finish())
        for inst in cm.code:
            if inst.op in (M_BR, M_BC):
                assert 0 <= inst.imm < len(cm.code)

    def test_gc_maps_present_at_gc_points_only(self):
        p, app, box = simple_program()
        fn = Fn(p, app, "maker", args=["ref"], returns="ref")
        fn.new(box).rret()
        cm = compile_baseline(fn.finish())
        gc_pcs = {pc for pc, inst in enumerate(cm.code)
                  if inst.op in GC_POINT_OPS}
        assert set(cm.gc_maps) == gc_pcs
        assert gc_pcs  # the 'new' is a GC point

    def test_gc_map_lists_ref_local(self):
        p, app, box = simple_program()
        fn = Fn(p, app, "maker", args=["ref"], returns="ref")
        fn.new(box).rret()
        cm = compile_baseline(fn.finish())
        (roots,) = cm.gc_maps.values()
        assert ("s", 0) in roots  # the ref argument's local slot

    def test_int_local_not_in_gc_map(self):
        p, app, box = simple_program()
        fn = Fn(p, app, "maker", args=["int"], returns="ref")
        fn.new(box).rret()
        cm = compile_baseline(fn.finish())
        (roots,) = cm.gc_maps.values()
        assert ("s", 0) not in roots


class TestHIR:
    def test_stack_traffic_eliminated(self):
        p, app, box = simple_program()
        m = field_chase_method(p, app, box)
        func = build_hir(m)
        ops = [i.op for i in func.all_insts()]
        assert ops.count("getfield") == 2
        # No frame-memory ops exist in HIR at all; values flow directly.

    def test_use_def_edge_from_heap_access_to_field_load(self):
        p, app, box = simple_program()
        m = field_chase_method(p, app, box)
        func = build_hir(m)
        getfields = [i for i in func.all_insts() if i.op == "getfield"]
        inner = next(i for i in getfields if i.aux.name == "v")
        producer = inner.args[0]
        assert producer.op == "getfield"
        assert producer.aux.name == "child"

    def test_block_splitting_at_branch_targets(self):
        p, app, box = simple_program()
        fn = Fn(p, app, "looped", args=["int"], returns="int")
        acc = fn.local()
        fn.iconst(0).istore(acc)
        with fn.loop(5):
            fn.iload(acc).iconst(1).emit("iadd").istore(acc)
        fn.iload(acc).iret()
        func = build_hir(fn.finish())
        assert len(func.blocks) >= 3  # entry, loop head/body, exit

    def test_successors_recorded(self):
        p, app, box = simple_program()
        fn = Fn(p, app, "cond", args=["int"], returns="int")
        fn.iload(0)
        with fn.if_nonzero():
            fn.iconst(1).putstatic(app, "out")
        fn.iconst(0).iret()
        func = build_hir(fn.finish())
        branching = [b for b in func.blocks if len(b.successors) == 2]
        assert branching

    def test_vreg_types_tracked(self):
        p, app, box = simple_program()
        m = field_chase_method(p, app, box)
        func = build_hir(m)
        assert any("r" in types for types in func.vreg_types.values())
        assert any("i" in types for types in func.vreg_types.values())


class TestOptimizer:
    def test_constant_folding(self):
        p, app, box = simple_program()
        fn = Fn(p, app, "c", returns="int")
        fn.iconst(6).iconst(7).emit("imul").iret()
        func = build_hir(fn.finish())
        stats = optimize(func)
        assert stats["folded"] >= 1
        consts = [i for i in func.all_insts() if i.op == "const"]
        assert any(i.imm == 42 for i in consts)

    def test_redundant_getfield_eliminated(self):
        p, app, box = simple_program()
        fn = Fn(p, app, "r", args=["ref"], returns="int")
        fn.rload(0).getfield(box, "v")
        fn.rload(0).getfield(box, "v")
        fn.emit("iadd").iret()
        func = build_hir(fn.finish())
        stats = optimize(func)
        assert stats["cse"] == 1
        loads = [i for i in func.all_insts() if i.op == "getfield"]
        assert len(loads) == 1

    def test_putfield_invalidates_cse(self):
        p, app, box = simple_program()
        fn = Fn(p, app, "w", args=["ref"], returns="int")
        fn.rload(0).getfield(box, "v")
        fn.rload(0).iconst(5).putfield(box, "v")
        fn.rload(0).getfield(box, "v")
        fn.emit("iadd").iret()
        func = build_hir(fn.finish())
        optimize(func)
        loads = [i for i in func.all_insts() if i.op == "getfield"]
        assert len(loads) == 2  # the second load must survive

    def test_call_invalidates_cse(self):
        p, app, box = simple_program()
        callee = Fn(p, app, "noop", returns="void")
        callee.ret()
        noop = callee.finish()
        fn = Fn(p, app, "w", args=["ref"], returns="int")
        fn.rload(0).getfield(box, "v")
        fn.call(noop)
        fn.rload(0).getfield(box, "v")
        fn.emit("iadd").iret()
        func = build_hir(fn.finish())
        optimize(func)
        loads = [i for i in func.all_insts() if i.op == "getfield"]
        assert len(loads) == 2

    def test_dead_code_eliminated(self):
        p, app, box = simple_program()
        fn = Fn(p, app, "d", returns="int")
        fn.iconst(1).iconst(2).emit("iadd").emit("pop")  # dead computation
        fn.iconst(9).iret()
        func = build_hir(fn.finish())
        stats = optimize(func)
        assert stats["dce"] >= 1


class TestLowering:
    def test_sequentialize_simple(self):
        assert sequentialize_moves([(1, 2)], scratch=9) == [(1, 2)]

    def test_sequentialize_drops_self_moves(self):
        assert sequentialize_moves([(1, 1)], scratch=9) == []

    def test_sequentialize_chain_ordering(self):
        # 0<-1, 1<-2 must move 0<-1 first.
        out = sequentialize_moves([(1, 2), (0, 1)], scratch=9)
        assert out.index((0, 1)) < out.index((1, 2))

    def test_sequentialize_swap_uses_scratch(self):
        out = sequentialize_moves([(0, 1), (1, 0)], scratch=9)
        assert (9, 1) in out or (9, 0) in out
        # Simulate to verify correctness.
        regs = {0: "a", 1: "b", 9: None}
        for d, s in out:
            regs[d] = regs[s]
        assert regs[0] == "b" and regs[1] == "a"

    def test_opt_code_has_no_frame_traffic(self):
        p, app, box = simple_program()
        m = field_chase_method(p, app, box)
        cm = compile_opt(m)
        assert cm.level == LEVEL_OPT
        assert cm.frame_words == 0
        ops = [inst.op for inst in cm.code]
        assert M_LDF not in ops and M_STF not in ops

    def test_opt_code_smaller_than_baseline(self):
        p, app, box = simple_program()
        m = field_chase_method(p, app, box)
        assert len(compile_opt(m).code) < len(compile_baseline(m).code)

    def test_ir_map_populated_for_opt_code(self):
        p, app, box = simple_program()
        m = field_chase_method(p, app, box)
        cm = compile_opt(m)
        assert all(ir_id is not None for ir_id in cm.ir_map)


class TestLiveness:
    def test_uses_defs_for_astore_value_register(self):
        from repro.hw.isa import M_ASTORE, MInst
        uses, defs = uses_defs(MInst(M_ASTORE, rd=3, rs1=1, rs2=2, aux="int"))
        assert 3 in uses and not defs

    def test_live_in_of_straightline(self):
        from repro.hw.isa import M_ALU, M_MOVI, M_RET, MInst
        code = [
            MInst(M_MOVI, rd=0, imm=1),
            MInst(M_MOVI, rd=1, imm=2),
            MInst(M_ALU, rd=2, rs1=0, rs2=1, aux="add"),
            MInst(M_RET, rs1=2),
        ]
        live_in = compute_liveness(code)
        assert live_in[2] == 0b011  # r0, r1 live before the add
        assert live_in[3] == 0b100  # r2 live before the ret

    def test_gc_map_excludes_result_register(self):
        p, app, box = simple_program()
        fn = Fn(p, app, "m", args=["ref"], returns="ref")
        keep = fn.local()
        fn.rload(0).rstore(keep)
        fn.new(box).rstore(fn.local())
        fn.rload(keep).rret()
        cm = compile_opt(fn.finish())
        new_pc = next(pc for pc, inst in enumerate(cm.code)
                      if inst.op == M_NEW)
        roots = cm.gc_maps[new_pc]
        new_rd = cm.code[new_pc].rd
        assert ("r", new_rd) not in roots

    def test_gc_map_keeps_live_ref_across_allocation(self):
        p, app, box = simple_program()
        fn = Fn(p, app, "m", args=["ref"], returns="ref")
        tmp = fn.local()
        fn.new(box).rstore(tmp)       # allocation with arg 0 still live
        fn.rload(0).rret()            # arg 0 used afterwards
        cm = compile_opt(fn.finish())
        new_pc = next(pc for pc, inst in enumerate(cm.code)
                      if inst.op == M_NEW)
        assert ("r", 0) in cm.gc_maps[new_pc]

    def test_call_arguments_live_during_call(self):
        p, app, box = simple_program()
        callee = Fn(p, app, "id", args=["ref"], returns="ref")
        callee.rload(0).rret()
        ident = callee.finish()
        fn = Fn(p, app, "m", args=["ref"], returns="ref")
        fn.rload(0).call(ident).rret()
        # inline=False: the point is the *call's* GC map.
        cm = compile_opt(fn.finish(), inline=False)
        call_pc = next(pc for pc, inst in enumerate(cm.code)
                       if inst.op == M_CALL)
        arg_regs = cm.code[call_pc].imm
        for reg in arg_regs:
            assert ("r", reg) in cm.gc_maps[call_pc]
