"""Tests for the workload DSL, the benchmark suite, and the harness."""

import pytest

from tests.helpers import BASELINE_ONLY, int_main, run_main
from repro.core.config import GCConfig, SystemConfig, scaled_interval
from repro.harness.runner import INTERVAL_NAMES, RunSpec, clear_cache, measure
from repro.vm.program import Program
from repro.workloads import suite
from repro.workloads.synth import Fn, define_string_factory, local_ref
from repro.workloads.patterns import (
    add_filler_methods,
    define_pair_classes,
    define_pair_factory,
    make_app_class,
)


class TestSynthDSL:
    def test_loop_with_local_ref_limit(self):
        def body(fn, app):
            limit = fn.local()
            acc = fn.local()
            fn.iconst(7).istore(limit)
            fn.iconst(0).istore(acc)
            with fn.loop(local_ref(limit)):
                fn.iload(acc).iconst(1).emit("iadd").istore(acc)
            fn.iload(acc)
        assert int_main(body) == 7

    def test_loop_with_step(self):
        def body(fn, app):
            acc = fn.local()
            fn.iconst(0).istore(acc)
            with fn.loop(10, start=0, step=2):
                fn.iload(acc).iconst(1).emit("iadd").istore(acc)
            fn.iload(acc)
        assert int_main(body) == 5

    def test_string_factory_builds_correct_string(self):
        p = Program("t")
        app = p.define_class("App")
        app.add_static("out", "int")
        app.seal()
        make = define_string_factory(p)
        fn = Fn(p, app, "main")
        s = fn.local()
        fn.iconst(10).iconst(5).call(make).rstore(s)
        # out = s.count * 1000 + s.value[3]
        fn.rload(s).getfield(p.string_class, "count")
        fn.iconst(1000).emit("imul")
        fn.rload(s).getfield(p.string_class, "value")
        fn.iconst(3).emit("arrload", "char")
        fn.emit("iadd").putstatic(app, "out")
        fn.ret()
        p.set_main(fn.finish())
        run_main(p)
        # count == 10; value[3] == (5 + 3) & 0xff == 8.
        assert app.static_values[0] == 10_008

    def test_fresh_labels_unique(self):
        p = Program("t")
        app = p.define_class("App")
        app.seal()
        fn = Fn(p, app, "m")
        assert fn.fresh_label() != fn.fresh_label()


class TestPatterns:
    def test_pair_factory_variable_payload_span(self):
        p = Program("t")
        app = make_app_class(p)
        parent = define_pair_classes(p, "Rec")
        make = define_pair_factory(p, app, parent, payload_len=8,
                                   payload_span=16)
        fn = Fn(p, app, "main")
        r = fn.local()
        fn.iconst(3).call(make).rstore(r)
        fn.rload(r).getfield(parent, "data").emit("arraylength")
        fn.putstatic(app, "checksum")
        fn.ret()
        p.set_main(fn.finish())
        run_main(p)
        length = app.static_values[app.static("checksum").index]
        assert 8 <= length < 24

    def test_filler_methods_compile_and_run(self):
        p = Program("t")
        app = make_app_class(p)
        fillers = add_filler_methods(p, app, 5)
        assert len(fillers) == 5
        fn = Fn(p, app, "main")
        for k, m in enumerate(fillers):
            fn.iconst(k).call(m).emit("pop")
        fn.ret()
        p.set_main(fn.finish())
        result = run_main(p)
        assert result.instructions > 0

    def test_filler_methods_contain_gc_points(self):
        from repro.hw.isa import GC_POINT_OPS
        from repro.jit.baseline import compile_baseline
        p = Program("t")
        app = make_app_class(p)
        (filler,) = add_filler_methods(p, app, 1)
        cm = compile_baseline(filler)
        assert any(inst.op in GC_POINT_OPS for inst in cm.code)


class TestSuite:
    def test_table1_composition(self):
        names = suite.all_names()
        assert len(names) == 16
        assert set(suite.JVM98_NAMES) < set(names)
        assert set(suite.DACAPO_NAMES) < set(names)
        assert "pseudojbb" in names

    def test_build_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            suite.build("chart")

    def test_builders_produce_fresh_programs(self):
        a = suite.build("fop")
        b = suite.build("fop")
        assert a.program is not b.program

    @pytest.mark.parametrize("name", suite.all_names())
    def test_workload_wellformed(self, name):
        w = suite.build(name)
        assert w.program.main is not None
        assert w.min_heap_bytes >= 256 * 1024
        assert len(w.plan) >= 1
        # Every plan method exists in the program.
        qnames = {m.qualified_name for m in w.program.all_methods()}
        for planned in w.plan.opt_methods:
            assert planned in qnames, planned

    def test_small_benchmark_runs_end_to_end(self):
        w = suite.build("fop")
        cfg = SystemConfig(gc=GCConfig(heap_bytes=w.min_heap_bytes))
        from repro.vm.vmcore import run_program
        result = run_program(w.program, cfg, compilation_plan=w.plan)
        assert result.instructions > 10_000
        assert result.gc_stats.alloc_objects > 100

    def test_no_candidate_benchmarks_allocate_no_pairs(self):
        for name in suite.NO_CANDIDATE_NAMES:
            w = suite.build(name)
            assert w.no_candidates


class TestHarness:
    def test_scaled_intervals(self):
        assert scaled_interval("25K") == 250
        assert scaled_interval("100K") == 1000
        with pytest.raises(KeyError):
            scaled_interval("1M")

    def test_runspec_to_config(self):
        spec = RunSpec(benchmark="db", heap_mult=2.0, coalloc=True,
                       interval="50K", gc_plan="gencopy")
        cfg = spec.system_config(min_heap_bytes=1000)
        assert cfg.gc.heap_bytes == 2000
        assert cfg.coalloc is True
        assert cfg.sampling_interval == 500
        assert cfg.gc_plan == "gencopy"

    def test_auto_interval_maps_to_none(self):
        cfg = RunSpec(benchmark="db").system_config(1000)
        assert cfg.sampling_interval is None

    def test_unknown_interval_rejected(self):
        from repro.harness.runner import execute
        with pytest.raises(ValueError, match="unknown interval"):
            execute(RunSpec(benchmark="fop", interval="7K"))

    def test_measure_memoizes(self):
        clear_cache()
        spec = RunSpec(benchmark="fop", heap_mult=2.0)
        first = measure(spec)
        second = measure(spec)
        assert first is second
        clear_cache()

    def test_interval_names_cover_paper(self):
        assert set(INTERVAL_NAMES) == {"25K", "50K", "100K", "auto"}
