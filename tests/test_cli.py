"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import _benchmark_list, main


class TestArgumentHandling:
    def test_benchmark_list_parsing(self):
        assert _benchmark_list("db,compress") == ["db", "compress"]
        assert _benchmark_list("") is None
        assert _benchmark_list(None) is None

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            _benchmark_list("db,eclipse")

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_run_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "eclipse"])


class TestCommands:
    def test_list(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "db" in out and "pseudojbb" in out
        assert len(out.strip().splitlines()) == 16

    def test_table1(self, capsys):
        main(["table1"])
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "DaCapo" in out

    def test_run_small_benchmark(self, capsys):
        main(["run", "fop", "--no-monitoring", "--heap-mult", "2"])
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "GC" in out

    def test_run_with_gencopy(self, capsys):
        main(["run", "fop", "--no-monitoring", "--gc-plan", "gencopy"])
        out = capsys.readouterr().out
        assert "cycles" in out

    def test_fig4_subset(self, capsys):
        main(["fig4", "--benchmarks", "fop"])
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "fop" in out
