"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import _benchmark_list, main


class TestArgumentHandling:
    def test_benchmark_list_parsing(self):
        assert _benchmark_list("db,compress") == ["db", "compress"]
        assert _benchmark_list("") is None
        assert _benchmark_list(None) is None

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            _benchmark_list("db,eclipse")

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_run_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "eclipse"])


class TestCommands:
    def test_list(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "db" in out and "pseudojbb" in out
        assert len(out.strip().splitlines()) == 16

    def test_table1(self, capsys):
        main(["table1"])
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "DaCapo" in out

    def test_run_small_benchmark(self, capsys):
        main(["run", "fop", "--no-monitoring", "--heap-mult", "2"])
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "GC" in out

    def test_run_with_gencopy(self, capsys):
        main(["run", "fop", "--no-monitoring", "--gc-plan", "gencopy"])
        out = capsys.readouterr().out
        assert "cycles" in out

    def test_fig4_subset(self, capsys):
        main(["fig4", "--benchmarks", "fop"])
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "fop" in out


class TestObservability:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.strip() != "repro"

    def test_no_monitoring_prints_disabled(self, capsys):
        main(["run", "fop", "--no-monitoring", "--heap-mult", "2"])
        out = capsys.readouterr().out
        assert "monitoring           : disabled" in out

    def test_run_trace_writes_chrome_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.json"
        main(["run", "fop", "--heap-mult", "2", "--trace", str(path)])
        out = capsys.readouterr().out
        assert "trace                :" in out
        doc = json.loads(path.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "X" in phases and "M" in phases
        assert doc["otherData"]["clock"] == "simulated cycles"

    def test_run_trace_jsonl(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.jsonl"
        main(["run", "fop", "--heap-mult", "2", "--trace", str(path)])
        capsys.readouterr()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[-1]["type"] == "metrics"

    def test_run_metrics_flag(self, capsys):
        main(["run", "fop", "--heap-mult", "2", "--metrics"])
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "gauge vm.cycles" in out

    def test_timeline_command(self, capsys):
        main(["timeline", "fop", "--heap-mult", "2", "--width", "40"])
        out = capsys.readouterr().out
        assert "timeline:" in out
        assert "cycles/column" in out
