"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import _benchmark_list, main


class TestArgumentHandling:
    def test_benchmark_list_parsing(self):
        assert _benchmark_list("db,compress") == ["db", "compress"]
        assert _benchmark_list("") is None
        assert _benchmark_list(None) is None

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            _benchmark_list("db,eclipse")

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_run_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "eclipse"])


class TestCommands:
    def test_list(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "db" in out and "pseudojbb" in out
        assert len(out.strip().splitlines()) == 16

    def test_table1(self, capsys):
        main(["table1"])
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "DaCapo" in out

    def test_run_small_benchmark(self, capsys):
        main(["run", "fop", "--no-monitoring", "--heap-mult", "2"])
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "GC" in out

    def test_run_with_gencopy(self, capsys):
        main(["run", "fop", "--no-monitoring", "--gc-plan", "gencopy"])
        out = capsys.readouterr().out
        assert "cycles" in out

    def test_fig4_subset(self, capsys):
        main(["fig4", "--benchmarks", "fop"])
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "fop" in out


class TestObservability:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.strip() != "repro"

    def test_no_monitoring_prints_disabled(self, capsys):
        main(["run", "fop", "--no-monitoring", "--heap-mult", "2"])
        out = capsys.readouterr().out
        assert "monitoring           : disabled" in out

    def test_run_trace_writes_chrome_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.json"
        main(["run", "fop", "--heap-mult", "2", "--trace", str(path)])
        out = capsys.readouterr().out
        assert "trace                :" in out
        doc = json.loads(path.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "X" in phases and "M" in phases
        assert doc["otherData"]["clock"] == "simulated cycles"

    def test_run_trace_jsonl(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.jsonl"
        main(["run", "fop", "--heap-mult", "2", "--trace", str(path)])
        capsys.readouterr()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[-1]["type"] == "metrics"

    def test_run_metrics_flag(self, capsys):
        main(["run", "fop", "--heap-mult", "2", "--metrics"])
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "gauge vm.cycles" in out

    def test_timeline_command(self, capsys):
        main(["timeline", "fop", "--heap-mult", "2", "--width", "40"])
        out = capsys.readouterr().out
        assert "timeline:" in out
        assert "cycles/column" in out

    def test_timeline_from_exported_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        main(["run", "fop", "--heap-mult", "2", "--trace", str(trace)])
        capsys.readouterr()
        main(["timeline", "fop", "--from", str(trace), "--width", "40"])
        out = capsys.readouterr().out
        assert "cycles/column" in out

    def test_timeline_from_missing_trace(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["timeline", "fop", "--from", "no/such/trace.json"])
        assert "no trace at" in str(exc.value)

    def test_timeline_from_invalid_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{truncated")
        with pytest.raises(SystemExit) as exc:
            main(["timeline", "fop", "--from", str(bad)])
        assert "not an exported trace" in str(exc.value)

    def test_timeline_from_wrong_shape_json(self, tmp_path):
        # Well-formed JSON that is not a trace document: a bare list
        # (used to escape as an AttributeError traceback).
        bad = tmp_path / "list.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(SystemExit) as exc:
            main(["timeline", "fop", "--from", str(bad)])
        assert "not an exported trace" in str(exc.value)

    def test_timeline_from_malformed_jsonl(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span"}\nnot json at all\n')
        with pytest.raises(SystemExit) as exc:
            main(["timeline", "fop", "--from", str(bad)])
        assert "not an exported trace" in str(exc.value)

    def test_timeline_from_empty_trace(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text("")
        main(["timeline", "fop", "--from", str(empty)])
        out = capsys.readouterr().out
        assert "no spans" in out

    def test_run_prom_export(self, tmp_path, capsys):
        path = tmp_path / "run.prom"
        main(["run", "fop", "--heap-mult", "2", "--prom", str(path)])
        out = capsys.readouterr().out
        assert "prometheus" in out
        text = path.read_text()
        assert text.startswith("# HELP repro_")
        assert "# TYPE repro_vm_cycles gauge" in text
        assert text.endswith("\n")

    def test_cache_stats_without_cache_dir(self, tmp_path, capsys,
                                           monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "absent"))
        monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
        main(["cache", "stats"])  # regression: used to KeyError/stack
        out = capsys.readouterr().out
        assert "nothing cached yet" in out

    def test_cache_stats_json_without_cache_dir(self, tmp_path, capsys,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "absent"))
        monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
        main(["cache", "stats", "--json"])
        assert capsys.readouterr().out.strip() == "{}"

    @pytest.fixture()
    def warm_cache(self, tmp_path, monkeypatch):
        """A cache dir with one current and one stale-version entry."""
        from repro.harness import runner
        from repro.harness.diskcache import DiskCache
        from repro.harness.runner import RunSpec

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
        spec = RunSpec(benchmark="fop", heap_mult=2.0, monitoring=False)
        record = runner.record_for(spec)
        DiskCache(root=str(tmp_path)).put(spec, record)
        DiskCache(root=str(tmp_path), version="v-old").put(spec, record)
        return str(tmp_path)

    def test_cache_stats_json_is_machine_readable(self, warm_cache,
                                                  capsys):
        import json

        main(["cache", "stats", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["entries"] == 1
        assert doc["stale_entries"] == 1
        assert doc["records"]["entries"] == 1
        assert doc["root"] == warm_cache

    def test_cache_prune_dry_run_is_read_only(self, warm_cache, capsys):
        import json

        main(["cache", "prune", "--dry-run"])
        out = capsys.readouterr().out
        assert "would prune 1 stale-version" in out
        assert "would remain" in out
        main(["cache", "stats", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["stale_entries"] == 1, "dry run deleted nothing"
        main(["cache", "prune"])
        out = capsys.readouterr().out
        assert "pruned 1 stale-version" in out
        main(["cache", "stats", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["stale_entries"] == 0 and doc["entries"] == 1


class TestAuditAndDiff:
    def test_audit_text_and_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "audit.json"
        main(["audit", "fop", "--intervals", "25K", "--json", str(path)])
        out = capsys.readouterr().out
        assert "fidelity audit: fop" in out
        assert "m.overlap" in out
        doc = json.loads(path.read_text())
        assert doc["schema"] >= 1
        assert doc["benchmark"] == "fop"
        assert len(doc["intervals"]) == 1
        assert doc["intervals"][0]["fidelity"] >= 0.8

    def test_audit_rejects_unknown_interval(self):
        with pytest.raises(SystemExit) as exc:
            main(["audit", "fop", "--intervals", "13K"])
        assert "unknown interval" in str(exc.value)

    @pytest.fixture()
    def record_pair(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        main(["run", "fop", "--heap-mult", "2", "--record", str(a)])
        main(["run", "fop", "--heap-mult", "2", "--seed", "2",
              "--record", str(b)])
        capsys.readouterr()
        return str(a), str(b)

    def test_diff_identical_records_exit_zero(self, record_pair, capsys):
        a, _b = record_pair
        main(["diff", a, a])  # no SystemExit: clean diff
        out = capsys.readouterr().out
        assert "0 significant" in out
        assert "are identical" in out

    def test_diff_different_seeds_exit_one(self, record_pair, capsys):
        a, b = record_pair
        with pytest.raises(SystemExit) as exc:
            main(["diff", a, b])
        assert exc.value.code == 1
        out = capsys.readouterr().out
        assert "! provenance.seed" in out
        assert "seed=1" in out and "seed=2" in out

    def test_diff_missing_file(self, record_pair):
        a, _b = record_pair
        with pytest.raises(SystemExit) as exc:
            main(["diff", a, "no/such/record.json"])
        assert "cannot read" in str(exc.value)

    def test_diff_non_record_json(self, tmp_path, record_pair):
        a, _b = record_pair
        junk = tmp_path / "junk.json"
        junk.write_text('{"surprise": true}')
        with pytest.raises(SystemExit) as exc:
            main(["diff", a, str(junk)])
        assert "not an exported run record" in str(exc.value)

    def test_figure_driver_accepts_progress_flags(self, tmp_path, capsys):
        from repro.harness import runner

        runner.clear_cache()  # force real jobs, not memo hits
        log = tmp_path / "events.jsonl"
        main(["fig4", "--benchmarks", "fop", "--jobs", "1",
              "--progress", "--progress-log", str(log)])
        captured = capsys.readouterr()
        assert "Figure 4" in captured.out
        assert "[engine]" in captured.err
        import json

        docs = [json.loads(line)
                for line in log.read_text().splitlines()]
        assert docs and all(d["type"] == "job" for d in docs)
        assert {"queued", "started", "finished"} <= {d["kind"]
                                                     for d in docs}


class TestExplainCli:
    @pytest.fixture()
    def record_with_lineage(self, tmp_path, capsys):
        path = tmp_path / "rec.json"
        main(["run", "fop", "--heap-mult", "2", "--coalloc",
              "--record", str(path)])
        capsys.readouterr()
        return str(path)

    def test_explain_fresh_run(self, capsys):
        main(["explain", "fop", "--heap-mult", "2", "--coalloc"])
        out = capsys.readouterr().out
        assert "lineage:" in out
        assert "justification chain for #" in out

    def test_explain_from_record(self, record_with_lineage, tmp_path,
                                 capsys):
        out_json = tmp_path / "lineage.json"
        out_dot = tmp_path / "lineage.dot"
        main(["explain", "fop", "--from", record_with_lineage,
              "--json", str(out_json), "--dot", str(out_dot)])
        out = capsys.readouterr().out
        assert "justification chain for #" in out
        import json

        doc = json.loads(out_json.read_text())
        assert doc["problems"] == []
        assert doc["target"] in doc["chain"]
        ids = {e["id"] for e in doc["lineage"]["entries"]}
        assert all(p in ids for e in doc["lineage"]["entries"]
                   for p in e["parents"])
        assert out_dot.read_text().startswith("digraph lineage {")

    def test_explain_record_without_lineage(self, tmp_path, capsys):
        # Legacy-shaped record: strip the lineage field.
        import json

        path = tmp_path / "rec.json"
        main(["run", "fop", "--heap-mult", "2", "--record", str(path)])
        capsys.readouterr()
        doc = json.loads(path.read_text())
        doc["lineage"] = None
        path.write_text(json.dumps(doc))
        with pytest.raises(SystemExit) as exc:
            main(["explain", "fop", "--from", str(path)])
        assert "carries no lineage" in str(exc.value)

    def test_explain_missing_record(self):
        with pytest.raises(SystemExit) as exc:
            main(["explain", "fop", "--from", "no/such/rec.json"])
        assert "cannot read" in str(exc.value)

    def test_explain_non_record_json(self, tmp_path):
        junk = tmp_path / "junk.json"
        junk.write_text("[]")
        with pytest.raises(SystemExit) as exc:
            main(["explain", "fop", "--from", str(junk)])
        assert "not an exported run record" in str(exc.value)

    def test_explain_unmatched_selector(self, record_with_lineage):
        with pytest.raises(SystemExit) as exc:
            main(["explain", "fop", "--from", record_with_lineage,
                  "--revert", "7"])
        assert "no decision matches revert #7" in str(exc.value)

    def test_doctor_fresh_run(self, tmp_path, capsys):
        import json

        path = tmp_path / "doctor.json"
        main(["doctor", "fop", "--heap-mult", "2", "--json", str(path)])
        out = capsys.readouterr().out
        assert "doctor: fop — verdict" in out
        assert "phase  periods" in out
        doc = json.loads(path.read_text())
        assert {"benchmark", "verdict", "report", "storm", "problems",
                "chains"} <= set(doc)
        assert doc["benchmark"] == "fop"
        assert doc["problems"] == []
        assert doc["report"]["schema"] >= 1
        assert doc["report"]["phases"], "at least one phase segmented"
        assert doc["storm"] is None

    def test_doctor_from_record(self, record_with_lineage, capsys):
        main(["doctor", "fop", "--from", record_with_lineage])
        out = capsys.readouterr().out
        assert "doctor: fop — verdict" in out
        assert "phase  periods" in out

    def test_doctor_record_without_health(self, tmp_path, capsys):
        import json

        path = tmp_path / "rec.json"
        main(["run", "fop", "--heap-mult", "2", "--record", str(path)])
        capsys.readouterr()
        doc = json.loads(path.read_text())
        doc["health"] = None
        path.write_text(json.dumps(doc))
        with pytest.raises(SystemExit) as exc:
            main(["doctor", "fop", "--from", str(path)])
        assert "carries no health report" in str(exc.value)

    def test_doctor_missing_record(self):
        with pytest.raises(SystemExit) as exc:
            main(["doctor", "fop", "--from", "no/such/rec.json"])
        assert "cannot read" in str(exc.value)

    def test_doctor_non_record_json(self, tmp_path):
        junk = tmp_path / "junk.json"
        junk.write_text("[]")
        with pytest.raises(SystemExit) as exc:
            main(["doctor", "fop", "--from", str(junk)])
        assert "not an exported run record" in str(exc.value)

    def test_timeline_phases_overlay(self, capsys):
        main(["timeline", "fop", "--heap-mult", "2", "--phases",
              "--width", "40"])
        out = capsys.readouterr().out
        assert "cycles/column" in out
        assert "phases" in out and "phase(s)" in out
        assert "phase  periods" in out

    def test_timeline_phases_rejects_from(self, tmp_path):
        trace = tmp_path / "trace.json"
        trace.write_text("{}")
        with pytest.raises(SystemExit) as exc:
            main(["timeline", "fop", "--from", str(trace), "--phases"])
        assert "--phases needs a live run" in str(exc.value)

    def test_explain_field_selector(self, record_with_lineage, capsys):
        # Pick any decision field present in the record, then ask for it.
        import json

        from repro.lineage.ledger import DECISION_KINDS

        doc = json.loads(open(record_with_lineage).read())["lineage"]
        fields = [e["field"] for e in doc["entries"]
                  if e["kind"] in DECISION_KINDS and e.get("field")]
        if not fields:
            pytest.skip("record has no field-bearing decision")
        main(["explain", "fop", "--from", record_with_lineage,
              "--field", fields[-1]])
        out = capsys.readouterr().out
        assert fields[-1] in out
