"""Tests for the disassembler/listing utilities."""

from repro.core.interest import analyze_compiled_method
from repro.jit.baseline import compile_baseline
from repro.jit.disasm import (
    format_bytecode,
    format_compiled_method,
    format_machine_code,
)
from repro.jit.opt import compile_opt
from repro.vm.program import Program
from repro.workloads.synth import Fn


def chase():
    p = Program("t")
    app = p.define_class("App")
    app.seal()
    a = p.define_class("A")
    a.add_field("y", "ref")
    a.add_field("i", "int")
    a.seal()
    fn = Fn(p, app, "foo", args=["ref"], returns="int")
    fn.rload(0).getfield(a, "y").getfield(a, "i").iret()
    return fn.finish()


class TestFormatBytecode:
    def test_lists_every_instruction(self):
        m = chase()
        text = format_bytecode(m)
        assert text.count("\n") == len(m.code)
        assert "getfield" in text
        assert "A::y" in text

    def test_branches_marked(self):
        p = Program("t")
        app = p.define_class("App")
        app.seal()
        fn = Fn(p, app, "m", returns="int")
        with fn.loop(3):
            pass
        fn.iconst(0).iret()
        text = format_bytecode(fn.finish())
        assert "->" in text


class TestFormatMachineCode:
    def test_eips_and_maps_shown(self):
        m = chase()
        cm = compile_opt(m)
        cm.code_addr = 0x0800_0000
        interest = analyze_compiled_method(cm)
        text = format_machine_code(cm, interest)
        assert "0x0800000" in text
        assert "[interest -> A::y]" in text
        assert text.count("\n") == len(cm.code)

    def test_gc_maps_annotated(self):
        p = Program("t")
        app = p.define_class("App")
        app.seal()
        box = p.define_class("Box")
        box.seal()
        fn = Fn(p, app, "mk", args=["ref"], returns="ref")
        fn.new(box).rret()
        cm = compile_opt(fn.finish())
        cm.code_addr = 0x0800_0000
        assert "[gc:" in format_machine_code(cm)

    def test_baseline_listing(self):
        cm = compile_baseline(chase())
        cm.code_addr = 0x0800_0000
        text = format_machine_code(cm)
        assert "baseline code" in text
        assert "ldf" in text

    def test_full_listing_combines_levels(self):
        cm = compile_opt(chase())
        cm.code_addr = 0x0800_0000
        text = format_compiled_method(cm)
        assert "bytecode of" in text
        assert "opt code of" in text
