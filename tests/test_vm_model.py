"""Tests for the class/field/method model and runtime objects."""

import pytest

from repro.vm.model import (
    ARRAY_HEADER_BYTES,
    HEADER_BYTES,
    ClassInfo,
    MethodInfo,
    array_bytes,
    element_offset,
)
from repro.vm.objects import (
    SPACE_MATURE,
    SPACE_NURSERY,
    HeapArray,
    HeapObject,
    is_adjacent,
    same_cache_line,
)
from repro.vm.program import Program


class TestFieldLayout:
    def test_header_is_8_bytes(self):
        k = ClassInfo("Empty").seal()
        assert k.instance_bytes == HEADER_BYTES

    def test_int_field_offsets(self):
        k = ClassInfo("A")
        f1 = k.add_field("x", "int")
        f2 = k.add_field("y", "int")
        k.seal()
        assert f1.offset == 8
        assert f2.offset == 12
        assert k.instance_bytes == 16

    def test_char_fields_pack(self):
        k = ClassInfo("C")
        a = k.add_field("a", "char")
        b = k.add_field("b", "char")
        k.seal()
        assert a.offset == 8
        assert b.offset == 10
        assert k.instance_bytes == 12

    def test_alignment_after_char(self):
        k = ClassInfo("D")
        k.add_field("c", "char")
        f = k.add_field("r", "ref")
        k.seal()
        assert f.offset == 12  # aligned to 4

    def test_long_field_size(self):
        k = ClassInfo("L")
        f = k.add_field("v", "long")
        k.seal()
        assert f.size == 8
        assert k.instance_bytes == 16

    def test_inherited_fields_keep_offsets(self):
        base = ClassInfo("Base")
        fx = base.add_field("x", "int")
        base.seal()
        sub = ClassInfo("Sub", base)
        fy = sub.add_field("y", "int")
        sub.seal()
        assert sub.field("x") is fx
        assert fy.offset == fx.offset + 4

    def test_duplicate_field_rejected(self):
        k = ClassInfo("A")
        k.add_field("x", "int")
        with pytest.raises(ValueError):
            k.add_field("x", "int")

    def test_sealed_class_rejects_fields(self):
        k = ClassInfo("A").seal()
        with pytest.raises(RuntimeError):
            k.add_field("x", "int")

    def test_unknown_kind_rejected(self):
        k = ClassInfo("A")
        with pytest.raises(ValueError):
            k.add_field("x", "float128")

    def test_qualified_name(self):
        k = ClassInfo("String")
        f = k.add_field("value", "ref")
        assert f.qualified_name == "String::value"

    def test_ref_fields_listing(self):
        k = ClassInfo("A")
        k.add_field("i", "int")
        k.add_field("r", "ref")
        k.add_field("s", "ref")
        k.seal()
        assert [f.name for f in k.ref_fields()] == ["r", "s"]


class TestVtable:
    def make_method(self, klass, name):
        return MethodInfo(name, klass, is_static=False, arg_kinds=["ref"],
                          return_kind="void", max_locals=1, code=[])

    def test_vtable_slot_assignment(self):
        k = ClassInfo("A")
        m = self.make_method(k, "foo")
        k.add_method(m)
        assert m.vtable_slot == 0
        assert k.vtable[0] is m

    def test_override_reuses_slot(self):
        base = ClassInfo("Base")
        m1 = self.make_method(base, "foo")
        base.add_method(m1)
        base.seal()
        sub = ClassInfo("Sub", base)
        m2 = self.make_method(sub, "foo")
        sub.add_method(m2)
        assert m2.vtable_slot == m1.vtable_slot == 0
        assert sub.vtable[0] is m2
        assert base.vtable[0] is m1

    def test_method_lookup_follows_superclass(self):
        base = ClassInfo("Base")
        m = self.make_method(base, "foo")
        base.add_method(m)
        sub = ClassInfo("Sub", base)
        assert sub.method("foo") is m

    def test_is_subclass_of(self):
        base = ClassInfo("Base")
        sub = ClassInfo("Sub", base)
        assert sub.is_subclass_of(base)
        assert not base.is_subclass_of(sub)


class TestArrays:
    def test_array_bytes(self):
        assert array_bytes("int", 4) == ARRAY_HEADER_BYTES + 16
        assert array_bytes("char", 3) == 20  # 12 + 6, aligned to 4
        assert array_bytes("ref", 0) == ARRAY_HEADER_BYTES

    def test_element_offset(self):
        assert element_offset("int", 0) == 12
        assert element_offset("char", 2) == 16
        assert element_offset("long", 1) == 20

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            array_bytes("int", -1)


class TestHeapObjects:
    def test_object_slots_default_values(self):
        k = ClassInfo("A")
        k.add_field("i", "int")
        k.add_field("r", "ref")
        k.seal()
        obj = HeapObject(k)
        assert obj.read(0) == 0
        assert obj.read(1) is None

    def test_object_read_write(self):
        k = ClassInfo("A")
        k.add_field("i", "int")
        k.seal()
        obj = HeapObject(k)
        obj.write(0, 42)
        assert obj.read(0) == 42

    def test_ref_children(self):
        k = ClassInfo("A")
        k.add_field("i", "int")
        k.add_field("r", "ref")
        k.seal()
        parent, child = HeapObject(k), HeapObject(k)
        parent.write(1, child)
        children = list(parent.ref_children())
        assert children == [(k.field("r"), child)]

    def test_array_defaults(self):
        arr = HeapArray("ref", 3)
        assert arr.read(0) is None
        arr2 = HeapArray("int", 3)
        assert arr2.read(0) == 0

    def test_array_element_address(self):
        arr = HeapArray("char", 10, address=0x1000)
        assert arr.element_address(0) == 0x100C
        assert arr.element_address(4) == 0x1014

    def test_array_ref_children(self):
        arr = HeapArray("ref", 3)
        k = ClassInfo("A").seal()
        obj = HeapObject(k)
        arr.write(1, obj)
        assert list(arr.ref_children()) == [(1, obj)]

    def test_same_cache_line(self):
        k = ClassInfo("A").seal()
        a = HeapObject(k, address=0x1000)
        b = HeapObject(k, address=0x1008)
        c = HeapObject(k, address=0x1080)
        assert same_cache_line(a, b)
        assert not same_cache_line(a, c)

    def test_is_adjacent(self):
        k = ClassInfo("A")
        k.add_field("x", "int")
        k.seal()  # 12 bytes
        a = HeapObject(k, address=0x1000)
        b = HeapObject(k, address=0x1000 + k.instance_bytes)
        assert is_adjacent(a, b)

    def test_space_tagging(self):
        k = ClassInfo("A").seal()
        obj = HeapObject(k, space=SPACE_NURSERY)
        obj.space = SPACE_MATURE
        assert obj.space == SPACE_MATURE


class TestProgram:
    def test_prelude_classes(self):
        p = Program("t")
        assert "Object" in p.classes
        s = p.klass("String")
        assert s.field("value").is_ref
        assert s.field("value").offset == 8

    def test_string_char_pair_fits_one_line(self):
        # The db case study depends on String + small char[] fitting a
        # 128-byte cache line when co-allocated.
        p = Program("t")
        string_bytes = p.string_class.instance_bytes
        assert string_bytes + array_bytes("char", 16) <= 128

    def test_duplicate_class_rejected(self):
        p = Program("t")
        p.define_class("A")
        with pytest.raises(ValueError):
            p.define_class("A")

    def test_static_roots(self):
        p = Program("t")
        k = p.define_class("G")
        k.add_static("data", "ref")
        k.add_static("count", "int")
        k.seal()
        roots = list(p.static_roots())
        assert len(roots) == 1
        assert roots[0][1].name == "data"
