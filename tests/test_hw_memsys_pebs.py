"""Tests for the memory system and the PEBS sampling unit."""

import random

import pytest

from repro.core.config import MachineConfig, PEBSConfig
from repro.hw.memsys import MemorySystem
from repro.hw.pebs import PEBSUnit, Sample


def make_memsys():
    return MemorySystem(MachineConfig())


class TestMemorySystem:
    def test_cold_access_pays_full_latency(self):
        ms = make_memsys()
        cfg = ms.config
        latency = ms.access(0x100000, False, eip=0)
        expected = (cfg.tlb.miss_penalty + cfg.l1.hit_latency
                    + cfg.l2.hit_latency + cfg.memory_latency)
        assert latency == expected

    def test_warm_access_pays_l1_latency(self):
        ms = make_memsys()
        ms.access(0x100000, False, eip=0)
        assert ms.access(0x100000, False, eip=0) == ms.config.l1.hit_latency

    def test_l2_hit_latency(self):
        ms = make_memsys()
        ms.access(0x100000, False, eip=0)
        # Evict from L1 (16 sets, 8 ways): touch 8 more lines in the same set.
        # L1 set stride = 16 sets * 128B = 2048B.
        for i in range(1, 9):
            ms.access(0x100000 + i * 2048, False, eip=0)
        latency = ms.access(0x100000, False, eip=0)
        assert latency == ms.config.l1.hit_latency + ms.config.l2.hit_latency

    def test_counters(self):
        ms = make_memsys()
        ms.access(0x100000, False, eip=0)
        ms.access(0x100000, True, eip=0)
        counts = ms.sync_counters().counts
        assert counts["LOADS"] == 1
        assert counts["STORES"] == 1
        assert counts["L1D_ACCESS"] == 2
        assert counts["L1D_MISS"] == 1
        assert counts["DTLB_MISS"] == 1

    def test_armed_event_fires_hook_with_eip(self):
        ms = make_memsys()
        fired = []
        ms.arm_event("L1D_MISS", fired.append)
        ms.access(0x100000, False, eip=0xBEEF)
        assert fired == [0xBEEF]
        ms.access(0x100000, False, eip=0xBEEF)  # hit: no event
        assert fired == [0xBEEF]

    def test_only_armed_event_fires(self):
        ms = make_memsys()
        fired = []
        ms.arm_event("DTLB_MISS", fired.append)
        ms.access(0x100000, False, eip=1)  # misses TLB, L1, L2
        assert fired == [1]
        ms.access(0x100000 + 128, False, eip=2)  # same page: TLB hit, L1 miss
        assert fired == [1]

    def test_disarm(self):
        ms = make_memsys()
        fired = []
        ms.arm_event("L1D_MISS", fired.append)
        ms.disarm()
        ms.access(0x100000, False, eip=1)
        assert fired == []

    def test_non_pebs_event_rejected(self):
        ms = make_memsys()
        with pytest.raises(Exception):
            ms.arm_event("CYCLES", lambda e: None)

    def test_prefetcher_hides_sequential_stream(self):
        ms = make_memsys()
        # Sequential scan of 64 lines: after the trigger, prefetches fill L2.
        for i in range(64):
            ms.access(0x200000 + i * 128, False, eip=0)
        ms.sync_counters()
        assert ms.counters.read("PREFETCHES") > 0
        assert ms.counters.read("L2_MISS") < 64

    def test_pollute_minor_clears_l1_and_tlb_not_l2(self):
        ms = make_memsys()
        ms.access(0x100000, False, eip=0)
        ms.pollute_minor()
        assert not ms.l1.contains(0x100000)
        assert not ms.tlb.contains(0x100000)
        assert ms.l2.contains(0x100000)

    def test_pollute_full_clears_l2_too(self):
        ms = make_memsys()
        ms.access(0x100000, False, eip=0)
        ms.pollute_full()
        assert not ms.l2.contains(0x100000)


class TestCounterIdentities:
    """Structural invariants of the hot path: every access translates
    its address exactly once and probes L1 exactly once, so
    ``DTLB_ACCESS == L1D_ACCESS == LOADS + STORES``; L2 is probed
    exactly on L1 misses (prefetch fills bypass the tally), so
    ``L2_ACCESS == L1D_MISS``."""

    @staticmethod
    def assert_identities(counts):
        assert counts["DTLB_ACCESS"] == counts["L1D_ACCESS"]
        assert counts["L1D_ACCESS"] == counts["LOADS"] + counts["STORES"]
        assert counts["L2_ACCESS"] == counts["L1D_MISS"]

    def test_random_mixed_traffic(self):
        ms = make_memsys()
        rng = random.Random(42)
        for _ in range(5000):
            addr = 0x100000 + rng.randrange(0, 1 << 22, 4)
            ms.access(addr, rng.random() < 0.3, eip=addr)
        counts = ms.sync_counters().counts
        self.assert_identities(counts)
        # The traffic really exercised every level.
        assert counts["L1D_MISS"] > 0
        assert counts["L2_MISS"] > 0
        assert counts["DTLB_MISS"] > 0

    def test_identities_survive_pollution(self):
        ms = make_memsys()
        for i in range(64):
            ms.access(0x100000 + i * 128, False, eip=0)
        ms.pollute_minor()
        for i in range(64):
            ms.access(0x100000 + i * 128, True, eip=0)
        ms.pollute_full()
        ms.access(0x100000, False, eip=0)
        self.assert_identities(ms.sync_counters().counts)

    def test_identities_hold_after_guest_run(self):
        from repro.harness.runner import RunSpec, execute
        result = execute(RunSpec(benchmark="fop", monitoring=True))
        self.assert_identities(result.counters)

    def test_l1_cold_set_probe_within_warm_page(self):
        """Edge case: an access whose L1 set has never been touched
        (empty way list) but whose page is already in the TLB — it must
        pay the full L1-miss + L2-miss latency with *no* TLB penalty,
        and count one L1 miss, not a DTLB miss."""
        ms = make_memsys()
        cfg = ms.config
        ms.access(0x100000, False, eip=0)          # cold: TLB+L1+L2 miss
        # +128 = next line, next (empty) L1 set, same 4 KB page.
        latency = ms.access(0x100000 + 128, False, eip=0)
        assert latency == (cfg.l1.hit_latency + cfg.l2.hit_latency
                           + cfg.memory_latency)
        counts = ms.sync_counters().counts
        assert counts["DTLB_MISS"] == 1            # only the first access
        assert counts["L1D_MISS"] == 2
        self.assert_identities(counts)


class TestAccessRun:
    """The bulk path (``access_run`` / ``access_run_segments``) must be
    a pure batching of ``access``: same latency total, same counters,
    same armed-hook firings in the same order, for any traffic."""

    @staticmethod
    def random_traffic(n=2000, seed=9):
        rng = random.Random(seed)
        addrs, writes, eips = [], [], []
        for i in range(n):
            addrs.append(0x100000 + rng.randrange(0, 1 << 20, 4))
            writes.append(rng.random() < 0.3)
            eips.append(i)
        return addrs, writes, eips

    def test_batch_matches_singles(self):
        addrs, writes, eips = self.random_traffic()
        single, batch = make_memsys(), make_memsys()
        fired_single, fired_batch = [], []
        single.arm_event("L1D_MISS", fired_single.append)
        batch.arm_event("L1D_MISS", fired_batch.append)

        total_single = sum(single.access(a, w, eip=e)
                           for a, w, e in zip(addrs, writes, eips))
        total_batch = 0
        for i in range(0, len(addrs), 7):  # uneven chunks
            total_batch += batch.access_run(addrs[i:i + 7], writes[i:i + 7],
                                            eips[i:i + 7])
        assert total_batch == total_single
        assert fired_batch == fired_single
        assert batch.sync_counters().counts == single.sync_counters().counts

    def test_segments_match_flat(self):
        addrs, writes, eips = self.random_traffic(n=500, seed=4)
        flat, seg = make_memsys(), make_memsys()
        total_flat = flat.access_run(addrs, writes, eips)
        # Same traffic as three segments sharing metadata lists, each
        # consuming from its own ``start`` offset (the shape the
        # superblock driver produces when draining pending segments).
        segments = [(addrs[0:200], writes, eips, 0),
                    (addrs[200:450], writes, eips, 200),
                    (addrs[450:], writes, eips, 450)]
        total_seg = seg.access_run_segments(segments)
        assert total_seg == total_flat
        assert seg.sync_counters().counts == flat.sync_counters().counts

    @pytest.mark.parametrize("position", range(5))
    def test_armed_sample_lands_on_each_batch_position(self, position):
        """An armed event raised by the j-th access of a batch must
        report that access's EIP — for every j, including first/last."""
        k = 5
        ms = make_memsys()
        addrs = [0x100000 + i * 128 for i in range(k)]
        for a in addrs:
            ms.access(a, False, eip=0)      # warm: batch would all hit
        addrs[position] = 0x100000 + (64 + position) * 128  # cold line
        eips = [0x5000 + i for i in range(k)]
        fired = []
        ms.arm_event("L1D_MISS", fired.append)
        ms.access_run(addrs, [False] * k, eips)
        assert fired == [eips[position]]

    def test_empty_batch(self):
        ms = make_memsys()
        assert ms.access_run([], [], []) == 0
        assert ms.access_run_segments(()) == 0
        assert ms.sync_counters().counts["L1D_ACCESS"] == 0


class TestPEBS:
    def make_unit(self, interval=10, **cfg_overrides):
        cfg = PEBSConfig(**cfg_overrides)
        costs = []
        batches = []
        unit = PEBSUnit(cfg, costs.append, batches.append,
                        rng=random.Random(7))
        unit.configure("L1D_MISS", interval)
        return unit, costs, batches

    def test_samples_roughly_every_interval(self):
        unit, _, batches = self.make_unit(interval=10, ds_capacity=1000,
                                          watermark=1.0)
        for i in range(1000):
            unit.on_event(eip=i)
        unit.flush()
        total = sum(len(b) for b in batches)
        assert 80 <= total <= 120  # 1000/10 with jitter

    def test_interval_randomization_varies_countdowns(self):
        unit, _, batches = self.make_unit(interval=100, ds_capacity=10000,
                                          watermark=1.0)
        for i in range(20000):
            unit.on_event(eip=i)
        unit.flush()
        eips = [s.eip for b in batches for s in b]
        gaps = {b - a for a, b in zip(eips, eips[1:])}
        assert len(gaps) > 1  # not a fixed stride

    def test_watermark_interrupt(self):
        unit, _, batches = self.make_unit(interval=1, ds_capacity=10,
                                          watermark=0.5)
        for i in range(5):
            unit.on_event(eip=i)
        assert len(batches) == 1
        assert len(batches[0]) == 5

    def test_microcode_and_interrupt_costs_charged(self):
        unit, costs, _ = self.make_unit(interval=1, ds_capacity=10,
                                        watermark=0.5, microcode_cost=40,
                                        interrupt_cost=2000,
                                        kernel_copy_cost=8)
        for i in range(5):
            unit.on_event(eip=i)
        # 5 microcode saves + 1 interrupt + 5 kernel copies.
        assert sum(costs) == 5 * 40 + 2000 + 5 * 8

    def test_sample_records_eip(self):
        unit, _, batches = self.make_unit(interval=1)
        unit.on_event(eip=0xCAFE)
        unit.flush()
        assert batches[0][0].eip == 0xCAFE

    def test_stop_disables_sampling(self):
        unit, _, batches = self.make_unit(interval=1)
        unit.stop()
        unit.on_event(eip=1)
        unit.flush()
        assert batches == []

    def test_overrun_drops_samples(self):
        cfg = PEBSConfig(ds_capacity=4, watermark=2.0)  # interrupt never fires
        unit = PEBSUnit(cfg, lambda c: None, lambda b: None,
                        rng=random.Random(1))
        unit.configure("L1D_MISS", 1)
        for i in range(10):
            unit.on_event(eip=i)
        assert unit.samples_dropped == 6
        assert unit.pending == 4

    def test_set_interval_adjusts_future_countdown(self):
        unit, _, batches = self.make_unit(interval=1000, ds_capacity=10000,
                                          watermark=1.0)
        unit.set_interval(5)
        for i in range(100):
            unit.on_event(eip=i)
        unit.flush()
        assert sum(len(b) for b in batches) >= 10

    def test_rejects_zero_interval(self):
        unit, _, _ = self.make_unit()
        with pytest.raises(ValueError):
            unit.configure("L1D_MISS", 0)
        with pytest.raises(ValueError):
            unit.set_interval(0)

    def test_rejects_non_pebs_event(self):
        unit, _, _ = self.make_unit()
        with pytest.raises(Exception):
            unit.configure("INSTRUCTIONS", 100)

    def test_sample_is_40_bytes_nominal(self):
        assert PEBSConfig().sample_bytes == 40
        assert Sample(1).eip == 1


class TestIntervalRandomizationBias:
    """Section 6.1: randomizing the low interval bits prevents "measuring
    biased results by sampling at the same locations over and over".

    The adversarial input: two event sources strictly alternating (EIPs
    A, B, A, B, ...).  An exact *even* interval aliases with the
    pattern and only ever samples one of them; the randomized interval
    samples both.
    """

    def run_unit(self, randomize_bits, interval=10, events=4000):
        import random
        from collections import Counter

        taken = []
        cfg = PEBSConfig(ds_capacity=100_000, watermark=1.0,
                         randomize_bits=randomize_bits)
        unit = PEBSUnit(cfg, lambda c: None, lambda b: None,
                        rng=random.Random(11))
        unit.configure("L1D_MISS", interval)
        orig_append = unit._ds_buffer
        for i in range(events):
            eip = 0xA000 if i % 2 == 0 else 0xB000
            unit.on_event(eip)
        counts = Counter(s.eip for s in unit._ds_buffer)
        return counts

    def test_exact_even_interval_aliases(self):
        counts = self.run_unit(randomize_bits=0)
        # All samples land on one EIP: total bias.
        assert len(counts) == 1

    def test_randomized_interval_covers_both_sources(self):
        counts = self.run_unit(randomize_bits=8)
        assert len(counts) == 2
        a, b = counts[0xA000], counts[0xB000]
        assert min(a, b) > 0.2 * max(a, b)  # roughly balanced
