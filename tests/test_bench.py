"""Tests for the ``repro bench`` performance observatory.

The regression-detection edge cases are the heart of this file: empty
history, a single-entry baseline, code-version mismatch filtering,
zero/NaN metric guards, verdict thresholds straddling exactly-at-limit
values, and history-file corruption tolerance.  The registry, the
execution harness, the migration shim, the self-profiler, and the CLI
surface are covered around them.
"""

import json
import math
import os

import pytest

from repro.__main__ import main
from repro.bench import compare as cmp
from repro.bench import history as hist
from repro.bench import registry
from repro.bench.execute import run_case, run_cases
from repro.bench.registry import (BenchCase, Gate, all_cases, get_case,
                                  register)
from repro.bench.stats import is_finite_number, robust_stats

# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

FAKE_PARAMS = {"value": 100.0, "floor": 0.0}


def make_case(name="fake", value=100.0, gates=(), direction="lower",
              threshold=0.10, run=None):
    """A cheap registerable case whose metric is controlled by a param."""
    def default_run(params):
        return {"value": float(params["value"]), "identical": True}
    return BenchCase(
        name=name, description="synthetic test case",
        run=run or default_run, params=dict(FAKE_PARAMS), gates=tuple(gates),
        primary_metric="value", primary_direction=direction,
        compare_threshold=threshold)


@pytest.fixture
def fake_case(monkeypatch):
    """Register a synthetic case without disturbing the builtins."""
    all_cases()  # force builtin registration before we add to REGISTRY
    case = make_case()
    monkeypatch.setitem(registry.REGISTRY, case.name, case)
    return case


_TS = iter(range(10_000, 20_000))


def entry(case="fake", value=100.0, ts=None, metric="value",
          direction="lower", threshold=0.10, params=None, code="codeA",
          schema=hist.HISTORY_SCHEMA, passed=True):
    """Fabricate one self-describing history entry."""
    params = dict(FAKE_PARAMS) if params is None else params
    return {
        "schema": schema,
        "case": case,
        "ts": float(next(_TS)) if ts is None else float(ts),
        "code_version": code,
        "params": params,
        "params_key": hist.params_key(params),
        "primary": {"metric": metric, "direction": direction,
                    "threshold": threshold},
        "metrics": {metric: value},
        "passed": passed,
    }


# ---------------------------------------------------------------------------
# Robust statistics
# ---------------------------------------------------------------------------

class TestRobustStats:
    def test_empty_samples(self):
        stats = robust_stats([])
        assert stats["n"] == 0
        assert math.isnan(stats["median"]) and math.isnan(stats["mad"])

    def test_median_and_mad(self):
        stats = robust_stats([1.0, 2.0, 3.0, 4.0, 100.0])
        assert stats["n"] == 5
        assert stats["median"] == 3.0
        # Deviations |x - 3|: 2, 1, 0, 1, 97 -> median 1.
        assert stats["mad"] == 1.0
        assert stats["min"] == 1.0 and stats["max"] == 100.0
        assert stats["mean"] == pytest.approx(22.0)

    def test_is_finite_number_guards(self):
        assert is_finite_number(1) and is_finite_number(1.5)
        assert not is_finite_number(True), "bools are not measurements"
        assert not is_finite_number(float("nan"))
        assert not is_finite_number(float("inf"))
        assert not is_finite_number(None)
        assert not is_finite_number("1.5")


# ---------------------------------------------------------------------------
# Registry: gates, params, builtins
# ---------------------------------------------------------------------------

class TestGates:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown gate op"):
            Gate("speedup", "!=", 1.0)

    def test_param_limit_resolution(self):
        gate = Gate("speedup", ">=", "min_speedup")
        assert gate.resolve_limit({"min_speedup": 2.5}) == 2.5
        assert Gate("x", "<=", 3.0).resolve_limit({}) == 3.0

    def test_floor_ceiling_equality(self):
        params = {"min_speedup": 1.5}
        assert Gate("s", ">=", "min_speedup").evaluate(
            {"s": 1.5}, params)["passed"]
        assert not Gate("s", ">=", "min_speedup").evaluate(
            {"s": 1.49}, params)["passed"]
        assert Gate("r", "<=", 1.10).evaluate({"r": 1.10}, {})["passed"]
        assert Gate("identical", "==", True).evaluate(
            {"identical": True}, {})["passed"]
        assert not Gate("identical", "==", True).evaluate(
            {"identical": False}, {})["passed"]

    def test_missing_metric_fails_not_raises(self):
        verdict = Gate("absent", ">=", 1.0).evaluate({}, {})
        assert verdict["passed"] is False and verdict["value"] is None

    def test_nan_cannot_clear_numeric_gates(self):
        assert not Gate("s", ">=", 0.0).evaluate(
            {"s": float("nan")}, {})["passed"]
        assert not Gate("s", "<=", 1e9).evaluate(
            {"s": float("inf")}, {})["passed"]


class TestBenchCase:
    def test_direction_validated(self):
        with pytest.raises(ValueError, match="unknown direction"):
            make_case(direction="sideways")

    def test_strict_override_checking(self):
        case = make_case()
        with pytest.raises(ValueError, match="no parameter 'typo'"):
            case.resolve_params({"typo": 1})
        params = case.resolve_params({"typo": 1}, strict=False)
        assert "typo" not in params
        assert case.resolve_params({"value": 7.0})["value"] == 7.0

    def test_builtin_cases_registered(self):
        names = {case.name for case in all_cases()}
        assert {"interp", "runner", "audit", "lineage", "suite"} <= names
        interp = get_case("interp")
        assert any(g.limit == "min_speedup" for g in interp.gates)
        with pytest.raises(ValueError, match="unknown bench case"):
            get_case("nope")


# ---------------------------------------------------------------------------
# Execution harness
# ---------------------------------------------------------------------------

class TestRunCase:
    def test_repeats_and_last_metrics(self):
        calls = []

        def run(params):
            calls.append(1)
            return {"value": float(len(calls)), "identical": True}

        run_result = run_case(make_case(run=run), repeats=3)
        assert len(calls) == 3
        assert run_result.wall["n"] == 3
        assert run_result.metrics["value"] == 3.0, "metrics from last repeat"
        assert run_result.primary_value == 3.0

    def test_warmup_discarded(self):
        calls = []

        def run(params):
            calls.append(1)
            return {"value": 1.0}

        run_result = run_case(make_case(run=run), repeats=2, warmup=2)
        assert len(calls) == 4
        assert run_result.wall["n"] == 2, "warmup runs are not timed"

    def test_gate_verdicts(self):
        passing = run_case(make_case(gates=[Gate("value", "<=", "floor")]),
                           overrides={"value": 0.0})
        assert passing.passed
        failing = run_case(make_case(gates=[Gate("value", "<=", "floor")]),
                           overrides={"value": 5.0})
        assert not failing.passed
        assert [g["passed"] for g in failing.gates] == [False]

    def test_run_cases_filters_shared_overrides(self):
        seen = {}

        def run_a(params):
            seen["a"] = params
            return {"value": 1.0}

        def run_b(params):
            seen["b"] = params
            return {"other": 1.0}

        case_a = make_case(name="a", run=run_a)
        case_b = BenchCase(name="b", description="", run=run_b,
                           params={"knob": 1}, primary_metric="other")
        run_cases([case_a, case_b], overrides={"value": 9.0, "knob": 2})
        assert seen["a"]["value"] == 9.0 and "knob" not in seen["a"]
        assert seen["b"]["knob"] == 2 and "value" not in seen["b"]


# ---------------------------------------------------------------------------
# History: build, append, load, corruption tolerance
# ---------------------------------------------------------------------------

class TestHistory:
    def test_build_entry_is_self_describing(self):
        run_result = run_case(make_case(threshold=0.25, direction="higher"))
        doc = hist.build_entry(run_result, now=123.0, code_version="deadbeef",
                               sha=None)
        assert doc["schema"] == hist.HISTORY_SCHEMA
        assert doc["case"] == "fake" and doc["ts"] == 123.0
        assert doc["code_version"] == "deadbeef" and doc["git_sha"] is None
        assert doc["params_key"] == hist.params_key(doc["params"])
        assert doc["primary"] == {"metric": "value", "direction": "higher",
                                  "threshold": 0.25}
        assert doc["metrics"]["value"] == 100.0 and doc["passed"]

    def test_params_key_is_order_insensitive(self):
        assert hist.params_key({"a": 1, "b": [2]}) \
            == hist.params_key({"b": [2], "a": 1})
        assert hist.params_key({"a": 1}) != hist.params_key({"a": 2})

    def test_append_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        first, second = entry(value=1.0), entry(value=2.0)
        hist.append(path, first)
        hist.append(path, second)
        entries, skipped = hist.load(path)
        assert skipped == 0
        assert [e["metrics"]["value"] for e in entries] == [1.0, 2.0]

    def test_missing_file_is_empty_not_error(self, tmp_path):
        assert hist.load(str(tmp_path / "absent.jsonl")) == ([], 0)

    def test_corrupt_lines_skipped_and_counted(self, tmp_path):
        path = tmp_path / "h.jsonl"
        good = entry(value=3.0)
        lines = [
            json.dumps(good),
            "{torn write",                                   # not JSON
            "[1, 2, 3]",                                     # not an object
            json.dumps({"schema": 99, "case": "fake",
                        "metrics": {}}),                     # wrong schema
            json.dumps({"schema": hist.HISTORY_SCHEMA, "case": 5,
                        "metrics": {}}),                     # bad case type
            "",                                              # blank: ignored
        ]
        path.write_text("\n".join(lines) + "\n")
        entries, skipped = hist.load(str(path))
        assert [e["metrics"]["value"] for e in entries] == [3.0]
        assert skipped == 4


class TestMigration:
    def test_legacy_flat_artifact_seeded(self, tmp_path):
        artifact = tmp_path / "BENCH_interp.json"
        artifact.write_text(json.dumps(
            {"benchmark": "compress", "speedup": 1.93, "identical": True,
             "passed": True}))
        history = str(tmp_path / "h.jsonl")
        seeded = hist.seed_from_artifacts([str(artifact)], history)
        assert len(seeded) == 1
        doc = seeded[0]
        assert doc["case"] == "interp" and doc["migrated"] is True
        assert doc["metrics"]["speedup"] == 1.93
        assert doc["ts"] == os.path.getmtime(str(artifact))
        # Comparability hinges on the registry-default params fingerprint.
        assert doc["params_key"] \
            == hist.params_key(dict(get_case("interp").params))
        entries, skipped = hist.load(history)
        assert len(entries) == 1 and skipped == 0

    def test_new_style_artifact_reseeds_metrics(self, tmp_path):
        artifact = tmp_path / "BENCH_lineage.json"
        artifact.write_text(json.dumps({
            "schema": hist.HISTORY_SCHEMA, "case": "lineage",
            "metrics": {"overhead_ratio": 1.02}, "passed": True}))
        seeded = hist.seed_from_artifacts(
            [str(artifact)], str(tmp_path / "h.jsonl"))
        assert len(seeded) == 1
        assert seeded[0]["metrics"] == {"overhead_ratio": 1.02}

    def test_unmigratable_artifacts_skipped(self, tmp_path):
        unknown = tmp_path / "BENCH_unknown.json"
        unknown.write_text(json.dumps({"speedup": 2.0}))
        corrupt = tmp_path / "BENCH_interp.json"
        corrupt.write_text("{torn")
        nonfinite = tmp_path / "BENCH_audit.json"
        nonfinite.write_text(json.dumps({"audit_wall_s": "fast"}))
        wrong_name = tmp_path / "notes.json"
        wrong_name.write_text(json.dumps({"speedup": 2.0}))
        seeded = hist.seed_from_artifacts(
            [str(p) for p in (unknown, corrupt, nonfinite, wrong_name)],
            str(tmp_path / "h.jsonl"))
        assert seeded == []


# ---------------------------------------------------------------------------
# Regression detection
# ---------------------------------------------------------------------------

class TestCompare:
    def test_empty_history_gives_no_baseline(self):
        score = cmp.score_entry(entry(value=5.0), history=[])
        assert score["verdict"] == "no-baseline"
        assert score["baseline"] is None and score["delta"] is None
        assert not cmp.has_failures([score])

    def test_single_entry_baseline(self):
        history = [entry(value=100.0)]
        score = cmp.score_entry(entry(value=104.0), history)
        assert score["baseline"] == 100.0 and score["baseline_n"] == 1
        assert score["delta"] == pytest.approx(0.04)
        assert score["verdict"] == "ok"

    def test_exactly_at_threshold_is_ok(self):
        history = [entry(value=100.0)]
        # 10% worse with a 10% threshold: delta == t stays ok ...
        assert cmp.score_entry(entry(value=110.0), history)["verdict"] == "ok"
        # ... one hair past it regresses.
        assert cmp.score_entry(entry(value=110.00001),
                               history)["verdict"] == "regressed"
        # Symmetric on the improvement side.
        assert cmp.score_entry(entry(value=90.0), history)["verdict"] == "ok"
        assert cmp.score_entry(entry(value=89.99),
                               history)["verdict"] == "improved"

    def test_higher_is_better_flips_the_delta(self):
        # Binary-exact values so delta == threshold is truly exact.
        history = [entry(value=2.0, direction="higher", threshold=0.25)]

        def current(v):
            return entry(value=v, direction="higher", threshold=0.25)
        assert cmp.score_entry(current(1.5), history)["verdict"] == "ok"
        assert cmp.score_entry(current(1.4375),
                               history)["verdict"] == "regressed"
        assert cmp.score_entry(current(2.5), history)["verdict"] == "ok"
        assert cmp.score_entry(current(2.625),
                               history)["verdict"] == "improved"

    def test_baseline_is_median_of_window(self):
        history = [entry(value=float(v)) for v in range(1, 11)]
        score = cmp.score_entry(entry(value=9.0), history, window=3)
        assert score["baseline"] == 9.0 and score["baseline_n"] == 3
        assert score["verdict"] == "ok"
        wide = cmp.score_entry(entry(value=9.0), history, window=100)
        assert wide["baseline"] == 5.5 and wide["baseline_n"] == 10
        assert wide["verdict"] == "regressed"

    def test_code_version_mismatch_filtering(self):
        history = [entry(value=100.0, code="old"),
                   entry(value=200.0, code="new")]
        current = entry(value=200.0, code="new")
        pinned = cmp.score_entry(current, history, code_version="new")
        assert pinned["baseline"] == 200.0 and pinned["baseline_n"] == 1
        assert pinned["verdict"] == "ok"
        unpinned = cmp.score_entry(current, history)
        assert unpinned["baseline"] == 150.0 and unpinned["baseline_n"] == 2
        nowhere = cmp.score_entry(current, history, code_version="absent")
        assert nowhere["verdict"] == "no-baseline"

    def test_current_entry_excluded_from_its_own_baseline(self):
        current = entry(value=50.0)
        history = [entry(value=100.0), dict(current)]
        score = cmp.score_entry(current, history)
        assert score["baseline"] == 100.0 and score["baseline_n"] == 1
        assert score["verdict"] == "improved"

    def test_params_and_case_mismatches_excluded(self):
        history = [entry(value=100.0, params={"value": 1.0, "floor": 9.0}),
                   entry(value=100.0, case="other"),
                   entry(value=100.0, schema=99),
                   entry(value=100.0, metric="other_metric")]
        assert cmp.score_entry(entry(value=100.0),
                               history)["verdict"] == "no-baseline"

    def test_nan_current_value_is_invalid(self):
        history = [entry(value=100.0)]
        for bad in (float("nan"), float("inf"), None, "fast", True):
            score = cmp.score_entry(entry(value=bad), history)
            assert score["verdict"] == "invalid", bad
            assert score["value"] is None
            assert cmp.has_failures([score])
        missing = entry(value=1.0)
        missing["metrics"] = {}
        assert cmp.score_entry(missing, history)["verdict"] == "invalid"

    def test_nan_baseline_entries_filtered(self):
        history = [entry(value=float("nan")), entry(value=float("inf")),
                   entry(value=100.0)]
        score = cmp.score_entry(entry(value=100.0), history)
        assert score["baseline_n"] == 1, "non-finite entries are not evidence"
        assert score["verdict"] == "ok"

    def test_zero_baseline_cannot_anchor_a_relative_verdict(self):
        history = [entry(value=0.0), entry(value=0.0), entry(value=0.0)]
        score = cmp.score_entry(entry(value=5.0), history)
        assert score["verdict"] == "no-baseline"
        assert score["baseline"] == 0.0 and score["baseline_n"] == 3

    def test_explicit_threshold_overrides_per_case(self):
        history = [entry(value=100.0)]
        score = cmp.score_entry(entry(value=105.0), history, threshold=0.01)
        assert score["verdict"] == "regressed"

    def test_score_run_and_failure_detection(self):
        history = [entry(value=100.0)]
        scores = cmp.score_run([entry(value=100.0), entry(value=150.0)],
                               history)
        assert [s["verdict"] for s in scores] == ["ok", "regressed"]
        assert cmp.has_failures(scores)
        table = cmp.format_scores(scores)
        assert "regressed" in table and "fake" in table
        assert "+50.0%" in table


# ---------------------------------------------------------------------------
# Self-profiling
# ---------------------------------------------------------------------------

def _busy_run(params):
    total = 0
    for i in range(300_000):
        total += i * i
    return {"value": float(total % 97), "identical": True}


class TestProfile:
    def test_subsystem_mapping(self):
        import repro.hw
        import repro.bench.stats
        from repro.bench.profile import subsystem_of

        assert subsystem_of(repro.hw.__file__) == "hw"
        assert subsystem_of(repro.bench.stats.__file__) == "bench"
        import repro
        top_level = os.path.join(os.path.dirname(repro.__file__),
                                 "something.py")
        assert subsystem_of(top_level) == "core"
        assert subsystem_of(None) == "builtin"
        assert subsystem_of("<string>") == "builtin"
        assert subsystem_of(os.__file__) == "stdlib"
        assert subsystem_of("/nowhere/else/x.py") == "host"

    def test_profile_case_attribution_and_stacks(self):
        import re

        from repro.bench.profile import format_report, profile_case
        from repro.telemetry.export import format_collapsed

        report = profile_case(make_case(run=_busy_run))
        assert report.name == "fake"
        assert report.total_self_s > 0 and report.rows
        doc = report.to_json()
        assert doc["schema"] == 1 and doc["stacks"] == len(report.stacks)
        assert doc["stacks"] > 0
        shares = sum(row["share"] for row in doc["subsystems"])
        assert shares == pytest.approx(1.0, abs=0.05)
        text = format_collapsed(report.stacks)
        for line in text.splitlines():
            assert re.match(r"^\S+(;\S+)* \d+$", line), line
        assert "subsystem" in format_report(report)

    def test_frame_labels_are_collapsed_safe(self):
        from repro.bench.profile import _frame_label

        assert _frame_label("<built-in method time.sleep>") \
            == "built-in_method_time.sleep"

        class FakeCode:
            co_filename = "/somewhere/pkg/mod name.py"
            co_name = "fn;x"

        assert " " not in _frame_label(FakeCode())
        assert ";" not in _frame_label(FakeCode())


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestBenchCli:
    def test_list_shows_registered_cases(self, capsys):
        main(["bench", "list"])
        out = capsys.readouterr().out
        for name in ("interp", "runner", "audit", "lineage", "suite"):
            assert name in out
        assert "gate:" in out

    def test_run_writes_artifact_history_and_report(self, fake_case,
                                                    tmp_path, capsys):
        history = str(tmp_path / "h.jsonl")
        report = str(tmp_path / "report.json")
        main(["bench", "run", "fake", "--history", history,
              "--out-dir", str(tmp_path), "--json", report])
        out = capsys.readouterr().out
        assert "fake" in out and "PASS" in out
        artifact = json.loads((tmp_path / "BENCH_fake.json").read_text())
        assert artifact["case"] == "fake" and artifact["passed"]
        entries, skipped = hist.load(history)
        assert len(entries) == 1 and skipped == 0
        doc = json.loads(open(report).read())
        assert doc["schema"] == 1 and doc["passed"]
        assert [e["case"] for e in doc["entries"]] == ["fake"]

    def test_run_gate_failure_exits_nonzero(self, monkeypatch, tmp_path):
        all_cases()
        failing = make_case(name="failing",
                            gates=[Gate("value", "<=", "floor")])
        monkeypatch.setitem(registry.REGISTRY, "failing", failing)
        with pytest.raises(SystemExit, match="gate failure in: failing"):
            main(["bench", "run", "failing",
                  "--history", str(tmp_path / "h.jsonl"),
                  "--out-dir", str(tmp_path)])

    def test_run_rejects_unknown_case_and_params(self, fake_case, tmp_path):
        history = str(tmp_path / "h.jsonl")
        with pytest.raises(SystemExit, match="unknown bench case"):
            main(["bench", "run", "nope", "--history", history])
        with pytest.raises(SystemExit, match="needs key=value"):
            main(["bench", "run", "fake", "--param", "oops",
                  "--history", history])
        with pytest.raises(SystemExit, match="no selected case has param"):
            main(["bench", "run", "fake", "--param", "typo=1",
                  "--history", history])
        with pytest.raises(SystemExit, match="name at least one case"):
            main(["bench", "run", "--history", history])

    def test_param_overrides_reach_the_case(self, fake_case, tmp_path,
                                            capsys):
        history = str(tmp_path / "h.jsonl")
        main(["bench", "run", "fake", "--param", "value=42.5",
              "--history", history, "--no-artifacts"])
        entries, _ = hist.load(history)
        assert entries[0]["metrics"]["value"] == 42.5
        assert entries[0]["params"]["value"] == 42.5

    def test_history_listing(self, tmp_path, capsys):
        history = str(tmp_path / "h.jsonl")
        hist.append(history, entry(value=1.25))
        hist.append(history, entry(value=2.5, case="other"))
        main(["bench", "history", "--history", history, "--case", "fake"])
        out = capsys.readouterr().out
        assert "value=1.25" in out and "other" not in out
        main(["bench", "history", "--history", history, "--json"])
        docs = json.loads(capsys.readouterr().out)
        assert [d["case"] for d in docs] == ["fake", "other"]

    def test_compare_regression_exits_nonzero(self, fake_case, tmp_path,
                                              capsys):
        history = str(tmp_path / "h.jsonl")
        for value in (1.0, 1.0, 1.0):
            hist.append(history, entry(value=value))
        report = tmp_path / "r.json"
        report.write_text(json.dumps(
            {"schema": 1, "entries": [entry(value=2.0)]}))
        with pytest.raises(SystemExit,
                           match="regression verdict in: fake"):
            main(["bench", "compare", "--from", str(report),
                  "--history", history])
        assert "regressed" in capsys.readouterr().out

    def test_compare_clean_run_exits_zero(self, fake_case, tmp_path, capsys):
        history = str(tmp_path / "h.jsonl")
        for value in (1.0, 1.0, 1.0):
            hist.append(history, entry(value=value))
        report = tmp_path / "r.json"
        report.write_text(json.dumps(
            {"schema": 1, "entries": [entry(value=1.02)]}))
        verdicts = tmp_path / "verdicts.json"
        main(["bench", "compare", "--from", str(report),
              "--history", history, "--json", str(verdicts)])
        out = capsys.readouterr().out
        assert "ok" in out
        doc = json.loads(verdicts.read_text())
        assert doc["scores"][0]["verdict"] == "ok"

    def test_compare_rejects_non_reports(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"unrelated": True}))
        with pytest.raises(SystemExit, match="not a bench report"):
            main(["bench", "compare", "--from", str(bogus),
                  "--history", str(tmp_path / "h.jsonl")])

    def test_compare_auto_seeds_from_legacy_artifacts(self, fake_case,
                                                      tmp_path, monkeypatch,
                                                      capsys):
        # Empty history + a legacy flat artifact in the working directory:
        # the first compare lifts the artifact into a baseline, so the
        # fresh run scores "ok" instead of "no-baseline".
        monkeypatch.chdir(tmp_path)
        (tmp_path / "BENCH_fake.json").write_text(json.dumps(
            {"value": 100.0, "identical": True, "passed": True}))
        history = str(tmp_path / "h.jsonl")
        main(["bench", "compare", "fake", "--history", history,
              "--no-artifacts"])
        out = capsys.readouterr().out
        assert "seeded 1 baseline" in out
        assert "ok" in out and "no-baseline" not in out

    def test_migrate_command(self, tmp_path, capsys):
        artifact = tmp_path / "BENCH_lineage.json"
        artifact.write_text(json.dumps({"overhead_ratio": 1.01}))
        history = str(tmp_path / "h.jsonl")
        main(["bench", "migrate", str(artifact), "--history", history])
        out = capsys.readouterr().out
        assert "seeded 1 entr" in out
        entries, _ = hist.load(history)
        assert entries[0]["case"] == "lineage"
        main(["bench", "migrate", str(tmp_path / "absent.json"),
              "--history", history])
        assert "no migratable" in capsys.readouterr().out

    def test_profile_command(self, monkeypatch, tmp_path, capsys):
        import re

        all_cases()
        busy = make_case(name="busy", run=_busy_run)
        monkeypatch.setitem(registry.REGISTRY, "busy", busy)
        collapsed = tmp_path / "p.collapsed"
        profile_json = tmp_path / "p.json"
        main(["bench", "profile", "busy", "--collapsed", str(collapsed),
              "--json", str(profile_json)])
        out = capsys.readouterr().out
        assert "profile of 'busy'" in out and "subsystem" in out
        doc = json.loads(profile_json.read_text())
        assert doc["schema"] == 1 and doc["name"] == "busy"
        lines = collapsed.read_text().splitlines()
        assert lines
        for line in lines:
            assert re.match(r"^\S+(;\S+)* \d+$", line), line
