"""Tests for the closure-threaded guest-code translator.

The fast paths (:mod:`repro.hw.translate`) must be pure speedups: every
observable of a run — exit values, cycle and instruction counts,
hardware event counters, GC statistics, sampled EIPs — is bit-identical
to the reference interpreter at both level 1 (per-instruction closures)
and level 2 (superblocks), translations are cached per compiled method
and dropped on recompilation, and the ``fastpath`` knob never leaks
into the experiment cache key.
"""

import dataclasses

import pytest

from tests.helpers import BASELINE_ONLY
from repro.core.config import (GCConfig, SystemConfig, fastpath_enabled,
                               fastpath_level)
from repro.harness import diskcache, runner
from repro.harness.record import RunRecord
from repro.harness.runner import RunSpec, execute
from repro.hw.isa import M_BC, M_BR
from repro.hw.translate import (MIN_SUPERBLOCK, superblock_ranges,
                                translation_for)
from repro.vm.program import Program
from repro.vm.vmcore import VM, run_program
from repro.workloads.synth import Fn


def _loop_program(iters=200):
    """Main with a counted loop over allocation + field traffic."""
    p = Program("tr")
    app = p.define_class("App")
    app.add_static("out", "int")
    app.seal()
    box = p.define_class("Box")
    box.add_field("v", "int")
    box.seal()

    fn = Fn(p, app, "main")
    acc = fn.local()
    obj = fn.local()
    fn.iconst(0).istore(acc)
    with fn.loop(iters) as i:
        fn.new(box).rstore(obj)
        fn.rload(obj).iload(i).putfield(box, "v")
        fn.iload(acc).rload(obj).getfield(box, "v")
        fn.emit("iadd").istore(acc)
    fn.iload(acc).putstatic(app, "out")
    fn.ret()
    p.set_main(fn.finish())
    return p, app


def _vm(program, fastpath=True, plan=BASELINE_ONLY):
    cfg = SystemConfig(monitoring=False,
                       gc=GCConfig(heap_bytes=2 * 1024 * 1024),
                       fastpath=fastpath)
    return VM(program, cfg, compilation_plan=plan)


class TestKnob:
    def test_explicit_setting_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FASTPATH", "0")
        assert fastpath_enabled(True) is True
        monkeypatch.setenv("REPRO_FASTPATH", "1")
        assert fastpath_enabled(False) is False

    def test_env_default_is_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_FASTPATH", raising=False)
        assert fastpath_enabled() is True
        monkeypatch.setenv("REPRO_FASTPATH", "0")
        assert fastpath_enabled() is False

    def test_levels(self, monkeypatch):
        # Bools mean "reference" / "fastest", not levels 0/1 (True == 1
        # in Python; the bool check must win over the int clamp).
        assert fastpath_level(True) == 2
        assert fastpath_level(False) == 0
        for setting, level in ((0, 0), (1, 1), (2, 2), (5, 2), (-3, 0)):
            assert fastpath_level(setting) == level
        assert fastpath_enabled(1) is True
        monkeypatch.setenv("REPRO_FASTPATH", "1")
        assert fastpath_level() == 1
        monkeypatch.setenv("REPRO_FASTPATH", "0")
        assert fastpath_level() == 0
        monkeypatch.delenv("REPRO_FASTPATH", raising=False)
        assert fastpath_level() == 2

    def test_cpu_fastpath_follows_config(self):
        p, _ = _loop_program()
        assert _vm(p, fastpath=True).cpu.fastpath is True
        assert _vm(p, fastpath=False).cpu.fastpath is False
        assert _vm(p, fastpath=True).cpu.fastpath_level == 2
        assert _vm(p, fastpath=1).cpu.fastpath_level == 1
        assert _vm(p, fastpath=1).cpu.fastpath is True

    def test_level1_translation_has_no_blocks(self):
        p, _ = _loop_program()
        vm = _vm(p, fastpath=1)
        cm = vm.compiled_code_for(p.main)
        assert translation_for(cm, vm.cpu).blocks is None

    def test_level2_translation_has_blocks(self):
        p, _ = _loop_program()
        vm = _vm(p, fastpath=2)
        cm = vm.compiled_code_for(p.main)
        blocks = translation_for(cm, vm.cpu).blocks
        assert blocks is not None
        assert len(blocks) == len(cm.code)
        starts = [pc for pc, blk in enumerate(blocks) if blk is not None]
        assert starts  # the loop body really fused
        for pc in starts:
            length, closure = blocks[pc]
            assert length >= MIN_SUPERBLOCK
            assert callable(closure)
            # Mid-block pcs carry no entry: a branch landing inside a
            # fused run executes per-instruction.
            for mid in range(pc + 1, pc + length):
                assert blocks[mid] is None


class TestTranslationCache:
    def test_cached_and_idempotent(self):
        p, _ = _loop_program()
        vm = _vm(p)
        cm = vm.compiled_code_for(p.main)
        tr = translation_for(cm, vm.cpu)
        assert cm.translation is tr
        assert translation_for(cm, vm.cpu) is tr
        assert len(tr.handlers) == len(cm.code)

    def test_rebuilt_for_a_different_cpu(self):
        p, _ = _loop_program()
        vm1 = _vm(p)
        cm = vm1.compiled_code_for(p.main)
        tr1 = translation_for(cm, vm1.cpu)
        vm2 = _vm(p)
        tr2 = translation_for(cm, vm2.cpu)
        assert tr2 is not tr1
        assert cm.translation is tr2

    def test_invalidated_on_opt_recompile(self):
        p, _ = _loop_program()
        vm = _vm(p)
        cm = vm.compiled_code_for(p.main)
        translation_for(cm, vm.cpu)
        assert cm.translation is not None
        new_cm = vm.opt_compile(p.main)
        assert cm.translation is None      # stale version dropped
        assert new_cm is not cm
        assert new_cm.translation is None  # fresh version: built on demand


class TestBitIdentity:
    """Whole-run differential: both translated paths must reproduce the
    reference interpreter's RunRecord byte for byte."""

    @pytest.mark.parametrize("level", [1, 2], ids=["per-inst", "superblock"])
    @pytest.mark.parametrize("spec", [
        RunSpec(benchmark="fop", monitoring=True),
        RunSpec(benchmark="fop", monitoring=True, coalloc=True,
                gc_plan="gencopy", interval="25K"),
        RunSpec(benchmark="db", monitoring=False),
    ], ids=["fop-monitored", "fop-coalloc-gencopy", "db-unmonitored"])
    def test_records_identical(self, spec, level):
        ref = RunRecord.from_result(execute(spec, fastpath=False))
        fast = RunRecord.from_result(execute(spec, fastpath=level))
        assert fast.to_json() == ref.to_json()

    def test_aos_recompilation_identical(self):
        """No pre-generated plan: the AOS samples, decides, and opt
        recompiles mid-run — exercising translation (and cached
        superblock) invalidation and re-translation while frames are
        live."""
        outcomes = {}
        for fastpath in (0, 1, 2):
            p, app = _loop_program(6000)
            cfg = SystemConfig(monitoring=False,
                               gc=GCConfig(heap_bytes=4 * 1024 * 1024),
                               fastpath=fastpath)
            result = run_program(p, cfg, compilation_plan=None)
            out = app.static_values[app.static("out").index]
            outcomes[fastpath] = (out, result.cycles, result.instructions,
                                  result.counters,
                                  p.main.compile_count)
        assert outcomes[1] == outcomes[0]
        assert outcomes[2] == outcomes[0]
        # The run was long enough for the AOS to actually recompile.
        assert outcomes[2][-1] > 1

    def test_until_cycles_slicing_identical(self):
        """Drive the CPU in fixed-size cycle slices; every intermediate
        (cycles, instructions) pair must match the reference.  At level
        2 this exercises the quantum-overshoot split: a fused run whose
        precomputed delta would overshoot the budget must execute
        per-instruction so the deadline check still fires on the exact
        cycle the reference stops at."""
        traces = {}
        for fastpath in (0, 1, 2):
            p, app = _loop_program(300)
            vm = _vm(p, fastpath=fastpath)
            cpu = vm.cpu
            cpu._push_frame(vm.compiled_code_for(p.main), ())
            trace = []
            while cpu.frames:
                cpu.run(until_cycles=cpu.cycles + 137)
                trace.append((cpu.cycles, cpu.instructions))
            out = app.static_values[app.static("out").index]
            traces[fastpath] = (trace, out)
        assert traces[1] == traces[0]
        assert traces[2] == traces[0]
        assert len(traces[2][0]) > 3  # really did run in slices


def _midbranch_program(iters=50):
    """A straight-line arithmetic region whose middle is a branch
    target: the loop's backedge lands between two fusible prefixes, so
    block discovery must split there (leader rule) instead of fusing
    one long run."""
    p = Program("split")
    app = p.define_class("App")
    app.add_static("out", "int")
    app.seal()
    fn = Fn(p, app, "main")
    acc = fn.local()
    i = fn.local()
    mid = fn.fresh_label("mid")
    fn.iconst(0).istore(acc)
    fn.iconst(0).istore(i)
    # Fusible prefix that falls through into the loop body: without the
    # leader at ``mid`` this would all be one straight-line run.
    fn.iconst(1).iconst(2).emit("iadd").istore(acc)
    fn.label(mid)
    fn.iload(acc).iconst(3).emit("iadd").istore(acc)
    fn.iload(i).iconst(1).emit("iadd").istore(i)
    fn.iload(i).iconst(iters)
    fn.emit("if_icmp", "lt", mid)
    fn.iload(acc).putstatic(app, "out")
    fn.ret()
    p.set_main(fn.finish())
    return p, app


class TestSuperblocks:
    """Block-discovery rules and superblock-specific edge cases."""

    def test_branch_into_middle_splits_leader(self):
        p, _ = _midbranch_program()
        vm = _vm(p, fastpath=2)
        cm = vm.compiled_code_for(p.main)
        code = cm.code
        targets = {inst.imm for inst in code if inst.op in (M_BC, M_BR)}
        ranges = superblock_ranges(code)
        assert ranges
        # No fused run spans a branch target ...
        for start, stop in ranges:
            assert not targets.intersection(range(start + 1, stop))
        # ... and the mid-region target really did split two adjacent
        # fusible runs: one block ends exactly where another starts.
        assert any(stop in targets and any(start == stop for start, _ in
                                           ranges)
                   for _, stop in ranges)

    def test_branch_into_middle_identical(self):
        """Entering a fused region other than at its start (the
        backedge hits a mid-region leader every iteration) stays
        bit-identical across all three interpreters."""
        outcomes = {}
        for level in (0, 1, 2):
            p, app = _midbranch_program()
            cfg = SystemConfig(monitoring=False,
                               gc=GCConfig(heap_bytes=2 * 1024 * 1024),
                               fastpath=level)
            result = run_program(p, cfg, compilation_plan=BASELINE_ONLY)
            out = app.static_values[app.static("out").index]
            outcomes[level] = (out, result.cycles, result.instructions,
                               result.counters)
        assert outcomes[1] == outcomes[0]
        assert outcomes[2] == outcomes[0]

    def test_branch_terminator_fused(self):
        """A run may end with the branch that terminates it (classic
        superblock shape): the closure returns the taken pc."""
        p, _ = _loop_program()
        vm = _vm(p, fastpath=2)
        cm = vm.compiled_code_for(p.main)
        ranges = superblock_ranges(cm.code)
        assert any(cm.code[stop - 1].op in (M_BC, M_BR)
                   for _, stop in ranges)

    def test_superblock_invalidated_with_translation(self):
        """AOS recompilation drops the translation — and with it every
        cached superblock closure — so the next dispatch rebuilds from
        the new code."""
        p, _ = _loop_program()
        vm = _vm(p, fastpath=2)
        cm = vm.compiled_code_for(p.main)
        tr = translation_for(cm, vm.cpu)
        assert tr.blocks is not None
        vm.opt_compile(p.main)
        assert cm.translation is None


class TestCacheKeyUnchanged:
    """The knob rides on SystemConfig, never on the frozen RunSpec, so
    the disk-cache key is identical in both modes and a record computed
    under either serves both."""

    def test_runspec_has_no_fastpath_field(self):
        assert "fastpath" not in {f.name for f in
                                  dataclasses.fields(RunSpec)}

    def test_record_served_across_modes(self, tmp_path, monkeypatch):
        spec = RunSpec(benchmark="fop", monitoring=False)
        runner.set_disk_cache(diskcache.DiskCache(root=str(tmp_path)))
        try:
            monkeypatch.setenv("REPRO_FASTPATH", "1")
            before = runner.SIM_RUNS
            fast = runner.record_for(spec)
            assert runner.SIM_RUNS == before + 1
            runner.clear_cache()  # drop the memo; keep the disk layer
            monkeypatch.setenv("REPRO_FASTPATH", "0")
            ref = runner.record_for(spec)
            assert runner.SIM_RUNS == before + 1  # served, not simulated
            assert ref.to_json() == fast.to_json()
        finally:
            runner.set_disk_cache(None)
            runner.clear_cache()
