"""Tests for the closure-threaded guest-code translator.

The fast path (:mod:`repro.hw.translate`) must be a pure speedup: every
observable of a run — exit values, cycle and instruction counts,
hardware event counters, GC statistics, sampled EIPs — is bit-identical
to the reference interpreter, translations are cached per compiled
method and dropped on recompilation, and the ``fastpath`` knob never
leaks into the experiment cache key.
"""

import dataclasses

import pytest

from tests.helpers import BASELINE_ONLY
from repro.core.config import GCConfig, SystemConfig, fastpath_enabled
from repro.harness import diskcache, runner
from repro.harness.record import RunRecord
from repro.harness.runner import RunSpec, execute
from repro.hw.translate import translation_for
from repro.vm.program import Program
from repro.vm.vmcore import VM, run_program
from repro.workloads.synth import Fn


def _loop_program(iters=200):
    """Main with a counted loop over allocation + field traffic."""
    p = Program("tr")
    app = p.define_class("App")
    app.add_static("out", "int")
    app.seal()
    box = p.define_class("Box")
    box.add_field("v", "int")
    box.seal()

    fn = Fn(p, app, "main")
    acc = fn.local()
    obj = fn.local()
    fn.iconst(0).istore(acc)
    with fn.loop(iters) as i:
        fn.new(box).rstore(obj)
        fn.rload(obj).iload(i).putfield(box, "v")
        fn.iload(acc).rload(obj).getfield(box, "v")
        fn.emit("iadd").istore(acc)
    fn.iload(acc).putstatic(app, "out")
    fn.ret()
    p.set_main(fn.finish())
    return p, app


def _vm(program, fastpath=True, plan=BASELINE_ONLY):
    cfg = SystemConfig(monitoring=False,
                       gc=GCConfig(heap_bytes=2 * 1024 * 1024),
                       fastpath=fastpath)
    return VM(program, cfg, compilation_plan=plan)


class TestKnob:
    def test_explicit_setting_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FASTPATH", "0")
        assert fastpath_enabled(True) is True
        monkeypatch.setenv("REPRO_FASTPATH", "1")
        assert fastpath_enabled(False) is False

    def test_env_default_is_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_FASTPATH", raising=False)
        assert fastpath_enabled() is True
        monkeypatch.setenv("REPRO_FASTPATH", "0")
        assert fastpath_enabled() is False

    def test_cpu_fastpath_follows_config(self):
        p, _ = _loop_program()
        assert _vm(p, fastpath=True).cpu.fastpath is True
        assert _vm(p, fastpath=False).cpu.fastpath is False


class TestTranslationCache:
    def test_cached_and_idempotent(self):
        p, _ = _loop_program()
        vm = _vm(p)
        cm = vm.compiled_code_for(p.main)
        tr = translation_for(cm, vm.cpu)
        assert cm.translation is tr
        assert translation_for(cm, vm.cpu) is tr
        assert len(tr.handlers) == len(cm.code)

    def test_rebuilt_for_a_different_cpu(self):
        p, _ = _loop_program()
        vm1 = _vm(p)
        cm = vm1.compiled_code_for(p.main)
        tr1 = translation_for(cm, vm1.cpu)
        vm2 = _vm(p)
        tr2 = translation_for(cm, vm2.cpu)
        assert tr2 is not tr1
        assert cm.translation is tr2

    def test_invalidated_on_opt_recompile(self):
        p, _ = _loop_program()
        vm = _vm(p)
        cm = vm.compiled_code_for(p.main)
        translation_for(cm, vm.cpu)
        assert cm.translation is not None
        new_cm = vm.opt_compile(p.main)
        assert cm.translation is None      # stale version dropped
        assert new_cm is not cm
        assert new_cm.translation is None  # fresh version: built on demand


class TestBitIdentity:
    """Whole-run differential: the translated path must reproduce the
    reference interpreter's RunRecord byte for byte."""

    @pytest.mark.parametrize("spec", [
        RunSpec(benchmark="fop", monitoring=True),
        RunSpec(benchmark="fop", monitoring=True, coalloc=True,
                gc_plan="gencopy", interval="25K"),
        RunSpec(benchmark="db", monitoring=False),
    ], ids=["fop-monitored", "fop-coalloc-gencopy", "db-unmonitored"])
    def test_records_identical(self, spec):
        ref = RunRecord.from_result(execute(spec, fastpath=False))
        fast = RunRecord.from_result(execute(spec, fastpath=True))
        assert fast.to_json() == ref.to_json()

    def test_aos_recompilation_identical(self):
        """No pre-generated plan: the AOS samples, decides, and opt
        recompiles mid-run — exercising translation invalidation and
        re-translation while frames are live."""
        outcomes = {}
        for fastpath in (False, True):
            p, app = _loop_program(6000)
            cfg = SystemConfig(monitoring=False,
                               gc=GCConfig(heap_bytes=4 * 1024 * 1024),
                               fastpath=fastpath)
            result = run_program(p, cfg, compilation_plan=None)
            out = app.static_values[app.static("out").index]
            outcomes[fastpath] = (out, result.cycles, result.instructions,
                                  result.counters,
                                  p.main.compile_count)
        assert outcomes[True] == outcomes[False]
        # The run was long enough for the AOS to actually recompile.
        assert outcomes[True][-1] > 1

    def test_until_cycles_slicing_identical(self):
        """Drive the CPU in fixed-size cycle slices; every intermediate
        (cycles, instructions) pair must match the reference."""
        traces = {}
        for fastpath in (False, True):
            p, app = _loop_program(300)
            vm = _vm(p, fastpath=fastpath)
            cpu = vm.cpu
            cpu._push_frame(vm.compiled_code_for(p.main), ())
            trace = []
            while cpu.frames:
                cpu.run(until_cycles=cpu.cycles + 137)
                trace.append((cpu.cycles, cpu.instructions))
            out = app.static_values[app.static("out").index]
            traces[fastpath] = (trace, out)
        assert traces[True] == traces[False]
        assert len(traces[True][0]) > 3  # really did run in slices


class TestCacheKeyUnchanged:
    """The knob rides on SystemConfig, never on the frozen RunSpec, so
    the disk-cache key is identical in both modes and a record computed
    under either serves both."""

    def test_runspec_has_no_fastpath_field(self):
        assert "fastpath" not in {f.name for f in
                                  dataclasses.fields(RunSpec)}

    def test_record_served_across_modes(self, tmp_path, monkeypatch):
        spec = RunSpec(benchmark="fop", monitoring=False)
        runner.set_disk_cache(diskcache.DiskCache(root=str(tmp_path)))
        try:
            monkeypatch.setenv("REPRO_FASTPATH", "1")
            before = runner.SIM_RUNS
            fast = runner.record_for(spec)
            assert runner.SIM_RUNS == before + 1
            runner.clear_cache()  # drop the memo; keep the disk layer
            monkeypatch.setenv("REPRO_FASTPATH", "0")
            ref = runner.record_for(spec)
            assert runner.SIM_RUNS == before + 1  # served, not simulated
            assert ref.to_json() == fast.to_json()
        finally:
            runner.set_disk_cache(None)
            runner.clear_cache()
