"""Shared pytest fixtures.

The harness runner memoizes :class:`~repro.harness.runner.Measurement`
objects in a process-wide ``_CACHE``.  Tests within one module may rely
on that reuse (``test_experiments_plumbing`` deliberately warms the
cache once per module), but results must never leak *across* modules —
a module that tweaks global state before running a spec would otherwise
poison later modules' measurements.  The module-scoped autouse fixture
clears the cache at each module boundary.
"""

import pytest

from repro.harness import runner


@pytest.fixture(autouse=True, scope="module")
def _fresh_runner_cache():
    runner.clear_cache()
    yield
    runner.clear_cache()
