"""Shared pytest fixtures.

The harness runner memoizes :class:`~repro.harness.runner.Measurement`
objects in a process-wide ``_CACHE``.  Tests within one module may rely
on that reuse (``test_experiments_plumbing`` deliberately warms the
cache once per module), but results must never leak *across* modules —
a module that tweaks global state before running a spec would otherwise
poison later modules' measurements.  The module-scoped autouse fixture
clears the cache at each module boundary.

The persistent disk cache is disabled for the whole unit-test session:
these tests mutate simulator globals mid-run, and results produced under
such tweaks must never be written where other processes would trust
them.  The cache has its own tests (``test_engine_cache``) which inject
a :class:`~repro.harness.diskcache.DiskCache` against a tmp_path.
"""

import pytest

from repro.harness import runner


@pytest.fixture(autouse=True, scope="session")
def _no_disk_cache():
    runner.set_disk_cache(None)
    yield
    runner.set_disk_cache(None)


@pytest.fixture(autouse=True, scope="module")
def _fresh_runner_cache():
    runner.clear_cache()
    yield
    runner.clear_cache()
