"""Tests for the bytecode assembler and the stack/locals analysis."""

import pytest

from repro.vm.bytecode import (
    Asm,
    BytecodeError,
    T_CONFLICT,
    T_INT,
    T_REF,
    analyze,
    branch_target,
)
from repro.vm.program import Program


def make_method(code, args=None, returns="void", max_locals=None, name="m"):
    p = Program("t")
    k = p.define_class("K")
    k.seal()
    return p.define_method(k, name, args=args or [], returns=returns,
                           max_locals=max_locals, code=code)


class TestAsm:
    def test_label_resolution_backward(self):
        asm = Asm()
        asm.label("top")
        asm.emit("iconst", 1)
        asm.emit("pop")
        asm.emit("goto", "top")
        code = asm.finish()
        assert code[2].a == 0

    def test_label_resolution_forward(self):
        asm = Asm()
        asm.emit("iconst", 0)
        asm.emit("ifz", "eq", "done")
        asm.label("done")
        asm.emit("return")
        code = asm.finish()
        assert branch_target(code[1]) == 2

    def test_unknown_opcode_rejected(self):
        with pytest.raises(BytecodeError):
            Asm().emit("frobnicate")

    def test_undefined_label_rejected(self):
        asm = Asm()
        asm.emit("goto", "nowhere")
        with pytest.raises(BytecodeError):
            asm.finish()

    def test_duplicate_label_rejected(self):
        asm = Asm()
        asm.label("x")
        with pytest.raises(BytecodeError):
            asm.label("x")


class TestAnalyze:
    def test_simple_arithmetic(self):
        asm = Asm()
        asm.emit("iconst", 1)
        asm.emit("iconst", 2)
        asm.emit("iadd")
        asm.emit("ireturn")
        m = make_method(asm, returns="int")
        a = analyze(m)
        assert a.max_stack == 2
        assert a.state_at(2).stack == (T_INT, T_INT)
        assert a.state_at(3).stack == (T_INT,)

    def test_argument_types_seed_locals(self):
        asm = Asm()
        asm.emit("return")
        m = make_method(asm, args=["ref", "int"])
        a = analyze(m)
        assert a.state_at(0).locals == (T_REF, T_INT)

    def test_store_changes_local_type(self):
        asm = Asm()
        asm.emit("aconst_null")
        asm.emit("rstore", 0)
        asm.emit("return")
        m = make_method(asm, max_locals=1)
        a = analyze(m)
        assert a.state_at(0).locals == (T_INT,)
        assert a.state_at(2).locals == (T_REF,)

    def test_merge_conflicting_local_types(self):
        # One path stores an int, the other a ref, into local 1.
        asm = Asm()
        asm.emit("iload", 0)
        asm.emit("ifz", "eq", "else")
        asm.emit("iconst", 5)
        asm.emit("istore", 1)
        asm.emit("goto", "join")
        asm.label("else")
        asm.emit("aconst_null")
        asm.emit("rstore", 1)
        asm.label("join")
        asm.emit("return")
        m = make_method(asm, args=["int"], max_locals=2)
        a = analyze(m)
        join_pc = len(m.code) - 1
        assert a.state_at(join_pc).locals[1] == T_CONFLICT

    def test_stack_depth_mismatch_rejected(self):
        asm = Asm()
        asm.emit("iload", 0)
        asm.emit("ifz", "eq", "push2")
        asm.emit("iconst", 1)
        asm.emit("goto", "join")
        asm.label("push2")
        asm.emit("iconst", 1)
        asm.emit("iconst", 2)
        asm.label("join")
        asm.emit("pop")
        asm.emit("return")
        with pytest.raises(BytecodeError):
            make_method(asm, args=["int"])

    def test_stack_underflow_rejected(self):
        asm = Asm()
        asm.emit("pop")
        asm.emit("return")
        with pytest.raises(BytecodeError):
            make_method(asm)

    def test_fall_off_end_rejected(self):
        asm = Asm()
        asm.emit("iconst", 1)
        asm.emit("pop")
        with pytest.raises(BytecodeError):
            make_method(asm)

    def test_getfield_types(self):
        p = Program("t")
        k = p.define_class("A")
        fr = k.add_field("child", "ref")
        fi = k.add_field("n", "int")
        k.seal()
        asm = Asm()
        asm.emit("rload", 0)
        asm.emit("getfield", fr)
        asm.emit("pop")
        asm.emit("rload", 0)
        asm.emit("getfield", fi)
        asm.emit("ireturn")
        m = p.define_method(k, "m", args=["ref"], returns="int", code=asm)
        a = analyze(m)
        assert a.state_at(2).stack == (T_REF,)
        assert a.state_at(5).stack == (T_INT,)

    def test_invoke_pops_args_pushes_result(self):
        p = Program("t")
        k = p.define_class("A")
        k.seal()
        callee_asm = Asm()
        callee_asm.emit("iconst", 7)
        callee_asm.emit("ireturn")
        callee = p.define_method(k, "seven", args=["int", "int"],
                                 returns="int", code=callee_asm)
        asm = Asm()
        asm.emit("iconst", 1)
        asm.emit("iconst", 2)
        asm.emit("invokestatic", callee)
        asm.emit("ireturn")
        m = p.define_method(k, "m", args=[], returns="int", code=asm)
        a = analyze(m)
        assert a.state_at(3).stack == (T_INT,)

    def test_loop_analysis_terminates(self):
        asm = Asm()
        asm.emit("iconst", 10)
        asm.emit("istore", 0)
        asm.label("loop")
        asm.emit("iload", 0)
        asm.emit("ifz", "le", "done")
        asm.emit("iload", 0)
        asm.emit("iconst", 1)
        asm.emit("isub")
        asm.emit("istore", 0)
        asm.emit("goto", "loop")
        asm.label("done")
        asm.emit("return")
        m = make_method(asm, max_locals=1)
        a = analyze(m)
        assert a.max_stack == 2

    def test_virtual_method_needs_receiver(self):
        p = Program("t")
        k = p.define_class("A")
        k.seal()
        asm = Asm()
        asm.emit("return")
        with pytest.raises(BytecodeError):
            p.define_method(k, "m", args=["int"], static=False, code=asm)

    def test_arrload_kind_determines_type(self):
        asm = Asm()
        asm.emit("rload", 0)
        asm.emit("iconst", 0)
        asm.emit("arrload", "ref")
        asm.emit("pop")
        asm.emit("rload", 0)
        asm.emit("iconst", 0)
        asm.emit("arrload", "int")
        asm.emit("ireturn")
        m = make_method(asm, args=["ref"], returns="int")
        a = analyze(m)
        assert a.state_at(3).stack == (T_REF,)
        assert a.state_at(7).stack == (T_INT,)
