"""Tests for the perfmon three-layer sampling stack (section 4.1)."""

import random

import pytest

from repro.core.config import PEBSConfig, PerfmonConfig
from repro.hw.pebs import PEBSUnit, Sample
from repro.perfmon.collector import CollectorThread
from repro.perfmon.kernel import PerfmonKernelModule, PerfmonSession
from repro.perfmon.userlib import UserSampleLibrary
from repro.vm.scheduler import VirtualTimeScheduler


def make_stack(interval=10, kernel_capacity=2048):
    charged = []
    kernel = PerfmonKernelModule(
        PerfmonConfig(kernel_buffer_capacity=kernel_capacity))
    pebs = PEBSUnit(PEBSConfig(), charged.append,
                    lambda batch: kernel.session.on_interrupt(batch),
                    rng=random.Random(3))
    session = kernel.create_session(pebs, "L1D_MISS", interval)
    userlib = UserSampleLibrary(session, kernel.config, charged.append)
    return kernel, pebs, session, userlib, charged


class TestKernelModule:
    def test_single_session_enforced(self):
        kernel, pebs, session, _, _ = make_stack()
        with pytest.raises(RuntimeError):
            kernel.create_session(pebs, "L1D_MISS", 10)
        kernel.close_session()
        assert not pebs.enabled

    def test_interrupt_fills_kernel_buffer(self):
        _, pebs, session, _, _ = make_stack(interval=1)
        for i in range(95):  # watermark = 90 of 100
            pebs.on_event(eip=i)
        assert session.samples_received >= 90
        assert session.pending >= 90

    def test_read_drains_pending_hardware_samples(self):
        _, pebs, session, _, _ = make_stack(interval=1)
        for i in range(5):  # below the watermark
            pebs.on_event(eip=i)
        batch = session.read(100)
        assert len(batch) == 5
        assert pebs.pending == 0

    def test_read_respects_max(self):
        _, pebs, session, _, _ = make_stack(interval=1)
        for i in range(20):
            pebs.on_event(eip=i)
        first = session.read(8)
        assert len(first) == 8
        rest = session.read(100)
        assert len(rest) == 12
        # FIFO order preserved.
        assert [s.eip for s in first + rest] == list(range(20))

    def test_kernel_buffer_overflow_counts_drops(self):
        _, pebs, session, _, _ = make_stack(interval=1, kernel_capacity=50)
        for i in range(500):
            pebs.on_event(eip=i)
        assert session.samples_dropped > 0
        assert session.pending <= 50

    def test_set_interval_forwards_to_hardware(self):
        _, pebs, session, _, _ = make_stack(interval=100)
        session.set_interval(7)
        assert pebs.interval == 7


class TestUserLibrary:
    def test_batched_copy_costs(self):
        _, pebs, session, userlib, charged = make_stack(interval=1)
        for i in range(10):
            pebs.on_event(eip=i)
        charged.clear()
        eips = userlib.read_samples()
        assert eips == list(range(10))
        cfg = userlib.config
        # One poll cost + per-sample copy + the DS drain copy.
        expected = cfg.poll_cost + cfg.user_copy_cost * 10 \
            + PEBSConfig().kernel_copy_cost * 10
        assert sum(charged) == expected

    def test_empty_poll_costs_only_round_trip(self):
        _, _, _, userlib, charged = make_stack()
        charged.clear()
        assert userlib.read_samples() == []
        assert sum(charged) == userlib.config.poll_cost

    def test_capacity_is_80kb_of_40b_samples(self):
        _, _, _, userlib, _ = make_stack()
        assert userlib.capacity == 80 * 1024 // 40

    def test_gc_guard_entered_during_copy(self):
        entered = []

        class Guard:
            def __enter__(self):
                entered.append("in")

            def __exit__(self, *exc):
                entered.append("out")

        _, pebs, session, _, _ = make_stack(interval=1)
        userlib = UserSampleLibrary(session, PerfmonConfig(),
                                    lambda c: None, gc_guard=Guard)
        pebs.on_event(eip=1)
        userlib.read_samples()
        assert entered == ["in", "out"]


class TestCollectorThread:
    def make_collector(self, interval=1):
        _, pebs, session, userlib, _ = make_stack(interval=interval)
        delivered = []
        scheduler = VirtualTimeScheduler()
        collector = CollectorThread(userlib, delivered.extend, scheduler,
                                    PerfmonConfig())
        return pebs, collector, scheduler, delivered

    def test_polling_delivers_samples(self):
        pebs, collector, scheduler, delivered = self.make_collector()
        collector.start()
        for i in range(30):
            pebs.on_event(eip=i)
        scheduler.run_due(collector.poll_interval + 1)
        assert delivered == list(range(30))

    def test_polling_reschedules_itself(self):
        pebs, collector, scheduler, delivered = self.make_collector()
        collector.start()
        now = collector.poll_interval + 1
        scheduler.run_due(now)
        assert scheduler.pending() == 1  # the next tick is queued
        for i in range(5):
            pebs.on_event(eip=i)
        scheduler.run_due(now + collector.poll_interval * 3)
        assert delivered == list(range(5))

    def test_adaptivity_backs_off_when_idle(self):
        _, collector, scheduler, _ = self.make_collector()
        collector.start()
        initial = collector.poll_interval
        scheduler.run_due(initial + 1)  # empty poll
        assert collector.poll_interval > initial

    def test_adaptivity_speeds_up_under_load(self):
        pebs, collector, scheduler, _ = self.make_collector()
        collector.start()
        initial = collector.poll_interval
        for i in range(collector.config.poll_batch_high + 10):
            pebs.on_event(eip=i)
        scheduler.run_due(initial + 1)
        assert collector.poll_interval < initial

    def test_poll_interval_clamped(self):
        pebs, collector, scheduler, _ = self.make_collector()
        cfg = collector.config
        collector.start()
        # Drive many empty polls: interval must not exceed the maximum.
        now = 0
        for _ in range(30):
            now += collector.poll_interval + 1
            scheduler.run_due(now)
        assert collector.poll_interval <= cfg.poll_max_cycles

    def test_stop_halts_polling(self):
        pebs, collector, scheduler, delivered = self.make_collector()
        collector.start()
        collector.stop()
        for i in range(5):
            pebs.on_event(eip=i)
        scheduler.run_due(10_000_000_000)
        assert delivered == []

    def test_drain_now_collects_stragglers(self):
        pebs, collector, scheduler, delivered = self.make_collector()
        for i in range(3):
            pebs.on_event(eip=i)
        assert collector.drain_now() == 3
        assert delivered == [0, 1, 2]

    def test_double_start_rejected(self):
        _, collector, _, _ = self.make_collector()
        collector.start()
        with pytest.raises(RuntimeError):
            collector.start()


class TestScheduler:
    def test_events_fire_in_time_order(self):
        sched = VirtualTimeScheduler()
        fired = []
        sched.at(20, lambda now: fired.append("b"))
        sched.at(10, lambda now: fired.append("a"))
        sched.run_due(30)
        assert fired == ["a", "b"]

    def test_future_events_stay_queued(self):
        sched = VirtualTimeScheduler()
        fired = []
        sched.at(100, lambda now: fired.append(1))
        sched.run_due(50)
        assert fired == []
        assert sched.next_time == 100

    def test_every_repeats_until_cancelled(self):
        # Repeating events reschedule relative to the observed clock (the
        # CPU polls the scheduler between instruction blocks), so the
        # clock must be advanced incrementally as the CPU does.
        sched = VirtualTimeScheduler()
        fired = []
        cancel = sched.every(0, 10, lambda now: fired.append(now))
        for now in range(0, 36, 5):
            sched.run_due(now)
        assert len(fired) == 3
        cancel()
        for now in range(36, 100, 5):
            sched.run_due(now)
        assert len(fired) == 3

    def test_after_rejects_negative_delay(self):
        sched = VirtualTimeScheduler()
        with pytest.raises(ValueError):
            sched.after(0, -1, lambda now: None)
        with pytest.raises(ValueError):
            sched.every(0, 0, lambda now: None)
