"""Shared test helpers: small guest programs and VM drivers."""

from repro.core.config import GCConfig, SystemConfig
from repro.jit.aos import CompilationPlan
from repro.vm.program import Program
from repro.vm.vmcore import VM, run_program
from repro.workloads.synth import Fn

BASELINE_ONLY = CompilationPlan([])


def run_main(program, *, config=None, plan=BASELINE_ONLY, **kwargs):
    """Run a program's main with a minimal config (no monitoring)."""
    if config is None:
        config = SystemConfig(monitoring=False,
                              gc=GCConfig(heap_bytes=2 * 1024 * 1024),
                              **kwargs)
    return run_program(program, config, compilation_plan=plan)


def int_main(body, *, returns="int", plan=BASELINE_ONLY, config=None):
    """Build a one-method program whose main computes an int into a
    static, then run it and return that value.

    ``body(fn, app)`` emits bytecode leaving one int on the stack.
    """
    p = Program("t")
    app = p.define_class("App")
    app.add_static("out", "int")
    app.seal()
    fn = Fn(p, app, "main")
    body(fn, app)
    fn.putstatic(app, "out")
    fn.ret()
    p.set_main(fn.finish())
    run_main(p, plan=plan, config=config)
    return app.static_values[app.static("out").index]


def self_recursive_method(program, klass, name, *, args, returns, build,
                          max_locals=None):
    """Define a method that may reference itself in its own bytecode.

    ``build(asm, method)`` emits into a raw Asm with the MethodInfo in
    hand (Program.define_method verifies eagerly, which forbids forward
    self-references).
    """
    from repro.vm.bytecode import Asm, analyze
    from repro.vm.model import MethodInfo

    method = MethodInfo(name, klass, is_static=True, arg_kinds=list(args),
                        return_kind=returns,
                        max_locals=max_locals or len(args), code=[])
    klass.add_method(method)
    asm = Asm()
    build(asm, method)
    method.code = asm.finish()
    analyze(method)
    return method
