"""Adversarial code-generation patterns.

These target the classically bug-prone corners of the opt pipeline:
parallel-move cycles at block boundaries, values shielded across sync
moves in branch operands, deep operand stacks, and references held in
registers across GC points inside loops.
"""

import pytest

from tests.helpers import BASELINE_ONLY
from repro.core.config import GCConfig, SystemConfig
from repro.jit.aos import CompilationPlan
from repro.vm.program import Program
from repro.vm.vmcore import run_program
from repro.workloads.synth import Fn

OPT_WORK = CompilationPlan(["App.work"])


def build_and_run(body_builder, plan, args_value=7, heap=1024 * 1024):
    p = Program("t")
    app = p.define_class("App")
    app.add_static("out", "int")
    app.seal()
    node = p.define_class("Node")
    node.add_field("next", "ref")
    node.add_field("v", "int")
    node.seal()
    work = Fn(p, app, "work", args=["int"], returns="int")
    body_builder(work, app, node)
    work_m = work.finish()
    main = Fn(p, app, "main")
    main.iconst(args_value).call(work_m).putstatic(app, "out")
    main.ret()
    p.set_main(main.finish())
    cfg = SystemConfig(monitoring=False, gc=GCConfig(heap_bytes=heap))
    run_program(p, cfg, compilation_plan=plan)
    return app.static_values[0]


def agree(body_builder, **kw):
    base = build_and_run(body_builder, BASELINE_ONLY, **kw)
    opt = build_and_run(body_builder, OPT_WORK, **kw)
    assert base == opt, (base, opt)
    return base


class TestParallelMoves:
    def test_local_swap_in_loop(self):
        """a, b = b, a per iteration: the classic move cycle at the
        loop-back sync point."""
        def body(fn, app, node):
            a = fn.local()
            b = fn.local()
            fn.iconst(1).istore(a)
            fn.iconst(2).istore(b)
            with fn.loop(7):
                fn.iload(a)
                fn.iload(b).istore(a)
                fn.istore(b)
            # out = a * 10 + b
            fn.iload(a).iconst(10).emit("imul").iload(b).emit("iadd")
            fn.iret()
        assert agree(body) == 21  # odd #swaps: a=2, b=1

    def test_three_way_rotation(self):
        def body(fn, app, node):
            a, b, c = fn.local(), fn.local(), fn.local()
            fn.iconst(1).istore(a)
            fn.iconst(2).istore(b)
            fn.iconst(3).istore(c)
            with fn.loop(4):
                fn.iload(a)          # stash a
                fn.iload(b).istore(a)
                fn.iload(c).istore(b)
                fn.istore(c)         # c = old a
            fn.iload(a).iconst(100).emit("imul")
            fn.iload(b).iconst(10).emit("imul").emit("iadd")
            fn.iload(c).emit("iadd").iret()
        # After 4 rotations of (1,2,3): period 3, so one extra: (2,3,1).
        assert agree(body) == 231

    def test_branch_operand_survives_sync_moves(self):
        """The branch compares a value whose canonical register is
        overwritten by the loop-back moves (the shield-copy case)."""
        def body(fn, app, node):
            x = fn.local()
            fn.iload(0).istore(x)
            head = fn.fresh_label()
            done = fn.fresh_label()
            fn.label(head)
            fn.iload(x)                 # branch operand from local x
            fn.iload(x).iconst(1).emit("isub").istore(x)  # x changes!
            fn.emit("ifz", "le", done)  # compares the OLD x
            fn.emit("goto", head)
            fn.label(done)
            fn.iload(x).iret()
        assert agree(body) == -1  # loop runs while old x > 0

    def test_deep_operand_stack(self):
        def body(fn, app, node):
            for i in range(1, 13):
                fn.iconst(i)
            for _ in range(11):
                fn.emit("iadd")
            fn.iret()
        assert agree(body) == sum(range(1, 13))

    def test_swap_of_stack_values_across_branch(self):
        def body(fn, app, node):
            fn.iconst(5).iconst(9)
            fn.iload(0)
            with fn.if_nonzero():
                fn.emit("swap")
            fn.emit("isub").iret()
        assert agree(body, args_value=1) == 4    # swapped: 9 - 5
        assert agree(body, args_value=0) == -4   # not swapped: 5 - 9


class TestRefsAcrossGCPoints:
    def test_register_ref_survives_loop_allocation(self):
        """A reference held only in an opt-code register across repeated
        allocations (GC points) in a loop: the GC map must keep it."""
        def body(fn, app, node):
            keep = fn.local()
            junk = fn.local()
            fn.new(node).rstore(keep)
            fn.rload(keep).iconst(424).putfield(node, "v")
            with fn.loop(4000):
                fn.new(node).rstore(junk)  # pressure: ~4000 dead nodes
            fn.rload(keep).getfield(node, "v").iret()
        # Heap small enough that several minor GCs happen mid-loop.
        assert agree(body, heap=192 * 1024) == 424

    def test_chain_built_under_pressure_from_registers(self):
        def body(fn, app, node):
            head = fn.local()
            cur = fn.local()
            junk = fn.local()
            fn.emit("aconst_null").rstore(head)
            with fn.loop(50) as i:
                fn.new(node).rstore(cur)
                fn.rload(cur).rload(head).putfield(node, "next")
                fn.rload(cur).iload(i).putfield(node, "v")
                fn.rload(cur).rstore(head)
                fn.iconst(64).emit("newarray", "int").rstore(junk)
            # Sum the chain.
            acc = fn.local()
            fn.iconst(0).istore(acc)
            walk = fn.fresh_label()
            done = fn.fresh_label()
            fn.label(walk)
            fn.rload(head).emit("ifnull", done)
            fn.iload(acc).rload(head).getfield(node, "v").emit("iadd")
            fn.istore(acc)
            fn.rload(head).getfield(node, "next").rstore(head)
            fn.emit("goto", walk)
            fn.label(done)
            fn.iload(acc).iret()
        assert agree(body, heap=192 * 1024) == sum(range(50))

    def test_ref_argument_survives_callee_gc(self):
        """A ref argument must be kept alive by the *caller's* GC map
        while the callee triggers collection."""
        p = Program("t")
        app = p.define_class("App")
        app.add_static("out", "int")
        app.seal()
        node = p.define_class("Node")
        node.add_field("v", "int")
        node.seal()
        churn = Fn(p, app, "churn", returns="void")
        junk = churn.local()
        with churn.loop(3000):
            churn.new(node).rstore(junk)
        churn.ret()
        churn_m = churn.finish()
        work = Fn(p, app, "work", args=["ref"], returns="int")
        work.call(churn_m)                 # GC happens in here
        work.rload(0).getfield(node, "v").iret()
        work_m = work.finish()
        main = Fn(p, app, "main")
        obj = main.local()
        main.new(node).rstore(obj)
        main.rload(obj).iconst(33).putfield(node, "v")
        main.rload(obj).call(work_m).putstatic(app, "out")
        main.ret()
        p.set_main(main.finish())
        for plan in (BASELINE_ONLY,
                     CompilationPlan(["App.work", "App.churn"])):
            cfg = SystemConfig(monitoring=False,
                               gc=GCConfig(heap_bytes=160 * 1024))
            run_program(p, cfg, compilation_plan=plan)
            assert app.static_values[0] == 33
