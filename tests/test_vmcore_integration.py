"""End-to-end VM integration tests: the whole stack on small programs."""

import pytest

from tests.helpers import BASELINE_ONLY, run_main
from repro.core.config import GCConfig, SystemConfig
from repro.jit.aos import CompilationPlan
from repro.vm.program import Program
from repro.vm.vmcore import VM, run_program
from repro.workloads.synth import Fn, define_string_factory, lcg_step


def churn_program(n=800, rounds=24):
    """A miniature db: string table with churn and shuffled reads."""
    p = Program("mini")
    app = p.define_class("App")
    app.add_static("sum", "int")
    app.add_static("rng", "int")
    app.seal()
    make = define_string_factory(p)
    string = p.string_class

    scan = Fn(p, app, "scan", args=["ref"], returns="int")
    acc, state, idx = scan.local(), scan.local(), scan.local()
    scan.getstatic(app, "rng").istore(state)
    scan.iconst(0).istore(acc)
    with scan.loop(n):
        lcg_step(scan, state, n)
        scan.istore(idx)
        scan.iload(state).iconst(16).emit("ishr").iconst(3).emit("iand")
        skip = scan.fresh_label()
        scan.emit("ifz", "ne", skip)
        scan.rload(0).iload(idx)
        scan.iconst(12).iload(idx).call(make)
        scan.emit("arrstore", "ref")
        scan.label(skip)
        scan.iload(acc)
        scan.rload(0).iload(idx).emit("arrload", "ref")
        scan.getfield(string, "value").iconst(0).emit("arrload", "char")
        scan.emit("iadd").istore(acc)
    scan.iload(state).putstatic(app, "rng")
    scan.iload(acc).iret()
    scan_m = scan.finish()

    fn = Fn(p, app, "main")
    table = fn.local()
    fn.iconst(99).putstatic(app, "rng")
    fn.iconst(n).emit("newarray", "ref").rstore(table)
    with fn.loop(n) as i:
        fn.rload(table).iload(i)
        fn.iconst(12).iload(i).call(make)
        fn.emit("arrstore", "ref")
    with fn.loop(rounds):
        fn.rload(table).call(scan_m)
        fn.getstatic(app, "sum").emit("iadd").putstatic(app, "sum")
    fn.ret()
    p.set_main(fn.finish())
    plan = CompilationPlan([scan_m.qualified_name, make.qualified_name])
    return p, app, plan


def checksum(app):
    return app.static_values[app.static("sum").index]


class TestDeterminism:
    def test_same_seed_same_cycles(self):
        results = []
        for _ in range(2):
            p, app, plan = churn_program()
            cfg = SystemConfig(gc=GCConfig(heap_bytes=256 * 1024), seed=5)
            results.append(run_program(p, cfg, compilation_plan=plan))
        assert results[0].cycles == results[1].cycles
        assert results[0].counters == results[1].counters

    def test_different_seed_same_semantics(self):
        sums = []
        for seed in (1, 2):
            p, app, plan = churn_program()
            cfg = SystemConfig(gc=GCConfig(heap_bytes=256 * 1024), seed=seed)
            run_program(p, cfg, compilation_plan=plan)
            sums.append(checksum(app))
        assert sums[0] == sums[1]


class TestConfigOrthogonality:
    """Monitoring, co-allocation, and GC plan must never change results."""

    def run_with(self, **overrides):
        p, app, plan = churn_program()
        cfg = SystemConfig(gc=GCConfig(heap_bytes=256 * 1024), seed=3,
                           **overrides)
        result = run_program(p, cfg, compilation_plan=plan)
        return checksum(app), result

    def test_monitoring_does_not_change_semantics(self):
        assert self.run_with(monitoring=False)[0] == \
            self.run_with(monitoring=True)[0]

    def test_coalloc_does_not_change_semantics(self):
        on, _ = self.run_with(monitoring=True, coalloc=True)
        off, _ = self.run_with(monitoring=False, coalloc=False)
        assert on == off

    def test_gencopy_does_not_change_semantics(self):
        ms, _ = self.run_with(monitoring=False, gc_plan="genms")
        copy, _ = self.run_with(monitoring=False, gc_plan="gencopy")
        assert ms == copy

    def test_sampling_interval_does_not_change_semantics(self):
        a, _ = self.run_with(monitoring=True, sampling_interval=250)
        b, _ = self.run_with(monitoring=True, sampling_interval=None)
        assert a == b

    def test_coalloc_changes_placement_not_values(self):
        _, off = self.run_with(monitoring=True, coalloc=False)
        _, on = self.run_with(monitoring=True, coalloc=True)
        assert on.gc_stats.coallocated_objects > 0
        assert on.counters["L1D_MISS"] < off.counters["L1D_MISS"]


class TestAdaptiveMode:
    def test_aos_opt_compiles_hot_methods(self):
        p, app, plan = churn_program(rounds=12)
        cfg = SystemConfig(gc=GCConfig(heap_bytes=256 * 1024),
                           monitoring=False)
        result = run_program(p, cfg, compilation_plan=None)  # adaptive
        scan = app.methods["scan"]
        assert scan.opt_code is not None
        assert scan.compile_count >= 2  # baseline then opt

    def test_pseudo_adaptive_compiles_plan_upfront(self):
        p, app, plan = churn_program(rounds=2)
        cfg = SystemConfig(gc=GCConfig(heap_bytes=256 * 1024),
                           monitoring=False)
        run_program(p, cfg, compilation_plan=plan)
        scan = app.methods["scan"]
        assert scan.opt_code is not None
        assert scan.current_code is scan.opt_code

    def test_baseline_only_plan_never_opts(self):
        p, app, plan = churn_program(rounds=2)
        cfg = SystemConfig(gc=GCConfig(heap_bytes=256 * 1024),
                           monitoring=False)
        run_program(p, cfg, compilation_plan=BASELINE_ONLY)
        assert app.methods["scan"].opt_code is None


class TestAccounting:
    def test_cycle_buckets_do_not_exceed_total(self):
        p, app, plan = churn_program()
        cfg = SystemConfig(gc=GCConfig(heap_bytes=256 * 1024))
        r = run_program(p, cfg, compilation_plan=plan)
        assert r.gc_cycles > 0
        assert r.monitoring_cycles > 0
        assert r.app_cycles > 0
        assert r.gc_cycles + r.monitoring_cycles < r.cycles

    def test_monitoring_overhead_is_small(self):
        p, app, plan = churn_program()
        cfg = SystemConfig(gc=GCConfig(heap_bytes=256 * 1024))
        r = run_program(p, cfg, compilation_plan=plan)
        assert r.monitoring_cycles / r.cycles < 0.06

    def test_counters_snapshot_consistency(self):
        p, app, plan = churn_program()
        cfg = SystemConfig(gc=GCConfig(heap_bytes=256 * 1024))
        r = run_program(p, cfg, compilation_plan=plan)
        c = r.counters
        assert c["L1D_ACCESS"] == c["LOADS"] + c["STORES"]
        assert c["L1D_MISS"] <= c["L1D_ACCESS"]
        assert c["L2_MISS"] <= c["L2_ACCESS"] <= c["L1D_MISS"]
        assert c["INSTRUCTIONS"] == r.instructions
        assert c["CYCLES"] == r.cycles

    def test_monitor_summary_present_only_with_monitoring(self):
        p, app, plan = churn_program(rounds=2)
        on = run_program(p, SystemConfig(gc=GCConfig(heap_bytes=256 * 1024)),
                         compilation_plan=plan)
        assert on.monitor_summary is not None
        p2, app2, plan2 = churn_program(rounds=2)
        off = run_program(p2, SystemConfig(monitoring=False,
                                           gc=GCConfig(heap_bytes=256 * 1024)),
                          compilation_plan=plan2)
        assert off.monitor_summary is None


class TestErrors:
    def test_missing_main_rejected(self):
        p = Program("nomain")
        with pytest.raises(ValueError, match="no main"):
            run_program(p, SystemConfig(monitoring=False))

    def test_heap_exhaustion_surfaces(self):
        from repro.gc.plan import HeapExhausted
        p = Program("hog")
        app = p.define_class("App")
        app.add_static("keep", "ref")
        app.seal()
        node = p.define_class("Node")
        node.add_field("next", "ref")
        node.seal()
        fn = Fn(p, app, "main")
        cur = fn.local()
        with fn.loop(100_000):
            fn.new(node).rstore(cur)
            fn.rload(cur).getstatic(app, "keep").putfield(node, "next")
            fn.rload(cur).putstatic(app, "keep")
        fn.ret()
        p.set_main(fn.finish())
        cfg = SystemConfig(monitoring=False,
                           gc=GCConfig(heap_bytes=256 * 1024))
        with pytest.raises(HeapExhausted):
            run_program(p, cfg, compilation_plan=BASELINE_ONLY)
