"""Run provenance manifests and structured record diffing.

The contract: a record is a pure function of (code, spec), the manifest
pins exactly those inputs, and ``diff_records`` tells "same experiment"
(clean diff) from "different seed / code / spec" (significant deltas)
without access to the runs that produced either record.
"""

import json

import pytest

from repro.analysis import provenance
from repro.analysis.diff import (DEFAULT_THRESHOLD, diff_records,
                                 format_diff, load_record)
from repro.harness import diskcache, runner
from repro.harness.record import RunRecord, SCHEMA_VERSION
from repro.harness.runner import RunSpec

SPEC = RunSpec(benchmark="fop", heap_mult=2.0, coalloc=True,
               monitoring=True)
SPEC_SEED2 = RunSpec(benchmark="fop", heap_mult=2.0, coalloc=True,
                     monitoring=True, seed=2)


# ---------------------------------------------------------------------------
# Provenance manifest
# ---------------------------------------------------------------------------

class TestManifest:
    def test_byte_identical_across_calls(self):
        # No timestamps, hostnames, or pids: the manifest is a pure
        # function of (code, spec), or cached != recomputed would break.
        a = json.dumps(provenance.manifest(SPEC), sort_keys=True)
        b = json.dumps(provenance.manifest(SPEC), sort_keys=True)
        assert a == b

    def test_pins_code_spec_and_seed(self):
        doc = provenance.manifest(SPEC)
        assert doc["manifest_version"] == provenance.MANIFEST_VERSION
        assert doc["code_version"] == diskcache.code_version()
        assert doc["spec_key"] == diskcache.spec_key(SPEC)
        assert doc["seed"] == SPEC.seed
        assert doc["spec"]["benchmark"] == "fop"
        assert doc["record_schema"] == SCHEMA_VERSION

    def test_distinguishes_seeds(self):
        a = provenance.manifest(SPEC)
        b = provenance.manifest(SPEC_SEED2)
        assert a["spec_key"] != b["spec_key"]
        assert a["seed"] != b["seed"]
        assert a["code_version"] == b["code_version"]

    def test_fastpath_knob_recorded(self):
        assert provenance.manifest(SPEC, fastpath=False)["fastpath"] is False
        assert provenance.manifest(SPEC, fastpath=True)["fastpath"] is True

    def test_describe(self):
        line = provenance.describe(provenance.manifest(SPEC))
        assert "fop" in line and "seed=1" in line
        assert provenance.describe(None) == "no provenance recorded"
        assert provenance.describe({}) == "no provenance recorded"


# ---------------------------------------------------------------------------
# Records carry their provenance
# ---------------------------------------------------------------------------

class TestRecordProvenance:
    def test_record_for_embeds_manifest(self):
        record = runner.record_for(SPEC)
        assert record.provenance is not None
        assert record.provenance["spec_key"] == diskcache.spec_key(SPEC)
        assert record.provenance["seed"] == SPEC.seed

    def test_provenance_survives_json_round_trip(self):
        record = runner.record_for(SPEC)
        clone = RunRecord.from_json(
            json.loads(json.dumps(record.to_json())))
        assert clone.provenance == record.provenance
        assert clone == record

    def test_legacy_record_without_provenance_loads(self):
        doc = runner.record_for(SPEC).to_json()
        doc.pop("provenance")
        legacy = RunRecord.from_json(doc)
        assert legacy.provenance is None
        assert legacy.cycles > 0


# ---------------------------------------------------------------------------
# Record diffing
# ---------------------------------------------------------------------------

class TestDiff:
    def test_same_spec_and_seed_diff_clean(self):
        a = runner.record_for(SPEC)
        runner.clear_cache()
        b = runner.record_for(SPEC)  # recomputed, not recalled
        diff = diff_records(a, b)
        assert not diff.deltas, \
            f"recomputed run must be bit-identical, got {diff.deltas}"
        assert not diff.significant

    def test_different_seeds_flagged_significant(self):
        diff = diff_records(runner.record_for(SPEC),
                            runner.record_for(SPEC_SEED2))
        assert len(diff.significant) >= 1
        paths = {d.path for d in diff.significant}
        assert "provenance.seed" in paths
        assert "provenance.spec_key" in paths
        # Categorical provenance deltas carry no relative magnitude.
        seed_delta = next(d for d in diff.deltas
                          if d.path == "provenance.seed")
        assert seed_delta.rel == 0.0 and seed_delta.significant

    def test_threshold_separates_jitter_from_signal(self):
        a = runner.record_for(SPEC)
        doc = a.to_json()
        doc["cycles"] = int(doc["cycles"] * 1.001)  # 0.1% jitter
        jitter = diff_records(a, RunRecord.from_json(doc))
        cyc = next(d for d in jitter.deltas if d.path == "cycles")
        assert not cyc.significant, "sub-threshold delta is noise"

        doc["cycles"] = int(a.cycles * 1.5)
        signal = diff_records(a, RunRecord.from_json(doc))
        cyc = next(d for d in signal.deltas if d.path == "cycles")
        assert cyc.significant
        assert cyc.rel == pytest.approx(1 / 3)

        # A tighter threshold promotes the jitter to significant.
        strict = diff_records(a, RunRecord.from_json(
            dict(a.to_json(), cycles=int(a.cycles * 1.001))),
            threshold=0.0001)
        assert any(d.path == "cycles" and d.significant
                   for d in strict.deltas)

    def test_significant_deltas_sort_first(self):
        diff = diff_records(runner.record_for(SPEC),
                            runner.record_for(SPEC_SEED2))
        flags = [d.significant for d in diff.deltas]
        assert flags == sorted(flags, reverse=True)

    def test_diff_json_shape(self):
        diff = diff_records(runner.record_for(SPEC),
                            runner.record_for(SPEC_SEED2))
        doc = diff.to_json()
        assert doc["threshold"] == DEFAULT_THRESHOLD
        assert doc["differences"] == len(diff.deltas)
        assert doc["significant"] == len(diff.significant)
        for delta in doc["deltas"]:
            assert {"path", "a", "b", "rel", "significant"} <= set(delta)

    def test_format_diff_marks_significant(self):
        diff = diff_records(runner.record_for(SPEC),
                            runner.record_for(SPEC_SEED2))
        text = format_diff(diff, "a.json", "b.json")
        assert "! provenance.seed" in text
        assert "significant" in text

    def test_format_diff_identical(self):
        a = runner.record_for(SPEC)
        text = format_diff(diff_records(a, a), "x", "y")
        assert "x and y are identical" in text

    def test_format_diff_limit(self):
        diff = diff_records(runner.record_for(SPEC),
                            runner.record_for(SPEC_SEED2))
        assert len(diff.deltas) > 1
        text = format_diff(diff, limit=1)
        assert f"... {len(diff.deltas) - 1} more" in text


class TestLoadRecord:
    def test_loads_bare_record_doc(self, tmp_path):
        record = runner.record_for(SPEC)
        path = tmp_path / "bare.json"
        path.write_text(json.dumps(record.to_json()))
        assert load_record(str(path)) == record

    def test_loads_disk_cache_envelope(self, tmp_path):
        record = runner.record_for(SPEC)
        envelope = {"version": "v-test",
                    "spec": {"benchmark": "fop"},
                    "record": record.to_json()}
        path = tmp_path / "entry.json"
        path.write_text(json.dumps(envelope))
        assert load_record(str(path)) == record

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_record(str(tmp_path / "absent.json"))

    def test_non_record_json_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises((ValueError, KeyError, TypeError)):
            load_record(str(path))
