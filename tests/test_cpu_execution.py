"""Execution semantics of the CPU on compiled guest code.

Every test runs real bytecode through the real pipeline (baseline
compiler -> CPU -> memory hierarchy) with monitoring disabled, and many
run the same program opt-compiled to check compiler equivalence.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.helpers import BASELINE_ONLY, int_main, run_main
from repro.core.config import GCConfig, SystemConfig
from repro.hw.isa import GuestError
from repro.jit.aos import CompilationPlan
from repro.vm.program import Program
from repro.workloads.synth import Fn


def arith(body):
    return int_main(body)


class TestArithmetic:
    def test_iconst_and_add(self):
        assert arith(lambda fn, app: fn.iconst(2).iconst(3).emit("iadd")) == 5

    def test_sub_mul(self):
        assert arith(lambda fn, app:
                     fn.iconst(10).iconst(4).emit("isub")
                       .iconst(3).emit("imul")) == 18

    def test_division_truncates_toward_zero(self):
        assert arith(lambda fn, app: fn.iconst(-7).iconst(2).emit("idiv")) == -3
        assert arith(lambda fn, app: fn.iconst(7).iconst(-2).emit("idiv")) == -3
        assert arith(lambda fn, app: fn.iconst(7).iconst(2).emit("idiv")) == 3

    def test_remainder_sign_follows_dividend(self):
        assert arith(lambda fn, app: fn.iconst(-7).iconst(3).emit("irem")) == -1
        assert arith(lambda fn, app: fn.iconst(7).iconst(-3).emit("irem")) == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(GuestError, match="division by zero"):
            arith(lambda fn, app: fn.iconst(1).iconst(0).emit("idiv"))

    def test_bitwise(self):
        assert arith(lambda fn, app: fn.iconst(0b1100).iconst(0b1010)
                     .emit("iand")) == 0b1000
        assert arith(lambda fn, app: fn.iconst(0b1100).iconst(0b1010)
                     .emit("ior")) == 0b1110
        assert arith(lambda fn, app: fn.iconst(0b1100).iconst(0b1010)
                     .emit("ixor")) == 0b0110

    def test_shifts_mask_to_31(self):
        assert arith(lambda fn, app: fn.iconst(1).iconst(33)
                     .emit("ishl")) == 2  # 33 & 31 == 1
        assert arith(lambda fn, app: fn.iconst(16).iconst(2)
                     .emit("ishr")) == 4

    def test_negate(self):
        assert arith(lambda fn, app: fn.iconst(5).emit("ineg")) == -5

    def test_stack_manipulation(self):
        assert arith(lambda fn, app: fn.iconst(3).emit("dup")
                     .emit("imul")) == 9
        assert arith(lambda fn, app: fn.iconst(1).iconst(2).emit("swap")
                     .emit("isub")) == 1  # 2 - 1
        assert arith(lambda fn, app: fn.iconst(9).iconst(7).emit("pop")) == 9

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    @settings(max_examples=15, deadline=None)
    def test_add_matches_python(self, a, b):
        assert arith(lambda fn, app: fn.iconst(a).iconst(b).emit("iadd")) \
            == a + b


class TestControlFlow:
    def test_counted_loop(self):
        def body(fn, app):
            acc = fn.local()
            fn.iconst(0).istore(acc)
            with fn.loop(10) as i:
                fn.iload(acc).iload(i).emit("iadd").istore(acc)
            fn.iload(acc)
        assert arith(body) == 45

    def test_if_cond(self):
        def body(fn, app):
            out = fn.local()
            fn.iconst(0).istore(out)
            fn.iconst(3).iconst(5)
            with fn.if_cond("lt"):
                fn.iconst(77).istore(out)
            fn.iload(out)
        assert arith(body) == 77

    def test_ifnull_branches(self):
        def body(fn, app):
            out = fn.local()
            fn.iconst(1).istore(out)
            fn.emit("aconst_null")
            skip = fn.fresh_label()
            fn.emit("ifnull", skip)
            fn.iconst(0).istore(out)
            fn.label(skip)
            fn.iload(out)
        assert arith(body) == 1

    def test_nested_loops(self):
        def body(fn, app):
            acc = fn.local()
            fn.iconst(0).istore(acc)
            with fn.loop(5):
                with fn.loop(4):
                    fn.iload(acc).iconst(1).emit("iadd").istore(acc)
            fn.iload(acc)
        assert arith(body) == 20


class TestCallsAndObjects:
    def make_program(self):
        p = Program("t")
        app = p.define_class("App")
        app.add_static("out", "int")
        app.seal()
        return p, app

    def test_static_call_args_and_return(self):
        p, app = self.make_program()
        callee = Fn(p, app, "sub3", args=["int", "int", "int"], returns="int")
        callee.iload(0).iload(1).emit("isub").iload(2).emit("isub").iret()
        sub3 = callee.finish()
        fn = Fn(p, app, "main")
        fn.iconst(100).iconst(30).iconst(7).call(sub3).putstatic(app, "out")
        fn.ret()
        p.set_main(fn.finish())
        run_main(p)
        assert app.static_values[0] == 63

    def test_recursion(self):
        from tests.helpers import self_recursive_method
        p, app = self.make_program()

        def build(asm, method):
            asm.emit("iload", 0)
            asm.emit("iconst", 2)
            asm.emit("if_icmp", "lt", "base")
            asm.emit("iload", 0)
            asm.emit("iconst", 1)
            asm.emit("isub")
            asm.emit("invokestatic", method)
            asm.emit("iload", 0)
            asm.emit("iconst", 2)
            asm.emit("isub")
            asm.emit("invokestatic", method)
            asm.emit("iadd")
            asm.emit("ireturn")
            asm.label("base")
            asm.emit("iload", 0)
            asm.emit("ireturn")

        fib = self_recursive_method(p, app, "fib", args=["int"],
                                    returns="int", build=build)
        fn = Fn(p, app, "main")
        fn.iconst(10).call(fib).putstatic(app, "out")
        fn.ret()
        p.set_main(fn.finish())
        run_main(p)
        assert app.static_values[0] == 55

    def test_virtual_dispatch_and_override(self):
        p, app = self.make_program()
        animal = p.define_class("Animal")
        animal.seal()
        speak = Fn(p, animal, "speak", args=["ref"], returns="int",
                   static=False)
        speak.iconst(1).iret()
        speak.finish()
        dog = p.define_class("Dog", animal)
        dog.seal()
        bark = Fn(p, dog, "speak", args=["ref"], returns="int", static=False)
        bark.iconst(2).iret()
        bark.finish()
        fn = Fn(p, app, "main")
        a, d = fn.local(), fn.local()
        fn.new(animal).rstore(a)
        fn.new(dog).rstore(d)
        fn.rload(a).callv(animal, "speak")
        fn.rload(d).callv(animal, "speak")  # declared Animal, runtime Dog
        fn.iconst(10).emit("imul").emit("iadd")
        fn.putstatic(app, "out")
        fn.ret()
        p.set_main(fn.finish())
        run_main(p)
        assert app.static_values[0] == 21  # 1 + 2*10

    def test_field_roundtrip(self):
        p, app = self.make_program()
        box = p.define_class("Box")
        box.add_field("v", "int")
        box.seal()
        fn = Fn(p, app, "main")
        b = fn.local()
        fn.new(box).rstore(b)
        fn.rload(b).iconst(99).putfield(box, "v")
        fn.rload(b).getfield(box, "v").putstatic(app, "out")
        fn.ret()
        p.set_main(fn.finish())
        run_main(p)
        assert app.static_values[0] == 99

    def test_null_getfield_raises(self):
        p, app = self.make_program()
        box = p.define_class("Box")
        box.add_field("v", "int")
        box.seal()
        fn = Fn(p, app, "main")
        fn.emit("aconst_null").getfield(box, "v").putstatic(app, "out")
        fn.ret()
        p.set_main(fn.finish())
        with pytest.raises(GuestError, match="null getfield"):
            run_main(p)

    def test_array_roundtrip_all_kinds(self):
        for kind, value in (("int", 42), ("char", 65), ("long", 1 << 40),
                            ("byte", 7)):
            p, app = self.make_program()
            fn = Fn(p, app, "main")
            arr = fn.local()
            fn.iconst(4).emit("newarray", kind).rstore(arr)
            fn.rload(arr).iconst(2).iconst(value).emit("arrstore", kind)
            fn.rload(arr).iconst(2).emit("arrload", kind)
            fn.putstatic(app, "out")
            fn.ret()
            p.set_main(fn.finish())
            run_main(p)
            assert app.static_values[0] == value, kind

    def test_array_bounds_raise(self):
        p, app = self.make_program()
        fn = Fn(p, app, "main")
        arr = fn.local()
        fn.iconst(4).emit("newarray", "int").rstore(arr)
        fn.rload(arr).iconst(4).emit("arrload", "int").putstatic(app, "out")
        fn.ret()
        p.set_main(fn.finish())
        with pytest.raises(GuestError, match="out of bounds"):
            run_main(p)

    def test_arraylength(self):
        p, app = self.make_program()
        fn = Fn(p, app, "main")
        fn.iconst(17).emit("newarray", "int").emit("arraylength")
        fn.putstatic(app, "out")
        fn.ret()
        p.set_main(fn.finish())
        run_main(p)
        assert app.static_values[0] == 17

    def test_stack_overflow(self):
        from tests.helpers import self_recursive_method
        p, app = self.make_program()

        def build(asm, method):
            asm.emit("iload", 0)
            asm.emit("invokestatic", method)
            asm.emit("ireturn")

        rec = self_recursive_method(p, app, "rec", args=["int"],
                                    returns="int", build=build)
        fn = Fn(p, app, "main")
        fn.iconst(0).call(rec).putstatic(app, "out")
        fn.ret()
        p.set_main(fn.finish())
        with pytest.raises(GuestError, match="stack overflow"):
            run_main(p)


class TestCompilerEquivalence:
    """Baseline and opt compilers must agree on semantics."""

    def build(self, p, app):
        work = Fn(p, app, "work", args=["int"], returns="int")
        n = 0
        acc = work.local()
        work.iconst(1).istore(acc)
        with work.loop(12) as i:
            work.iload(acc).iload(i).emit("iadd")
            work.iconst(3).emit("imul")
            work.iconst(0xFFFF).emit("iand")
            work.istore(acc)
            work.iload(acc).iconst(100)
            with work.if_cond("gt"):
                work.iload(acc).iconst(7).emit("irem").istore(acc)
        work.iload(acc).iload(n).emit("iadd").iret()
        return work.finish()

    def run_with(self, plan_methods):
        p = Program("t")
        app = p.define_class("App")
        app.add_static("out", "int")
        app.seal()
        work = self.build(p, app)
        fn = Fn(p, app, "main")
        fn.iconst(5).call(work).putstatic(app, "out")
        fn.ret()
        p.set_main(fn.finish())
        run_main(p, plan=CompilationPlan(plan_methods))
        return app.static_values[0]

    def test_baseline_equals_opt(self):
        assert self.run_with([]) == self.run_with(["App.work"])

    @given(st.lists(st.sampled_from(
        ["iadd", "isub", "imul", "iand", "ior", "ixor"]),
        min_size=1, max_size=12),
        st.integers(1, 50))
    @settings(max_examples=15, deadline=None)
    def test_random_expressions_agree(self, ops, seed):
        def make(plan):
            p = Program("t")
            app = p.define_class("App")
            app.add_static("out", "int")
            app.seal()
            work = Fn(p, app, "work", args=["int"], returns="int")
            work.iload(0)
            for k, op in enumerate(ops):
                work.iconst(seed + k).emit(op)
            work.iret()
            w = work.finish()
            fn = Fn(p, app, "main")
            fn.iconst(seed).call(w).putstatic(app, "out")
            fn.ret()
            p.set_main(fn.finish())
            run_main(p, plan=plan)
            return app.static_values[0]
        assert make(BASELINE_ONLY) == make(CompilationPlan(["App.work"]))


class TestCycleAccounting:
    def test_cycles_positive_and_ge_instructions(self):
        p = Program("t")
        app = p.define_class("App")
        app.seal()
        fn = Fn(p, app, "main")
        with fn.loop(100):
            fn.emit("nop")
        fn.ret()
        p.set_main(fn.finish())
        result = run_main(p)
        assert result.instructions > 100
        assert result.cycles >= result.instructions

    def test_memory_traffic_costs_more(self):
        def build(with_fields):
            p = Program("t")
            app = p.define_class("App")
            app.seal()
            box = p.define_class("Box")
            box.add_field("v", "int")
            box.seal()
            fn = Fn(p, app, "main")
            b = fn.local()
            acc = fn.local()
            fn.new(box).rstore(b)
            fn.iconst(0).istore(acc)
            with fn.loop(500):
                if with_fields:
                    fn.rload(b).getfield(box, "v")
                else:
                    fn.iconst(0)
                fn.iload(acc).emit("iadd").istore(acc)
            fn.ret()
            p.set_main(fn.finish())
            return run_main(p, plan=CompilationPlan(["App.main"]))
        # Opt-compiled main: the getfield variant pays cache latencies.
        heavy = build(True)
        light = build(False)
        assert heavy.cycles > light.cycles
