"""Tests for the GC building blocks: size classes, bump, free-list, LOS."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gc.bump import BumpAllocator
from repro.gc.freelist import BLOCK_BYTES, FreeListSpace, OutOfMemory
from repro.gc.los import LargeObjectSpace
from repro.gc.sizeclass import SizeClasses, build_size_classes


class TestSizeClasses:
    def test_paper_default_forty_classes_to_4k(self):
        sc = SizeClasses()
        assert len(sc) == 40
        assert sc.sizes[-1] == 4096

    def test_strictly_increasing(self):
        sc = SizeClasses()
        assert all(a < b for a, b in zip(sc.sizes, sc.sizes[1:]))

    def test_all_sizes_aligned(self):
        sc = SizeClasses()
        assert all(s % 4 == 0 for s in sc.sizes)

    def test_class_for_exact_size(self):
        sc = SizeClasses()
        assert sc.cell_bytes(sc.class_for(8)) == 8
        assert sc.cell_bytes(sc.class_for(4096)) == 4096

    def test_class_for_rounds_up(self):
        sc = SizeClasses()
        idx = sc.class_for(9)
        assert sc.cell_bytes(idx) >= 9
        assert sc.cell_bytes(idx - 1) < 9 if idx > 0 else True

    def test_oversize_returns_none(self):
        sc = SizeClasses()
        assert sc.class_for(4097) is None

    def test_slack(self):
        sc = SizeClasses()
        assert sc.slack(8) == 0
        assert sc.slack(9) == 7
        assert sc.slack(5000) is None

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            SizeClasses().class_for(0)

    def test_build_rejects_tiny_count(self):
        with pytest.raises(ValueError):
            build_size_classes(count=1)

    @given(st.integers(min_value=1, max_value=4096))
    @settings(max_examples=200, deadline=None)
    def test_any_small_size_fits_its_class(self, size):
        sc = SizeClasses()
        idx = sc.class_for(size)
        assert idx is not None
        assert sc.cell_bytes(idx) >= size
        if idx > 0:
            assert sc.cell_bytes(idx - 1) < size


class TestBumpAllocator:
    def test_sequential_addresses(self):
        b = BumpAllocator(0x1000, 256)
        assert b.alloc(16) == 0x1000
        assert b.alloc(16) == 0x1010

    def test_alignment(self):
        b = BumpAllocator(0x1000, 256)
        b.alloc(5)
        assert b.alloc(4) == 0x1008

    def test_exhaustion_returns_none(self):
        b = BumpAllocator(0x1000, 32)
        assert b.alloc(32) is not None
        assert b.alloc(4) is None

    def test_used_remaining(self):
        b = BumpAllocator(0x1000, 64)
        b.alloc(16)
        assert b.used == 16
        assert b.remaining == 48

    def test_reset_and_resize(self):
        b = BumpAllocator(0x1000, 64)
        b.alloc(32)
        b.reset(128)
        assert b.used == 0
        assert b.capacity == 128
        assert b.alloc(128) == 0x1000

    def test_contains(self):
        b = BumpAllocator(0x1000, 64)
        b.alloc(16)
        assert b.contains(0x100F)
        assert not b.contains(0x1010)

    def test_invalid_sizes(self):
        b = BumpAllocator(0x1000, 64)
        with pytest.raises(ValueError):
            b.alloc(0)
        with pytest.raises(ValueError):
            BumpAllocator(0, 0)


class TestFreeList:
    def make(self, region=1 << 20):
        return FreeListSpace(0x2000_0000, region)

    def test_alloc_assigns_cell_of_fitting_class(self):
        fl = self.make()
        cell = fl.alloc(20)
        assert cell.size >= 20
        assert cell.charged == 20

    def test_same_class_cells_do_not_overlap(self):
        fl = self.make()
        a = fl.alloc(24)
        b = fl.alloc(24)
        assert a.addr != b.addr
        assert abs(a.addr - b.addr) >= 24

    def test_free_and_reuse(self):
        fl = self.make()
        a = fl.alloc(24)
        addr = a.addr
        fl.free(a)
        b = fl.alloc(24)
        assert b.addr == addr  # LIFO reuse

    def test_double_free_rejected(self):
        fl = self.make()
        a = fl.alloc(24)
        fl.free(a)
        with pytest.raises(ValueError):
            fl.free(a)

    def test_block_refill_commits_block(self):
        fl = self.make()
        fl.alloc(24)
        assert fl.bytes_committed == BLOCK_BYTES

    def test_bytes_in_use_tracks_cells(self):
        fl = self.make()
        a = fl.alloc(24)
        assert fl.bytes_in_use == a.size
        fl.free(a)
        assert fl.bytes_in_use == 0

    def test_fragmentation_accounting(self):
        fl = self.make()
        a = fl.alloc(9)  # lands in the 16-byte class
        assert fl.internal_fragmentation == a.size - 9
        fl.free(a)
        assert fl.internal_fragmentation == 0

    def test_oversize_rejected(self):
        fl = self.make()
        with pytest.raises(ValueError):
            fl.alloc(5000)

    def test_out_of_memory(self):
        fl = FreeListSpace(0x2000_0000, BLOCK_BYTES)  # room for one block
        fl.alloc(8)
        with pytest.raises(OutOfMemory):
            fl.alloc(4096)  # needs a fresh block of a different class

    def test_max_size_cell(self):
        fl = self.make()
        cell = fl.alloc(4096)
        assert cell.size == 4096

    @given(st.lists(st.integers(min_value=1, max_value=4096), min_size=1,
                    max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_no_live_cells_overlap(self, sizes):
        fl = self.make(region=1 << 24)
        cells = [fl.alloc(s) for s in sizes]
        spans = sorted((c.addr, c.addr + c.size) for c in cells)
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert e1 <= s2

    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=4096),
                              st.booleans()), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_alloc_free_accounting_invariant(self, ops):
        fl = self.make(region=1 << 24)
        live = []
        for size, do_free in ops:
            if do_free and live:
                fl.free(live.pop())
            else:
                live.append(fl.alloc(size))
        assert fl.bytes_in_use == sum(c.size for c in live)
        assert fl.live_cells == len(live)


class TestLOS:
    def test_alloc_page_rounded(self):
        los = LargeObjectSpace(0x4000_0000, 1 << 20)
        a = los.alloc(5000)
        assert a == 0x4000_0000
        assert los.bytes_in_use == 8192

    def test_distinct_allocations(self):
        los = LargeObjectSpace(0x4000_0000, 1 << 20)
        a = los.alloc(4096)
        b = los.alloc(4096)
        assert b == a + 4096

    def test_free_and_reuse(self):
        los = LargeObjectSpace(0x4000_0000, 1 << 20)
        a = los.alloc(8192)
        los.free(a)
        assert los.alloc(8192) == a

    def test_exhaustion_returns_none(self):
        los = LargeObjectSpace(0x4000_0000, 8192)
        assert los.alloc(8192) is not None
        assert los.alloc(4096) is None

    def test_coalescing(self):
        los = LargeObjectSpace(0x4000_0000, 3 * 4096)
        a = los.alloc(4096)
        b = los.alloc(4096)
        c = los.alloc(4096)
        los.free(a)
        los.free(c)
        los.free(b)  # middle free must merge all three extents
        assert los.free_extents() == 1
        assert los.alloc(3 * 4096) == a

    def test_unknown_free_rejected(self):
        los = LargeObjectSpace(0x4000_0000, 1 << 20)
        with pytest.raises(ValueError):
            los.free(0x4000_0000)

    @given(st.lists(st.integers(min_value=1, max_value=5), min_size=1,
                    max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_free_everything_restores_one_extent(self, page_counts):
        los = LargeObjectSpace(0x4000_0000, 1 << 22)
        addrs = [los.alloc(n * 4096) for n in page_counts]
        assert all(a is not None for a in addrs)
        for a in addrs:
            los.free(a)
        assert los.free_extents() == 1
        assert los.bytes_in_use == 0


class TestSizeClassStructure:
    """The MMTk-style structure: 8B steps to 64, 16B to 160, 32B to 256,
    geometric above (the mid-range coarseness carries the paper's
    fragmentation argument)."""

    def test_linear_prefixes(self):
        sc = SizeClasses()
        assert sc.sizes[:8] == [8, 16, 24, 32, 40, 48, 56, 64]
        assert 80 in sc.sizes and 96 in sc.sizes and 160 in sc.sizes
        assert 192 in sc.sizes and 224 in sc.sizes and 256 in sc.sizes

    def test_midrange_slack_exists(self):
        # A combined String(20)+char[](62B) pair of 82 bytes lands in the
        # 96-byte class: 14 bytes of slack — the co-allocation cost.
        sc = SizeClasses()
        assert sc.slack(82) == 14

    def test_geometric_tail_ratio_bounded(self):
        sc = SizeClasses()
        tail = [s for s in sc.sizes if s > 256]
        for a, b in zip(tail, tail[1:]):
            assert 1.05 <= b / a <= 1.35
