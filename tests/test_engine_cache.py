"""The parallel engine and the persistent result cache.

The contract under test: ``jobs`` and the cache layers can change how
fast a result arrives, never what it is.  Records computed in worker
processes, recalled from disk, or replayed across simulated "processes"
must compare equal field-for-field to ones computed inline — and a
warmed cache must leave the harness doing zero simulation work.
"""

import json
import os

import pytest

from repro.harness import engine, runner
from repro.harness.diskcache import DiskCache, code_version, spec_key
from repro.harness.record import RunRecord, SCHEMA_VERSION
from repro.harness.runner import RunSpec, measure


CHEAP = RunSpec(benchmark="fop", heap_mult=1.0, coalloc=False,
                monitoring=False)
CHEAP2 = RunSpec(benchmark="fop", heap_mult=2.0, coalloc=False,
                 monitoring=False)
MONITORED = RunSpec(benchmark="fop", heap_mult=2.0, coalloc=True,
                    monitoring=True)


@pytest.fixture()
def disk(tmp_path):
    """A real DiskCache against a temp root, injected into the runner."""
    cache = DiskCache(root=str(tmp_path), version="v-test")
    runner.clear_cache()
    runner.set_disk_cache(cache)
    yield cache
    runner.set_disk_cache(None)
    runner.clear_cache()


def sim_runs():
    return runner.SIM_RUNS


# ---------------------------------------------------------------------------
# RunRecord portability
# ---------------------------------------------------------------------------

class TestRunRecord:
    def test_json_round_trip_is_lossless(self):
        record = runner.record_for(MONITORED)
        clone = RunRecord.from_json(record.to_json())
        assert clone == record
        # A second hop through an actual JSON string too.
        clone2 = RunRecord.from_json(json.loads(json.dumps(record.to_json())))
        assert clone2 == record

    def test_record_carries_derived_surfaces(self):
        record = runner.record_for(MONITORED)
        assert record.cycles > 0
        assert record.map_sizes[0] > 0, "machine-code size extracted"
        assert record.field_series, "per-field series extracted"
        name = next(iter(record.field_series))
        cumulative = record.cumulative_series(name)
        assert cumulative[-1][1] == sum(n for _, n in record.series(name))
        assert record.reverted_experiments == []

    def test_foreign_schema_rejected(self):
        record = runner.record_for(CHEAP)
        doc = record.to_json()
        doc["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            RunRecord.from_json(doc)


# ---------------------------------------------------------------------------
# Disk cache layer
# ---------------------------------------------------------------------------

class TestDiskCache:
    def test_miss_then_hit(self, disk):
        assert disk.get(CHEAP) is None
        record = runner.record_for(CHEAP)  # computes + stores
        loaded = disk.get(CHEAP)
        assert loaded == record
        # Two misses: the probe above plus record_for's own lookup.
        assert disk.misses == 2 and disk.hits >= 1

    def test_warm_cache_means_zero_simulation_work(self, disk):
        runner.record_for(CHEAP)
        runner.clear_cache()  # drop the memo, keep the disk layer
        before = sim_runs()
        replay = runner.record_for(CHEAP)
        assert sim_runs() == before, "disk hit must not simulate"
        assert replay.cycles > 0

    def test_version_change_invalidates(self, disk, tmp_path):
        record = runner.record_for(CHEAP)
        other = DiskCache(root=str(tmp_path), version="v-other")
        assert other.get(CHEAP) is None, "new code version sees no entries"
        assert disk.get(CHEAP) == record, "old version's entry intact"
        assert other.stats()["stale_entries"] >= 1

    def test_corrupt_entry_recomputed_not_trusted(self, disk, tmp_path):
        runner.record_for(CHEAP)
        runner.clear_cache()
        path = os.path.join(str(tmp_path), "v-test",
                            spec_key(CHEAP) + ".json")
        with open(path, "w") as fh:
            fh.write('{"version": "v-test", "record": {"cyc')  # torn write
        assert disk.get(CHEAP) is None
        assert not os.path.exists(path), "corrupt entry swept"
        before = sim_runs()
        record = runner.record_for(CHEAP)
        assert sim_runs() == before + 1, "recomputed, not trusted"
        assert record.cycles > 0

    def test_clear_and_stats(self, disk):
        runner.record_for(CHEAP)
        runner.record_for(CHEAP2)
        stats = disk.stats()
        assert stats["entries"] == 2 and stats["bytes"] > 0
        removed = disk.clear()
        assert removed == 2
        assert disk.stats()["entries"] == 0

    def test_runner_clear_cache_disk_flag(self, disk):
        runner.record_for(CHEAP)
        runner.clear_cache()  # memo only: disk entry survives
        assert disk.stats()["entries"] == 1
        runner.clear_cache(disk=True)
        assert disk.stats()["entries"] == 0

    def test_code_version_is_stable_within_process(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16

    def test_spec_key_distinguishes_specs(self):
        assert spec_key(CHEAP) != spec_key(CHEAP2)
        assert spec_key(CHEAP) == spec_key(RunSpec(**{
            "benchmark": "fop", "heap_mult": 1.0,
            "coalloc": False, "monitoring": False}))


# ---------------------------------------------------------------------------
# Parallel engine
# ---------------------------------------------------------------------------

class TestEngine:
    def test_resolve_jobs_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert engine.resolve_jobs(3) == 3
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert engine.resolve_jobs() == 5
        assert engine.resolve_jobs(2) == 2, "explicit arg beats env"
        monkeypatch.delenv("REPRO_JOBS")
        assert engine.resolve_jobs() == (os.cpu_count() or 1)
        with pytest.raises(ValueError):
            engine.resolve_jobs(0)

    def test_parallel_equals_serial(self, disk):
        """The acceptance equality: records from worker processes are
        bit-identical (as JSON) to records computed inline."""
        specs = [CHEAP, CHEAP2]
        serial = [r.to_json() for r in engine.run_specs(specs, jobs=1)]
        runner.clear_cache(disk=True)  # force full recompute
        parallel = [r.to_json() for r in engine.run_specs(specs, jobs=2)]
        assert parallel == serial

    def test_run_specs_preserves_order_and_dedupes(self, disk):
        specs = [CHEAP2, CHEAP, CHEAP2]  # duplicate, out of key order
        before = sim_runs()
        records = engine.run_specs(specs, jobs=1)
        assert sim_runs() == before + 2, "duplicate simulated once"
        assert records[0] is records[2]
        assert [r.cycles for r in records] == [records[0].cycles,
                                               records[1].cycles,
                                               records[0].cycles]

    def test_warm_then_measure_is_pure_cache(self, disk):
        missing = engine.warm([CHEAP, CHEAP2], jobs=1)
        assert missing == 2
        before = sim_runs()
        m1 = measure(CHEAP)
        m2 = measure(CHEAP2)
        assert sim_runs() == before, "warmed measure() does no simulation"
        assert m1.cycles_mean > 0 and m2.cycles_mean > 0
        assert engine.warm([CHEAP, CHEAP2], jobs=1) == 0

    def test_parallel_results_cached_to_disk(self, disk):
        engine.run_specs([CHEAP, CHEAP2], jobs=2)
        assert disk.stats()["entries"] == 2, \
            "worker results land in the parent's disk cache"

    def test_measure_repeats_reuse_cached_seeds(self, disk):
        before = sim_runs()
        measure(CHEAP, repeats=2)
        assert sim_runs() == before + 2
        m = measure(CHEAP, repeats=3)
        assert sim_runs() == before + 3, "only the new seed is simulated"
        assert len(m.results) == 3
        cycles = {r.cycles for r in m.results}
        assert len(cycles) >= 1  # seeds may or may not perturb cycles


# ---------------------------------------------------------------------------
# Fleet progress
# ---------------------------------------------------------------------------

class Recorder:
    """Test sink: keeps every JobEvent, remembers close()."""

    def __init__(self):
        self.events = []
        self.closed = False

    def emit(self, event):
        self.events.append(event)

    def close(self):
        self.closed = True

    def kinds(self):
        return [e.kind for e in self.events]


class TestProgress:
    def test_serial_event_sequence(self, disk):
        rec = Recorder()
        engine.run_specs([CHEAP, CHEAP2], jobs=1, progress=rec)
        # All queued events first, then started/finished per job.
        assert rec.kinds() == ["queued", "queued", "started", "finished",
                               "started", "finished"]
        finished = [e for e in rec.events if e.kind == "finished"]
        assert [e.completed for e in finished] == [1, 2]
        assert all(e.total == 2 for e in rec.events)
        assert all(e.wall_s is not None and e.wall_s >= 0
                   for e in finished)
        assert all(e.eta_s is not None for e in finished)
        assert finished[-1].eta_s == 0.0, "nothing left after the last job"
        assert finished[0].benchmark == CHEAP.benchmark
        assert finished[0].spec_key == spec_key(CHEAP)

    def test_warm_engine_emits_cache_hits_only(self, disk):
        engine.run_specs([CHEAP, CHEAP2], jobs=1)
        runner.clear_cache()  # drop memo; disk layer still warm
        rec = Recorder()
        engine.run_specs([CHEAP, CHEAP2], jobs=1, progress=rec)
        assert rec.kinds() == ["cache-hit", "cache-hit"]

    def test_parallel_progress_counts(self, disk):
        rec = Recorder()
        records = engine.run_specs([CHEAP, CHEAP2], jobs=2, progress=rec)
        assert len(records) == 2
        kinds = rec.kinds()
        assert kinds.count("queued") == 2
        assert kinds.count("started") == 2
        assert kinds.count("finished") == 2
        completed = sorted(e.completed for e in rec.events
                           if e.kind == "finished")
        assert completed == [1, 2]

    def test_event_json_shape(self, disk):
        rec = Recorder()
        engine.run_specs([CHEAP], jobs=1, progress=rec)
        for event in rec.events:
            doc = event.to_json()
            assert doc["type"] == "job"
            assert {"kind", "benchmark", "spec", "index", "total",
                    "completed"} <= set(doc)
        finished = rec.events[-1].to_json()
        assert "wall_s" in finished and "eta_s" in finished

    def test_jsonl_progress_appends(self, tmp_path, disk):
        path = tmp_path / "logs" / "events.jsonl"  # parent auto-created
        sink = engine.JsonlProgress(str(path))
        engine.run_specs([CHEAP], jobs=1, progress=sink)
        engine.run_specs([CHEAP], jobs=1, progress=sink)  # memo hit
        sink.close()
        docs = [json.loads(line)
                for line in path.read_text().splitlines()]
        assert [d["kind"] for d in docs] == ["queued", "started",
                                             "finished", "cache-hit"]
        assert all(d["type"] == "job" for d in docs)

    def test_stderr_progress_renders_lines(self, disk):
        import io

        stream = io.StringIO()
        engine.run_specs([CHEAP], jobs=1,
                         progress=engine.StderrProgress(stream))
        lines = stream.getvalue().splitlines()
        assert len(lines) == 3
        assert all(line.startswith("[engine]") for line in lines)
        assert "finished fop" in lines[-1] and "1/1" in lines[-1]

    def test_default_sink_installed_and_cleared(self, disk):
        rec = Recorder()
        engine.set_default_progress(rec)
        try:
            engine.run_specs([CHEAP], jobs=1)
        finally:
            engine.set_default_progress(None)
        assert "finished" in rec.kinds()
        explicit = Recorder()
        engine.set_default_progress(rec)
        try:
            count = len(rec.events)
            runner.clear_cache()
            engine.run_specs([CHEAP], jobs=1, progress=explicit)
        finally:
            engine.set_default_progress(None)
        assert explicit.events, "explicit sink receives the events"
        assert len(rec.events) == count, "explicit argument beats default"
        engine.run_specs([CHEAP], jobs=1)
        assert len(rec.events) == count, "cleared default stays silent"

    def test_tee_fans_out_and_closes(self, disk):
        a, b = Recorder(), Recorder()
        tee = engine.TeeProgress(a, b, None)  # None sinks dropped
        runner.clear_cache(disk=True)
        engine.run_specs([CHEAP], jobs=1, progress=tee)
        assert a.kinds() == b.kinds() != []
        tee.close()
        assert a.closed and b.closed

    def test_progress_does_not_perturb_results(self, disk):
        quiet = [r.to_json() for r in engine.run_specs([CHEAP], jobs=1)]
        runner.clear_cache(disk=True)
        noisy = [r.to_json() for r in engine.run_specs(
            [CHEAP], jobs=1, progress=Recorder())]
        assert noisy == quiet


class TestEventTsAndBatch:
    """Additive JobEvent fields: monotonic ``ts`` and ``batch`` tag."""

    def test_ts_stamped_and_serialized(self):
        import time

        before = time.monotonic()
        event = engine.JobEvent("queued", "fop", "k", 0, 1)
        after = time.monotonic()
        assert before <= event.ts <= after
        doc = event.to_json()
        assert doc["ts"] == round(event.ts, 4)

    def test_explicit_ts_preserved(self):
        event = engine.JobEvent("queued", "fop", "k", 0, 1, ts=12.5)
        assert event.to_json()["ts"] == 12.5

    def test_batch_omitted_when_unset(self, disk):
        rec = Recorder()
        engine.run_specs([CHEAP], jobs=1, progress=rec)
        for event in rec.events:
            assert event.batch is None
            assert "batch" not in event.to_json(), \
                "untagged streams must serialize exactly as before"

    def test_batch_tags_every_event(self, disk):
        rec = Recorder()
        runner.clear_cache(disk=True)
        engine.run_specs([CHEAP, CHEAP2], jobs=1, progress=rec,
                         batch="b7")
        assert rec.events, "sanity"
        assert all(e.batch == "b7" for e in rec.events)
        assert all(e.to_json()["batch"] == "b7" for e in rec.events)
        # Cache hits are tagged too.
        rec2 = Recorder()
        engine.run_specs([CHEAP], jobs=1, progress=rec2, batch="b8")
        assert rec2.kinds() == ["cache-hit"]
        assert rec2.events[0].batch == "b8"

    def test_sharded_batch_tagging(self, disk):
        rec = Recorder()
        runner.clear_cache(disk=True)
        engine.run_specs_sharded([CHEAP], leg_cycles=200_000, jobs=1,
                                 progress=rec, batch="b9")
        assert rec.events
        assert all(e.batch == "b9" for e in rec.events)


class TestProgressRobustness:
    """Satellite hardening: lock-guarded default sink, safe tee close."""

    def test_tee_close_survives_failing_sink(self):
        class Exploding:
            closed = False

            def emit(self, event):
                pass

            def close(self):
                raise OSError("disk full")

        a, boom, b = Recorder(), Exploding(), Recorder()
        tee = engine.TeeProgress(a, boom, b)
        with pytest.raises(OSError, match="disk full"):
            tee.close()
        assert a.closed and b.closed, \
            "one failing sink must not skip the rest"

    def test_tee_close_reports_first_of_many_errors(self):
        class Exploding:
            def __init__(self, message):
                self.message = message

            def emit(self, event):
                pass

            def close(self):
                raise ValueError(self.message)

        tee = engine.TeeProgress(Exploding("first"), Exploding("second"))
        with pytest.raises(ValueError, match="first"):
            tee.close()

    def test_default_progress_thread_safety(self, disk):
        """Concurrent set/resolve must never corrupt the default sink
        (the accessors are lock-guarded)."""
        import threading

        rec = Recorder()
        stop = threading.Event()
        errors = []

        def churn():
            try:
                while not stop.is_set():
                    engine.set_default_progress(rec)
                    engine.set_default_progress(None)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=churn) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(50):
                engine.run_specs([CHEAP], jobs=1)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)
        engine.set_default_progress(None)
        assert not errors


# ---------------------------------------------------------------------------
# ETA estimation (degenerate batches: all cache hits, zero wall time)
# ---------------------------------------------------------------------------

class TestEtaEstimate:
    def test_normal_pace(self):
        assert engine.estimate_eta(10.0, 2, 4) == pytest.approx(10.0)

    def test_nothing_completed_yet_has_no_eta(self):
        assert engine.estimate_eta(5.0, 0, 4) is None

    def test_batch_done_is_zero(self):
        assert engine.estimate_eta(5.0, 4, 4) == 0.0
        assert engine.estimate_eta(0.0, 0, 0) == 0.0

    def test_zero_elapsed_gives_zero_not_nan(self):
        # All-cache-hit batches finish in ~0 wall time; the ETA must
        # come back 0.0, never nan/inf.
        eta = engine.estimate_eta(0.0, 2, 4)
        assert eta == 0.0

    def test_non_finite_or_negative_elapsed_suppressed(self):
        assert engine.estimate_eta(float("inf"), 2, 4) is None
        assert engine.estimate_eta(float("nan"), 2, 4) is None
        assert engine.estimate_eta(-1.0, 2, 4) is None

    def test_event_json_drops_non_finite_fields(self):
        event = engine.JobEvent(kind="finished", benchmark="fop",
                                spec_key="k" * 24, index=0, total=2,
                                completed=1, wall_s=float("inf"),
                                eta_s=float("nan"))
        doc = event.to_json()
        assert "wall_s" not in doc and "eta_s" not in doc
        event.wall_s, event.eta_s = 1.25, 3.0
        doc = event.to_json()
        assert doc["wall_s"] == 1.25 and doc["eta_s"] == 3.0

    def test_stderr_progress_never_prints_non_finite_eta(self):
        import io

        stream = io.StringIO()
        sink = engine.StderrProgress(stream)
        sink.emit(engine.JobEvent(kind="finished", benchmark="fop",
                                  spec_key="k" * 24, index=0, total=3,
                                  completed=1, wall_s=0.5,
                                  eta_s=float("inf")))
        line = stream.getvalue()
        assert "inf" not in line and "nan" not in line
        assert "eta" not in line

    def test_all_cache_hit_batch_emits_clean_events(self, disk):
        engine.run_specs([CHEAP, CHEAP2], jobs=1)
        runner.clear_cache()  # drop memo; disk layer stays warm
        rec = Recorder()
        engine.run_specs([CHEAP, CHEAP2], jobs=1, progress=rec)
        assert rec.kinds() == ["cache-hit", "cache-hit"]
        for event in rec.events:
            doc = json.dumps(event.to_json())
            assert "Infinity" not in doc and "NaN" not in doc


# ---------------------------------------------------------------------------
# Cache prune dry-run
# ---------------------------------------------------------------------------

class TestPruneDryRun:
    def seed(self, disk, tmp_path):
        """Two current entries plus one stale-version entry."""
        runner.record_for(CHEAP)
        runner.record_for(CHEAP2)
        stale = DiskCache(root=str(tmp_path), version="v-stale")
        stale.put(CHEAP, runner.record_for(CHEAP))

    def test_dry_run_plans_without_deleting(self, disk, tmp_path):
        self.seed(disk, tmp_path)
        before = disk.stats()
        plan = disk.prune(dry_run=True)
        assert plan["removed_stale"] == 1
        assert plan["removed_current"] == 0
        assert len(plan["would_remove"]) == 1
        assert os.path.exists(plan["would_remove"][0])
        assert disk.stats() == before, "dry run must not touch the cache"

    def test_dry_run_byte_budget_matches_real_prune(self, disk, tmp_path):
        self.seed(disk, tmp_path)
        plan = disk.prune(max_bytes=0, dry_run=True)
        assert plan["removed_current"] == 2
        assert len(plan["would_remove"]) == 3  # 1 stale + 2 evicted
        assert disk.stats()["entries"] == 2, "still intact"
        real = disk.prune(max_bytes=0)
        assert "would_remove" not in real
        assert (real["removed_stale"], real["removed_current"]) \
            == (plan["removed_stale"], plan["removed_current"])
        assert real["bytes"] == plan["bytes"] == 0
        assert disk.stats()["entries"] == 0

    def test_real_prune_removes_exactly_the_planned_files(self, disk,
                                                          tmp_path):
        self.seed(disk, tmp_path)
        planned = set(disk.prune(max_bytes=0, dry_run=True)["would_remove"])
        disk.prune(max_bytes=0)
        assert planned and not any(os.path.exists(p) for p in planned)
