"""Tests for the paper's core: interest analysis, sample mapping, the
online monitor, the feedback engine, and the controller."""

import pytest

from repro.core.config import MonitorConfig, PerfmonConfig
from repro.core.controller import OnlineOptimizationController
from repro.core.feedback import FeedbackEngine
from repro.core.interest import analyze_compiled_method, analyze_function
from repro.core.mapping import SampleResolver
from repro.core.monitor import OnlineMonitor
from repro.jit.baseline import compile_baseline
from repro.jit.codecache import CodeCache
from repro.jit.hir import build_hir
from repro.jit.opt import compile_opt
from repro.vm.program import Program
from repro.workloads.synth import Fn


def chase_program():
    """The paper's Figure 1 shape: p.y.i."""
    p = Program("t")
    app = p.define_class("App")
    app.seal()
    a = p.define_class("A")
    a.add_field("y", "ref")
    a.add_field("i", "int")
    a.seal()
    fn = Fn(p, app, "foo", args=["ref"], returns="int")
    fn.rload(0).getfield(a, "y").getfield(a, "i").iret()
    return p, a, fn.finish()


class TestInterestAnalysis:
    def test_figure1_pair(self):
        """The load of field i is mapped to the reference field A::y."""
        p, a, method = chase_program()
        func = build_hir(method)
        table = analyze_function(func)
        assert len(table) == 1
        (field,) = table.values()
        assert field.qualified_name == "A::y"

    def test_array_access_through_field(self):
        p = Program("t")
        app = p.define_class("App")
        app.seal()
        holder = p.define_class("Holder")
        holder.add_field("data", "ref")
        holder.seal()
        fn = Fn(p, app, "get", args=["ref"], returns="int")
        fn.rload(0).getfield(holder, "data").iconst(0).emit("arrload", "int")
        fn.iret()
        table = analyze_function(build_hir(fn.finish()))
        assert [f.qualified_name for f in table.values()] == ["Holder::data"]

    def test_base_from_parameter_not_interesting(self):
        p = Program("t")
        app = p.define_class("App")
        app.seal()
        a = p.define_class("A")
        a.add_field("i", "int")
        a.seal()
        fn = Fn(p, app, "get", args=["ref"], returns="int")
        fn.rload(0).getfield(a, "i").iret()
        assert analyze_function(build_hir(fn.finish())) == {}

    def test_base_from_array_load_not_interesting(self):
        p = Program("t")
        app = p.define_class("App")
        app.seal()
        a = p.define_class("A")
        a.add_field("i", "int")
        a.seal()
        fn = Fn(p, app, "get", args=["ref"], returns="int")
        fn.rload(0).iconst(0).emit("arrload", "ref").getfield(a, "i").iret()
        assert analyze_function(build_hir(fn.finish())) == {}

    def test_virtual_call_header_access_interesting(self):
        p = Program("t")
        app = p.define_class("App")
        app.seal()
        a = p.define_class("A")
        a.add_field("peer", "ref")
        a.seal()
        m = Fn(p, a, "go", args=["ref"], returns="int", static=False)
        m.iconst(1).iret()
        m.finish()
        fn = Fn(p, app, "call", args=["ref"], returns="int")
        fn.rload(0).getfield(a, "peer").callv(a, "go").iret()
        table = analyze_function(build_hir(fn.finish()))
        assert [f.qualified_name for f in table.values()] == ["A::peer"]

    def test_baseline_methods_not_analyzed(self):
        p, a, method = chase_program()
        cm = compile_baseline(method)
        assert analyze_compiled_method(cm) == {}


class TestSampleResolver:
    def setup_resolver(self):
        p, a, method = chase_program()
        cache = CodeCache()
        cm = cache.install(compile_opt(method))
        resolver = SampleResolver(cache)
        resolver.register_method(cm)
        return resolver, cm, a

    def test_foreign_eip_dropped(self):
        resolver, cm, a = self.setup_resolver()
        assert resolver.resolve(0x42) is None
        assert resolver.stats.dropped_foreign == 1

    def test_baseline_method_dropped(self):
        p, a, method = chase_program()
        cache = CodeCache()
        base_cm = cache.install(compile_baseline(method))
        resolver = SampleResolver(cache)
        resolver.register_method(base_cm)
        assert resolver.resolve(base_cm.code_addr) is None
        assert resolver.stats.dropped_baseline == 1

    def test_interesting_sample_attributed(self):
        resolver, cm, a = self.setup_resolver()
        interest = resolver.interest_table(cm)
        ir_id = next(iter(interest))
        pc = cm.ir_map.index(ir_id)
        resolved = resolver.resolve(cm.eip_of_pc(pc))
        assert resolved is not None
        assert resolved.field.qualified_name == "A::y"
        assert resolver.stats.attributed == 1

    def test_uninteresting_sample_resolved_without_field(self):
        resolver, cm, a = self.setup_resolver()
        interest = resolver.interest_table(cm)
        boring_pc = next(pc for pc in range(len(cm.code))
                         if cm.ir_map[pc] not in interest)
        resolved = resolver.resolve(cm.eip_of_pc(boring_pc))
        assert resolved is not None
        assert resolved.field is None
        assert resolver.stats.unattributed == 1


class TestOnlineMonitor:
    def fields(self):
        p = Program("t")
        a = p.define_class("A")
        f1 = a.add_field("x", "ref")
        f2 = a.add_field("y", "ref")
        a.seal()
        return a, f1, f2

    def test_weighted_recording(self):
        _, f1, _ = self.fields()
        mon = OnlineMonitor(MonitorConfig())
        mon.record(f1, weight=250)
        mon.record(f1, weight=250)
        assert mon.cumulative[f1] == 500
        assert mon.sample_counts[f1] == 2

    def test_hot_field_ranking(self):
        a, f1, f2 = self.fields()
        mon = OnlineMonitor(MonitorConfig())
        mon.record(f1, 10)
        mon.record(f2, 10)
        mon.record(f2, 10)
        assert mon.hot_field(a) is f2
        assert [f for f, _ in mon.ranked_fields(a)] == [f2, f1]

    def test_hot_field_threshold_uses_samples(self):
        a, f1, _ = self.fields()
        mon = OnlineMonitor(MonitorConfig())
        mon.record(f1, weight=10_000)  # one huge sample
        assert mon.hot_field(a, min_samples=2) is None
        mon.record(f1, weight=1)
        assert mon.hot_field(a, min_samples=2) is f1

    def test_periods_and_series(self):
        _, f1, _ = self.fields()
        mon = OnlineMonitor(MonitorConfig())
        mon.record(f1, 5)
        mon.close_period(100)
        mon.record(f1, 7)
        mon.close_period(200)
        mon.close_period(300)  # empty period
        assert mon.series(f1) == [(100, 5), (200, 7), (300, 0)]
        assert mon.cumulative_series(f1) == [(100, 5), (200, 12), (300, 12)]

    def test_moving_average(self):
        mon = OnlineMonitor(MonitorConfig(moving_average_window=3))
        assert mon.moving_average([3, 6, 9, 12]) == [3.0, 4.5, 6.0, 9.0]

    def test_recent_rate(self):
        _, f1, _ = self.fields()
        mon = OnlineMonitor(MonitorConfig(moving_average_window=2))
        mon.record(f1, 4)
        mon.close_period(1)
        mon.record(f1, 8)
        mon.close_period(2)
        assert mon.recent_rate(f1) == 6.0


class TestFeedbackEngine:
    def run_engine(self, rates, patience=3, threshold=0.25):
        _, f1, _ = TestOnlineMonitor().fields()
        cfg = MonitorConfig(revert_patience=patience,
                            revert_threshold=threshold,
                            moving_average_window=1)
        mon = OnlineMonitor(cfg)
        engine = FeedbackEngine(mon, cfg)
        # Two baseline periods at rate 10.
        for _ in range(2):
            mon.record(f1, 10)
            mon.close_period(0)
        reverted = []
        exp = engine.begin_experiment("t", f1, lambda: reverted.append(True))
        for rate in rates:
            if rate:
                mon.record(f1, rate)
            mon.close_period(0)
            engine.on_period()
        return exp, reverted

    def test_sustained_regression_reverts(self):
        exp, reverted = self.run_engine([20, 20, 20])
        assert reverted == [True]
        assert exp.reverted and not exp.active

    def test_brief_spike_tolerated(self):
        exp, reverted = self.run_engine([20, 10, 20, 10, 20, 10])
        assert reverted == []
        assert exp.active

    def test_improvement_never_reverts(self):
        exp, reverted = self.run_engine([5, 5, 5, 5])
        assert reverted == []

    def test_threshold_respected(self):
        # +20% is below the 25% threshold: no revert.
        exp, reverted = self.run_engine([12, 12, 12, 12])
        assert reverted == []


class TestController:
    def make(self, auto=False):
        p, a, method = chase_program()
        cache = CodeCache()
        cm = cache.install(compile_opt(method))
        charged = []
        intervals = []
        controller = OnlineOptimizationController(
            cache, MonitorConfig(), PerfmonConfig(),
            charge=charged.append,
            set_sampling_interval=intervals.append,
            auto_interval=auto)
        controller.on_method_compiled(cm)
        interest = controller.resolver.interest_table(cm)
        ir_id = next(iter(interest))
        hot_eip = cm.eip_of_pc(cm.ir_map.index(ir_id))
        return controller, cm, a, hot_eip, charged, intervals

    def test_batch_attribution_and_cost(self):
        controller, cm, a, hot_eip, charged, _ = self.make()
        n = controller.process_samples([hot_eip] * 5)
        assert n == 5
        assert charged == [PerfmonConfig().map_cost * 5]

    def test_hot_field_guidance_threshold(self):
        controller, cm, a, hot_eip, _, _ = self.make()
        need = controller.min_samples_for_guidance
        controller.process_samples([hot_eip] * (need - 1))
        assert controller.hot_field(a) is None
        controller.process_samples([hot_eip])
        assert controller.hot_field(a).qualified_name == "A::y"

    def test_auto_interval_halves_when_silent(self):
        controller, *_, intervals = self.make(auto=True)
        before = controller.current_interval
        controller.on_period(1000)
        assert controller.current_interval == before // 2
        assert intervals[-1] == before // 2

    def test_auto_interval_raises_when_flooded(self):
        controller, cm, a, hot_eip, _, intervals = self.make(auto=True)
        controller.process_samples([hot_eip] * 500)
        before = controller.current_interval
        controller.on_period(1000)
        assert controller.current_interval > before

    def test_summary_fields(self):
        controller, cm, a, hot_eip, _, _ = self.make()
        controller.process_samples([hot_eip, 0x1])
        summary = controller.summary()
        assert summary["attributed"] == 1
        assert summary["dropped_foreign"] == 1
        assert summary["interest_pairs"] == 1


class TestPhaseDetection:
    def make(self, rates):
        _, f1, _ = TestOnlineMonitor().fields()
        mon = OnlineMonitor(MonitorConfig(moving_average_window=3))
        for rate in rates:
            if rate:
                mon.record(f1, rate)
            mon.close_period(0)
        return mon, f1

    def test_level_shift_detected(self):
        mon, f1 = self.make([10] * 8 + [50] * 8)
        changes = mon.detect_phase_changes(f1)
        assert changes
        assert 6 <= changes[0] <= 10  # near the true shift at period 8

    def test_steady_rate_reports_nothing(self):
        mon, f1 = self.make([10] * 16)
        assert mon.detect_phase_changes(f1) == []

    def test_small_drift_below_threshold_ignored(self):
        mon, f1 = self.make([10] * 8 + [12] * 8)
        assert mon.detect_phase_changes(f1, threshold=0.5) == []

    def test_two_phases_both_found(self):
        mon, f1 = self.make([10] * 8 + [60] * 8 + [10] * 8)
        changes = mon.detect_phase_changes(f1)
        assert len(changes) >= 2

    def test_short_series_returns_empty(self):
        mon, f1 = self.make([10, 10])
        assert mon.detect_phase_changes(f1) == []


class TestMethodAttribution:
    def test_resolved_samples_credit_methods(self):
        controller, cm, a, hot_eip, _, _ = TestController().make()
        controller.process_samples([hot_eip] * 4)
        ranked = controller.monitor.ranked_methods()
        assert ranked
        assert ranked[0][0] is cm.method

    def test_dropped_samples_credit_nothing(self):
        controller, cm, a, hot_eip, _, _ = TestController().make()
        controller.process_samples([0x1, 0x2])  # foreign EIPs
        assert controller.monitor.ranked_methods() == []

    def test_weighting_matches_interval(self):
        controller, cm, a, hot_eip, _, _ = TestController().make()
        controller.current_interval = 500
        controller.process_samples([hot_eip])
        assert controller.monitor.method_events[cm.method] == 500
