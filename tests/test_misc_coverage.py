"""Coverage for smaller APIs: GC stats, monitor class series, workload
metadata used by the oracle ablation, and the ablation helpers."""

import pytest

from repro.core.config import MonitorConfig
from repro.core.monitor import OnlineMonitor
from repro.gc.stats import GCStats
from repro.harness import ablations as ab
from repro.vm.model import ClassInfo
from repro.workloads import suite


class TestGCStats:
    def test_note_coalloc_accounting(self):
        stats = GCStats()
        stats.note_coalloc("String")
        stats.note_coalloc("String")
        stats.note_coalloc("Row")
        assert stats.coalloc_pairs == 3
        assert stats.coallocated_objects == 6
        assert stats.coalloc_by_class == {"String": 2, "Row": 1}

    def test_summary_mentions_key_numbers(self):
        stats = GCStats(minor_gcs=3, full_gcs=1)
        stats.note_coalloc("A")
        text = stats.summary()
        assert "3 minor" in text and "1 full" in text
        assert "2 objs" in text


class TestMonitorClassSeries:
    def test_class_series_sums_fields(self):
        k = ClassInfo("A")
        f1 = k.add_field("x", "ref")
        f2 = k.add_field("y", "ref")
        k.seal()
        other = ClassInfo("B")
        f3 = other.add_field("z", "ref")
        other.seal()
        mon = OnlineMonitor(MonitorConfig())
        mon.record(f1, 5)
        mon.record(f2, 7)
        mon.record(f3, 100)  # different class: excluded
        mon.close_period(10)
        assert mon.class_series(k) == [(10, 12)]
        assert mon.class_series(other) == [(10, 100)]


class TestWorkloadMetadata:
    @pytest.mark.parametrize("name", ["db", "jess", "pseudojbb", "bloat"])
    def test_hot_fields_resolve(self, name):
        """The declared hot fields (used by the static-oracle ablation)
        must name real reference fields."""
        workload = suite.build(name)
        for qualified in workload.hot_fields:
            class_name, field_name = qualified.split("::")
            klass = workload.program.klass(class_name)
            field = klass.field(field_name)
            assert field.is_ref

    def test_min_heaps_fit_plans(self):
        """Every benchmark must complete at its declared minimum heap
        under both collectors (spot-check the two smallest)."""
        from repro.core.config import GCConfig, SystemConfig
        from repro.vm.vmcore import run_program

        for name in ("fop", "antlr"):
            for plan_name in ("genms", "gencopy"):
                w = suite.build(name)
                cfg = SystemConfig(monitoring=False, gc_plan=plan_name,
                                   gc=GCConfig(heap_bytes=w.min_heap_bytes))
                result = run_program(w.program, cfg,
                                     compilation_plan=w.plan)
                assert result.cycles > 0


class TestAblationHelpers:
    def test_prefetcher_ablation_structure(self):
        result = ab.prefetcher_ablation("fop")
        assert result.cycles_with > 0
        assert result.cycles_without >= result.cycles_with * 0.99
        assert isinstance(result.slowdown_without, float)

    def test_oracle_ablation_on_small_benchmark(self):
        result = ab.static_oracle_ablation("fop", heap_mult=4.0)
        assert result.baseline_cycles > 0
        # The oracle co-allocates at least as much as online guidance.
        assert result.oracle_coalloc >= result.online_coalloc
