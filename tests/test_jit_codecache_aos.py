"""Tests for the code cache (sorted method table), map-size model, and
the adaptive optimization system."""

import pytest

from repro.core.config import JITConfig
from repro.gc import layout
from repro.jit.aos import AdaptiveOptimizationSystem, CompilationPlan
from repro.jit.baseline import compile_baseline
from repro.jit.codecache import CodeCache
from repro.jit.maps import corpus_map_sizes, method_map_sizes
from repro.jit.opt import compile_opt
from repro.vm.program import Program
from repro.workloads.synth import Fn


def make_methods(n=3, body=6):
    p = Program("t")
    app = p.define_class("App")
    app.seal()
    methods = []
    for k in range(n):
        fn = Fn(p, app, f"m{k}", args=["int"], returns="int")
        fn.iload(0)
        for _ in range(body):
            fn.iconst(k + 1).emit("iadd")
        fn.iret()
        methods.append(fn.finish())
    return p, methods


class TestCodeCache:
    def test_install_assigns_immortal_addresses(self):
        _, methods = make_methods()
        cache = CodeCache()
        cms = [cache.install(compile_baseline(m)) for m in methods]
        for cm in cms:
            assert layout.in_code_space(cm.code_addr)
        addrs = [cm.code_addr for cm in cms]
        assert addrs == sorted(addrs)
        # No overlap.
        for a, b in zip(cms, cms[1:]):
            assert a.end_addr <= b.code_addr

    def test_lookup_finds_containing_method(self):
        _, methods = make_methods()
        cache = CodeCache()
        cms = [cache.install(compile_baseline(m)) for m in methods]
        target = cms[1]
        eip = target.code_addr + 4 * (len(target.code) // 2)
        assert cache.lookup(eip) is target

    def test_lookup_first_and_last_instruction(self):
        _, methods = make_methods(n=1)
        cache = CodeCache()
        cm = cache.install(compile_baseline(methods[0]))
        assert cache.lookup(cm.code_addr) is cm
        assert cache.lookup(cm.end_addr - 4) is cm
        assert cache.lookup(cm.end_addr) is not cm

    def test_lookup_outside_code_space_returns_none(self):
        cache = CodeCache()
        assert cache.lookup(0x1234) is None           # "kernel space"
        assert cache.lookup(layout.NURSERY_BASE) is None

    def test_stale_code_tracked_not_removed(self):
        _, methods = make_methods(n=1)
        cache = CodeCache()
        base = cache.install(compile_baseline(methods[0]))
        opt = cache.install(compile_opt(methods[0]))
        cache.note_replaced(base)
        assert cache.stale_bytes == base.code_bytes
        # Both versions remain resolvable (code never moves).
        assert cache.lookup(base.code_addr) is base
        assert cache.lookup(opt.code_addr) is opt

    def test_pc_eip_roundtrip(self):
        _, methods = make_methods(n=1)
        cache = CodeCache()
        cm = cache.install(compile_baseline(methods[0]))
        for pc in range(len(cm.code)):
            assert cm.pc_of_eip(cm.eip_of_pc(pc)) == pc

    def test_bytecode_index_lookup(self):
        _, methods = make_methods(n=1)
        cache = CodeCache()
        cm = cache.install(compile_baseline(methods[0]))
        assert cm.bytecode_index(cm.code_addr) == 0


class TestMapSizes:
    def test_mc_maps_cover_every_instruction(self):
        _, methods = make_methods(n=1)
        cm = compile_baseline(methods[0])
        sizes = method_map_sizes(cm)
        assert sizes.machine_code == len(cm.code) * 4
        assert sizes.mc_maps > sizes.machine_code  # the paper's overhead

    def test_corpus_aggregation(self):
        _, methods = make_methods(n=4)
        cms = [compile_baseline(m) for m in methods]
        total = corpus_map_sizes(cms)
        assert total.machine_code == sum(
            method_map_sizes(cm).machine_code for cm in cms)

    def test_kb_rounding(self):
        _, methods = make_methods(n=1)
        sizes = method_map_sizes(compile_baseline(methods[0]))
        kb = sizes.kb()
        assert all(isinstance(v, int) for v in kb)


class TestAOS:
    def make(self, **over):
        return AdaptiveOptimizationSystem(JITConfig(**over))

    def test_hot_method_selected(self):
        _, methods = make_methods(n=1)
        aos = self.make(hot_samples=3)
        for _ in range(5):
            aos.sample(methods[0])
        assert methods[0] in aos.poll_decisions()

    def test_cold_method_not_selected(self):
        _, methods = make_methods(n=1)
        aos = self.make(hot_samples=10)
        aos.sample(methods[0])
        assert aos.poll_decisions() == []

    def test_decision_made_once(self):
        _, methods = make_methods(n=1)
        aos = self.make(hot_samples=2)
        for _ in range(10):
            aos.sample(methods[0])
        assert aos.poll_decisions() == [methods[0]]
        assert aos.poll_decisions() == []

    def test_cost_benefit_blocks_huge_cold_methods(self):
        # A very large method needs more evidence before recompilation
        # pays off.
        p = Program("t")
        app = p.define_class("App")
        app.seal()
        fn = Fn(p, app, "huge", args=["int"], returns="int")
        fn.iload(0)
        for _ in range(4000):
            fn.iconst(1).emit("iadd")
        fn.iret()
        huge = fn.finish()
        aos = self.make(hot_samples=2)
        for _ in range(2):
            aos.sample(huge)
        assert aos.poll_decisions() == []  # benefit < compile cost

    def test_none_samples_counted_only_in_total(self):
        aos = self.make()
        aos.sample(None)
        assert aos.total_samples == 1
        assert aos.samples == {}

    def test_hotness_fraction(self):
        _, methods = make_methods(n=2)
        aos = self.make()
        aos.sample(methods[0])
        aos.sample(methods[0])
        aos.sample(methods[1])
        assert aos.hotness(methods[0]) == pytest.approx(2 / 3)

    def test_recorded_plan(self):
        _, methods = make_methods(n=1)
        aos = self.make(hot_samples=2)
        for _ in range(5):
            aos.sample(methods[0])
        aos.poll_decisions()
        plan = aos.recorded_plan()
        assert methods[0] in plan


class TestCompilationPlan:
    def test_contains_by_qualified_name(self):
        _, methods = make_methods(n=2)
        plan = CompilationPlan([methods[0].qualified_name])
        assert methods[0] in plan
        assert methods[1] not in plan

    def test_add_dedupes(self):
        _, methods = make_methods(n=1)
        plan = CompilationPlan()
        plan.add(methods[0]).add(methods[0].qualified_name)
        assert len(plan) == 1
