"""Tests for normal counting mode and instrumentation profiling."""

import pytest

from tests.helpers import BASELINE_ONLY
from repro.core.config import GCConfig, SystemConfig
from repro.core.counting import (
    COUNTER_READ_COST,
    CountingSession,
    MethodProfile,
    MethodProfiler,
)
from repro.hw.events import EventCounters
from repro.jit.aos import CompilationPlan
from repro.vm.program import Program
from repro.vm.vmcore import run_program
from repro.workloads.synth import Fn


class TestCountingSession:
    def test_delta_reporting(self):
        counters = EventCounters()
        session = CountingSession(counters, events=["L1D_MISS", "CYCLES"])
        counters.add("L1D_MISS", 5)
        session.start()
        counters.add("L1D_MISS", 12)
        counters.add("CYCLES", 100)
        deltas = session.stop()
        assert deltas == {"L1D_MISS": 12, "CYCLES": 100}

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            CountingSession(EventCounters()).stop()

    def test_restartable(self):
        counters = EventCounters()
        session = CountingSession(counters, events=["LOADS"])
        session.start()
        counters.add("LOADS", 3)
        assert session.stop() == {"LOADS": 3}
        session.start()
        counters.add("LOADS", 4)
        assert session.stop() == {"LOADS": 4}

    def test_compare_transformations(self):
        before = {"L1D_MISS": 100, "CYCLES": 1000}
        after = {"L1D_MISS": 72, "CYCLES": 900}
        rel = CountingSession.compare(before, after)
        assert rel["L1D_MISS"] == pytest.approx(-0.28)
        assert rel["CYCLES"] == pytest.approx(-0.10)

    def test_unknown_event_rejected(self):
        with pytest.raises(Exception):
            CountingSession(EventCounters(), events=["BOGUS"])


class TestMethodProfilerUnit:
    def make(self):
        state = {"events": 0}
        charged = []
        profiler = MethodProfiler(lambda: state["events"], charged.append)
        return profiler, state, charged

    def fake_method(self, name="m"):
        p = Program("t")
        k = p.define_class("K")
        fn = Fn(p, k, name, args=["int"], returns="int")
        fn.iload(0).iret()
        return fn.finish()

    def test_exclusive_attribution(self):
        profiler, state, _ = self.make()
        outer, inner = self.fake_method("outer"), self.fake_method("inner")
        profiler.on_call(outer, cycles=0)
        state["events"] = 10           # outer runs, 10 events
        profiler.on_call(inner, cycles=100)
        state["events"] = 25           # inner runs, 15 events
        profiler.on_return(cycles=150)
        state["events"] = 30           # outer again, 5 events
        profiler.on_return(cycles=200)
        assert profiler.profiles[outer].events == 15  # 10 + 5
        assert profiler.profiles[inner].events == 15
        assert profiler.profiles[outer].cycles == 150  # 100 + 50
        assert profiler.profiles[inner].cycles == 50

    def test_invocation_counts(self):
        profiler, state, _ = self.make()
        m = self.fake_method()
        for _ in range(3):
            profiler.on_call(m, cycles=0)
            profiler.on_return(cycles=0)
        assert profiler.profiles[m].invocations == 3

    def test_boundary_cost_charged(self):
        profiler, state, charged = self.make()
        m = self.fake_method()
        profiler.on_call(m, cycles=0)
        profiler.on_return(cycles=1)
        assert sum(charged) == 2 * COUNTER_READ_COST
        assert profiler.total_overhead_cycles() == 2 * COUNTER_READ_COST

    def test_ranked_by_events(self):
        profiler, state, _ = self.make()
        hot, cold = self.fake_method("hot"), self.fake_method("cold")
        profiler.on_call(cold, 0)
        state["events"] = 1
        profiler.on_return(10)
        profiler.on_call(hot, 10)
        state["events"] = 100
        profiler.on_return(20)
        assert [p.method for p in profiler.ranked()] == [hot, cold]


class TestMethodProfilerEndToEnd:
    def build(self):
        p = Program("prof")
        app = p.define_class("App")
        app.add_static("out", "int")
        app.seal()
        box = p.define_class("Box")
        box.add_field("v", "int")
        box.seal()
        # A hot method touching memory and a cold one doing arithmetic.
        hot = Fn(p, app, "hot", args=["ref"], returns="int")
        acc = hot.local()
        hot.iconst(0).istore(acc)
        with hot.loop(64) as i:
            hot.rload(0).iload(i).emit("arrload", "ref")
            hot.getfield(box, "v")
            hot.iload(acc).emit("iadd").istore(acc)
        hot.iload(acc).iret()
        hot_m = hot.finish()
        cold = Fn(p, app, "cold", args=["int"], returns="int")
        cold.iload(0).iconst(3).emit("imul").iret()
        cold_m = cold.finish()

        fn = Fn(p, app, "main")
        arr = fn.local()
        b = fn.local()
        fn.iconst(64).emit("newarray", "ref").rstore(arr)
        with fn.loop(64) as i:
            fn.new(box).rstore(b)
            fn.rload(b).iload(i).putfield(box, "v")
            fn.rload(arr).iload(i).rload(b).emit("arrstore", "ref")
        with fn.loop(30):
            fn.rload(arr).call(hot_m).emit("pop")
            fn.iconst(1).call(cold_m).emit("pop")
        fn.ret()
        p.set_main(fn.finish())
        return p, app, hot_m, cold_m

    def test_profiler_identifies_hot_method(self):
        p, app, hot_m, cold_m = self.build()
        cfg = SystemConfig(monitoring=False, method_profiling=True,
                           gc=GCConfig(heap_bytes=1024 * 1024))
        result = run_program(p, cfg, compilation_plan=BASELINE_ONLY)
        profiler = result.vm.method_profiler
        ranked = profiler.ranked()
        assert ranked[0].method is hot_m
        assert profiler.profiles[hot_m].invocations == 30
        assert profiler.profiles[cold_m].invocations == 30
        assert profiler.profiles[hot_m].events > \
            profiler.profiles[cold_m].events

    def test_instrumentation_costs_more_than_sampling(self):
        """The paper's section 6.2 point: HPM sampling overhead is low
        compared to software-only profiling."""
        def run(method_profiling, monitoring):
            p, app, hot_m, cold_m = self.build()
            cfg = SystemConfig(monitoring=monitoring,
                               method_profiling=method_profiling,
                               gc=GCConfig(heap_bytes=1024 * 1024))
            return run_program(p, cfg, compilation_plan=BASELINE_ONLY)

        plain = run(False, False)
        instrumented = run(True, False)
        sampled = run(False, True)
        instr_overhead = instrumented.cycles / plain.cycles - 1
        sampling_overhead = sampled.cycles / plain.cycles - 1
        assert instr_overhead > sampling_overhead
        assert instr_overhead > 0.01  # instrumentation is clearly visible
