"""Golden-file schema tests for the telemetry exporters.

External consumers parse these formats — Perfetto reads the Chrome
trace, ``jq``/pandas read the JSONL, a Prometheus scraper reads the
text exposition — so their shapes are API.  These tests pin the
required keys and, for the Prometheus output, the exact rendered text.
"""

import json
import re

import pytest

from repro.telemetry.export import (chrome_trace, collapsed_stacks,
                                    format_collapsed, jsonl_records,
                                    parse_prometheus_text, prometheus_text,
                                    write_collapsed, write_prometheus)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import Tracer


def build_tracer() -> Tracer:
    clock = {"now": 0}
    tracer = Tracer(clock=lambda: clock["now"])
    tracer.begin("gc.minor", cat="gc", pages=3)
    clock["now"] = 100
    tracer.end(survivors=7)
    tracer.instant("interval.adapt", cat="perfmon", interval=50)
    clock["now"] = 150
    tracer.sample("buffer.fill", 7, cat="perfmon")
    return tracer


def build_metrics() -> MetricsRegistry:
    metrics = MetricsRegistry()
    metrics.counter("gc.pauses", "GC pauses").inc(3)
    metrics.gauge("vm.cycles").set(42)
    hist = metrics.histogram("batch.size", "batch sizes")
    hist.observe(1)
    hist.observe(3)
    hist.observe(3)
    # A labeled counter, the shape the feedback engine emits per
    # experiment name.
    metrics.counter("feedback.reverts",
                    "experiments reverted after regression, "
                    "by experiment name").labels("gap-128").inc()
    return metrics


class TestChromeTraceSchema:
    def test_required_keys_per_phase(self):
        doc = chrome_trace(build_tracer(), build_metrics())
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData",
                            "metrics"}
        assert doc["otherData"]["clock"] == "simulated cycles"
        by_ph = {}
        for ev in doc["traceEvents"]:
            by_ph.setdefault(ev["ph"], []).append(ev)
        # Complete spans: name/cat/ts/dur/pid/tid.
        for ev in by_ph["X"]:
            assert {"name", "cat", "ts", "dur", "pid", "tid"} <= set(ev)
        # Instants additionally carry a scope.
        for ev in by_ph["i"]:
            assert {"name", "cat", "ts", "s"} <= set(ev)
        # Counter tracks put the value in args.
        for ev in by_ph["C"]:
            assert "value" in ev["args"]
        # Process/thread metadata names every track.
        names = {ev["args"]["name"] for ev in by_ph["M"]}
        assert "repro simulated VM" in names
        assert {"gc", "perfmon"} <= names

    def test_span_args_preserved(self):
        doc = chrome_trace(build_tracer())
        span = next(ev for ev in doc["traceEvents"] if ev["ph"] == "X")
        assert span["args"] == {"pages": 3, "survivors": 7}
        assert span["ts"] == 0 and span["dur"] == 100

    def test_trace_is_json_serializable(self):
        json.dumps(chrome_trace(build_tracer(), build_metrics()))


class TestJsonlSchema:
    def test_record_types_and_order(self):
        records = jsonl_records(build_tracer(), build_metrics())
        types = [r["type"] for r in records]
        assert set(types) == {"span", "instant", "sample", "metrics"}
        assert types[-1] == "metrics", "metrics snapshot closes the stream"
        stamped = [r["ts"] for r in records if "ts" in r]
        assert stamped == sorted(stamped)

    def test_required_keys_per_type(self):
        records = jsonl_records(build_tracer(), build_metrics())
        required = {"span": {"name", "cat", "ts", "dur", "depth", "args"},
                    "instant": {"name", "cat", "ts", "args"},
                    "sample": {"name", "cat", "ts", "value"},
                    "metrics": {"data"}}
        for record in records:
            assert required[record["type"]] <= set(record)

    def test_each_record_is_one_json_line(self):
        for record in jsonl_records(build_tracer(), build_metrics()):
            line = json.dumps(record)
            assert "\n" not in line
            assert json.loads(line) == record


def build_nested_tracer() -> Tracer:
    """One outer vm span [0, 100) containing two children."""
    clock = {"now": 0}
    tracer = Tracer(clock=lambda: clock["now"])
    tracer.begin("outer", cat="vm")
    clock["now"] = 10
    tracer.begin("vm.inner", cat="vm")   # already category-prefixed
    clock["now"] = 30
    tracer.end()
    clock["now"] = 40
    tracer.begin("gc.minor", cat="gc")
    clock["now"] = 50
    tracer.end()
    clock["now"] = 100
    tracer.end()
    tracer.instant("interval.adapt", cat="perfmon")  # instants are ignored
    return tracer


class TestCollapsedStacks:
    def test_self_time_folding(self):
        # Outer runs 100 cycles; children cover 20 + 10, so its self
        # weight is 70 and each child stack carries its own duration.
        stacks = collapsed_stacks(build_nested_tracer())
        assert stacks == {
            ("vm.outer",): 70,
            ("vm.outer", "vm.inner"): 20,
            ("vm.outer", "gc.minor"): 10,
        }

    def test_category_prefix_not_doubled(self):
        stacks = collapsed_stacks(build_nested_tracer())
        assert ("vm.outer", "vm.inner") in stacks, \
            "span names already carrying their category keep one prefix"
        assert not any("vm.vm." in frame
                       for path in stacks for frame in path)

    def test_frame_sanitization(self):
        clock = {"now": 0}
        tracer = Tracer(clock=lambda: clock["now"])
        tracer.begin("weird name;x", cat="vm")
        clock["now"] = 5
        tracer.end()
        stacks = collapsed_stacks(tracer)
        assert list(stacks) == [("vm.weird_name:x",)]

    def test_format_is_flamegraph_grammar(self):
        text = format_collapsed(collapsed_stacks(build_nested_tracer()))
        assert text.endswith("\n")
        lines = text.splitlines()
        assert lines == sorted(lines), "deterministic path order"
        for line in lines:
            assert re.match(r"^\S+(;\S+)* \d+$", line), line

    def test_zero_weight_stacks_dropped(self):
        assert format_collapsed({("a",): 5, ("b",): 0, ("c",): -3}) \
            == "a 5\n"
        assert format_collapsed({}) == ""

    def test_write_collapsed_returns_line_count(self, tmp_path):
        path = tmp_path / "out.collapsed"
        count = write_collapsed(str(path),
                                collapsed_stacks(build_nested_tracer()))
        assert count == 3
        assert path.read_text() \
            == format_collapsed(collapsed_stacks(build_nested_tracer()))


class TestPrometheusFormat:
    def test_golden_rendering(self):
        # The exact text a scraper would ingest: instruments in name
        # order, histograms as cumulative buckets, trailing newline.
        assert prometheus_text(build_metrics()) == (
            "# HELP repro_batch_size batch sizes\n"
            "# TYPE repro_batch_size histogram\n"
            'repro_batch_size_bucket{le="2"} 1\n'
            'repro_batch_size_bucket{le="4"} 3\n'
            'repro_batch_size_bucket{le="+Inf"} 3\n'
            "repro_batch_size_sum 7\n"
            "repro_batch_size_count 3\n"
            "# HELP repro_feedback_reverts experiments reverted after "
            "regression, by experiment name\n"
            "# TYPE repro_feedback_reverts counter\n"
            'repro_feedback_reverts{label0="gap-128"} 1\n'
            "# HELP repro_gc_pauses GC pauses\n"
            "# TYPE repro_gc_pauses counter\n"
            "repro_gc_pauses 3\n"
            "# TYPE repro_vm_cycles gauge\n"
            "repro_vm_cycles 42\n")

    def test_labeled_children(self):
        metrics = MetricsRegistry()
        comp = metrics.counter("jit.compilations")
        comp.labels("baseline").inc(5)
        comp.labels("opt").inc(2)
        text = prometheus_text(metrics)
        assert 'repro_jit_compilations{label0="baseline"} 5\n' in text
        assert 'repro_jit_compilations{label0="opt"} 2\n' in text
        # Zero-valued parent with children: no unlabeled series.
        assert "\nrepro_jit_compilations 0\n" not in text

    def test_label_value_escaping(self):
        metrics = MetricsRegistry()
        metrics.counter("ops").labels('path\\to "x"\nend').inc(1)
        text = prometheus_text(metrics)
        assert ('repro_ops{label0="path\\\\to \\"x\\"\\nend"} 1'
                in text)

    def test_name_sanitizing(self):
        metrics = MetricsRegistry()
        metrics.counter("gc.coalloc-rate@heap").inc(1)
        metrics.gauge("2nd.phase").set(9)
        text = prometheus_text(metrics)
        assert "repro_gc_coalloc_rate_heap 1" in text
        assert "repro__2nd_phase 9" in text, "leading digit guarded"

    def test_help_escaping_and_prefix(self):
        metrics = MetricsRegistry()
        metrics.counter("c", "line one\nline two \\ end").inc(1)
        text = prometheus_text(metrics, prefix="x_")
        assert "# HELP x_c line one\\nline two \\\\ end\n" in text

    def test_ends_with_single_newline(self):
        text = prometheus_text(build_metrics())
        assert text.endswith("\n") and not text.endswith("\n\n")

    def test_write_prometheus(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus(str(path), build_metrics())
        assert path.read_text() == prometheus_text(build_metrics())


class TestParsePrometheusText:
    """The 0.0.4 validator behind /metrics scrape checks: a round trip
    through render -> parse must recover every instrument, and grammar
    violations must be hard errors, not best-effort skips."""

    def test_round_trip_of_rendered_registry(self):
        parsed = parse_prometheus_text(prometheus_text(build_metrics()))
        assert set(parsed) == {"repro_batch_size",
                               "repro_feedback_reverts",
                               "repro_gc_pauses", "repro_vm_cycles"}
        hist = parsed["repro_batch_size"]
        assert hist["type"] == "histogram"
        assert hist["help"] == "batch sizes"
        buckets = [(labels["le"], value)
                   for series, labels, value in hist["samples"]
                   if series == "repro_batch_size_bucket"]
        assert buckets == [("2", 1.0), ("4", 3.0), ("+Inf", 3.0)]
        flat = {series: value
                for doc in parsed.values()
                for series, _labels, value in doc["samples"]}
        assert flat["repro_batch_size_sum"] == 7.0
        assert flat["repro_batch_size_count"] == 3.0
        assert flat["repro_gc_pauses"] == 3.0
        assert flat["repro_vm_cycles"] == 42.0
        reverts = parsed["repro_feedback_reverts"]["samples"]
        assert reverts == [("repro_feedback_reverts",
                            {"label0": "gap-128"}, 1.0)]
        # Untyped gauge comment rules: vm_cycles has TYPE but no HELP.
        assert parsed["repro_vm_cycles"]["type"] == "gauge"
        assert parsed["repro_vm_cycles"]["help"] is None

    def test_comments_blank_lines_and_special_values(self):
        parsed = parse_prometheus_text(
            "# a plain comment\n"
            "\n"
            "x_inf +Inf\n"
            "x_neg -2.5e3\n")
        flat = {s: v for doc in parsed.values()
                for s, _l, v in doc["samples"]}
        assert flat["x_inf"] == float("inf")
        assert flat["x_neg"] == -2500.0

    def test_missing_trailing_newline_rejected(self):
        with pytest.raises(ValueError, match="newline"):
            parse_prometheus_text("repro_x 1")

    def test_malformed_sample_rejected(self):
        with pytest.raises(ValueError, match="not a valid sample"):
            parse_prometheus_text("repro_x one\n")
        with pytest.raises(ValueError, match="not a valid sample"):
            parse_prometheus_text("9leading_digit 1\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="malformed TYPE"):
            parse_prometheus_text("# TYPE repro_x speedometer\n")

    def test_non_cumulative_histogram_rejected(self):
        with pytest.raises(ValueError, match="not cumulative"):
            parse_prometheus_text(
                "# TYPE h histogram\n"
                'h_bucket{le="1"} 5\n'
                'h_bucket{le="+Inf"} 3\n'
                "h_sum 9\n"
                "h_count 3\n")

    def test_histogram_missing_inf_bucket_rejected(self):
        with pytest.raises(ValueError, match="\\+Inf"):
            parse_prometheus_text(
                "# TYPE h histogram\n"
                'h_bucket{le="1"} 1\n'
                "h_sum 1\n"
                "h_count 1\n")

    def test_histogram_missing_sum_or_count_rejected(self):
        with pytest.raises(ValueError, match="h_count"):
            parse_prometheus_text(
                "# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 1\n'
                "h_sum 1\n")
