"""Tests for the decision-lineage ledger (src/repro/lineage).

Three layers:

* unit tests of :class:`DecisionLedger` (append-only DAG, parent links,
  capacity, null ledger, serialization),
* the pure-observer invariant — attaching a ledger changes no simulated
  number under either interpreter,
* end-to-end: a real run records a complete causal chain, the Figure 8
  experiment's revert narrates back to its sample batches, records
  round-trip the ledger through schema 3, and ``repro diff`` locates
  the first diverging decision.
"""

import json

import pytest

from repro.harness.record import RunRecord, SCHEMA_VERSION
from repro.harness.runner import RunSpec, execute
from repro.lineage import (DecisionLedger, LINEAGE_SCHEMA_VERSION,
                           NULL_LEDGER, explain)
from repro.lineage.ledger import (DECISION_KINDS, E_CYCLE, E_ID, E_KIND,
                                  E_PARENTS, K_ATTRIBUTION, K_BATCH,
                                  K_EXPERIMENT, K_GAP, K_PERIOD,
                                  K_PLACEMENT, K_RANKING, K_RECOMPILE,
                                  K_REVERT, K_VERDICT)
from repro.vm.model import ClassInfo, FieldInfo, MethodInfo


def make_field(name="next", klass_name="Entry"):
    klass = ClassInfo(name=klass_name)
    fld = FieldInfo(name=name, kind="ref", declaring_class=klass,
                    offset=0, index=0)
    return klass, fld


class TestLedgerUnit:
    def test_ids_are_append_order(self):
        ledger = DecisionLedger()
        a = ledger.sample_batch(5, "poll")
        b = ledger.sample_batch(3, "drain")
        assert (a, b) == (0, 1)
        assert [e[E_ID] for e in ledger.entries] == [0, 1]

    def test_attribution_links_open_batch(self):
        ledger = DecisionLedger()
        _, fld = make_field()
        batch = ledger.sample_batch(4, "poll")
        attr = ledger.attribution(4, 2, 100, ((fld, 2, 200),))
        assert ledger.entries[attr][E_PARENTS] == (batch,)
        # The batch link is consumed: a second attribution without a
        # new batch has no parent.
        attr2 = ledger.attribution(1, 0, 100, ())
        assert ledger.entries[attr2][E_PARENTS] == ()

    def test_period_collects_attributions(self):
        ledger = DecisionLedger()
        _, fld = make_field()
        ledger.sample_batch(4, "poll")
        a1 = ledger.attribution(4, 2, 1, ((fld, 2, 2),))
        ledger.sample_batch(2, "poll")
        a2 = ledger.attribution(2, 1, 1, ((fld, 1, 1),))
        period = ledger.period_close(0, 6, 3)
        assert ledger.entries[period][E_PARENTS] == (a1, a2)
        # Next period starts empty.
        period2 = ledger.period_close(1, 0, 0)
        assert ledger.entries[period2][E_PARENTS] == ()

    def test_experiment_chain_parents(self):
        ledger = DecisionLedger()
        klass, fld = make_field()
        period = ledger.period_close(0, 1, 1)
        ranking = ledger.ranking_snapshot(0, ((klass, ((fld, 10, 2),)),))
        exp = ledger.experiment_begin("gap-128", fld, 0.6, 7, 412, 0.25, 3)
        verdict = ledger.experiment_verdict("gap-128", 0.9, 0.75, True, 3)
        revert = ledger.experiment_revert("gap-128", fld, 12, 0.9, 0.6, 0.25)
        entries = ledger.entries
        assert entries[ranking][E_PARENTS] == (period,)
        assert entries[exp][E_PARENTS] == (ranking,)
        assert entries[verdict][E_PARENTS] == (exp, period)
        assert entries[revert][E_PARENTS] == (exp, verdict)

    def test_parent_ids_always_earlier(self):
        ledger = DecisionLedger()
        klass, fld = make_field()
        ledger.sample_batch(1, "poll")
        ledger.attribution(1, 1, 1, ((fld, 1, 1),))
        ledger.period_close(0, 1, 1)
        ledger.ranking_snapshot(0, ((klass, ((fld, 1, 1),)),))
        ledger.placement_pending(klass, fld, 20, 76, 0, 96)
        ledger.placement_commit(0x100, 0x114)
        for entry in ledger.entries:
            for parent in entry[E_PARENTS]:
                assert parent < entry[E_ID]

    def test_placement_requires_pending(self):
        ledger = DecisionLedger()
        assert ledger.placement_commit(0x100, 0x114) == -1
        klass, fld = make_field()
        ledger.placement_pending(klass, fld, 20, 76, 0, 96)
        eid = ledger.placement_commit(0x100, 0x114)
        assert ledger.entries[eid][E_KIND] == K_PLACEMENT
        # The pending slot is consumed.
        assert ledger.placement_commit(0x200, 0x214) == -1

    def test_capacity_cap_drops_not_grows(self):
        ledger = DecisionLedger(max_entries=2)
        ledger.sample_batch(1, "poll")
        ledger.sample_batch(1, "poll")
        assert ledger.sample_batch(1, "poll") == -1
        assert len(ledger.entries) == 2
        assert ledger.dropped == 1

    def test_clock_binding(self):
        ledger = DecisionLedger()
        clock = {"now": 123}
        ledger.bind_clock(lambda: clock["now"])
        eid = ledger.sample_batch(1, "poll")
        assert ledger.entries[eid][E_CYCLE] == 123

    def test_null_ledger_is_inert(self):
        klass, fld = make_field()
        assert NULL_LEDGER.enabled is False
        assert NULL_LEDGER.sample_batch(5, "poll") == -1
        assert NULL_LEDGER.experiment_begin("x", fld, 0, 0, 0, 0, 0) == -1
        NULL_LEDGER.placement_pending(klass, fld, 1, 2, 0, 3)
        assert NULL_LEDGER.placement_commit(1, 2) == -1
        assert len(NULL_LEDGER.entries) == 0

    def test_empty_ledger_still_attaches(self):
        """An empty ledger is falsy (len 0) but must still be honored
        when attached — the regression the explicit None checks fix."""
        from repro.core.config import SystemConfig
        from repro.vm.vmcore import VM
        from repro.workloads import suite

        workload = suite.build("fop")
        config = SystemConfig(coalloc=True)
        config.lineage = ledger = DecisionLedger()
        vm = VM(workload.program, config, compilation_plan=workload.plan)
        assert vm.lineage is ledger

    def test_to_json_renders_names_and_schema(self):
        ledger = DecisionLedger()
        klass, fld = make_field()
        ledger.ranking_snapshot(0, ((klass, ((fld, 10, 2),)),))
        ledger.experiment_begin("gap-128", fld, 0.5, 3, 10, 0.25, 3)
        doc = ledger.to_json()
        assert doc["schema"] == LINEAGE_SCHEMA_VERSION
        assert doc["dropped"] == 0
        kinds = [e["kind"] for e in doc["entries"]]
        assert kinds == [K_RANKING, K_EXPERIMENT]
        exp = doc["entries"][1]
        assert exp["field"] == "Entry::next"
        assert exp["experiment"] == "gap-128"
        json.dumps(doc)  # plain data, serializable


class TestExplain:
    def build_doc(self):
        ledger = DecisionLedger()
        klass, fld = make_field("value", "String")
        ledger.sample_batch(4, "poll")
        ledger.attribution(4, 2, 100, ((fld, 2, 200),))
        ledger.period_close(0, 4, 2)
        ledger.ranking_snapshot(0, ((klass, ((fld, 200, 2),)),))
        ledger.experiment_begin("gap-128", fld, 0.61, 7, 412, 0.30, 3)
        ledger.experiment_verdict("gap-128", 0.84, 0.793, True, 3)
        ledger.experiment_revert("gap-128", fld, 12, 0.84, 0.61, 0.30)
        return ledger.to_json()

    def test_validate_accepts_real_ledger(self):
        assert explain.validate(self.build_doc()) == []

    def test_validate_rejects_forward_parent(self):
        doc = self.build_doc()
        doc["entries"][0]["parents"] = [3]
        assert any("does not resolve" in p for p in explain.validate(doc))

    def test_validate_rejects_wrong_schema(self):
        problems = explain.validate({"schema": 99, "entries": []})
        assert any("schema" in p for p in problems)

    def test_default_target_prefers_revert(self):
        doc = self.build_doc()
        target = explain.find_target(doc)
        assert target["kind"] == K_REVERT

    def test_target_by_field_revert_decision(self):
        doc = self.build_doc()
        assert explain.find_target(doc, field="String::value")["kind"] \
            == K_REVERT
        assert explain.find_target(doc, revert=1)["kind"] == K_REVERT
        assert explain.find_target(doc, revert=2) is None
        assert explain.find_target(doc, decision=4)["kind"] == K_EXPERIMENT
        assert explain.find_target(doc, field="No::such") is None

    def test_chain_reaches_sample_batch(self):
        doc = self.build_doc()
        by_id = explain.index_entries(doc)
        target = explain.find_target(doc)
        ids = explain.chain_ids(by_id, target["id"])
        kinds = {by_id[i]["kind"] for i in ids}
        assert {K_REVERT, K_VERDICT, K_EXPERIMENT, K_RANKING, K_PERIOD,
                K_ATTRIBUTION, K_BATCH} <= kinds

    def test_format_chain_narrates_threshold_arithmetic(self):
        doc = self.build_doc()
        text = explain.format_chain(doc, explain.find_target(doc))
        assert "revert of experiment 'gap-128'" in text
        assert "0.84" in text and "0.61" in text
        # baseline x (1 + threshold) spelled out
        assert "x 1.30" in text and "0.79" in text
        assert "collector poll drained 4 sample(s)" in text

    def test_dot_export_shape(self):
        doc = self.build_doc()
        by_id = explain.index_entries(doc)
        chain = explain.chain_ids(by_id, explain.find_target(doc)["id"])
        dot = explain.to_dot(doc, chain=chain)
        assert dot.startswith("digraph lineage {")
        assert dot.rstrip().endswith("}")
        assert "lightgoldenrod1" in dot
        # One node per entry, one edge per parent link.  (Count edge
        # *lines*: narration text may itself contain "->".)
        import re

        assert dot.count("[label=") == len(doc["entries"])
        edges = sum(len(e["parents"]) for e in doc["entries"])
        assert len(re.findall(r"^  n\d+ -> n\d+;$", dot, re.M)) == edges

    def test_first_divergence(self):
        doc_a = self.build_doc()
        doc_b = self.build_doc()
        assert explain.first_divergence(doc_a, doc_b) is None
        # Flip one decision: b's revert happens at a later period.
        for entry in doc_b["entries"]:
            if entry["kind"] == K_REVERT:
                entry["period"] = 99
        div = explain.first_divergence(doc_a, doc_b)
        assert div is not None
        assert div["a"]["summary"].startswith("revert of experiment")
        assert div["a"]["id"] == div["b"]["id"]
        # Cycle shifts alone never count as divergence.
        doc_c = self.build_doc()
        for entry in doc_c["entries"]:
            entry["cycle"] += 1_000_000
        assert explain.first_divergence(doc_a, doc_c) is None

    def test_first_divergence_shorter_stream(self):
        doc_a = self.build_doc()
        doc_b = self.build_doc()
        doc_b["entries"] = [e for e in doc_b["entries"]
                            if e["kind"] != K_REVERT]
        div = explain.first_divergence(doc_a, doc_b)
        assert div["b"] is None and div["a"]["summary"]

    def test_index_entries_rejects_non_ledger(self):
        with pytest.raises(ValueError):
            explain.index_entries({"spans": []})


class TestPureObserver:
    """The PR-1 invariant extended to the ledger: recording lineage
    must not change one simulated number."""

    @pytest.mark.parametrize("fastpath", [True, False])
    def test_ledger_on_off_bit_identical(self, fastpath):
        spec = RunSpec(benchmark="db", coalloc=True)
        off = execute(spec, fastpath=fastpath)
        ledger = DecisionLedger()
        on = execute(spec, lineage=ledger, fastpath=fastpath)
        assert len(ledger.entries) > 0
        assert on.cycles == off.cycles
        assert on.instructions == off.instructions
        assert on.app_cycles == off.app_cycles
        assert on.gc_cycles == off.gc_cycles
        assert on.monitoring_cycles == off.monitoring_cycles
        assert on.counters == off.counters
        assert on.gc_stats.summary() == off.gc_stats.summary()
        assert on.monitor_summary == off.monitor_summary
        assert on.vm.pebs.samples_taken == off.vm.pebs.samples_taken
        assert off.vm.lineage is NULL_LEDGER


class TestEndToEnd:
    def test_run_records_all_evidence_kinds(self):
        ledger = DecisionLedger()
        execute(RunSpec(benchmark="db", coalloc=True), lineage=ledger)
        kinds = {e[E_KIND] for e in ledger.entries}
        assert {K_BATCH, K_ATTRIBUTION, K_PERIOD, K_RANKING,
                K_PLACEMENT} <= kinds
        assert explain.validate(ledger.to_json()) == []

    def test_fig8_revert_full_causal_chain(self):
        """The acceptance chain: revert -> experiment begin -> hot-field
        ranking -> at least one sample batch, on the Figure 8 workload."""
        from repro.harness.experiments import fig8_revert

        ledger = DecisionLedger()
        result = fig8_revert("db", lineage=ledger)
        assert result.reverted
        doc = ledger.to_json()
        assert explain.validate(doc) == []
        by_id = explain.index_entries(doc)
        target = explain.find_target(doc)
        assert target["kind"] == K_REVERT
        assert target["field"] == "String::value"
        ids = explain.chain_ids(by_id, target["id"])
        kinds = [by_id[i]["kind"] for i in ids]
        assert K_EXPERIMENT in kinds
        assert K_RANKING in kinds
        assert kinds.count(K_BATCH) >= 1
        # The gap interventions are on the ledger too.
        gaps = [e for e in doc["entries"] if e["kind"] == K_GAP]
        assert [(g["old_gap"], g["new_gap"]) for g in gaps] \
            == [(0, 128), (128, 0)]
        text = explain.format_chain(doc, target)
        assert "revert of experiment 'gap-128'" in text
        assert "baseline" in text

    def test_recompile_entries(self):
        ledger = DecisionLedger()
        execute(RunSpec(benchmark="compress"), lineage=ledger)
        recompiles = [e for e in ledger.entries
                      if e[E_KIND] == K_RECOMPILE]
        assert recompiles
        doc = ledger.to_json()
        rendered = [e for e in doc["entries"] if e["kind"] == K_RECOMPILE]
        for entry in rendered:
            assert entry["reason"] in ("aos", "plan")
            assert "." in entry["method"]

    def test_record_round_trips_lineage(self):
        ledger = DecisionLedger()
        result = execute(RunSpec(benchmark="fop", coalloc=True),
                         lineage=ledger)
        record = RunRecord.from_result(result)
        assert record.lineage is not None
        doc = record.to_json()
        assert doc["schema"] == SCHEMA_VERSION == 5
        reloaded = RunRecord.from_json(json.loads(json.dumps(doc)))
        assert reloaded.lineage == record.lineage
        assert explain.validate(reloaded.lineage) == []

    def test_record_without_ledger_has_no_lineage(self):
        result = execute(RunSpec(benchmark="fop"))
        record = RunRecord.from_result(result)
        assert record.lineage is None

    def test_legacy_schema2_record_loads(self):
        result = execute(RunSpec(benchmark="fop"))
        doc = RunRecord.from_result(result).to_json()
        doc["schema"] = 2
        del doc["lineage"]
        legacy = RunRecord.from_json(doc)
        assert legacy.lineage is None
        assert legacy.cycles == result.cycles

    def test_diff_reports_first_diverging_decision(self):
        from repro.analysis.diff import diff_records, format_diff

        ledger_a = DecisionLedger()
        ledger_b = DecisionLedger()
        res_a = execute(RunSpec(benchmark="db", coalloc=True),
                        lineage=ledger_a)
        res_b = execute(RunSpec(benchmark="db", coalloc=True, seed=2),
                        lineage=ledger_b)
        rec_a = RunRecord.from_result(res_a)
        rec_b = RunRecord.from_result(res_b)
        # Same spec/seed: decision streams agree.
        same = diff_records(rec_a, RunRecord.from_json(rec_a.to_json()))
        assert same.lineage_divergence is None
        diff = diff_records(rec_a, rec_b)
        if diff.lineage_divergence is not None:
            div = diff.lineage_divergence
            assert "index" in div
            side = div["a"] or div["b"]
            assert {"id", "parents", "summary"} <= set(side)
            text = format_diff(diff, "a.json", "b.json")
            assert "first diverging decision" in text
            assert any(d.path == "lineage.first_divergence"
                       for d in diff.deltas)

    def test_decision_kinds_cover_targets(self):
        # explain's target priority must stay within DECISION_KINDS
        # (plus the ranking fallback).
        from repro.lineage.explain import _TARGET_PRIORITY

        assert set(_TARGET_PRIORITY) - {K_RANKING} \
            == set(DECISION_KINDS) - {K_VERDICT}
