"""Edge-case tests for the controller's adaptive sampling interval and
the monitoring duty cycle (paper section 6.3)."""

from repro.core.config import MonitorConfig, PerfmonConfig
from repro.core.controller import (
    AUTO_MAX_INTERVAL,
    AUTO_MIN_INTERVAL,
    AUTO_TARGET_PER_PERIOD,
    OnlineOptimizationController,
)
from repro.jit.codecache import CodeCache
from repro.jit.opt import compile_opt
from repro.telemetry import Telemetry
from repro.vm.program import Program
from repro.workloads.synth import Fn


def chase_program():
    p = Program("t")
    app = p.define_class("App")
    app.seal()
    a = p.define_class("A")
    a.add_field("y", "ref")
    a.add_field("i", "int")
    a.seal()
    fn = Fn(p, app, "foo", args=["ref"], returns="int")
    fn.rload(0).getfield(a, "y").getfield(a, "i").iret()
    return p, a, fn.finish()


def make(auto=True, monitor_config=None, telemetry=None):
    """A controller wired to recorders instead of real hardware."""
    p, a, method = chase_program()
    cache = CodeCache()
    cm = cache.install(compile_opt(method))
    intervals = []
    switches = []
    controller = OnlineOptimizationController(
        cache, monitor_config or MonitorConfig(), PerfmonConfig(),
        charge=lambda cycles: None,
        set_sampling_interval=intervals.append,
        auto_interval=auto,
        sampling_switch=switches.append,
        telemetry=telemetry)
    controller.on_method_compiled(cm)
    interest = controller.resolver.interest_table(cm)
    ir_id = next(iter(interest))
    hot_eip = cm.eip_of_pc(cm.ir_map.index(ir_id))
    return controller, hot_eip, intervals, switches


class TestAdaptiveInterval:
    def test_zero_samples_halves_until_min_clamp(self):
        controller, _, intervals, _ = make()
        expected = controller.current_interval
        for _ in range(20):
            controller.on_period(1000)
            expected = max(AUTO_MIN_INTERVAL, expected // 2)
            assert controller.current_interval == expected
        assert controller.current_interval == AUTO_MIN_INTERVAL
        # Once clamped, further silent periods change nothing and must
        # not re-notify the hardware.
        calls = len(intervals)
        controller.on_period(1000)
        assert controller.current_interval == AUTO_MIN_INTERVAL
        assert len(intervals) == calls

    def test_flood_clamps_at_max(self):
        controller, hot_eip, intervals, _ = make()
        controller.current_interval = AUTO_MAX_INTERVAL // 2
        controller.process_samples([hot_eip] * (AUTO_TARGET_PER_PERIOD * 100))
        controller.on_period(1000)
        assert controller.current_interval == AUTO_MAX_INTERVAL
        assert intervals[-1] == AUTO_MAX_INTERVAL

    def test_proportional_scaling(self):
        controller, hot_eip, intervals, _ = make()
        before = controller.current_interval
        controller.process_samples([hot_eip] * (2 * AUTO_TARGET_PER_PERIOD))
        controller.on_period(1000)
        assert controller.current_interval == 2 * before
        assert intervals == [2 * before]

    def test_on_target_leaves_interval_untouched(self):
        controller, hot_eip, intervals, _ = make()
        before = controller.current_interval
        controller.process_samples([hot_eip] * AUTO_TARGET_PER_PERIOD)
        controller.on_period(1000)
        assert controller.current_interval == before
        assert intervals == []

    def test_interval_gauge_tracks_adaptation(self):
        tele = Telemetry()
        controller, _, _, _ = make(telemetry=tele)
        controller.on_period(1000)
        assert (tele.metrics.value("controller.sampling_interval")
                == controller.current_interval)
        names = [e.name for e in tele.tracer.instants]
        assert "controller.interval_adapted" in names


class TestDutyCycle:
    def cfg(self, idle=2, off=3):
        return MonitorConfig(duty_cycle=True, duty_idle_periods=idle,
                             duty_off_periods=off)

    def test_pause_after_idle_periods(self):
        tele = Telemetry()
        controller, _, _, switches = make(
            auto=False, monitor_config=self.cfg(idle=2), telemetry=tele)
        controller.on_period(1000)
        assert not controller.sampling_paused
        controller.on_period(2000)
        assert controller.sampling_paused
        assert switches == [False]
        assert controller.duty_pauses == 1
        assert tele.metrics.value("controller.duty_pauses") == 1

    def test_resume_rearms_sampling(self):
        controller, _, _, switches = make(
            auto=False, monitor_config=self.cfg(idle=1, off=2))
        controller.on_period(1000)           # idle -> pause
        assert switches == [False]
        controller.on_period(2000)           # paused, 1 period left
        assert controller.sampling_paused
        controller.on_period(3000)           # pause expires -> resume
        assert not controller.sampling_paused
        assert switches == [False, True]
        # The idle counter restarts after the resume: a fresh idle run
        # is needed before the next pause.
        controller.on_period(4000)
        assert controller.sampling_paused
        assert controller.duty_pauses == 2

    def test_attributed_samples_reset_idle_counter(self):
        controller, hot_eip, _, switches = make(
            auto=False, monitor_config=self.cfg(idle=2))
        controller.on_period(1000)           # idle period 1
        controller.process_samples([hot_eip] * 6)
        controller.on_period(2000)           # fruitful -> counter resets
        controller.on_period(3000)           # idle period 1 again
        assert not controller.sampling_paused
        assert switches == []
        controller.on_period(4000)           # idle period 2 -> pause
        assert controller.sampling_paused

    def test_no_interval_adaptation_while_paused(self):
        controller, _, intervals, _ = make(
            auto=True, monitor_config=self.cfg(idle=1, off=5))
        controller.on_period(1000)           # adapts, then pauses
        paused_interval = controller.current_interval
        calls = len(intervals)
        controller.on_period(2000)
        controller.on_period(3000)
        assert controller.sampling_paused
        assert controller.current_interval == paused_interval
        assert len(intervals) == calls
