"""Unit tests for the cache model (repro.hw.cache)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CacheConfig
from repro.hw.cache import Cache, StreamPrefetcher


def small_cache(ways=2, sets=4, line=64):
    return Cache(CacheConfig(size_bytes=line * ways * sets, line_bytes=line,
                             ways=ways, hit_latency=1))


class TestGeometry:
    def test_paper_l1_geometry(self):
        c = Cache(CacheConfig(16 * 1024, 128, 8, 2))
        assert c.config.num_lines == 128
        assert c.config.num_sets == 16

    def test_paper_l2_geometry(self):
        c = Cache(CacheConfig(1024 * 1024, 128, 8, 18))
        assert c.config.num_lines == 8192
        assert c.config.num_sets == 1024

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            Cache(CacheConfig(1024, 100, 2, 1))

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            Cache(CacheConfig(3 * 128 * 2, 128, 2, 1))


class TestAccess:
    def test_first_access_misses(self):
        c = small_cache()
        assert c.access(0x1000) is False
        assert c.misses == 1

    def test_second_access_hits(self):
        c = small_cache()
        c.access(0x1000)
        assert c.access(0x1000) is True
        assert c.hits == 1

    def test_same_line_different_offset_hits(self):
        c = small_cache(line=64)
        c.access(0x1000)
        assert c.access(0x103F) is True

    def test_adjacent_line_misses(self):
        c = small_cache(line=64)
        c.access(0x1000)
        assert c.access(0x1040) is False

    def test_lru_eviction(self):
        c = small_cache(ways=2, sets=1, line=64)
        a, b, d = 0x0, 0x40, 0x80  # all map to the single set
        c.access(a)
        c.access(b)
        c.access(d)  # evicts a (LRU)
        assert c.access(b) is True
        assert c.access(a) is False

    def test_lru_updated_on_hit(self):
        c = small_cache(ways=2, sets=1, line=64)
        a, b, d = 0x0, 0x40, 0x80
        c.access(a)
        c.access(b)
        c.access(a)  # a becomes MRU
        c.access(d)  # evicts b
        assert c.access(a) is True
        assert c.access(b) is False

    def test_sets_are_independent(self):
        c = small_cache(ways=1, sets=2, line=64)
        c.access(0x00)   # set 0
        c.access(0x40)   # set 1
        assert c.access(0x00) is True
        assert c.access(0x40) is True

    def test_invalidate_all(self):
        c = small_cache()
        c.access(0x1000)
        c.invalidate_all()
        assert c.contains(0x1000) is False
        assert c.access(0x1000) is False

    def test_fill_line_does_not_count_access(self):
        c = small_cache()
        assert c.fill_line(c.line_of(0x2000)) is True
        assert c.hits == 0 and c.misses == 0
        assert c.access(0x2000) is True

    def test_fill_line_idempotent(self):
        c = small_cache()
        line = c.line_of(0x2000)
        assert c.fill_line(line) is True
        assert c.fill_line(line) is False

    def test_resident_lines(self):
        c = small_cache()
        c.access(0x0)
        c.access(0x40)
        assert c.resident_lines() == 2


class TestCapacityBehaviour:
    def test_working_set_within_capacity_all_hits_after_warmup(self):
        c = small_cache(ways=2, sets=4, line=64)  # 8 lines capacity
        addrs = [i * 64 for i in range(8)]
        for a in addrs:
            c.access(a)
        assert all(c.access(a) for a in addrs)

    def test_working_set_exceeding_capacity_thrashes(self):
        c = small_cache(ways=2, sets=1, line=64)  # 2 lines capacity
        addrs = [i * 64 for i in range(3)]
        for _ in range(3):
            for a in addrs:
                c.access(a)
        assert c.hits == 0  # cyclic access defeats LRU


class TestPrefetcher:
    def test_no_prefetch_below_trigger(self):
        c = small_cache(ways=8, sets=8)
        pf = StreamPrefetcher(c, trigger=2, depth=2)
        assert pf.observe_miss(10) == 0

    def test_sequential_misses_trigger_prefetch(self):
        c = small_cache(ways=8, sets=8)
        pf = StreamPrefetcher(c, trigger=2, depth=2)
        pf.observe_miss(10)
        n = pf.observe_miss(11)
        assert n == 2
        assert c.access_line(12) is True
        assert c.access_line(13) is True

    def test_non_sequential_misses_reset_stream(self):
        c = small_cache(ways=8, sets=8)
        pf = StreamPrefetcher(c, trigger=2, depth=2)
        pf.observe_miss(10)
        assert pf.observe_miss(20) == 0
        assert pf.observe_miss(21) == 2

    def test_reset_clears_stream(self):
        c = small_cache(ways=8, sets=8)
        pf = StreamPrefetcher(c, trigger=2, depth=2)
        pf.observe_miss(10)
        pf.reset()
        assert pf.observe_miss(11) == 0


class TestCacheProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                    max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, addrs):
        c = small_cache()
        for a in addrs:
            c.access(a)
        assert c.hits + c.misses == len(addrs)

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                    max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, addrs):
        c = small_cache(ways=2, sets=4)
        for a in addrs:
            c.access(a)
            assert c.resident_lines() <= 8

    @given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1,
                    max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_immediate_reaccess_always_hits(self, addrs):
        c = small_cache()
        for a in addrs:
            c.access(a)
            assert c.access(a) is True
