"""Tests for the implemented extensions the paper suggests.

* Monitoring duty cycle (section 6.3: "the overhead could be reduced by
  turning off monitoring for most of the time" when a program yields no
  candidates).
* Alternative sampled events (L2/DTLB misses) driving the same pipeline.
"""

from repro.core.config import (
    GCConfig,
    MonitorConfig,
    PerfmonConfig,
    SystemConfig,
)
from repro.core.controller import OnlineOptimizationController
from repro.jit.codecache import CodeCache
from repro.vm.vmcore import run_program
from repro.workloads import suite


def make_controller(duty=True, idle=2, off=3):
    switches = []
    controller = OnlineOptimizationController(
        CodeCache(),
        MonitorConfig(duty_cycle=duty, duty_idle_periods=idle,
                      duty_off_periods=off),
        PerfmonConfig(), charge=lambda c: None,
        sampling_switch=switches.append)
    return controller, switches


class TestDutyCycleUnit:
    def test_pauses_after_idle_periods(self):
        controller, switches = make_controller(idle=2)
        controller.on_period(1)
        assert not controller.sampling_paused
        controller.on_period(2)
        assert controller.sampling_paused
        assert switches == [False]

    def test_attributed_samples_reset_idle_count(self):
        controller, switches = make_controller(idle=2)
        controller.on_period(1)
        # Simulate an attributed sample arriving.
        controller._attributed_this_period = 1
        controller.on_period(2)
        controller.on_period(3)
        assert not controller.sampling_paused  # idle run was broken

    def test_rearms_after_off_periods(self):
        controller, switches = make_controller(idle=1, off=2)
        controller.on_period(1)      # pause
        assert controller.sampling_paused
        controller.on_period(2)
        controller.on_period(3)      # off window elapsed: re-arm
        assert not controller.sampling_paused
        assert switches == [False, True]

    def test_disabled_by_default(self):
        controller, switches = make_controller(duty=False)
        for t in range(10):
            controller.on_period(t)
        assert not controller.sampling_paused
        assert switches == []

    def test_pause_counter_in_summary(self):
        controller, _ = make_controller(idle=1, off=1)
        controller.on_period(1)
        assert controller.summary()["duty_pauses"] == 1


class TestDutyCycleEndToEnd:
    def run_compress(self, duty):
        w = suite.build("compress")
        cfg = SystemConfig(gc=GCConfig(heap_bytes=w.min_heap_bytes * 4),
                           coalloc=False,
                           monitor=MonitorConfig(duty_cycle=duty))
        return run_program(w.program, cfg, compilation_plan=w.plan)

    def test_candidate_free_program_overhead_reduced(self):
        on = self.run_compress(True)
        off = self.run_compress(False)
        assert on.monitor_summary["duty_pauses"] >= 1
        assert on.monitoring_cycles < 0.6 * off.monitoring_cycles
        assert on.cycles <= off.cycles

    def test_fruitful_program_keeps_sampling(self):
        w = suite.build("fop")
        cfg = SystemConfig(gc=GCConfig(heap_bytes=w.min_heap_bytes * 4),
                           coalloc=True,
                           monitor=MonitorConfig(duty_cycle=True,
                                                 duty_idle_periods=6))
        result = run_program(w.program, cfg, compilation_plan=w.plan)
        # The run still attributes samples and can co-allocate.
        assert result.monitor_summary["attributed"] > 0


class TestAlternativeEvents:
    def run_db(self, event):
        w = suite.build("db")
        cfg = SystemConfig(gc=GCConfig(heap_bytes=w.min_heap_bytes * 2),
                           coalloc=True, sampled_event=event)
        return run_program(w.program, cfg, compilation_plan=w.plan)

    def test_l2_miss_driven_coalloc_works(self):
        result = self.run_db("L2_MISS")
        assert result.monitor_summary["attributed"] > 0
        assert result.gc_stats.coallocated_objects > 0

    def test_dtlb_miss_driven_coalloc_works(self):
        result = self.run_db("DTLB_MISS")
        assert result.monitor_summary["attributed"] > 0
