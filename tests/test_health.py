"""Tests for the run-health observatory (src/repro/health).

Four layers:

* unit tests of the online phase segmentation (:class:`PhaseTracker`:
  hysteresis, spike fold-back, warmup, running scales),
* unit tests of every built-in pathology detector over synthetic
  interval/event streams,
* the pure-observer invariant — attaching a health monitor changes no
  simulated number at any fastpath level, and perturbs no decision-
  ledger entry id,
* end-to-end: a seeded revert storm and a phase-shifting workload are
  both detected by ``repro doctor``, with every finding's evidence
  resolving to valid ledger entries; records embed the report through
  schema 5 and tolerate every legacy schema.
"""

import json

import pytest

from repro.harness import experiments as ex
from repro.harness.record import (COMPATIBLE_SCHEMAS, RunRecord,
                                  SCHEMA_VERSION)
from repro.harness.runner import RunSpec, execute, make_vm
from repro.health import (HealthMonitor, NULL_HEALTH, NullHealthMonitor,
                          default_detectors)
from repro.health.detectors import (CacheThrashDetector, DETECTOR_REGISTRY,
                                    ExperimentEvent,
                                    PlacementRegressionDetector,
                                    RankingOscillationDetector,
                                    RevertStormDetector,
                                    SamplingStarvationDetector)
from repro.health.phases import FEATURES, Interval, PhaseTracker
from repro.health.report import (HEALTH_SCHEMA_VERSION, Finding, HealthReport,
                                 PhaseRecord, SEVERITY_CRITICAL, SEVERITY_OK,
                                 SEVERITY_WARN, build_report,
                                 format_findings, format_phase_overlay,
                                 format_phase_table, worst_severity)
from repro.lineage import DecisionLedger, explain
from repro.lineage.ledger import K_PERIOD, K_REVERT


def make_interval(index, samples=10, miss=0.0, gc=0.0, alloc=0.0,
                  recompiles=0, paused=False, top_fields=(),
                  period_id=-1, ranking_id=-1):
    return Interval(
        index=index, start_cycle=index * 1000,
        end_cycle=(index + 1) * 1000, samples=samples,
        attributed=samples, miss_rate=miss, gc_fraction=gc,
        alloc_rate=alloc, recompiles=recompiles, sampling_paused=paused,
        top_fields=tuple(top_fields), ledger_period_id=period_id,
        ledger_ranking_id=ranking_id)


class TestPhaseTracker:
    def test_stable_stream_is_one_phase(self):
        tracker = PhaseTracker()
        for i in range(10):
            assert tracker.observe(make_interval(i)) is None
        phases = tracker.finish()
        assert len(phases) == 1
        assert (phases[0].start_period, phases[0].end_period) == (0, 9)
        assert phases[0].intervals == 10
        assert phases[0].centroid["samples"] == pytest.approx(10.0)

    def test_shift_commits_boundary_after_hysteresis(self):
        tracker = PhaseTracker()
        closed = []
        for i in range(6):
            tracker.observe(make_interval(i, samples=10))
        # First outlier is only *pending* — no boundary yet.
        assert tracker.observe(make_interval(6, samples=50)) is None
        # The second consecutive outlier commits it.
        phase = tracker.observe(make_interval(7, samples=50))
        assert phase is not None
        assert (phase.start_period, phase.end_period) == (0, 5)
        for i in range(8, 10):
            assert tracker.observe(make_interval(i, samples=50)) is None
        phases = tracker.finish()
        assert len(phases) == 2
        assert phases[1].start_period == 6
        assert phases[1].intervals == 4

    def test_single_spike_folds_back(self):
        tracker = PhaseTracker()
        for i in range(6):
            tracker.observe(make_interval(i, samples=10))
        assert tracker.observe(make_interval(6, samples=50)) is None
        # Back in range: the spike was a transient, not a boundary.
        for i in range(7, 10):
            assert tracker.observe(make_interval(i, samples=10)) is None
        phases = tracker.finish()
        assert len(phases) == 1
        assert phases[0].intervals == 10

    def test_warmup_absorbs_wild_start(self):
        tracker = PhaseTracker(warmup=3)
        # Wildly different vectors inside the warmup never split.
        tracker.observe(make_interval(0, samples=0, miss=0.9))
        tracker.observe(make_interval(1, samples=40, miss=0.0))
        tracker.observe(make_interval(2, samples=5, miss=0.4))
        assert tracker.phases == []

    def test_sub_hysteresis_tail_folds_into_last_phase(self):
        tracker = PhaseTracker()
        for i in range(6):
            tracker.observe(make_interval(i, samples=10))
        tracker.observe(make_interval(6, samples=50))  # pending, alone
        phases = tracker.finish()
        assert len(phases) == 1
        assert phases[0].intervals == 7

    def test_period_ids_collected_per_phase(self):
        tracker = PhaseTracker()
        for i in range(5):
            tracker.observe(make_interval(i, period_id=(i if i % 2 else -1)))
        phases = tracker.finish()
        assert phases[0].period_ids == (1, 3)

    def test_features_order_matches_interval(self):
        iv = make_interval(0, samples=7, miss=0.5, gc=0.25, alloc=0.125,
                           recompiles=3)
        assert len(FEATURES) == len(iv.features())
        assert iv.features() == (0.5, 0.25, 0.125, 7.0, 3.0)


class TestDetectors:
    def test_registry_has_the_required_five(self):
        assert {"revert_storm", "ranking_oscillation",
                "sampling_starvation", "cache_thrash",
                "placement_regression"} <= set(DETECTOR_REGISTRY)
        names = [d.name for d in default_detectors()]
        assert len(names) == len(set(names))

    def revert(self, cycle, eid, name="exp"):
        return ExperimentEvent(kind="revert", name=name, cycle=cycle,
                               ledger_id=eid)

    def test_revert_storm_fires_on_clustered_reverts(self):
        det = RevertStormDetector(min_reverts=2, window_intervals=10)
        for i in range(20):
            det.on_interval(make_interval(i))
            if i in (4, 8):
                det.on_event(self.revert((i + 1) * 1000, eid=i,
                                         name=f"storm-{i}"))
        findings = det.finalize([], 20000)
        assert len(findings) == 1
        f = findings[0]
        assert f.severity == SEVERITY_CRITICAL
        assert f.ledger_ids == (4, 8)
        assert f.evidence["reverts"] == 2
        assert sorted(f.evidence["experiments"]) == ["storm-4", "storm-8"]

    def test_revert_storm_quiet_when_spread_out(self):
        det = RevertStormDetector(min_reverts=2, window_intervals=10)
        for i in range(40):
            det.on_interval(make_interval(i))
            if i in (4, 30):
                det.on_event(self.revert((i + 1) * 1000, eid=i))
        assert det.finalize([], 40000) == []

    def test_revert_storm_quiet_on_single_revert(self):
        det = RevertStormDetector()
        det.on_interval(make_interval(0))
        det.on_event(self.revert(500, eid=1))
        assert det.finalize([], 1000) == []

    def test_ranking_oscillation_flags_churn(self):
        det = RankingOscillationDetector(window=6, churn_threshold=0.5)
        for i in range(8):
            top = "A::x" if i % 2 else "B::y"
            det.on_interval(make_interval(i, samples=5,
                                          top_fields=((top, 10),),
                                          ranking_id=100 + i))
        findings = det.finalize([], 8000)
        assert len(findings) == 1
        assert findings[0].severity == SEVERITY_WARN
        assert findings[0].evidence["churn"] == 1.0
        assert all(eid >= 100 for eid in findings[0].ledger_ids)

    def test_ranking_oscillation_quiet_on_stable_top(self):
        det = RankingOscillationDetector(window=6)
        for i in range(12):
            det.on_interval(make_interval(i, samples=5,
                                          top_fields=(("A::x", 10),)))
        assert det.finalize([], 12000) == []

    def test_ranking_oscillation_ignores_unranked_intervals(self):
        det = RankingOscillationDetector(window=6)
        for i in range(12):
            det.on_interval(make_interval(i, samples=0,
                                          top_fields=(("A::x", 1),)))
        assert det.finalize([], 12000) == []

    def test_starvation_counts_only_active_intervals(self):
        det = SamplingStarvationDetector(min_samples=4, min_fraction=0.5,
                                         min_intervals=6)
        intervals = [make_interval(i, samples=0, period_id=i)
                     for i in range(8)]
        findings = det.finalize(intervals, 8000)
        assert len(findings) == 1
        assert findings[0].evidence["starved_intervals"] == 8
        assert findings[0].ledger_ids == tuple(range(8))
        # The same stream entirely duty-paused is not starvation.
        paused = [make_interval(i, samples=0, paused=True) for i in range(8)]
        assert det.finalize(paused, 8000) == []

    def test_starvation_quiet_when_fed(self):
        det = SamplingStarvationDetector(min_samples=4, min_fraction=0.5,
                                         min_intervals=6)
        intervals = [make_interval(i, samples=20) for i in range(8)]
        assert det.finalize(intervals, 8000) == []

    def test_cache_thrash_warn_without_experiments(self):
        det = CacheThrashDetector(min_run=4)
        intervals = [make_interval(i, miss=0.2, period_id=i)
                     for i in range(6)]
        findings = det.finalize(intervals, 6000)
        assert len(findings) == 1
        assert findings[0].severity == SEVERITY_WARN

    def test_cache_thrash_critical_when_experiments_all_reverted(self):
        det = CacheThrashDetector(min_run=4)
        det.on_event(ExperimentEvent(kind="begin", name="e", cycle=0))
        det.on_event(self.revert(100, eid=1, name="e"))
        intervals = [make_interval(i, miss=0.2) for i in range(6)]
        findings = det.finalize(intervals, 6000)
        assert len(findings) == 1
        assert findings[0].severity == SEVERITY_CRITICAL

    def test_cache_thrash_suppressed_by_winning_experiment(self):
        det = CacheThrashDetector(min_run=4)
        det.on_event(ExperimentEvent(kind="begin", name="win", cycle=0))
        intervals = [make_interval(i, miss=0.2) for i in range(6)]
        assert det.finalize(intervals, 6000) == []

    def test_cache_thrash_quiet_below_rate_floor(self):
        det = CacheThrashDetector(min_run=4, rate_floor=0.05)
        intervals = [make_interval(i, miss=0.01) for i in range(6)]
        assert det.finalize(intervals, 6000) == []

    def test_placement_regression_on_kept_regression(self):
        det = PlacementRegressionDetector(margin=0.10)
        det.on_event(ExperimentEvent(kind="begin", name="gap", cycle=100,
                                     ledger_id=3, field="A::x",
                                     baseline=100.0))
        det.on_event(ExperimentEvent(kind="verdict", name="gap", cycle=900,
                                     ledger_id=7, rate=150.0))
        findings = det.finalize([], 1000)
        assert len(findings) == 1
        f = findings[0]
        assert f.severity == SEVERITY_WARN
        assert f.ledger_ids == (3, 7)
        assert f.evidence["experiment"] == "gap"

    def test_placement_regression_quiet_after_revert(self):
        det = PlacementRegressionDetector()
        det.on_event(ExperimentEvent(kind="begin", name="gap", cycle=100,
                                     baseline=100.0))
        det.on_event(ExperimentEvent(kind="verdict", name="gap", cycle=900,
                                     rate=150.0))
        det.on_event(self.revert(950, eid=9, name="gap"))
        assert det.finalize([], 1000) == []

    def test_placement_regression_quiet_within_margin(self):
        det = PlacementRegressionDetector(margin=0.10)
        det.on_event(ExperimentEvent(kind="begin", name="gap", cycle=100,
                                     baseline=100.0))
        det.on_event(ExperimentEvent(kind="verdict", name="gap", cycle=900,
                                     rate=105.0))
        assert det.finalize([], 1000) == []


class TestReport:
    def test_worst_severity(self):
        assert worst_severity([]) == SEVERITY_OK
        assert worst_severity(["ok", "warn"]) == SEVERITY_WARN
        assert worst_severity(["warn", "critical", "ok"]) == SEVERITY_CRITICAL

    def finding(self, severity=SEVERITY_WARN, detector="d"):
        return Finding(detector=detector, severity=severity, summary="s",
                       start_cycle=0, end_cycle=10,
                       evidence={"n": 1}, ledger_ids=(1, 2),
                       remediation="r")

    def test_build_report_verdict_is_worst(self):
        report = build_report([], [self.finding("warn"),
                                   self.finding("critical")], 5, 5000)
        assert report.verdict == SEVERITY_CRITICAL
        assert report.findings_by_detector() == {"d": 2}

    def test_json_round_trip(self):
        phase = PhaseRecord(index=0, start_period=0, end_period=4,
                            start_cycle=0, end_cycle=5000, intervals=5,
                            centroid={"miss_rate": 0.25, "samples": 3.0},
                            period_ids=(1, 5))
        report = build_report([phase], [self.finding()], 5, 5000)
        doc = report.to_json()
        assert doc["schema"] == HEALTH_SCHEMA_VERSION
        back = HealthReport.from_json(json.loads(json.dumps(doc)))
        assert back.verdict == report.verdict
        assert back.phases[0] == phase
        assert back.findings[0] == self.finding()
        assert back.intervals == 5

    def test_rendering_smoke(self):
        phase = PhaseRecord(index=0, start_period=0, end_period=4,
                            start_cycle=0, end_cycle=5000, intervals=5,
                            centroid=dict.fromkeys(FEATURES, 0.1))
        report = build_report([phase], [self.finding()], 5, 5000)
        assert "phase" in format_phase_table(report)
        overlay = format_phase_overlay(report, 5000, width=20)
        assert overlay.count("0") == 20
        assert "1 phase(s)" in overlay
        text = format_findings(report)
        assert "WARN" in text and "ledger ids: 1, 2" in text
        empty = build_report([], [], 0, 0)
        assert "none" in format_phase_table(empty)
        assert "none" in format_findings(empty)


class TestPureObserver:
    """The PR-1 invariant extended to health: diagnosing a run must not
    change one simulated number — at every fastpath level — nor perturb
    a single decision-ledger entry."""

    @pytest.mark.parametrize("fastpath", [0, 1, 2])
    def test_health_on_off_bit_identical(self, fastpath):
        spec = RunSpec(benchmark="db", coalloc=True)
        off = execute(spec, fastpath=fastpath)
        health = HealthMonitor()
        on = execute(spec, health=health, fastpath=fastpath)
        assert health.intervals  # it really observed the run
        assert on.cycles == off.cycles
        assert on.instructions == off.instructions
        assert on.app_cycles == off.app_cycles
        assert on.gc_cycles == off.gc_cycles
        assert on.monitoring_cycles == off.monitoring_cycles
        assert on.counters == off.counters
        assert on.gc_stats.summary() == off.gc_stats.summary()
        assert on.monitor_summary == off.monitor_summary
        assert on.vm.pebs.samples_taken == off.vm.pebs.samples_taken
        assert ([e.name for e in
                 on.vm.controller.feedback.reverted_experiments()]
                == [e.name for e in
                    off.vm.controller.feedback.reverted_experiments()])
        assert off.vm.health is NULL_HEALTH

    def test_ledger_ids_unchanged_by_health(self):
        spec = RunSpec(benchmark="db", coalloc=True)
        solo = DecisionLedger()
        execute(spec, lineage=solo)
        observed = DecisionLedger()
        health = HealthMonitor()
        execute(spec, lineage=observed, health=health)
        assert solo.to_json() == observed.to_json()
        # Every id health captured is a real entry of that ledger.
        report = health.report()
        ids = {e["id"] for e in observed.to_json()["entries"]}
        for finding in report.findings:
            assert set(finding.ledger_ids) <= ids
        for phase in report.phases:
            assert set(phase.period_ids) <= ids
            assert phase.period_ids  # ledger-linked boundaries

    def test_null_health_is_shared_noop(self):
        assert isinstance(NULL_HEALTH, NullHealthMonitor)
        assert not NULL_HEALTH.enabled
        NULL_HEALTH.on_interval(make_interval(0))
        NULL_HEALTH.on_experiment_begin("x", "A::f", 0.0, 0, -1)
        assert NULL_HEALTH.intervals == []


class TestEndToEnd:
    def test_doctor_detects_storm_and_phase_shift(self):
        """The acceptance property: a seeded revert storm AND a phase
        shift on the adversarial workload, end to end, every finding's
        evidence resolving to valid ledger entries."""
        ledger = DecisionLedger()
        health = HealthMonitor()
        vm, workload = make_vm("phased",
                               RunSpec(benchmark="phased", coalloc=True),
                               lineage=ledger, health=health)
        fld = ex.resolve_field(vm.program, workload.hot_fields[0])
        driver = ex.seed_revert_storm(vm, fld, count=4)
        result = vm.run()
        assert driver.begun >= 3
        assert driver.reverted() >= 2

        report = health.report(result.cycles)
        assert len(report.phases) >= 2        # the phase shift
        assert report.intervals > 0
        storm = [f for f in report.findings if f.detector == "revert_storm"]
        assert len(storm) == 1                # the seeded storm
        assert storm[0].severity == SEVERITY_CRITICAL
        assert report.verdict == SEVERITY_CRITICAL

        doc = ledger.to_json()
        assert explain.validate(doc) == []
        by_id = explain.index_entries(doc)
        for finding in report.findings:
            assert finding.ledger_ids
            for eid in finding.ledger_ids:
                assert eid in by_id
        # Storm evidence is the revert entries themselves, and each
        # narrates back through the ledger like `repro explain` does.
        for eid in storm[0].ledger_ids:
            assert by_id[eid]["kind"] == K_REVERT
            chain = explain.chain_ids(by_id, eid)
            assert len(chain) > 1
        for phase in report.phases:
            for pid in phase.period_ids:
                assert by_id[pid]["kind"] == K_PERIOD

    def test_phased_workload_exit_matches_reference(self):
        # The adversarial program is still a deterministic guest
        # program: same checksum with and without observers.
        plain = execute(RunSpec(benchmark="phased"))
        observed = execute(RunSpec(benchmark="phased"),
                           health=HealthMonitor())
        assert plain.exit_value == observed.exit_value
        assert plain.cycles == observed.cycles


@pytest.fixture(scope="module")
def compress_health_record():
    health = HealthMonitor()
    ledger = DecisionLedger()
    spec = RunSpec(benchmark="compress")
    result = execute(spec, health=health, lineage=ledger)
    return RunRecord.from_result(result)


class TestRecordEmbedding:
    def test_record_embeds_health(self, compress_health_record):
        record = compress_health_record
        assert record.health is not None
        assert record.health["schema"] == HEALTH_SCHEMA_VERSION
        assert record.health["intervals"] > 0
        assert record.health["phases"]

    def test_round_trip(self, compress_health_record):
        doc = json.loads(json.dumps(compress_health_record.to_json()))
        assert doc["schema"] == SCHEMA_VERSION
        back = RunRecord.from_json(doc)
        assert back.health == compress_health_record.health
        report = HealthReport.from_json(back.health)
        assert report.intervals == back.health["intervals"]

    def test_record_without_health_has_none(self):
        result = execute(RunSpec(benchmark="compress"))
        record = RunRecord.from_result(result)
        assert record.health is None
        assert RunRecord.from_json(record.to_json()).health is None


#: Fields added after each historical schema: a document claiming
#: schema N must load with all later fields absent.
_FIELDS_SINCE = {
    1: ("provenance", "lineage", "exit_value", "health"),
    2: ("lineage", "exit_value", "health"),
    3: ("exit_value", "health"),
    4: ("health",),
    5: (),
}


class TestSchemaTolerance:
    def test_compatible_schemas_cover_history(self):
        assert COMPATIBLE_SCHEMAS == tuple(range(1, SCHEMA_VERSION + 1))
        assert set(_FIELDS_SINCE) == set(COMPATIBLE_SCHEMAS)

    @pytest.mark.parametrize("schema", sorted(_FIELDS_SINCE))
    def test_legacy_schema_loads_with_defaults(self, schema,
                                               compress_health_record):
        doc = compress_health_record.to_json()
        doc["schema"] = schema
        for missing in _FIELDS_SINCE[schema]:
            doc.pop(missing, None)
        record = RunRecord.from_json(doc)
        assert record.cycles == compress_health_record.cycles
        for missing in _FIELDS_SINCE[schema]:
            assert getattr(record, missing) is None
        if "health" not in _FIELDS_SINCE[schema]:
            assert record.health == compress_health_record.health

    @pytest.mark.parametrize("schema", sorted(_FIELDS_SINCE))
    def test_explicit_none_health_tolerated(self, schema,
                                            compress_health_record):
        doc = compress_health_record.to_json()
        doc["schema"] = schema
        doc["health"] = None
        record = RunRecord.from_json(doc)
        assert record.health is None

    def test_unknown_schema_rejected(self, compress_health_record):
        doc = compress_health_record.to_json()
        doc["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            RunRecord.from_json(doc)


class TestDiffHealth:
    def test_diff_reports_health_divergence(self, compress_health_record):
        from repro.analysis.diff import diff_records

        a = compress_health_record
        b = RunRecord.from_json(a.to_json())
        b.health = dict(a.health)
        b.health["verdict"] = "critical"
        b.health["findings"] = [Finding(
            detector="revert_storm", severity="critical", summary="s",
            start_cycle=0, end_cycle=1).to_json()]
        diff = diff_records(a, b)
        paths = {d.path for d in diff.significant}
        assert "health.verdict" in paths
        assert "health.findings.revert_storm" in paths

    def test_diff_quiet_when_health_matches(self, compress_health_record):
        from repro.analysis.diff import diff_records

        a = compress_health_record
        b = RunRecord.from_json(a.to_json())
        diff = diff_records(a, b)
        assert not [d for d in diff.deltas if d.path.startswith("health.")]


class TestMetricsExport:
    def test_health_gauges_published(self):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        health = HealthMonitor()
        execute(RunSpec(benchmark="compress"), telemetry=telemetry,
                health=health)
        rendered = telemetry.metrics.render()
        assert "gauge health.verdict" in rendered
        assert "gauge health.phases" in rendered
        assert "gauge health.findings{revert_storm}" in rendered

    def test_phase_spans_traced(self):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        health = HealthMonitor()
        result = execute(RunSpec(benchmark="compress"), telemetry=telemetry,
                         health=health)
        report = health.report(result.cycles)
        spans = [s for s in telemetry.tracer.spans if s.name == "health.phase"]
        assert len(spans) == len(report.phases)
        assert all(s.cat == "health" for s in spans)
