"""Plumbing tests for the experiment drivers, on a small fast subset.

The benchmark suite asserts the paper's *shapes* on the full matrix;
these tests assert the drivers' *mechanics* (correct configurations
compared, correct normalization) cheaply, so refactoring the harness is
safe without a 10-minute run.
"""

import pytest

from repro.harness import experiments as ex
from repro.harness.runner import RunSpec, clear_cache, measure

SMALL = ["fop"]


@pytest.fixture(autouse=True, scope="module")
def _warm_cache():
    yield
    clear_cache()


class TestFig2Plumbing:
    def test_overhead_relative_to_no_monitoring(self):
        rows = ex.fig2_sampling_overhead(SMALL, intervals=("auto",))
        (row,) = rows
        base = measure(RunSpec(benchmark="fop", heap_mult=4.0,
                               coalloc=False, monitoring=False))
        mon = measure(RunSpec(benchmark="fop", heap_mult=4.0,
                              coalloc=False, monitoring=True,
                              interval="auto"))
        expected = mon.cycles_mean / base.cycles_mean - 1.0
        assert row.overhead["auto"] == pytest.approx(expected)

    def test_requested_intervals_only(self):
        rows = ex.fig2_sampling_overhead(SMALL, intervals=("25K", "auto"))
        assert set(rows[0].overhead) == {"25K", "auto"}


class TestFig4Fig5Plumbing:
    def test_fig4_counts_match_measurements(self):
        (row,) = ex.fig4_l1_reduction(SMALL)
        base = measure(RunSpec(benchmark="fop", heap_mult=4.0,
                               coalloc=False, monitoring=False))
        assert row.baseline_misses == base.l1_misses
        assert 0 <= abs(row.reduction) <= 1

    def test_fig5_normalization(self):
        (row,) = ex.fig5_exec_time(SMALL, heap_mults=(4.0,))
        base = measure(RunSpec(benchmark="fop", heap_mult=4.0,
                               coalloc=False, monitoring=False))
        co = measure(RunSpec(benchmark="fop", heap_mult=4.0,
                             coalloc=True, monitoring=True))
        assert row.normalized[4.0] == pytest.approx(
            co.cycles_mean / base.cycles_mean)


class TestFig6Plumbing:
    def test_three_configs_per_heap(self):
        result = ex.fig6_gencopy_vs_genms("fop", heap_mults=(4.0,))
        assert set(result.cycles[4.0]) == {"genms", "genms+coalloc",
                                           "gencopy"}
        assert result.normalized(4.0, "genms") == 1.0


class TestTimelinePlumbing:
    def test_fig7_series_lengths_agree(self):
        result = ex.fig7_db_timeline("fop")
        assert len(result.per_period) == len(result.cumulative)
        assert len(result.moving_average) == len(result.per_period)

    def test_fig8_runs_on_small_benchmark(self):
        # fop has little churn: the experiment machinery must still
        # produce a well-formed result (reverted or not).
        result = ex.fig8_revert("fop", intervene_fraction=0.3)
        assert result.gap_applied_period >= 0
        assert len(result.moving_average) == len(result.per_period)
