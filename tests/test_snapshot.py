"""Deterministic run snapshotting and time-sliced execution.

The contract under test: a :class:`~repro.vm.snapshot.Snapshot` is a
*perfect* copy of a mid-run VM — capture, restore, and run to the end,
and every observable surface (cycles, instructions, exit value, event
counters, PEBS sample count, revert log, lineage ids) is bit-identical
to never having stopped, at every fastpath level and at any scheduler
boundary the run was cut at.  On top of that sit the incremental
layers: extending a cached ``until_cycles`` run simulates only the
delta, ``measure(repeats)`` retargets seed-invariant prefixes at new
seeds, and the sharded engine splits runs into legs without changing a
single bit.
"""

import json
from dataclasses import replace

import pytest

from repro.harness import engine, runner
from repro.harness.diskcache import DiskCache
from repro.harness.runner import RunSpec, execute
from repro.vm import snapshot as snapshot_mod
from repro.vm.snapshot import Snapshot, SnapshotError

LEVELS = (0, 1, 2)

#: Monitored + co-allocating fop: exercises sampling, the controller,
#: GC (3 minor collections), and the feedback loop in ~2.4M cycles.
FOP = RunSpec(benchmark="fop", heap_mult=2.0, coalloc=True)
#: Compress cut at 2M cycles: a *truncated* record end-to-end.
COMPRESS = RunSpec(benchmark="compress", heap_mult=2.0, coalloc=True,
                   until_cycles=2_000_000)
#: Monitoring off: the seed is never observable, so every checkpoint
#: stays seed-invariant and ``measure`` reuse is maximal.
CHEAP = RunSpec(benchmark="fop", heap_mult=1.0, monitoring=False)


@pytest.fixture()
def disk(tmp_path):
    cache = DiskCache(root=str(tmp_path), version="v-snap-test")
    runner.clear_cache()
    runner.set_disk_cache(cache)
    yield cache
    runner.set_disk_cache(None)
    runner.clear_cache()


def fingerprint(result):
    """Every surface the bit-identity guarantee covers."""
    vm = result.vm
    reverted = None
    if vm.controller is not None:
        reverted = [e.name for e in
                    vm.controller.feedback.reverted_experiments()]
    return (
        result.cycles,
        result.instructions,
        result.exit_value,
        result.app_cycles,
        result.gc_cycles,
        result.monitoring_cycles,
        dict(result.counters),
        result.gc_stats,
        result.monitor_summary,
        vm.pebs.samples_taken if vm.pebs is not None else None,
        vm.pebs.samples_dropped if vm.pebs is not None else None,
        reverted,
    )


def run_broken(spec, level, break_at, lineage=None):
    """Truncate ``spec`` at ``break_at``, then resume to its real end.

    Returns the finished RunResult of the *resumed* VM — the snapshot
    hop is the only difference from a plain ``execute``.
    """
    snaps = []
    bounded = replace(spec, until_cycles=break_at)
    execute(bounded, fastpath=level, lineage=lineage,
            on_checkpoint=snaps.append)
    assert snaps, "truncated run must deposit its end-state checkpoint"
    vm = snaps[-1].restore(fastpath=level)
    vm.advance(until_cycles=spec.until_cycles)
    return vm.finish()


# ---------------------------------------------------------------------------
# Bit-identity: snapshot -> restore -> run == never having stopped
# ---------------------------------------------------------------------------

class TestBitIdentity:
    @pytest.mark.parametrize("level", LEVELS)
    @pytest.mark.parametrize("spec", [FOP, COMPRESS],
                             ids=["fop", "compress-2M"])
    def test_resume_matches_unbroken(self, spec, level):
        unbroken = execute(spec, fastpath=level)
        resumed = run_broken(spec, level, break_at=1_000_000)
        assert fingerprint(resumed) == fingerprint(unbroken)

    @pytest.mark.parametrize("level", LEVELS)
    def test_resumed_record_equals_unbroken_record(self, level):
        a = runner.record_from_result(FOP, execute(FOP, fastpath=level))
        b = runner.record_from_result(FOP, run_broken(FOP, level, 800_000))
        assert a == b

    def test_cross_level_restore_is_identical(self):
        """One capture replays identically under all three interpreters."""
        snaps = []
        execute(replace(FOP, until_cycles=1_000_000),
                on_checkpoint=snaps.append)
        prints = []
        for level in LEVELS:
            vm = snaps[-1].restore(fastpath=level)
            vm.advance()
            prints.append(fingerprint(vm.finish()))
        assert prints[0] == prints[1] == prints[2]

    @pytest.mark.parametrize("level", LEVELS)
    def test_lineage_ids_survive_resume(self, level):
        from repro.lineage import DecisionLedger

        unbroken = DecisionLedger()
        execute(FOP, fastpath=level, lineage=unbroken)
        resumed = run_broken(FOP, level, break_at=1_200_000,
                             lineage=DecisionLedger())
        a, b = unbroken.to_json(), resumed.vm.lineage.to_json()
        assert [e["id"] for e in a["entries"]] \
            == [e["id"] for e in b["entries"]]
        assert a == b


# ---------------------------------------------------------------------------
# until_cycles boundary conditions: any scheduler cut point is safe
# ---------------------------------------------------------------------------

class TestBoundaries:
    #: Cut points chosen to land the *requested* bound awkwardly; the
    #: scheduler rounds each up to its next quantum boundary.
    #:   1         — before the first quantum (main's superblock leader)
    #:   127       — one cycle before the first scheduler quantum (128)
    #:   300_013   — odd bound mid-method, far from any quantum multiple
    #:   1_000_000 — past the first minor GC safepoint (fop GCs 3x)
    BREAKS = (1, 127, 300_013, 1_000_000)

    @pytest.mark.parametrize("level", LEVELS)
    def test_every_cut_point_resumes_identically(self, level):
        unbroken = fingerprint(execute(FOP, fastpath=level))
        for break_at in self.BREAKS:
            resumed = run_broken(FOP, level, break_at)
            assert fingerprint(resumed) == unbroken, \
                f"divergence after cut at {break_at} (level {level})"

    def test_gc_actually_happened(self):
        """The 1M cut point really does span GC work (guards BREAKS)."""
        result = execute(FOP)
        assert "0 minor" not in result.gc_stats.summary()

    def test_double_break_chains(self):
        """Checkpoint-of-a-resumed-run resumes again, still identical."""
        unbroken = fingerprint(execute(FOP))
        snaps = []
        execute(replace(FOP, until_cycles=600_000),
                on_checkpoint=snaps.append)
        vm = snaps[-1].restore()
        vm.advance(until_cycles=1_400_000)
        second = Snapshot.capture(vm)
        vm2 = second.restore()
        vm2.advance()
        assert fingerprint(vm2.finish()) == unbroken


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------

class TestWireFormat:
    def _snap(self):
        snaps = []
        execute(replace(FOP, until_cycles=200_000),
                on_checkpoint=snaps.append)
        return snaps[-1]

    def test_bytes_round_trip(self):
        snap = self._snap()
        clone = Snapshot.from_bytes(snap.to_bytes())
        assert clone.cycle == snap.cycle
        assert clone.program == snap.program
        assert clone.pure == snap.pure
        vm_a, vm_b = snap.restore(), clone.restore()
        vm_a.advance()
        vm_b.advance()
        assert fingerprint(vm_a.finish()) == fingerprint(vm_b.finish())

    def test_bad_magic_rejected(self):
        with pytest.raises(SnapshotError, match="magic"):
            Snapshot.from_bytes(b"NOPE" + b"\x00" * 64)

    def test_truncated_rejected(self):
        with pytest.raises(SnapshotError):
            Snapshot.from_bytes(b"RSNP\x00")

    def test_stale_code_version_rejected(self):
        import struct

        data = self._snap().to_bytes()
        (hlen,) = struct.unpack(">I", data[4:8])
        header = json.loads(data[8:8 + hlen].decode())
        header["code_version"] = "0" * 16
        tampered = json.dumps(header).encode()
        data = (data[:4] + struct.pack(">I", len(tampered)) + tampered
                + data[8 + hlen:])
        with pytest.raises(SnapshotError, match="code version"):
            Snapshot.from_bytes(data)
        # ... unless the caller explicitly opts out.
        assert Snapshot.from_bytes(data, check_code_version=False) is not None


# ---------------------------------------------------------------------------
# Purity: only observer-free snapshots may serve the record cache
# ---------------------------------------------------------------------------

class TestPurity:
    def test_observer_snapshots_are_impure(self):
        from repro.lineage import DecisionLedger

        snaps = []
        execute(replace(FOP, until_cycles=200_000),
                lineage=DecisionLedger(), on_checkpoint=snaps.append)
        assert not snaps[-1].pure
        pure_snaps = []
        execute(replace(FOP, until_cycles=200_000),
                on_checkpoint=pure_snaps.append)
        assert pure_snaps[-1].pure

    def test_record_cache_skips_impure_checkpoints(self, disk):
        from repro.lineage import DecisionLedger

        bounded = replace(FOP, until_cycles=200_000)
        snaps = []
        execute(bounded, lineage=DecisionLedger(),
                on_checkpoint=snaps.append)
        runner.store_snapshot(bounded, snaps[-1])
        # best_snapshot (the record cache's lookup) refuses it ...
        assert runner.best_snapshot(replace(FOP, until_cycles=400_000)) \
            is None
        # ... but an unrestricted disk lookup (the CLI --resume path)
        # still serves it.
        found = disk.get_snapshot(FOP.base())
        assert found is not None and not found.pure
        assert disk.get_snapshot(FOP.base(), require_pure=True) is None


# ---------------------------------------------------------------------------
# Incremental extension: only the delta is ever simulated
# ---------------------------------------------------------------------------

class TestIncremental:
    def test_extension_simulates_only_the_delta(self, disk):
        short = replace(COMPRESS, until_cycles=500_000)
        long = replace(COMPRESS, until_cycles=2_000_000)

        runner.record_for(short)
        before = runner.SIM_CYCLES
        extended = runner.record_for(long)
        delta = runner.SIM_CYCLES - before
        # The prefix (>= 500K cycles) was served by the checkpoint; only
        # the remaining ~1.5M simulated (plus sub-quantum slack).
        assert 0 < delta < 1_700_000

        # And the result is bit-identical to an unbroken bounded run.
        runner.set_disk_cache(None)
        runner.clear_cache()
        fresh = runner.record_for(long)
        assert extended == fresh

    def test_warm_snapshot_cache_survives_processes(self, disk):
        """A second "process" (cleared memo) resumes from disk."""
        short = replace(COMPRESS, until_cycles=500_000)
        runner.record_for(short)
        runner._RECORDS.clear()
        runner._SNAPSHOTS.clear()
        before = runner.SIM_CYCLES
        runner.record_for(replace(COMPRESS, until_cycles=1_000_000))
        assert 0 < runner.SIM_CYCLES - before < 700_000
        assert disk.snapshot_hits >= 1

    def test_full_run_reuses_bounded_prefix(self, disk):
        """An *unbounded* spec also resumes from its family's checkpoints."""
        runner.record_for(replace(FOP, until_cycles=1_000_000))
        before = runner.SIM_CYCLES
        record = runner.record_for(FOP)
        assert runner.SIM_CYCLES - before < 1_600_000
        runner.set_disk_cache(None)
        runner.clear_cache()
        assert record == runner.record_for(FOP)


# ---------------------------------------------------------------------------
# Seed retargeting: measure(repeats) reuses the seed-invariant prefix
# ---------------------------------------------------------------------------

class TestReseed:
    def test_reseed_retargets_an_early_checkpoint(self):
        snaps = []
        execute(replace(FOP, until_cycles=100_000),
                on_checkpoint=snaps.append)
        vm = snaps[-1].restore()
        assert snapshot_mod.reseed(vm, new_seed=2)
        vm.advance()
        reseeded = fingerprint(vm.finish())
        unbroken = fingerprint(execute(replace(FOP, seed=2)))
        assert reseeded == unbroken

    def test_reseed_refuses_once_seed_is_observable(self):
        """After samples fired, the old seed is baked into history."""
        snaps = []
        execute(replace(FOP, until_cycles=2_000_000),
                on_checkpoint=snaps.append)
        vm = snaps[-1].restore()
        assert vm.pebs.samples_taken > 0
        assert not snapshot_mod.reseed(vm, new_seed=2)
        # Refusal must leave the VM untouched: it still finishes as seed 1.
        vm.advance()
        assert fingerprint(vm.finish()) == fingerprint(execute(FOP))

    def test_measure_repeats_are_bit_exact_per_seed(self, disk):
        m = runner.measure(FOP, repeats=2)
        assert len(m.results) == 2
        runner.set_disk_cache(None)
        runner.clear_cache()
        for r, record in enumerate(m.results):
            fresh = runner.record_for(replace(FOP, seed=FOP.seed + r))
            assert record == fresh, f"repetition {r} diverged"

    def test_measure_skips_resimulating_shared_prefix(self, disk):
        """With monitoring off, later seeds reuse the deepest checkpoint."""
        before = runner.SIM_CYCLES
        m = runner.measure(CHEAP, repeats=3)
        spent = runner.SIM_CYCLES - before
        one_run = m.results[0].cycles
        # Three full runs would cost ~3x one run; seeds 2 and 3 each
        # resume past the deepest 1M-grid checkpoint instead.
        assert spent < 2 * one_run
        # The invariant holds *because* nothing sampled: monitored specs
        # (whose samples consume the seed early) fall back to full runs,
        # covered by test_measure_repeats_are_bit_exact_per_seed.
        assert not m.results[0].monitor_summary


# ---------------------------------------------------------------------------
# Sharded engine: legs can never change a bit
# ---------------------------------------------------------------------------

class TestSharded:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_sharded_equals_serial(self, disk, jobs):
        serial = [runner.record_for(FOP), runner.record_for(COMPRESS)]
        runner.clear_cache()
        disk.clear()
        sharded = engine.run_specs_sharded([FOP, COMPRESS],
                                           leg_cycles=800_000, jobs=jobs)
        assert sharded == serial

    def test_sharded_legs_deposit_checkpoints(self, disk):
        engine.run_specs_sharded([FOP], leg_cycles=700_000, jobs=1)
        assert disk.snapshot_cycles(FOP.base())


# ---------------------------------------------------------------------------
# Disk cache: snapshot entries, stats by kind, prune
# ---------------------------------------------------------------------------

class TestDiskCacheSnapshots:
    def test_stats_split_records_from_snapshots(self, disk):
        runner.record_for(replace(COMPRESS, until_cycles=500_000))
        stats = disk.stats()
        assert stats["records"]["entries"] == 1
        assert stats["snapshots"]["entries"] >= 1
        assert stats["snapshots"]["bytes"] > 0
        assert stats["entries"] == (stats["records"]["entries"]
                                    + stats["snapshots"]["entries"])

    def test_corrupt_snapshot_is_a_miss_not_a_crash(self, disk, tmp_path):
        short = replace(COMPRESS, until_cycles=500_000)
        runner.record_for(short)
        for cycle in disk.snapshot_cycles(short.base()):
            path = disk._snapshot_path(short.base(), cycle)
            with open(path, "wb") as fh:
                fh.write(b"garbage")
        assert disk.get_snapshot(short.base()) is None
        assert disk.snapshot_cycles(short.base()) == []

    def test_prune_drops_stale_versions_and_fits_budget(self, disk,
                                                        tmp_path):
        import os

        runner.record_for(replace(COMPRESS, until_cycles=500_000))
        stale_dir = tmp_path / "v-old"
        stale_dir.mkdir()
        (stale_dir / "dead.json").write_text("{}")
        (stale_dir / "dead.snap.5.bin").write_bytes(b"x" * 100)

        outcome = disk.prune()
        assert outcome["removed_stale"] == 2
        assert not os.path.isdir(stale_dir)
        assert outcome["removed_current"] == 0

        outcome = disk.prune(max_bytes=0)
        assert outcome["removed_current"] >= 2
        assert outcome["bytes"] == 0
        assert disk.stats()["entries"] == 0
