"""Tests for the GenMS / GenCopy plans, write barrier, and co-allocation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import GCConfig
from repro.gc.coalloc import CoallocationPolicy, static_hot_fields
from repro.gc.gencopy import GenCopyPlan, make_plan
from repro.gc.genms import GenMSPlan
from repro.gc.plan import GCHooks, HeapExhausted
from repro.vm.objects import (
    SPACE_LOS,
    SPACE_MATURE,
    SPACE_NURSERY,
    is_adjacent,
    same_cache_line,
)
from repro.vm.program import Program


def fresh_program():
    p = Program("t")
    node = p.define_class("Node")
    node.add_field("next", "ref")
    node.add_field("value", "int")
    node.seal()
    return p, node


class RootBag:
    """Mutable root set for driving plans in tests."""

    def __init__(self):
        self.objects = []

    def __call__(self):
        return list(self.objects)


def make_genms(heap=1 << 20, coalloc=None, roots=None, charges=None):
    hooks = GCHooks(
        roots=roots if roots is not None else lambda: (),
        charge=(charges.append if charges is not None else lambda c: None),
    )
    return GenMSPlan(GCConfig(heap_bytes=heap), hooks, coalloc)


class TestAllocation:
    def test_object_allocated_in_nursery(self):
        p, node = fresh_program()
        plan = make_genms()
        obj = plan.alloc_object(node)
        assert obj.space == SPACE_NURSERY
        assert plan.nursery.contains(obj.address)

    def test_large_object_goes_to_los(self):
        plan = make_genms()
        arr = plan.alloc_array("int", 2000)  # 8012 bytes
        assert arr.space == SPACE_LOS
        assert plan.stats.los_objects == 1

    def test_sequential_nursery_addresses(self):
        p, node = fresh_program()
        plan = make_genms()
        a = plan.alloc_object(node)
        b = plan.alloc_object(node)
        assert b.address == a.address + node.instance_bytes

    def test_alloc_stats(self):
        p, node = fresh_program()
        plan = make_genms()
        plan.alloc_object(node)
        plan.alloc_array("int", 4)
        assert plan.stats.alloc_objects == 2
        assert plan.stats.alloc_bytes > 0


class TestMinorCollection:
    def test_nursery_full_triggers_minor_gc(self):
        p, node = fresh_program()
        roots = RootBag()
        plan = make_genms(heap=1 << 20, roots=roots)
        n = plan.nursery.capacity // node.instance_bytes + 10
        for _ in range(n):
            roots.objects = [plan.alloc_object(node)]  # only last survives
        assert plan.stats.minor_gcs >= 1

    def test_live_objects_promoted_dead_dropped(self):
        p, node = fresh_program()
        roots = RootBag()
        plan = make_genms(roots=roots)
        live = plan.alloc_object(node)
        plan.alloc_object(node)  # dead
        roots.objects = [live]
        plan.collect_minor()
        assert live.space == SPACE_MATURE
        assert plan.stats.promoted_objects == 1

    def test_transitive_reachability(self):
        p, node = fresh_program()
        roots = RootBag()
        plan = make_genms(roots=roots)
        a = plan.alloc_object(node)
        b = plan.alloc_object(node)
        c = plan.alloc_object(node)
        a.write(0, b)
        b.write(0, c)
        roots.objects = [a]
        plan.collect_minor()
        assert all(o.space == SPACE_MATURE for o in (a, b, c))

    def test_field_values_preserved_across_gc(self):
        p, node = fresh_program()
        roots = RootBag()
        plan = make_genms(roots=roots)
        a = plan.alloc_object(node)
        a.write(1, 1234)
        roots.objects = [a]
        plan.collect_minor()
        assert a.read(1) == 1234

    def test_remset_keeps_nursery_object_alive(self):
        p, node = fresh_program()
        roots = RootBag()
        plan = make_genms(roots=roots)
        parent = plan.alloc_object(node)
        roots.objects = [parent]
        plan.collect_minor()
        assert parent.space == SPACE_MATURE
        child = plan.alloc_object(node)
        parent.write(0, child)
        plan.write_barrier(parent, 0, child)
        roots.objects = []  # only reachable via the mature parent
        plan.collect_minor()
        assert child.space == SPACE_MATURE

    def test_without_barrier_child_is_lost(self):
        # Documents why the barrier is required: skipping it loses the
        # mature->nursery edge.
        p, node = fresh_program()
        roots = RootBag()
        plan = make_genms(roots=roots)
        parent = plan.alloc_object(node)
        roots.objects = [parent]
        plan.collect_minor()
        child = plan.alloc_object(node)
        parent.write(0, child)  # no barrier call
        roots.objects = []
        plan.collect_minor()
        assert child.space == SPACE_NURSERY  # stale: GC never saw it

    def test_nursery_reset_after_gc(self):
        p, node = fresh_program()
        roots = RootBag()
        plan = make_genms(roots=roots)
        plan.alloc_object(node)
        plan.collect_minor()
        assert plan.nursery.used == 0

    def test_promotion_charges_cycles(self):
        p, node = fresh_program()
        roots = RootBag()
        charges = []
        plan = make_genms(roots=roots, charges=charges)
        roots.objects = [plan.alloc_object(node)]
        plan.collect_minor()
        assert sum(charges) >= plan.config.minor_fixed_cost


class TestFullCollection:
    def test_dead_mature_objects_swept(self):
        p, node = fresh_program()
        roots = RootBag()
        plan = make_genms(roots=roots)
        a = plan.alloc_object(node)
        b = plan.alloc_object(node)
        roots.objects = [a, b]
        plan.collect_minor()
        roots.objects = [a]
        before = plan.freelist.bytes_in_use
        plan.collect_full()
        assert plan.freelist.bytes_in_use < before
        assert plan.stats.swept_objects == 1
        assert a.space == SPACE_MATURE

    def test_full_gc_clears_marks(self):
        p, node = fresh_program()
        roots = RootBag()
        plan = make_genms(roots=roots)
        a = plan.alloc_object(node)
        roots.objects = [a]
        plan.collect_minor()
        plan.collect_full()
        assert a.gc_mark is False

    def test_los_swept(self):
        roots = RootBag()
        plan = make_genms(roots=roots)
        arr = plan.alloc_array("int", 3000)
        roots.objects = [arr]
        plan.collect_full()
        assert plan.los.bytes_in_use > 0
        roots.objects = []
        plan.collect_full()
        assert plan.los.bytes_in_use == 0

    def test_heap_exhaustion_raises(self):
        p, node = fresh_program()
        roots = RootBag()
        keep = []
        roots.objects = keep
        plan = make_genms(heap=160 * 1024, roots=lambda: keep)
        with pytest.raises(HeapExhausted):
            for _ in range(20000):
                keep.append(plan.alloc_object(node))


class TestCoallocation:
    def make_coalloc_plan(self, hot_table, roots, gap=0, heap=1 << 20):
        policy = CoallocationPolicy(static_hot_fields(hot_table),
                                    gap_bytes=gap)
        return make_genms(heap=heap, coalloc=policy, roots=roots), policy

    def test_hot_pair_placed_adjacently(self):
        p, node = fresh_program()
        roots = RootBag()
        plan, _ = self.make_coalloc_plan({node: node.field("next")}, roots)
        parent = plan.alloc_object(node)
        child = plan.alloc_object(node)
        parent.write(0, child)
        roots.objects = [parent]
        plan.collect_minor()
        assert parent.space == child.space == SPACE_MATURE
        assert is_adjacent(parent, child)
        assert same_cache_line(parent, child)
        assert parent.coallocated and child.coallocated
        assert plan.stats.coalloc_pairs == 1
        assert plan.stats.coallocated_objects == 2

    def test_pair_shares_one_cell(self):
        p, node = fresh_program()
        roots = RootBag()
        plan, _ = self.make_coalloc_plan({node: node.field("next")}, roots)
        parent = plan.alloc_object(node)
        child = plan.alloc_object(node)
        parent.write(0, child)
        roots.objects = [parent]
        plan.collect_minor()
        assert parent.cell is child.cell
        assert len(parent.cell.inhabitants) == 2

    def test_no_hot_field_means_normal_promotion(self):
        p, node = fresh_program()
        roots = RootBag()
        plan, policy = self.make_coalloc_plan({}, roots)
        parent = plan.alloc_object(node)
        child = plan.alloc_object(node)
        parent.write(0, child)
        roots.objects = [parent]
        plan.collect_minor()
        assert not parent.coallocated
        assert policy.no_hot_field > 0

    def test_child_already_mature_not_coallocated(self):
        p, node = fresh_program()
        roots = RootBag()
        plan, policy = self.make_coalloc_plan({node: node.field("next")}, roots)
        child = plan.alloc_object(node)
        roots.objects = [child]
        plan.collect_minor()
        parent = plan.alloc_object(node)
        parent.write(0, child)
        roots.objects = [parent]
        plan.collect_minor()
        assert not parent.coallocated
        assert policy.child_unavailable > 0

    def test_null_child_not_coallocated(self):
        p, node = fresh_program()
        roots = RootBag()
        plan, _ = self.make_coalloc_plan({node: node.field("next")}, roots)
        parent = plan.alloc_object(node)
        roots.objects = [parent]
        plan.collect_minor()
        assert not parent.coallocated

    def test_combined_size_over_limit_rejected(self):
        p = Program("t")
        big = p.define_class("Big")
        big.add_field("child", "ref")
        for i in range(1020):
            big.add_field(f"f{i}", "int")  # ~4 KB object
        big.seal()
        roots = RootBag()
        plan, policy = self.make_coalloc_plan({big: big.field("child")}, roots)
        parent = plan.alloc_object(big)
        child = plan.alloc_object(big)
        parent.write(0, child)
        roots.objects = [parent]
        plan.collect_minor()
        assert not parent.coallocated
        assert policy.too_large > 0

    def test_gap_bytes_separates_pair(self):
        # Figure 8: one cache line of empty space between the objects.
        p, node = fresh_program()
        roots = RootBag()
        plan, _ = self.make_coalloc_plan({node: node.field("next")}, roots,
                                         gap=128)
        parent = plan.alloc_object(node)
        child = plan.alloc_object(node)
        parent.write(0, child)
        roots.objects = [parent]
        plan.collect_minor()
        assert parent.coallocated
        assert child.address == parent.address + parent.size + 128
        assert not same_cache_line(parent, child)

    def test_coalloc_cell_freed_only_when_both_dead(self):
        p, node = fresh_program()
        roots = RootBag()
        plan, _ = self.make_coalloc_plan({node: node.field("next")}, roots)
        parent = plan.alloc_object(node)
        child = plan.alloc_object(node)
        parent.write(0, child)
        roots.objects = [parent]
        plan.collect_minor()
        cell = parent.cell
        # Keep only the child alive: parent dies, cell must survive.
        roots.objects = [child]
        parent.write(0, None)
        plan.collect_full()
        assert cell.addr in plan.freelist.cells
        assert cell.inhabitants == [child]
        roots.objects = []
        plan.collect_full()
        assert cell.addr not in plan.freelist.cells

    def test_chain_promotion_pairs_greedily(self):
        # a -> b -> c with Node::next hot: BFS promotes a+b as a pair; c
        # is already promoted by the time b is considered as a parent.
        p, node = fresh_program()
        roots = RootBag()
        plan, _ = self.make_coalloc_plan({node: node.field("next")}, roots)
        a = plan.alloc_object(node)
        b = plan.alloc_object(node)
        c = plan.alloc_object(node)
        a.write(0, b)
        b.write(0, c)
        roots.objects = [a]
        plan.collect_minor()
        assert a.coallocated and b.coallocated
        assert is_adjacent(a, b)
        assert plan.stats.coalloc_pairs in (1, 2)


class TestGenCopy:
    def test_rejects_coalloc_policy(self):
        with pytest.raises(ValueError):
            GenCopyPlan(GCConfig(), coalloc=CoallocationPolicy(lambda k: None))

    def test_minor_promotes_to_tospace(self):
        p, node = fresh_program()
        roots = RootBag()
        plan = GenCopyPlan(GCConfig(heap_bytes=1 << 20), GCHooks(roots=roots))
        a = plan.alloc_object(node)
        roots.objects = [a]
        plan.collect_minor()
        assert a.space == SPACE_MATURE
        assert plan.tospace.contains(a.address)

    def test_cheney_order_gives_locality(self):
        p, node = fresh_program()
        roots = RootBag()
        plan = GenCopyPlan(GCConfig(heap_bytes=1 << 20), GCHooks(roots=roots))
        a = plan.alloc_object(node)
        b = plan.alloc_object(node)
        a.write(0, b)
        roots.objects = [a]
        plan.collect_minor()
        assert b.address == a.address + a.size  # only two objects: adjacent

    def test_full_gc_flips_semispaces(self):
        p, node = fresh_program()
        roots = RootBag()
        plan = GenCopyPlan(GCConfig(heap_bytes=1 << 20), GCHooks(roots=roots))
        a = plan.alloc_object(node)
        roots.objects = [a]
        plan.collect_minor()
        old_space = plan.tospace
        old_addr = a.address
        plan.collect_full()
        assert plan.tospace is not old_space
        assert a.address != old_addr
        assert plan.tospace.contains(a.address)

    def test_full_gc_drops_dead_mature(self):
        p, node = fresh_program()
        roots = RootBag()
        plan = GenCopyPlan(GCConfig(heap_bytes=1 << 20), GCHooks(roots=roots))
        a = plan.alloc_object(node)
        b = plan.alloc_object(node)
        roots.objects = [a, b]
        plan.collect_minor()
        roots.objects = [a]
        plan.collect_full()
        assert len(plan.mature_objects) == 1
        assert plan.stats.swept_objects == 1

    def test_copy_reserve_doubles_footprint(self):
        p, node = fresh_program()
        roots = RootBag()
        plan = GenCopyPlan(GCConfig(heap_bytes=1 << 20), GCHooks(roots=roots))
        a = plan.alloc_object(node)
        roots.objects = [a]
        plan.collect_minor()
        assert plan.mature_footprint() == 2 * a.size

    def test_make_plan_factory(self):
        assert isinstance(make_plan("genms", GCConfig()), GenMSPlan)
        assert isinstance(make_plan("gencopy", GCConfig()), GenCopyPlan)
        with pytest.raises(ValueError):
            make_plan("nogc", GCConfig())


class TestGCProperties:
    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                    min_size=1, max_size=40),
           st.lists(st.booleans(), min_size=10, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_reachable_objects_survive_arbitrary_graphs(self, edges, root_mask):
        """Build a random 10-node graph, run minor+full GC, and check that
        exactly the reachable nodes survive with values intact."""
        p, node = fresh_program()
        roots = RootBag()
        plan = make_genms(roots=roots)
        objs = [plan.alloc_object(node) for _ in range(10)]
        for i, obj in enumerate(objs):
            obj.write(1, i * 100)
        for src, dst in edges:
            objs[src].write(0, objs[dst])
        roots.objects = [o for o, keep in zip(objs, root_mask) if keep]
        # Compute expected reachability.
        expected = set()
        stack = [i for i, keep in enumerate(root_mask) if keep]
        while stack:
            i = stack.pop()
            if i in expected:
                continue
            expected.add(i)
            child = objs[i].read(0)
            if child is not None:
                stack.append(objs.index(child))
        plan.collect_minor()
        plan.collect_full()
        for i in expected:
            assert objs[i].space == SPACE_MATURE
            assert objs[i].read(1) == i * 100
        assert plan.stats.promoted_objects == len(expected)

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_live_mature_objects_never_overlap(self, data):
        """Address-range disjointness under co-allocation and gaps."""
        p, node = fresh_program()
        gap = data.draw(st.sampled_from([0, 64, 128]))
        roots = RootBag()
        policy = CoallocationPolicy(
            static_hot_fields({node: node.field("next")}), gap_bytes=gap)
        plan = make_genms(coalloc=policy, roots=roots)
        n = data.draw(st.integers(2, 30))
        objs = [plan.alloc_object(node) for _ in range(n)]
        for a, b in zip(objs, objs[1:]):
            if data.draw(st.booleans()):
                a.write(0, b)
        roots.objects = objs
        plan.collect_minor()
        spans = sorted((o.address, o.address + o.size) for o in objs)
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert e1 <= s2
