"""Fleet daemon tests: scheduler dedup, HTTP API, metrics, watch.

The scheduler tests inject a blocking ``engine_call`` so the in-flight
dedup window is held open deterministically — no sleeps, no races.
The end-to-end tests run a real :class:`BackgroundFleet` (ephemeral
port, engine ``jobs=1`` so simulations run in the daemon's own process
and ``runner.SIM_RUNS`` is observable) and drive it through the
stdlib :class:`FleetClient`, asserting the acceptance criteria:
records fetched over the API are bit-identical to a local
``run_specs``, duplicate in-flight specs provably simulate once, and
``/metrics`` parses under the Prometheus text-format validator.
"""

import asyncio
import json
import threading

import pytest

from repro.analysis.diff import diff_docs
from repro.fleet import (BackgroundFleet, FleetClient, FleetClientError,
                         FleetError, FleetScheduler, FleetUnavailable)
from repro.fleet import watch
from repro.fleet.scheduler import EventBus
from repro.harness import engine, runner
from repro.harness.diskcache import spec_key
from repro.harness.runner import RunSpec
from repro.telemetry.export import parse_prometheus_text

SMALL = 150_000  # cycles: enough for a couple of scheduler quanta


def spec_doc(benchmark="compress", **kw):
    doc = {"benchmark": benchmark, "until_cycles": SMALL}
    doc.update(kw)
    return doc


# ---------------------------------------------------------------------------
# EventBus
# ---------------------------------------------------------------------------

class TestEventBus:
    def test_backlog_seeds_late_subscriber(self):
        async def scenario():
            bus = EventBus(retain=3)
            for i in range(5):
                bus.publish({"i": i})
            queue = bus.subscribe(backlog=True)
            # Bounded history: only the last 3 survive.
            got = [queue.get_nowait()["i"] for _ in range(queue.qsize())]
            assert got == [2, 3, 4]
            bus.publish({"i": 5})
            assert queue.get_nowait()["i"] == 5
            assert bus.published == 6

        asyncio.run(scenario())

    def test_no_backlog_and_unsubscribe(self):
        async def scenario():
            bus = EventBus()
            bus.publish({"i": 0})
            queue = bus.subscribe(backlog=False)
            assert queue.qsize() == 0
            bus.unsubscribe(queue)
            bus.publish({"i": 1})
            assert queue.qsize() == 0

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Scheduler: validation + deterministic dedup
# ---------------------------------------------------------------------------

class TestSchedulerValidation:
    def _scheduler(self):
        return FleetScheduler(jobs=1, engine_call=lambda *a, **k: None)

    def test_rejects_non_list_and_empty(self):
        async def scenario():
            sched = self._scheduler()
            for bad in (None, {}, [], "compress"):
                with pytest.raises(FleetError):
                    sched.parse_specs(bad)

        asyncio.run(scenario())

    def test_rejects_unknown_benchmark_and_field(self):
        async def scenario():
            sched = self._scheduler()
            with pytest.raises(FleetError, match="unknown benchmark"):
                sched.parse_specs([{"benchmark": "nope"}])
            with pytest.raises(FleetError, match="unknown field"):
                sched.parse_specs([{"benchmark": "compress",
                                    "bogus": 1}])

        asyncio.run(scenario())

    def test_parses_valid_docs(self):
        async def scenario():
            sched = self._scheduler()
            specs = sched.parse_specs(
                [spec_doc(), spec_doc("db", seed=7)])
            assert [s.benchmark for s in specs] == ["compress", "db"]
            assert specs[1].seed == 7

        asyncio.run(scenario())

    def test_draining_refuses(self):
        async def scenario():
            sched = self._scheduler()
            await sched.drain()
            with pytest.raises(FleetUnavailable):
                sched.submit([RunSpec(benchmark="compress")])

        asyncio.run(scenario())


class TestSchedulerDedup:
    def test_inflight_key_coalesces_onto_owner(self):
        """While batch A's simulation is held in flight, batch B
        submitting the identical spec must coalesce — exactly one
        engine call — and both jobs finish once it completes."""
        release = threading.Event()
        calls = []

        def engine_call(specs, jobs=None, progress=None, batch=None):
            calls.append((batch, [spec_key(s) for s in specs]))
            assert release.wait(timeout=30)
            for s in specs:
                runner.store_record(s, runner.record_for(s))

        async def scenario():
            sched = FleetScheduler(jobs=1, engine_call=engine_call)
            spec = RunSpec(benchmark="compress", until_cycles=SMALL,
                           seed=11)
            job_a = sched.submit([spec])
            # Let A reach the engine call (running on a worker thread).
            for _ in range(200):
                if calls:
                    break
                await asyncio.sleep(0.01)
            assert calls, "batch A never reached the engine"

            job_b = sched.submit([spec])
            assert job_b.coalesced == {spec_key(spec)}
            assert not job_b.done_event.is_set()

            release.set()
            await asyncio.wait_for(job_a.done_event.wait(), timeout=30)
            await asyncio.wait_for(job_b.done_event.wait(), timeout=30)
            assert len(calls) == 1, "coalesced spec must not re-simulate"
            assert job_a.state == "done" and job_b.state == "done"
            rows = sched.job_json(job_b)["spec_states"]
            assert rows[0]["coalesced"] is True
            assert rows[0]["state"] == "done"
            counters = {name: inst.value
                        for name, inst in sched.metrics.instruments()
                        if hasattr(inst, "value")}
            assert counters["fleet.dedup_coalesced"] == 1
            assert counters["fleet.cache_misses"] == 1
            await sched.drain()

        asyncio.run(scenario())

    def test_intra_batch_duplicate_simulates_once(self):
        calls = []

        def engine_call(specs, jobs=None, progress=None, batch=None):
            calls.append([spec_key(s) for s in specs])
            for s in specs:
                runner.store_record(s, runner.record_for(s))

        async def scenario():
            sched = FleetScheduler(jobs=1, engine_call=engine_call)
            spec = RunSpec(benchmark="compress", until_cycles=SMALL,
                           seed=12)
            job = sched.submit([spec, spec])
            await asyncio.wait_for(job.done_event.wait(), timeout=30)
            assert calls == [[spec_key(spec)]]
            rows = sched.job_json(job)["spec_states"]
            assert [r["coalesced"] for r in rows] == [False, True]
            assert all(r["state"] == "done" for r in rows)
            await sched.drain()

        asyncio.run(scenario())

    def test_terminal_entry_is_a_cache_hit(self):
        calls = []

        def engine_call(specs, jobs=None, progress=None, batch=None):
            calls.append(1)
            for s in specs:
                runner.store_record(s, runner.record_for(s))

        async def scenario():
            sched = FleetScheduler(jobs=1, engine_call=engine_call)
            spec = RunSpec(benchmark="compress", until_cycles=SMALL,
                           seed=13)
            job_a = sched.submit([spec])
            await asyncio.wait_for(job_a.done_event.wait(), timeout=30)
            job_b = sched.submit([spec])
            await asyncio.wait_for(job_b.done_event.wait(), timeout=30)
            assert len(calls) == 1
            counters = {name: inst.value
                        for name, inst in sched.metrics.instruments()
                        if hasattr(inst, "value")}
            assert counters["fleet.cache_hits"] == 1
            await sched.drain()

        asyncio.run(scenario())

    def test_engine_failure_fails_job_and_entries(self):
        def engine_call(specs, jobs=None, progress=None, batch=None):
            raise RuntimeError("boom")

        async def scenario():
            sched = FleetScheduler(jobs=1, engine_call=engine_call)
            job = sched.submit([RunSpec(benchmark="compress",
                                        until_cycles=SMALL, seed=14)])
            await asyncio.wait_for(job.done_event.wait(), timeout=30)
            assert job.state == "failed"
            assert "boom" in job.error
            row = sched.job_json(job)["spec_states"][0]
            assert row["state"] == "failed"
            await sched.drain()

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# End-to-end over HTTP
# ---------------------------------------------------------------------------

class TestFleetEndToEnd:
    def test_api_record_bit_identical_to_local_run(self):
        spec = RunSpec(benchmark="compress", until_cycles=SMALL, seed=21)
        with BackgroundFleet(jobs=1) as fleet:
            client = FleetClient(fleet.base_url, timeout=60)
            doc = client.submit([json_spec(spec)], wait=True)
            assert doc["state"] == "done"
            key = doc["spec_states"][0]["spec"]
            assert key == spec_key(spec)
            via_api = client.record(key)["record"]
        # Recompute from scratch locally: determinism makes the two
        # JSON documents bit-identical.
        runner.clear_cache()
        local = engine.run_specs([spec], jobs=1)[0].to_json()
        assert via_api == local

    def test_concurrent_duplicate_specs_simulate_once(self):
        spec = RunSpec(benchmark="db", until_cycles=SMALL, seed=22)
        before = runner.SIM_RUNS
        results = []
        with BackgroundFleet(jobs=1) as fleet:
            def submit():
                client = FleetClient(fleet.base_url, timeout=60)
                doc = client.submit([json_spec(spec)], wait=True)
                results.append(
                    client.record(doc["spec_states"][0]["spec"]))

            threads = [threading.Thread(target=submit) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not any(t.is_alive() for t in threads)
        # jobs=1 keeps the simulation in the daemon process, so the
        # process-wide counter proves exactly one simulation happened.
        assert runner.SIM_RUNS == before + 1
        assert len(results) == 2
        assert results[0] == results[1], "callers must share one record"

    def test_metrics_parse_and_fleet_series(self):
        spec = RunSpec(benchmark="compress", until_cycles=SMALL, seed=23)
        with BackgroundFleet(jobs=1) as fleet:
            client = FleetClient(fleet.base_url, timeout=60)
            client.submit([json_spec(spec), json_spec(spec)], wait=True)
            text = client.metrics()
        parsed = parse_prometheus_text(text)
        assert parsed["repro_fleet_jobs_submitted"]["type"] == "counter"
        flat = {series: value
                for doc in parsed.values()
                for series, _labels, value in doc["samples"]}
        assert flat["repro_fleet_jobs_submitted"] == 1
        assert flat["repro_fleet_jobs_completed"] == 1
        assert flat["repro_fleet_specs_submitted"] == 2
        assert flat["repro_fleet_sim_runs"] == 1
        assert flat["repro_fleet_dedup_coalesced"] == 1
        assert flat["repro_fleet_runner_sim_runs"] >= 1
        assert flat["repro_fleet_uptime_seconds"] > 0
        # The per-benchmark wall-time histogram is complete.
        hist = parsed["repro_fleet_wall_ms_compress"]
        assert hist["type"] == "histogram"
        assert flat["repro_fleet_wall_ms_compress_count"] == 1

    def test_diff_endpoint_and_errors(self):
        a = RunSpec(benchmark="compress", until_cycles=SMALL, seed=24)
        b = RunSpec(benchmark="compress", until_cycles=SMALL, seed=25)
        with BackgroundFleet(jobs=1) as fleet:
            client = FleetClient(fleet.base_url, timeout=60)
            doc = client.submit([json_spec(a), json_spec(b)], wait=True)
            key_a, key_b = [r["spec"] for r in doc["spec_states"]]

            same = client.diff(key_a, key_a)
            assert same["diff"]["differences"] == 0

            # Seeds differ only in sampling jitter: the wire diff
            # matches the in-process differ on the same records.
            wire = client.diff(key_a, key_b)
            local = diff_docs(client.record(key_a),
                              client.record(key_b))
            assert wire["diff"] == local.to_json()

            with pytest.raises(FleetClientError) as exc:
                client.record("no-such-key")
            assert exc.value.status == 404
            with pytest.raises(FleetClientError) as exc:
                client.diff(key_a, "no-such-key")
            assert exc.value.status == 404
            with pytest.raises(FleetClientError) as exc:
                client.submit([{"benchmark": "nope"}])
            assert exc.value.status == 400
            with pytest.raises(FleetClientError) as exc:
                client.job("b999")
            assert exc.value.status == 404

    def test_event_stream_and_graceful_drain(self):
        spec = RunSpec(benchmark="compress", until_cycles=SMALL, seed=26)
        fleet = BackgroundFleet(jobs=1)
        events = []

        def tail():
            client = FleetClient(fleet.base_url)
            for doc in client.events():  # ends on the shutdown event
                events.append(doc)

        tailer = threading.Thread(target=tail)
        tailer.start()
        try:
            client = FleetClient(fleet.base_url, timeout=60)
            client.submit([json_spec(spec)], wait=True)
            assert client.health()["ok"] is True
        finally:
            fleet.stop()
        tailer.join(timeout=30)
        assert not tailer.is_alive(), "stream must end on shutdown"

        kinds = [(e.get("type"), e.get("kind")) for e in events]
        assert ("fleet", "job-submitted") in kinds
        assert ("fleet", "job-finished") in kinds
        assert ("job", "finished") in kinds
        assert kinds[-1] == ("fleet", "shutdown")
        finished = next(e for e in events
                        if (e.get("type"), e.get("kind"))
                        == ("job", "finished"))
        # Engine events on the wire carry the batch tag and timestamp.
        assert finished["batch"] == "b1"
        assert isinstance(finished["ts"], float)

        # Draining refuses new work with 503.
        with pytest.raises(FleetClientError):
            FleetClient(fleet.base_url, timeout=5).health()


def json_spec(spec: RunSpec) -> dict:
    from dataclasses import asdict

    return asdict(spec)


# ---------------------------------------------------------------------------
# Watch: fold + render + offline replay
# ---------------------------------------------------------------------------

def synthetic_stream():
    return [
        {"type": "fleet", "kind": "job-submitted", "batch": "b1",
         "specs": 3, "fresh": 2, "cache_hits": 1, "coalesced": 0,
         "benchmarks": ["compress", "db"], "ts": 1.0},
        {"type": "fleet", "kind": "job-started", "batch": "b1",
         "ts": 1.1},
        {"type": "job", "kind": "queued", "benchmark": "compress",
         "spec": "k1", "index": 0, "total": 2, "completed": 0,
         "batch": "b1", "ts": 1.2},
        {"type": "job", "kind": "finished", "benchmark": "compress",
         "spec": "k1", "index": 0, "total": 2, "completed": 1,
         "wall_s": 0.5, "eta_s": 0.5, "batch": "b1", "ts": 1.7},
        {"type": "job", "kind": "finished", "benchmark": "db",
         "spec": "k2", "index": 1, "total": 2, "completed": 2,
         "wall_s": 0.4, "batch": "b1", "ts": 2.1},
        {"type": "fleet", "kind": "job-finished", "batch": "b1",
         "state": "done", "wall_s": 1.2, "error": None, "ts": 2.2},
        {"type": "fleet", "kind": "shutdown", "jobs": 1, "ts": 3.0},
    ]


class TestWatch:
    def test_fold(self):
        state = watch.FleetState()
        for doc in synthetic_stream():
            state.apply(doc)
        assert state.total_specs == 3
        assert state.sim_runs == 2
        assert state.cache_hits == 1
        assert state.cache_hit_rate == pytest.approx(1 / 3)
        assert state.shutdown is True
        view = state.jobs["b1"]
        assert view.state == "done"
        assert view.finished_specs == 2
        assert view.wall_s == 1.2

    def test_render(self):
        state = watch.FleetState()
        for doc in synthetic_stream():
            state.apply(doc)
        text = watch.render(state)
        assert "1 job(s)" in text and "1 done" in text
        assert "cache-hit 33%" in text
        assert "[daemon shut down]" in text
        assert "b1" in text and "3/3" in text
        assert "compress,db" in text

    def test_replay_lines_tolerates_noise_and_sse(self):
        lines = [json.dumps(d) for d in synthetic_stream()]
        lines.insert(0, "")               # blank
        lines.insert(1, "not json {")     # corrupt line
        lines[3] = "data: " + lines[3]    # recorded SSE frame
        state = watch.replay_lines(lines)
        assert state.total_specs == 3 and state.shutdown

    def test_replay_file_matches_live_fold(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("".join(json.dumps(d) + "\n"
                                for d in synthetic_stream()))
        state = watch.replay_file(str(path))
        assert watch.render(state) == watch.render(
            watch.replay_lines([json.dumps(d)
                                for d in synthetic_stream()]))

    def test_watch_stream_raw_json_passthrough(self):
        import io

        out = io.StringIO()
        state = watch.watch_stream(iter(synthetic_stream()), out=out,
                                   raw_json=True)
        lines = [json.loads(l) for l in out.getvalue().splitlines()]
        assert lines == synthetic_stream()
        assert state.shutdown

    def test_watch_stream_renders_frames(self):
        import io

        out = io.StringIO()
        watch.watch_stream(iter(synthetic_stream()), out=out,
                           redraw=False, width=60)
        text = out.getvalue()
        assert "[daemon shut down]" in text
        assert text.count("fleet:") == len(synthetic_stream())


# ---------------------------------------------------------------------------
# Server-side event log (serve --events-log)
# ---------------------------------------------------------------------------

class TestEventsLog:
    def test_log_replays_into_the_dashboard(self, tmp_path):
        path = tmp_path / "events.jsonl"
        spec = RunSpec(benchmark="compress", until_cycles=SMALL, seed=27)
        with BackgroundFleet(jobs=1, events_log=str(path)) as fleet:
            client = FleetClient(fleet.base_url, timeout=60)
            client.submit([json_spec(spec)], wait=True)
        state = watch.replay_file(str(path))
        assert state.shutdown
        assert state.sim_runs == 1
        assert state.jobs["b1"].state == "done"
        assert "done" in watch.render(state)
