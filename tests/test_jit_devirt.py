"""Tests for class-hierarchy analysis and devirtualization."""

import pytest

from tests.helpers import BASELINE_ONLY
from repro.core.config import GCConfig, JITConfig, SystemConfig
from repro.hw.isa import GuestError, M_CALL, M_CALLV, M_NULLCHK
from repro.jit.aos import CompilationPlan
from repro.jit.devirt import devirtualize
from repro.jit.hir import build_hir
from repro.jit.opt import compile_opt
from repro.vm.program import Program
from repro.vm.vmcore import run_program
from repro.workloads.synth import Fn


def hierarchy(with_override=True):
    p = Program("t")
    app = p.define_class("App")
    app.add_static("out", "int")
    app.seal()
    base = p.define_class("Base")
    base.seal()
    m = Fn(p, base, "cost", args=["ref"], returns="int", static=False)
    m.iconst(1).iret()
    m.finish()
    sub = p.define_class("Sub", base)
    sub.seal()
    if with_override:
        o = Fn(p, sub, "cost", args=["ref"], returns="int", static=False)
        o.iconst(2).iret()
        o.finish()
    caller = Fn(p, app, "call", args=["ref"], returns="int")
    caller.rload(0).callv(base, "cost").iret()
    return p, app, base, sub, caller.finish()


class TestCHA:
    def test_subclass_registry(self):
        p, app, base, sub, caller = hierarchy()
        assert sub in base.subclasses
        assert sub in base.all_subclasses()

    def test_monomorphic_without_override(self):
        p, app, base, sub, caller = hierarchy(with_override=False)
        target = base.monomorphic_target(base.vtable_slot("cost"))
        assert target is base.methods["cost"]

    def test_polymorphic_with_override(self):
        p, app, base, sub, caller = hierarchy(with_override=True)
        assert base.monomorphic_target(base.vtable_slot("cost")) is None

    def test_deep_hierarchy(self):
        p = Program("t")
        a = p.define_class("A")
        a.seal()
        m = Fn(p, a, "f", args=["ref"], returns="int", static=False)
        m.iconst(1).iret()
        m.finish()
        b = p.define_class("B", a)
        b.seal()
        c = p.define_class("C", b)
        c.seal()
        o = Fn(p, c, "f", args=["ref"], returns="int", static=False)
        o.iconst(3).iret()
        o.finish()
        # The override two levels down kills monomorphism at the root.
        assert a.monomorphic_target(a.vtable_slot("f")) is None
        # ...but C itself is monomorphic.
        assert c.monomorphic_target(c.vtable_slot("f")) is c.methods["f"]


class TestDevirtPass:
    def test_monomorphic_site_converted(self):
        p, app, base, sub, caller = hierarchy(with_override=False)
        func = build_hir(caller)
        assert devirtualize(func) == 1
        ops = [i.op for i in func.all_insts()]
        assert "callv" not in ops
        assert "call" in ops
        assert "nullcheck" in ops

    def test_polymorphic_site_untouched(self):
        p, app, base, sub, caller = hierarchy(with_override=True)
        func = build_hir(caller)
        assert devirtualize(func) == 0
        assert "callv" in [i.op for i in func.all_insts()]

    def test_machine_code_has_nullcheck_and_direct_call(self):
        p, app, base, sub, caller = hierarchy(with_override=False)
        cm = compile_opt(caller, devirt=True)
        ops = [inst.op for inst in cm.code]
        assert M_CALLV not in ops
        assert M_CALL in ops
        assert M_NULLCHK in ops
        assert ops.index(M_NULLCHK) < ops.index(M_CALL)


class TestDevirtSemantics:
    def run(self, with_override, devirt, receiver_class_name="Sub"):
        p, app, base, sub, caller = hierarchy(with_override)
        fn = Fn(p, app, "main")
        obj = fn.local()
        fn.new(p.klass(receiver_class_name)).rstore(obj)
        fn.rload(obj).call(caller).putstatic(app, "out")
        fn.ret()
        p.set_main(fn.finish())
        cfg = SystemConfig(monitoring=False,
                           jit=JITConfig(devirtualize=devirt))
        run_program(p, cfg,
                    compilation_plan=CompilationPlan(["App.call"]))
        return app.static_values[0]

    def test_devirt_preserves_results(self):
        assert self.run(False, True) == self.run(False, False) == 1

    def test_override_still_dispatches(self):
        assert self.run(True, True) == 2  # polymorphic: not devirtualized

    def test_null_receiver_still_faults(self):
        p, app, base, sub, caller = hierarchy(with_override=False)
        fn = Fn(p, app, "main")
        fn.emit("aconst_null").call(caller).putstatic(app, "out")
        fn.ret()
        p.set_main(fn.finish())
        cfg = SystemConfig(monitoring=False,
                           jit=JITConfig(devirtualize=True))
        with pytest.raises(GuestError, match="null receiver"):
            run_program(p, cfg,
                        compilation_plan=CompilationPlan(["App.call"]))

    def test_devirt_removes_header_access(self):
        """The vtable load disappears: fewer data accesses per call."""
        def run(devirt):
            p, app, base, sub, caller = hierarchy(with_override=False)
            fn = Fn(p, app, "main")
            obj = fn.local()
            acc = fn.local()
            fn.new(base).rstore(obj)
            fn.iconst(0).istore(acc)
            with fn.loop(400):
                fn.rload(obj).call(caller)
                fn.iload(acc).emit("iadd").istore(acc)
            fn.ret()
            p.set_main(fn.finish())
            cfg = SystemConfig(monitoring=False,
                               jit=JITConfig(devirtualize=devirt))
            return run_program(p, cfg, compilation_plan=CompilationPlan(
                ["App.call", "App.main"]))

        with_devirt = run(True)
        without = run(False)
        assert with_devirt.counters["L1D_ACCESS"] < without.counters["L1D_ACCESS"]
        assert with_devirt.cycles < without.cycles
