"""Property-based fuzzing of the whole compile-and-execute pipeline.

Hypothesis generates random (but verifiable) guest programs — arithmetic,
locals, loops, branches, objects, arrays, calls — and checks:

* the baseline and optimizing compilers compute identical results,
* results are independent of monitoring / co-allocation / GC plan,
* GC pressure never corrupts live data (field values survive arbitrary
  collection schedules).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.helpers import BASELINE_ONLY
from repro.core.config import GCConfig, SystemConfig
from repro.jit.aos import CompilationPlan
from repro.vm.program import Program
from repro.vm.vmcore import run_program
from repro.workloads.synth import Fn

# One program recipe = a list of small composable "actions" interpreted
# by build_random_program below.  Every recipe yields a verified program.
ACTIONS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(-100, 100)),
        st.tuples(st.just("binop"),
                  st.sampled_from(["iadd", "isub", "imul", "iand", "ior",
                                   "ixor"])),
        st.tuples(st.just("storeload"), st.integers(0, 3)),
        st.tuples(st.just("loop"), st.integers(1, 5),
                  st.integers(-10, 10)),
        st.tuples(st.just("branch"), st.sampled_from(["lt", "ge", "eq"]),
                  st.integers(-50, 50)),
        st.tuples(st.just("field"), st.integers(-100, 100)),
        st.tuples(st.just("array"), st.integers(1, 6),
                  st.integers(-100, 100)),
    ),
    min_size=1, max_size=10,
)


def build_random_program(actions):
    p = Program("fuzz")
    app = p.define_class("App")
    app.add_static("out", "int")
    app.seal()
    box = p.define_class("Box")
    box.add_field("v", "int")
    box.add_field("next", "ref")
    box.seal()

    fn = Fn(p, app, "work", args=["int"], returns="int")
    locals_ = [fn.local() for _ in range(4)]
    for slot in locals_:
        fn.iconst(0).istore(slot)
    fn.iload(0)  # seed on stack
    for action in actions:
        kind = action[0]
        if kind == "push":
            fn.iconst(action[1]).emit("iadd")
        elif kind == "binop":
            fn.iconst(17).emit(action[1])
        elif kind == "storeload":
            slot = locals_[action[1]]
            fn.istore(slot)
            fn.iload(slot).iload(slot).emit("ixor")
            fn.iload(slot).emit("iadd")
        elif kind == "loop":
            _, count, delta = action
            acc = fn.local()
            fn.istore(acc)
            with fn.loop(count):
                fn.iload(acc).iconst(delta).emit("iadd").istore(acc)
            fn.iload(acc)
        elif kind == "branch":
            _, cond, threshold = action
            out = fn.local()
            fn.istore(out)
            fn.iload(out).iconst(threshold)
            with fn.if_cond(cond):
                fn.iload(out).iconst(3).emit("imul").istore(out)
            fn.iload(out)
        elif kind == "field":
            tmp = fn.local()
            obj = fn.local()
            fn.istore(tmp)
            fn.new(box).rstore(obj)
            fn.rload(obj).iload(tmp).putfield(box, "v")
            fn.rload(obj).getfield(box, "v")
        elif kind == "array":
            _, length, value = action
            tmp = fn.local()
            arr = fn.local()
            fn.istore(tmp)
            fn.iconst(length).emit("newarray", "int").rstore(arr)
            fn.rload(arr).iconst(length - 1).iconst(value)
            fn.emit("arrstore", "int")
            fn.rload(arr).iconst(length - 1).emit("arrload", "int")
            fn.iload(tmp).emit("iadd")
    fn.iret()
    work = fn.finish()

    main = Fn(p, app, "main")
    main.iconst(11).call(work).putstatic(app, "out")
    main.ret()
    p.set_main(main.finish())
    return p, app


def run_recipe(actions, plan_methods=(), **config_overrides):
    p, app = build_random_program(actions)
    cfg = SystemConfig(monitoring=False,
                       gc=GCConfig(heap_bytes=1024 * 1024),
                       **config_overrides)
    plan = CompilationPlan(list(plan_methods))
    run_program(p, cfg, compilation_plan=plan)
    return app.static_values[app.static("out").index]


def run_recipe_full(actions, plan_methods=(), **config_overrides):
    """Like :func:`run_recipe` but also returns the RunResult."""
    p, app = build_random_program(actions)
    kwargs = dict(monitoring=False, gc=GCConfig(heap_bytes=1024 * 1024))
    kwargs.update(config_overrides)
    cfg = SystemConfig(**kwargs)
    plan = CompilationPlan(list(plan_methods))
    result = run_program(p, cfg, compilation_plan=plan)
    return app.static_values[app.static("out").index], result


class TestCompilerEquivalenceFuzz:
    @given(ACTIONS)
    @settings(max_examples=60, deadline=None)
    def test_baseline_and_opt_agree(self, actions):
        base = run_recipe(actions)
        opt = run_recipe(actions, plan_methods=["App.work"])
        assert base == opt

    @given(ACTIONS)
    @settings(max_examples=20, deadline=None)
    def test_gc_plan_does_not_change_results(self, actions):
        assert run_recipe(actions, gc_plan="genms") == \
            run_recipe(actions, gc_plan="gencopy")


class TestInterpreterEquivalenceFuzz:
    """The translated fast paths (repro.hw.translate) must be
    observationally indistinguishable from the reference interpreter:
    same exit values, same cycle and instruction counts, same hardware
    event counters, same number of PEBS samples — for every program,
    under every compiler level.  The differential runs three-way:
    reference (level 0) vs per-instruction closures (level 1) vs
    superblocks (level 2)."""

    @staticmethod
    def _observables(out, result):
        pebs = result.vm.pebs if result.vm is not None else None
        return (out, result.cycles, result.instructions, result.counters,
                pebs.samples_taken if pebs is not None else None)

    @classmethod
    def _differential(cls, actions, plan_methods=(), **overrides):
        ref = cls._observables(*run_recipe_full(
            actions, plan_methods, fastpath=0, **overrides))
        per_inst = cls._observables(*run_recipe_full(
            actions, plan_methods, fastpath=1, **overrides))
        superblock = cls._observables(*run_recipe_full(
            actions, plan_methods, fastpath=2, **overrides))
        assert per_inst == ref
        assert superblock == ref

    @given(ACTIONS)
    @settings(max_examples=40, deadline=None)
    def test_fastpath_matches_reference_baseline(self, actions):
        self._differential(actions)

    @given(ACTIONS)
    @settings(max_examples=20, deadline=None)
    def test_fastpath_matches_reference_opt(self, actions):
        self._differential(actions, plan_methods=["App.work"])

    @given(ACTIONS)
    @settings(max_examples=10, deadline=None)
    def test_fastpath_matches_reference_monitoring(self, actions):
        self._differential(actions, monitoring=True)


class TestGCUnderPressureFuzz:
    @given(st.integers(2, 40), st.integers(1, 8), st.integers(0, 1))
    @settings(max_examples=25, deadline=None)
    def test_linked_list_survives_tiny_heaps(self, n, payload, plan_flag):
        """Build a linked list under a heap so small that many minor and
        full collections happen mid-construction; then fold it and check
        the checksum matches a pure-Python computation."""
        p = Program("fuzzgc")
        app = p.define_class("App")
        app.add_static("out", "int")
        app.seal()
        node = p.define_class("Node")
        node.add_field("next", "ref")
        node.add_field("v", "int")
        node.seal()

        fn = Fn(p, app, "main")
        head = fn.local()
        cur = fn.local()
        garbage = fn.local()
        acc = fn.local()
        fn.emit("aconst_null").rstore(head)
        with fn.loop(n) as i:
            fn.new(node).rstore(cur)
            fn.rload(cur).rload(head).putfield(node, "next")
            fn.rload(cur).iload(i).iconst(payload).emit("imul")
            fn.putfield(node, "v")
            fn.rload(cur).rstore(head)
            # Garbage pressure: allocate and drop an array per node.
            fn.iconst(24).emit("newarray", "int").rstore(garbage)
        fn.iconst(0).istore(acc)
        fn.rload(head).rstore(cur)
        walk = fn.fresh_label()
        done = fn.fresh_label()
        fn.label(walk)
        fn.rload(cur).emit("ifnull", done)
        fn.iload(acc).rload(cur).getfield(node, "v").emit("iadd")
        fn.istore(acc)
        fn.rload(cur).getfield(node, "next").rstore(cur)
        fn.emit("goto", walk)
        fn.label(done)
        fn.iload(acc).putstatic(app, "out")
        fn.ret()
        p.set_main(fn.finish())

        plan = (CompilationPlan(["App.main"]) if plan_flag
                else BASELINE_ONLY)
        cfg = SystemConfig(monitoring=False,
                           gc=GCConfig(heap_bytes=192 * 1024))
        result = run_program(p, cfg, compilation_plan=plan)
        expected = sum(i * payload for i in range(n))
        assert app.static_values[0] == expected
        # The garbage arrays really did create GC pressure for larger n.
        if n * 120 > 96 * 1024:
            assert result.gc_stats.minor_gcs > 0


class TestPEBSStatisticalProperties:
    @given(st.integers(5, 200), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_sampling_rate_tracks_interval(self, interval, seed):
        import random

        from repro.core.config import PEBSConfig
        from repro.hw.pebs import PEBSUnit

        taken = []
        unit = PEBSUnit(PEBSConfig(ds_capacity=10_000, watermark=1.0),
                        lambda c: None, taken.extend,
                        rng=random.Random(seed))
        unit.configure("L1D_MISS", interval)
        events = interval * 40
        for i in range(events):
            unit.on_event(eip=i)
        unit.flush()
        count = sum(len(b) for b in [taken]) or len(taken)
        # Expected ~40 samples; allow generous jitter.
        assert 25 <= len(taken) <= 60
