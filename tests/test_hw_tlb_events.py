"""Unit tests for the DTLB model and the event-counter bank."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import TLBConfig
from repro.hw.events import (
    COUNTED_EVENTS,
    EventCounters,
    UnknownEventError,
    validate_event,
)
from repro.hw.tlb import TLB


class TestTLB:
    def test_first_access_misses(self):
        tlb = TLB(TLBConfig(entries=4))
        assert tlb.access(0x1000) is False

    def test_same_page_hits(self):
        tlb = TLB(TLBConfig(entries=4))
        tlb.access(0x1000)
        assert tlb.access(0x1FFF) is True

    def test_different_page_misses(self):
        tlb = TLB(TLBConfig(entries=4))
        tlb.access(0x1000)
        assert tlb.access(0x2000) is False

    def test_lru_eviction(self):
        tlb = TLB(TLBConfig(entries=2))
        tlb.access(0x0000)
        tlb.access(0x1000)
        tlb.access(0x2000)  # evicts page 0
        assert tlb.access(0x1000) is True
        assert tlb.access(0x0000) is False

    def test_lru_refresh_on_hit(self):
        tlb = TLB(TLBConfig(entries=2))
        tlb.access(0x0000)
        tlb.access(0x1000)
        tlb.access(0x0000)  # page 0 becomes MRU
        tlb.access(0x2000)  # evicts page 1
        assert tlb.access(0x0000) is True
        assert tlb.access(0x1000) is False

    def test_invalidate_all(self):
        tlb = TLB(TLBConfig(entries=4))
        tlb.access(0x1000)
        tlb.invalidate_all()
        assert tlb.access(0x1000) is False

    def test_rejects_bad_page_size(self):
        with pytest.raises(ValueError):
            TLB(TLBConfig(page_bytes=3000))

    @given(st.lists(st.integers(min_value=0, max_value=1 << 24), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_bounded(self, addrs):
        tlb = TLB(TLBConfig(entries=8))
        for a in addrs:
            tlb.access(a)
            assert tlb.resident_pages() <= 8

    @given(st.lists(st.integers(min_value=0, max_value=1 << 24), min_size=1,
                    max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_hit_miss_accounting(self, addrs):
        tlb = TLB(TLBConfig(entries=8))
        for a in addrs:
            tlb.access(a)
        assert tlb.hits + tlb.misses == len(addrs)


class TestEventCounters:
    def test_all_events_start_at_zero(self):
        c = EventCounters()
        for name in COUNTED_EVENTS:
            assert c.read(name) == 0

    def test_add_and_read(self):
        c = EventCounters()
        c.add("L1D_MISS", 3)
        assert c.read("L1D_MISS") == 3

    def test_unknown_event_rejected(self):
        c = EventCounters()
        with pytest.raises(UnknownEventError):
            c.read("BOGUS")

    def test_pebs_capability_check(self):
        assert validate_event("L1D_MISS", pebs=True) == "L1D_MISS"
        with pytest.raises(UnknownEventError):
            validate_event("CYCLES", pebs=True)

    def test_snapshot_delta(self):
        c = EventCounters()
        c.add("LOADS", 5)
        before = c.snapshot()
        c.add("LOADS", 7)
        c.add("STORES", 2)
        d = c.delta(before)
        assert d["LOADS"] == 7
        assert d["STORES"] == 2

    def test_snapshot_is_a_copy(self):
        c = EventCounters()
        snap = c.snapshot()
        c.add("CYCLES", 10)
        assert snap["CYCLES"] == 0

    def test_reset_selected(self):
        c = EventCounters()
        c.add("LOADS", 5)
        c.add("STORES", 5)
        c.reset(["LOADS"])
        assert c.read("LOADS") == 0
        assert c.read("STORES") == 5

    def test_miss_rate(self):
        c = EventCounters()
        c.add("L1D_ACCESS", 100)
        c.add("L1D_MISS", 25)
        assert c.miss_rate("L1D_MISS", "L1D_ACCESS") == 0.25

    def test_miss_rate_zero_accesses(self):
        c = EventCounters()
        assert c.miss_rate("L1D_MISS", "L1D_ACCESS") == 0.0
