#!/usr/bin/env python3
"""The paper's headline case study: HPM-guided co-allocation on _209_db.

Runs the db benchmark analog three ways —

* plain VM (no sampling, no co-allocation),
* monitoring only (the Figure 2 overhead),
* monitoring + co-allocation (the full system),

and prints the Figure 4/5/7 quantities: L1 miss reduction, execution-
time reduction, and an ASCII rendering of the ``String::value`` miss-
rate timeline with the co-allocation "bend".

Run:  python examples/db_locality.py
"""

from repro.harness.runner import RunSpec, measure
from repro.workloads import suite


def sparkline(values, width=64, height=8):
    """Tiny ASCII chart of a numeric series."""
    if not values:
        return "(empty)"
    step = max(1, len(values) // width)
    buckets = [sum(values[i:i + step]) / len(values[i:i + step])
               for i in range(0, len(values), step)]
    top = max(buckets) or 1
    rows = []
    for level in range(height, 0, -1):
        threshold = top * (level - 0.5) / height
        rows.append("".join("#" if v >= threshold else " " for v in buckets))
    rows.append("-" * len(buckets))
    return "\n".join(rows)


def main() -> None:
    print("building and running db (three configurations)...\n")
    plain = measure(RunSpec(benchmark="db", heap_mult=4.0, coalloc=False,
                            monitoring=False))
    monitored = measure(RunSpec(benchmark="db", heap_mult=4.0, coalloc=False,
                                monitoring=True))
    full = measure(RunSpec(benchmark="db", heap_mult=4.0, coalloc=True,
                           monitoring=True))

    def row(label, m):
        r = m.result
        print(f"{label:24s} cycles={r.cycles:>12,}  "
              f"L1 misses={r.counters['L1D_MISS']:>9,}  "
              f"GC={r.gc_stats.minor_gcs}/{r.gc_stats.full_gcs}  "
              f"co-allocated={r.gc_stats.coallocated_objects}")

    row("plain VM", plain)
    row("monitoring only", monitored)
    row("monitoring + coalloc", full)

    overhead = monitored.cycles_mean / plain.cycles_mean - 1
    speedup = 1 - full.cycles_mean / plain.cycles_mean
    miss_red = 1 - full.l1_misses / plain.l1_misses
    print(f"\nsampling overhead       : {overhead:+.2%}   (paper: <1% avg)")
    print(f"L1 miss reduction       : {miss_red:.1%}    (paper: up to 28%)")
    print(f"execution-time reduction: {speedup:.1%}    (paper: up to 13.9%)")

    # Figure 7(b): the String::value miss-rate timeline.
    record = full.result
    name = suite.build("db").program.string_class.field(
        "value").qualified_name
    series = [n for _, n in record.series(name)]
    smooth = record.moving_average(series)
    print("\nString::value estimated misses per period "
          "(moving average, Figure 7b):")
    print(sparkline(smooth))

    workload = suite.build("db")
    print(f"\n(db = {workload.description})")


if __name__ == "__main__":
    main()
