#!/usr/bin/env python3
"""Quickstart: build a tiny guest program, run it with HPM monitoring,
and read back what the hardware saw.

Demonstrates the core loop of the paper's infrastructure:

1. define guest classes and bytecode (a linked list whose nodes point to
   payload arrays),
2. run it on the simulated VM with PEBS sampling of L1 misses,
3. inspect which *reference fields* the misses were attributed to —
   the per-field counts the GC's co-allocation policy consumes.

Run:  python examples/quickstart.py
"""

from repro import Program, SystemConfig, CompilationPlan, run_program
from repro.workloads.synth import Fn, lcg_step


def build_program() -> "tuple[Program, CompilationPlan]":
    p = Program("quickstart")
    app = p.define_class("App")
    app.add_static("sum", "int")
    app.add_static("rng", "int")
    app.seal()

    # class Node { Node next; int[] payload; int key; }
    node = p.define_class("Node")
    node.add_field("next", "ref")
    node.add_field("payload", "ref")
    node.add_field("key", "int")
    node.seal()

    # static Node makeNode(int seed): payload = new int[8]
    mk = Fn(p, node, "makeNode", args=["int"], returns="ref")
    seed = 0
    arr, obj = mk.local(), mk.local()
    mk.iconst(8).emit("newarray", "int").rstore(arr)
    mk.new(node).rstore(obj)
    mk.rload(obj).rload(arr).putfield(node, "payload")
    mk.rload(obj).iload(seed).putfield(node, "key")
    mk.rload(obj).rret()
    make_node = mk.finish()

    # static int walk(Node[] table): shuffled lookups reading
    # table[i].payload[0] — misses on the payload line are attributed to
    # Node::payload by the instructions-of-interest analysis.  A slice of
    # the entries is replaced each pass (churn): once entries have been
    # promoted to the mature space, replacements promoted *after* the
    # monitor has data get co-allocated with their payloads.
    N = 1500
    fn = Fn(p, app, "walk", args=["ref"], returns="int")
    table = 0
    acc, state, idx = fn.local(), fn.local(), fn.local()
    fn.getstatic(app, "rng").istore(state)
    fn.iconst(0).istore(acc)
    with fn.loop(N):
        lcg_step(fn, state, N)
        fn.istore(idx)
        # churn: if ((state >> 16) & 3) == 0, replace the entry
        fn.iload(state).iconst(16).emit("ishr").iconst(3).emit("iand")
        skip = fn.fresh_label("keep")
        fn.emit("ifz", "ne", skip)
        fn.rload(table).iload(idx)
        fn.iload(idx).call(make_node)
        fn.emit("arrstore", "ref")
        fn.label(skip)
        fn.iload(acc)
        fn.rload(table).iload(idx).emit("arrload", "ref")
        fn.getfield(node, "payload")
        fn.iconst(0).emit("arrload", "int")
        fn.emit("iadd").istore(acc)
    fn.iload(state).putstatic(app, "rng")
    fn.iload(acc).iret()
    walk = fn.finish()

    main = Fn(p, app, "main")
    tbl = main.local()
    main.iconst(7).putstatic(app, "rng")
    main.iconst(N).emit("newarray", "ref").rstore(tbl)
    with main.loop(N) as i:
        main.rload(tbl).iload(i)
        main.iload(i).call(make_node)
        main.emit("arrstore", "ref")
    with main.loop(20):
        main.rload(tbl).call(walk)
        main.getstatic(app, "sum").emit("iadd").putstatic(app, "sum")
    main.ret()
    p.set_main(main.finish())

    # Pseudo-adaptive plan: opt-compile the hot methods up front.
    plan = CompilationPlan([walk.qualified_name, make_node.qualified_name])
    return p, plan


def main() -> None:
    from repro import GCConfig

    program, plan = build_program()
    # A 512 KB heap: small enough that entries get promoted to the
    # mature space, where placement (and thus co-allocation) matters.
    config = SystemConfig(monitoring=True, coalloc=True,
                          gc=GCConfig(heap_bytes=512 * 1024))
    result = run_program(program, config, compilation_plan=plan)

    print("=== quickstart ===")
    print(f"simulated cycles      : {result.cycles:,}")
    print(f"instructions          : {result.instructions:,}")
    print(f"L1D misses            : {result.counters['L1D_MISS']:,} "
          f"(rate {result.l1_miss_rate:.4f})")
    print(f"GC                    : {result.gc_stats.summary()}")
    print(f"monitoring cycles     : {result.monitoring_cycles:,} "
          f"({result.monitoring_cycles / result.cycles:.2%} of total)")

    monitor = result.vm.controller.monitor
    print("\nper-field attributed misses (estimated):")
    for field, count in sorted(monitor.cumulative.items(),
                               key=lambda kv: -kv[1]):
        print(f"  {field.qualified_name:20s} {count:>8d}")

    node = program.klass("Node")
    hot = result.vm.controller.hot_field(node)
    print(f"\nhot field of Node     : "
          f"{hot.qualified_name if hot else '(none yet)'}")
    print(f"co-allocated objects  : "
          f"{result.gc_stats.coallocated_objects}")


if __name__ == "__main__":
    main()
