#!/usr/bin/env python3
"""A tour of the HPM sampling stack, layer by layer.

Drives the monitoring infrastructure *standalone* — no benchmark, just
synthetic memory traffic — to show each stage of section 4:

1. the PEBS unit samples every n-th L1 miss with randomized low
   interval bits, writing 40-byte records into the DS buffer,
2. the watermark interrupt hands batches to the perfmon kernel module,
3. the user-space library drains the kernel buffer with one batched
   copy (no per-sample JNI calls),
4. the resolver maps raw EIPs back through the sorted method table and
   the extended machine-code maps to bytecode and reference fields.

Run:  python examples/sampling_tour.py
"""

import random

from repro import PEBSConfig, PerfmonConfig
from repro.core.config import MachineConfig
from repro.hw.memsys import MemorySystem
from repro.hw.pebs import PEBSUnit
from repro.perfmon.kernel import PerfmonKernelModule
from repro.perfmon.userlib import UserSampleLibrary


def main() -> None:
    charged = []
    kernel = PerfmonKernelModule(PerfmonConfig())
    pebs = PEBSUnit(PEBSConfig(), charged.append,
                    lambda batch: kernel.session.on_interrupt(batch),
                    rng=random.Random(42))
    session = kernel.create_session(pebs, "L1D_MISS", interval=50)
    userlib = UserSampleLibrary(session, PerfmonConfig(), charged.append)

    mem = MemorySystem(MachineConfig())
    mem.arm_event("L1D_MISS", pebs.on_event)

    # Synthetic traffic: a pointer-chase over 64 KB (4x the L1) —
    # essentially every access misses L1.
    print("=== 1+2: PEBS sampling with watermark interrupts ===")
    rng = random.Random(7)
    for i in range(20_000):
        addr = 0x1000_0000 + rng.randrange(0, 64 * 1024) // 4 * 4
        mem.access(addr, False, eip=0x0800_0000 + (i % 400) * 4)
    mem.sync_counters()
    print(f"L1 misses generated : {mem.counters.read('L1D_MISS'):,}")
    print(f"samples taken       : {pebs.samples_taken:,} "
          f"(interval 50, low bits randomized)")
    print(f"watermark interrupts: {pebs.interrupts_raised} "
          f"(DS buffer {pebs.config.ds_capacity} samples, "
          f"watermark {pebs.config.watermark:.0%})")
    print(f"cycles charged      : {sum(charged):,} "
          "(microcode + interrupts)")

    print("\n=== 3: the user library's batched copy ===")
    eips = userlib.read_samples()
    print(f"one poll drained    : {len(eips)} samples "
          f"({userlib.polls} JNI round trip)")
    print(f"library buffer      : {userlib.capacity} samples (80 KB / "
          f"{pebs.config.sample_bytes} B records)")

    print("\n=== 4: resolving raw EIPs to source constructs ===")
    # Build a tiny program so the code cache has real methods and maps.
    from repro import CompilationPlan, Program, SystemConfig
    from repro.vm.vmcore import VM
    from repro.workloads.synth import Fn

    p = Program("tour")
    app = p.define_class("App")
    app.seal()
    box = p.define_class("Box")
    box.add_field("inner", "ref")
    box.seal()
    fn = Fn(p, app, "poke", args=["ref"], returns="int")
    fn.rload(0).getfield(box, "inner").emit("arraylength").iret()
    poke = fn.finish()
    main_fn = Fn(p, app, "main")
    b = main_fn.local()
    main_fn.new(box).rstore(b)
    main_fn.rload(b).iconst(4).emit("newarray", "int").putfield(box, "inner")
    with main_fn.loop(40):
        main_fn.rload(b).call(poke).emit("pop")
    main_fn.ret()
    p.set_main(main_fn.finish())

    vm = VM(p, SystemConfig(),
            compilation_plan=CompilationPlan([poke.qualified_name]))
    vm.run()
    cm = poke.current_code
    print(f"method table lookup : EIP {cm.code_addr:#x} -> "
          f"{cm.method.qualified_name} (sorted table, code never moves)")
    for pc, inst in enumerate(cm.code):
        eip = cm.eip_of_pc(pc)
        print(f"  EIP {eip:#x}: pc={pc:<2d} bytecode index="
              f"{cm.bc_map[pc]:<2d} ir={cm.ir_map[pc]}")
    interest = vm.controller.resolver.interest_table(cm)
    print(f"instructions of interest (S, f): "
          f"{{{', '.join(f'{k}: {v.qualified_name}' for k, v in interest.items())}}}")
    print("\n(the arraylength's base comes from the reference field "
          "Box::inner, so its")
    print(" misses would be credited to Box::inner — the pair the GC's "
          "co-allocation reads.)")


if __name__ == "__main__":
    main()
