#!/usr/bin/env python3
"""Figure 8 live: detecting and reverting a poor placement decision.

Mid-run, the GC is manually instructed to insert one cache line
(128 bytes) of empty space between every co-allocated String and its
char[] — deliberately undoing the locality benefit.  The online
feedback engine watches the per-field miss rate; after several
regressed measurement periods it reverts the policy, and the rate
returns as churn replaces the badly placed pairs.

Run:  python examples/adaptive_revert.py
"""

from repro.harness import experiments as ex


def main() -> None:
    print("running db with a mid-run bad-placement intervention...\n")
    result = ex.fig8_revert()

    print(f"gap inserted at period   : {result.gap_applied_period}")
    print(f"baseline miss rate       : {result.baseline_rate:8.1f} "
          "misses/period")
    print(f"peak rate under the gap  : {result.peak_rate:8.1f}")
    print(f"reverted                 : {result.reverted} "
          f"(at period {result.reverted_period})")
    print(f"final rate after revert  : {result.final_rate:8.1f}")

    print("\ntimeline (moving average of String::value misses/period):")
    for i, value in enumerate(result.moving_average):
        if i % 2:
            continue  # halve the output length
        bar = "#" * int(value / max(result.moving_average) * 50)
        marker = ""
        if i == result.gap_applied_period:
            marker = "  <- gap inserted (bad placement)"
        elif result.reverted_period is not None and \
                abs(i - result.reverted_period) <= 1:
            marker = "  <- reverted by the feedback engine"
        print(f"{i:4d} |{bar:<50s}|{marker}")

    if result.reverted:
        waited = result.reverted_period - result.gap_applied_period
        print(f"\nthe engine waited {waited} measurement periods before "
              "switching back —")
        print('the paper: "after several measurement periods it triggers '
              'a switch back to the original configuration."')


if __name__ == "__main__":
    main()
