#!/usr/bin/env python3
"""Figure 6 live: space-efficiency vs locality — GenCopy against GenMS
with HPM-guided co-allocation, on db, across heap sizes.

The paper's argument: a copying collector gets spatial locality "for
free" (allocation order follows the object graph at every collection)
but pays a copy reserve — half the mature space — which hurts badly at
small heaps.  GenMS with co-allocation combines the free-list
collector's space efficiency with monitored, targeted locality, and
outperforms GenCopy at *every* heap size.

Run:  python examples/gc_plan_comparison.py
"""

from repro.harness import experiments as ex
from repro.harness.runner import RunSpec, measure


def main() -> None:
    heaps = (1.0, 1.5, 2.0, 3.0, 4.0)
    print("running db under three collector configurations "
          "(this takes a minute)...\n")
    comparison = ex.fig6_gencopy_vs_genms("db", heaps)

    print(f"{'heap':>6s} {'GenMS':>10s} {'GenMS+co':>10s} {'GenCopy':>10s}"
          f"   (normalized to GenMS at each heap)")
    for mult in heaps:
        co = comparison.normalized(mult, "genms+coalloc")
        gencopy = comparison.normalized(mult, "gencopy")
        print(f"{mult:>5.1f}x {1.0:>10.3f} {co:>10.3f} {gencopy:>10.3f}")

    print("\nwhy GenCopy loses at small heaps (full collections forced by "
          "the copy reserve):")
    for mult in (min(heaps), max(heaps)):
        for plan in ("genms", "gencopy"):
            stats = measure(RunSpec(benchmark="db", heap_mult=mult,
                                    coalloc=False, monitoring=False,
                                    gc_plan=plan)).result.gc_stats
            print(f"  heap {mult:>3.1f}x {plan:8s}: "
                  f"{stats.minor_gcs:>3d} minor / {stats.full_gcs:>2d} full "
                  f"collections, {stats.gc_cycles:>9,} GC cycles")

    small, large = min(heaps), max(heaps)
    print("\npaper shapes to check:")
    print(f"  GenMS+coalloc beats GenCopy at every heap size: "
          f"{all(comparison.normalized(m, 'genms+coalloc') < comparison.normalized(m, 'gencopy') for m in heaps)}")
    gap_small = (comparison.normalized(small, 'gencopy')
                 - comparison.normalized(small, 'genms+coalloc'))
    gap_large = (comparison.normalized(large, 'gencopy')
                 - comparison.normalized(large, 'genms+coalloc'))
    print(f"  advantage at small heap: {gap_small:.1%}; "
          f"at large heap: {gap_large:.1%} "
          "(paper: 10% small, 7% large)")


if __name__ == "__main__":
    main()
