#!/usr/bin/env python3
"""Counting mode and software instrumentation vs HPM sampling.

Section 3.1 describes two HPM modes.  This example exercises both, plus
the software-only alternative the paper positions itself against:

1. **normal counting** — read aggregate counters around a region to
   "evaluate the precise effect of program transformations" (here: the
   effect of co-allocation on db, the Figure 4 use case),
2. **software method instrumentation** (Georges et al., related work) —
   counter reads at every method boundary, exclusive per-method event
   attribution, and its cost,
3. **PEBS sampling** — the paper's approach: per-instruction, per-field
   attribution at a fraction of the overhead.

Run:  python examples/method_profiling.py
"""

from repro.core.config import GCConfig, SystemConfig
from repro.core.counting import CountingSession
from repro.vm.vmcore import run_program
from repro.workloads import suite


def run_db(**overrides):
    workload = suite.build("db")
    cfg = SystemConfig(gc=GCConfig(heap_bytes=workload.min_heap_bytes * 4),
                       **overrides)
    return run_program(workload.program, cfg, compilation_plan=workload.plan)


def main() -> None:
    print("=== 1: normal counting mode — effect of a transformation ===")
    before = run_db(monitoring=False, coalloc=False)
    after = run_db(monitoring=True, coalloc=True)
    relative = CountingSession.compare(before.counters, after.counters)
    for event in ("CYCLES", "L1D_MISS", "L2_MISS", "DTLB_MISS"):
        print(f"  {event:10s}: {before.counters[event]:>10,} -> "
              f"{after.counters[event]:>10,}  ({relative[event]:+.1%})")

    print("\n=== 2: software method instrumentation ===")
    instrumented = run_db(monitoring=False, method_profiling=True,
                          coalloc=False)
    profiler = instrumented.vm.method_profiler
    print(f"  boundary counter reads : {profiler.boundary_reads:,}")
    print(f"  instrumentation cycles : "
          f"{profiler.total_overhead_cycles():,}")
    print("  hottest methods by exclusive L1 misses:")
    for profile in profiler.ranked()[:4]:
        print(f"    {profile.method.qualified_name:16s} "
              f"{profile.events:>8,} misses, "
              f"{profile.invocations:>6,} calls")

    print("\n=== 3: the overhead comparison (the paper's section 6.2) ===")
    plain = before
    sampled = run_db(monitoring=True, coalloc=False)
    instr_overhead = instrumented.cycles / plain.cycles - 1
    sample_overhead = sampled.cycles / plain.cycles - 1
    print(f"  software instrumentation : {instr_overhead:+.2%}")
    print(f"  HPM sampling             : {sample_overhead:+.2%}")
    print("  — and sampling knows *which field* missed "
          "(String::value), not just which method;")
    print("    that is the granularity the co-allocation "
          "optimization needs.")


if __name__ == "__main__":
    main()
