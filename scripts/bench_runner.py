#!/usr/bin/env python3
"""Back-compat wrapper over ``repro bench`` case ``runner``.

Times the experiment engine cold-serial vs cold-parallel, asserts the
records are bit-identical and that a warm-cache replay performs zero
simulation work, and writes the same ``BENCH_runner.json`` artifact
name CI has always uploaded.  The measurement itself lives in
:mod:`repro.bench.cases`; prefer ``python -m repro bench run runner``.

Run:  PYTHONPATH=src python scripts/bench_runner.py --jobs 4
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import cli as bench_cli  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmarks", default="fop,compress",
                        help="comma-separated subset (default fop,compress)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel worker count (default: CPU count)")
    parser.add_argument("--out", default="BENCH_runner.json",
                        help="report path (default BENCH_runner.json)")
    parser.add_argument("--history", default=None, metavar="PATH",
                        help="also append the run to this bench history")
    args = parser.parse_args()

    benchmarks = [b.strip() for b in args.benchmarks.split(",") if b.strip()]
    return bench_cli.run_gate(
        "runner",
        {"benchmarks": benchmarks, "jobs": args.jobs},
        out=args.out, history_path=args.history)


if __name__ == "__main__":
    sys.exit(main())
