#!/usr/bin/env python3
"""Time the experiment engine serial vs parallel; assert identical results.

CI's benchmark-timing job runs a small figure subset twice from a cold
cache — once with ``--jobs 1`` (the plain serial path) and once with
``--jobs N`` — checks that every record is bit-identical between the two
runs (as JSON), then replays the suite against the warm disk cache and
checks it performs zero simulation work.  Timings land in a JSON report
(``BENCH_runner.json``) that CI uploads as an artifact.

The speedup is reported, not asserted: a busy or single-core runner can
legitimately see none, and correctness (identical records, zero-work
replay) is the part that must never regress.

Run:  PYTHONPATH=src python scripts/bench_runner.py --jobs 4
"""

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.harness import engine, runner  # noqa: E402
from repro.harness import experiments as ex  # noqa: E402
from repro.harness.diskcache import DiskCache  # noqa: E402


def timed_cold_run(specs, jobs, cache_root):
    """Run every spec from nothing; return (records as JSON, seconds)."""
    runner.clear_cache()
    runner.set_disk_cache(DiskCache(root=cache_root))
    start = time.perf_counter()
    records = engine.run_specs(specs, jobs=jobs)
    elapsed = time.perf_counter() - start
    return [r.to_json() for r in records], elapsed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmarks", default="fop,compress",
                        help="comma-separated subset (default fop,compress)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel worker count (default: CPU count)")
    parser.add_argument("--out", default="BENCH_runner.json",
                        help="report path (default BENCH_runner.json)")
    args = parser.parse_args()

    benchmarks = [b.strip() for b in args.benchmarks.split(",") if b.strip()]
    jobs = engine.resolve_jobs(args.jobs)
    specs = ex.figure_specs(benchmarks, heap_mults=(1.0, 4.0))
    print(f"{len(specs)} specs over {benchmarks}, parallel jobs={jobs}")

    with tempfile.TemporaryDirectory(prefix="bench-serial-") as serial_root, \
            tempfile.TemporaryDirectory(prefix="bench-par-") as par_root:
        serial_docs, serial_s = timed_cold_run(specs, 1, serial_root)
        print(f"serial   (--jobs 1): {serial_s:7.2f}s cold")
        parallel_docs, parallel_s = timed_cold_run(specs, jobs, par_root)
        print(f"parallel (--jobs {jobs}): {parallel_s:7.2f}s cold")

        if serial_docs != parallel_docs:
            print("FAIL: parallel records differ from serial records",
                  file=sys.stderr)
            return 1
        print("OK: parallel records bit-identical to serial")

        # Warm replay: the same suite from the parallel run's disk cache,
        # fresh memo — must simulate nothing.
        runner.clear_cache()
        runner.set_disk_cache(DiskCache(root=par_root))
        sims_before = runner.SIM_RUNS
        start = time.perf_counter()
        engine.run_specs(specs, jobs=1)
        warm_s = time.perf_counter() - start
        warm_sims = runner.SIM_RUNS - sims_before
        print(f"warm replay        : {warm_s:7.2f}s, "
              f"{warm_sims} simulations")
        if warm_sims != 0:
            print("FAIL: warm cache replay performed simulation work",
                  file=sys.stderr)
            return 1

    report = {
        "benchmarks": benchmarks,
        "specs": len(specs),
        "jobs": jobs,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "warm_replay_seconds": round(warm_s, 3),
        "warm_replay_simulations": warm_sims,
        "identical": True,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"report -> {args.out} (speedup {report['speedup']}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
