#!/usr/bin/env python3
"""Gate the decision-lineage ledger's overhead and pure-observer claim.

The ledger is advertised as a pure observer: attaching it must not
change a single simulated cycle, and its host-side (wall clock) cost
must stay within a small constant factor of a ledger-off run.  CI's
benchmark-timing job runs this script, which

  1. runs the same spec with the ledger off and on (best-of-N wall
     time each),
  2. asserts bit-identity across every simulated surface (cycles,
     instructions, cycle buckets, hardware counters, GC summary,
     monitoring summary, PEBS samples taken),
  3. asserts the captured ledger is non-trivial and internally valid
     (``explain.validate`` finds no problems), and
  4. asserts wall-time ratio ledger-on / ledger-off <= the gate
     (default 1.10), then writes ``BENCH_lineage.json``.

Run:  PYTHONPATH=src python scripts/bench_lineage.py
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.harness.runner import RunSpec, execute  # noqa: E402
from repro.lineage import DecisionLedger, explain  # noqa: E402


def run_once(spec, ledger=None):
    start = time.perf_counter()
    result = execute(spec, lineage=ledger)
    return time.perf_counter() - start, result


def fingerprint(result) -> dict:
    """Every simulated surface the ledger must leave untouched."""
    vm = result.vm
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "app_cycles": result.app_cycles,
        "gc_cycles": result.gc_cycles,
        "monitoring_cycles": result.monitoring_cycles,
        "counters": dict(result.counters),
        "gc_summary": result.gc_stats.summary(),
        "monitor_summary": result.monitor_summary,
        "samples_taken": vm.pebs.samples_taken,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmark", default="db",
                        help="benchmark to run (default db)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N wall-time repeats (default 3)")
    parser.add_argument("--max-ratio", type=float, default=1.10,
                        help="ledger-on / ledger-off wall-time gate "
                             "(default 1.10)")
    parser.add_argument("--out", default="BENCH_lineage.json",
                        help="report path (default BENCH_lineage.json)")
    args = parser.parse_args()

    spec = RunSpec(benchmark=args.benchmark, coalloc=True)

    off_times, on_times = [], []
    off_fp = on_fp = None
    ledger_doc = None
    for _ in range(args.repeats):
        t_off, r_off = run_once(spec)
        t_on, r_on = run_once(spec, ledger=DecisionLedger())
        off_times.append(t_off)
        on_times.append(t_on)
        off_fp = fingerprint(r_off)
        on_fp = fingerprint(r_on)
        ledger_doc = r_on.vm.lineage.to_json()

    # 1. Pure observer: bit-identical simulated state.
    for key in off_fp:
        assert off_fp[key] == on_fp[key], (
            f"ledger perturbed simulated state: {key}: "
            f"{off_fp[key]!r} != {on_fp[key]!r}")

    # 2. The ledger actually observed the run, and its DAG is valid.
    n_entries = len(ledger_doc["entries"])
    assert n_entries > 0, "ledger recorded nothing"
    problems = explain.validate(ledger_doc)
    assert not problems, f"ledger invalid: {problems}"

    # 3. Host-side overhead gate (best-of-N to damp scheduler noise).
    best_off, best_on = min(off_times), min(on_times)
    ratio = best_on / best_off
    assert ratio <= args.max_ratio, (
        f"ledger overhead {ratio:.3f}x exceeds gate {args.max_ratio:.2f}x "
        f"(off {best_off:.2f}s, on {best_on:.2f}s)")

    bench = {
        "benchmark": args.benchmark,
        "repeats": args.repeats,
        "wall_off_s": round(best_off, 3),
        "wall_on_s": round(best_on, 3),
        "overhead_ratio": round(ratio, 4),
        "max_ratio": args.max_ratio,
        "ledger_entries": n_entries,
        "ledger_dropped": ledger_doc["dropped"],
        "bit_identical": True,
    }
    with open(args.out, "w") as fh:
        json.dump(bench, fh, indent=1)
        fh.write("\n")
    print(f"lineage OK: {n_entries} entries, overhead {ratio:.3f}x "
          f"(gate {args.max_ratio:.2f}x), bit-identical -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
