#!/usr/bin/env python3
"""Back-compat wrapper over ``repro bench`` case ``lineage``.

Gates the decision-lineage ledger's pure-observer claim (bit-identical
simulated state with the ledger attached) and its host-side overhead
ceiling, and writes the same ``BENCH_lineage.json`` artifact name CI
has always uploaded.  The measurement itself lives in
:mod:`repro.bench.cases`; prefer ``python -m repro bench run lineage``.

Run:  PYTHONPATH=src python scripts/bench_lineage.py
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import cli as bench_cli  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmark", default="db",
                        help="benchmark to run (default db)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N wall-time repeats (default 3)")
    parser.add_argument("--max-ratio", type=float, default=1.10,
                        help="ledger-on / ledger-off wall-time gate "
                             "(default 1.10)")
    parser.add_argument("--out", default="BENCH_lineage.json",
                        help="report path (default BENCH_lineage.json)")
    parser.add_argument("--history", default=None, metavar="PATH",
                        help="also append the run to this bench history")
    args = parser.parse_args()

    return bench_cli.run_gate(
        "lineage",
        {"benchmark": args.benchmark, "repeats": args.repeats,
         "max_ratio": args.max_ratio},
        out=args.out, history_path=args.history)


if __name__ == "__main__":
    sys.exit(main())
