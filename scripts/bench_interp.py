#!/usr/bin/env python3
"""Back-compat wrapper over ``repro bench`` case ``interp``.

Times the reference interpreter vs the closure-threaded fast path,
asserts bit-identity and the speedup floor, and writes the same
``BENCH_interp.json`` artifact name CI has always uploaded.  The
measurement itself lives in :mod:`repro.bench.cases`; prefer
``python -m repro bench run interp`` directly.

Run:  PYTHONPATH=src python scripts/bench_interp.py
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import cli as bench_cli  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmark", default="compress",
                        help="guest benchmark to run (default compress)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timed runs per interpreter; best is kept")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="fail below this translated/reference ratio")
    parser.add_argument("--out", default="BENCH_interp.json",
                        help="report path (default BENCH_interp.json)")
    parser.add_argument("--history", default=None, metavar="PATH",
                        help="also append the run to this bench history")
    args = parser.parse_args()

    return bench_cli.run_gate(
        "interp",
        {"benchmark": args.benchmark, "repeats": args.repeats,
         "min_speedup": args.min_speedup},
        out=args.out, history_path=args.history)


if __name__ == "__main__":
    sys.exit(main())
