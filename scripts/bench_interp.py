#!/usr/bin/env python3
"""Time the reference interpreter vs the closure-threaded fast path.

CI's benchmark-timing job runs one benchmark under both interpreters
(disk cache disabled, so both really simulate), checks the two
RunRecords are bit-identical (as JSON), and fails if the translated
path's speedup falls below ``--min-speedup`` (default 1.5x) — the
regression guard for the simulator's own hot loop.  Timings land in a
JSON report (``BENCH_interp.json``) that CI uploads as an artifact.

Unlike the engine benchmark, the speedup here *is* asserted: both runs
execute the same guest work on the same core back to back, so the ratio
is stable even on busy runners.

Run:  PYTHONPATH=src python scripts/bench_interp.py
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.harness import runner  # noqa: E402
from repro.harness.record import RunRecord  # noqa: E402
from repro.harness.runner import RunSpec  # noqa: E402


def timed_run(spec, fastpath, repeats):
    """Best-of-``repeats`` wall time; returns (record JSON, seconds)."""
    best = None
    doc = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = runner.execute(spec, fastpath=fastpath)
        elapsed = time.perf_counter() - start
        doc = RunRecord.from_result(result).to_json()
        if best is None or elapsed < best:
            best = elapsed
    return doc, best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmark", default="compress",
                        help="guest benchmark to run (default compress)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timed runs per interpreter; best is kept")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="fail below this translated/reference ratio")
    parser.add_argument("--out", default="BENCH_interp.json",
                        help="report path (default BENCH_interp.json)")
    args = parser.parse_args()

    # Both modes must simulate: no disk layer, fresh memo.
    runner.set_disk_cache(None)
    runner.clear_cache()

    spec = RunSpec(benchmark=args.benchmark, monitoring=True)
    ref_doc, ref_s = timed_run(spec, False, args.repeats)
    print(f"reference interpreter : {ref_s:7.2f}s "
          f"({ref_doc['instructions']:,} instructions)")
    fast_doc, fast_s = timed_run(spec, True, args.repeats)
    print(f"translated fast path  : {fast_s:7.2f}s")

    if fast_doc != ref_doc:
        print("FAIL: fast-path record differs from reference record",
              file=sys.stderr)
        for key in ref_doc:
            if ref_doc[key] != fast_doc[key]:
                print(f"  first differing field: {key}", file=sys.stderr)
                break
        return 1
    print("OK: records bit-identical across interpreters")

    speedup = ref_s / fast_s if fast_s else float("inf")
    mips = fast_doc["instructions"] / fast_s / 1e6 if fast_s else None
    report = {
        "benchmark": args.benchmark,
        "instructions": ref_doc["instructions"],
        "repeats": args.repeats,
        "reference_seconds": round(ref_s, 3),
        "fastpath_seconds": round(fast_s, 3),
        "speedup": round(speedup, 3),
        "fastpath_mips": round(mips, 3) if mips else None,
        "min_speedup": args.min_speedup,
        "identical": True,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"report -> {args.out} (speedup {report['speedup']}x, "
          f"{report['fastpath_mips']} MIPS)")

    if speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below the "
              f"{args.min_speedup}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
