#!/usr/bin/env python3
"""Run the sampling-fidelity audit end-to-end; validate and time it.

CI's audit-smoke job runs ``repro audit`` on a small benchmark,
validates the JSON report against the schema the auditor promises
(``fidelity.AUDIT_SCHEMA_VERSION``), asserts the paper-level acceptance
properties — top-N hot-method overlap at the densest interval, fidelity
monotonically non-increasing as the interval grows — and lands the wall
time in a JSON report (``BENCH_audit.json``) that CI uploads as an
artifact next to the audit report itself.

Run:  PYTHONPATH=src python scripts/bench_audit.py
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis import fidelity  # noqa: E402

REQUIRED_INTERVAL_KEYS = {
    "interval", "scaled_interval", "cycles", "monitoring_cycles",
    "overhead", "samples_taken", "exact_events", "exact_attributed",
    "sampled_attributed", "fidelity", "method_overlap", "field_overlap",
    "method_spearman", "field_spearman", "field_abs_error",
    "top_methods_exact", "top_methods_sampled", "top_fields_exact",
    "top_fields_sampled",
}


def validate(doc: dict, intervals) -> None:
    assert doc["schema"] == fidelity.AUDIT_SCHEMA_VERSION, \
        f"schema {doc['schema']} != {fidelity.AUDIT_SCHEMA_VERSION}"
    assert [ia["interval"] for ia in doc["intervals"]] == list(intervals)
    for entry in doc["intervals"]:
        missing = REQUIRED_INTERVAL_KEYS - set(entry)
        assert not missing, f"interval entry missing keys: {missing}"
        assert 0.0 <= entry["overhead"] < 1.0
        assert entry["exact_events"] >= entry["samples_taken"]
    first = doc["intervals"][0]
    assert first["fidelity"] >= 0.8, \
        f"hot-method overlap {first['fidelity']} < 0.8 at {first['interval']}"
    scores = [ia["fidelity"] for ia in doc["intervals"]]
    assert all(a >= b for a, b in zip(scores, scores[1:])), \
        f"fidelity not monotone non-increasing: {scores}"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmark", default="fop",
                        help="benchmark to audit (default fop)")
    parser.add_argument("--report", default="AUDIT_report.json",
                        help="audit report path (default AUDIT_report.json)")
    parser.add_argument("--out", default="BENCH_audit.json",
                        help="timing report path (default BENCH_audit.json)")
    args = parser.parse_args()

    intervals = fidelity.DEFAULT_INTERVALS
    start = time.perf_counter()
    report = fidelity.audit_benchmark(args.benchmark, intervals=intervals)
    elapsed = time.perf_counter() - start
    doc = report.to_json()
    validate(doc, intervals)

    with open(args.report, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    print(fidelity.format_report(report))
    print(f"\naudit OK: {len(doc['intervals'])} intervals in {elapsed:.2f}s"
          f" -> {args.report}")

    bench = {
        "benchmark": args.benchmark,
        "intervals": list(intervals),
        "audit_wall_s": round(elapsed, 3),
        "fidelity_by_interval": {ia["interval"]: ia["fidelity"]
                                 for ia in doc["intervals"]},
        "overhead_by_interval": {ia["interval"]: round(ia["overhead"], 6)
                                 for ia in doc["intervals"]},
    }
    with open(args.out, "w") as fh:
        json.dump(bench, fh, indent=1)
        fh.write("\n")
    print(f"timing report -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
