#!/usr/bin/env python3
"""Back-compat wrapper over ``repro bench`` case ``audit``.

Runs the sampling-fidelity audit, asserts the report schema and the
paper-level acceptance properties (hot-set overlap floor at the
densest interval, monotone non-increasing fidelity), and writes the
same ``BENCH_audit.json`` / ``AUDIT_report.json`` artifact names CI
has always uploaded.  The measurement itself lives in
:mod:`repro.bench.cases`; prefer ``python -m repro bench run audit``.

Run:  PYTHONPATH=src python scripts/bench_audit.py
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import cli as bench_cli  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmark", default="fop",
                        help="benchmark to audit (default fop)")
    parser.add_argument("--report", default="AUDIT_report.json",
                        help="audit report path (default AUDIT_report.json)")
    parser.add_argument("--out", default="BENCH_audit.json",
                        help="timing report path (default BENCH_audit.json)")
    parser.add_argument("--history", default=None, metavar="PATH",
                        help="also append the run to this bench history")
    args = parser.parse_args()

    return bench_cli.run_gate(
        "audit",
        {"benchmark": args.benchmark, "report": args.report},
        out=args.out, history_path=args.history)


if __name__ == "__main__":
    sys.exit(main())
