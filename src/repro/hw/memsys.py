"""The memory hierarchy: DTLB + L1D + L2 + main memory + prefetcher.

``MemorySystem.access`` is the single entry point used by the CPU for
every data load and store.  It returns the access latency in cycles,
updates the hardware event counters, and notifies the PEBS unit when the
armed event fires (carrying the precise EIP, which is what makes the
sampling *precise* in the sense of section 3.1).

This is the hottest path of the whole simulator, so it is written for
speed: event counts are plain integer attributes folded into the
:class:`EventCounters` bank on :meth:`sync_counters`, the L1 probe is
inlined against the cache's set lists, and a last-page shortcut skips
the TLB LRU bookkeeping for consecutive same-page accesses.
Equivalences used by the fold: every data access translates exactly one
address and probes L1 exactly once, so ``DTLB_ACCESS == L1D_ACCESS ==
LOADS + STORES``.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.config import MachineConfig
from repro.hw.cache import Cache, StreamPrefetcher
from repro.hw.events import EventCounters, validate_event
from repro.hw.tlb import TLB


class MemorySystem:
    """A two-level data-cache hierarchy with a DTLB and a stream prefetcher."""

    def __init__(self, config: MachineConfig, counters: Optional[EventCounters] = None):
        self.config = config
        self.counters = counters if counters is not None else EventCounters()
        self.l1 = Cache(config.l1, "L1D")
        self.l2 = Cache(config.l2, "L2")
        self.tlb = TLB(config.tlb)
        self.prefetcher = StreamPrefetcher(
            self.l2, config.prefetch_trigger, config.prefetch_depth
        )
        # PEBS hook: set via arm_event().
        self._armed_event: Optional[str] = None
        self._pebs_hook: Optional[Callable[[int], None]] = None
        # Pure-observer hook: set via attach_observer().  Unlike the PEBS
        # unit it sees *every* occurrence of its event (no interval, no
        # cost charged), which is what makes it usable as an exact
        # ground-truth tap for the fidelity auditor.
        self._observed_event: Optional[str] = None
        self._observer_hook: Optional[Callable[[int], None]] = None
        # Fast-path state: geometry, latencies, and bound callees hoisted
        # once so the per-access path never chases ``self.config.*`` or
        # rebinds methods (configs are fixed after construction).
        self._l1_shift = self.l1.line_shift
        self._l1_sets = self.l1._sets
        self._l1_mask = self.l1.set_mask
        self._l1_ways = self.l1.ways
        self._l2_shift = self.l2.line_shift
        self._page_shift = self.tlb.page_shift
        self._last_page = -1
        self._l1_hit_latency = config.l1.hit_latency
        self._l2_hit_latency = config.l2.hit_latency
        self._memory_latency = config.memory_latency
        self._tlb_penalty = config.tlb.miss_penalty
        self._tlb_access_page = self.tlb.access_page
        self._l2_access_line = self.l2.access_line
        self._observe_miss = self.prefetcher.observe_miss
        # Raw event tallies (folded into ``counters`` by sync_counters).
        self.n_loads = 0
        self.n_stores = 0
        self.n_l1_miss = 0
        self.n_l2_access = 0
        self.n_l2_miss = 0
        self.n_dtlb_miss = 0
        self.n_prefetch = 0

    # -- PEBS attachment ----------------------------------------------------

    def arm_event(self, event: str, hook: Callable[[int], None]) -> None:
        """Arm PEBS-style sampling: ``hook(eip)`` fires on every ``event``."""
        self._armed_event = validate_event(event, pebs=True)
        self._pebs_hook = hook

    def disarm(self) -> None:
        self._armed_event = None
        self._pebs_hook = None

    # -- exact-observer attachment ------------------------------------------

    def attach_observer(self, event: str, hook: Callable[[int], None]) -> None:
        """Attach a pure observer: ``hook(eip)`` on *every* ``event``.

        The observer charges no cycles, consumes no randomness, and
        never touches the counters or the PEBS unit, so attaching one
        leaves the simulation bit-identical — the invariant the fidelity
        auditor (:mod:`repro.analysis.fidelity`) relies on and the
        telemetry tests enforce.
        """
        self._observed_event = validate_event(event, pebs=True)
        self._observer_hook = hook

    def detach_observer(self) -> None:
        self._observed_event = None
        self._observer_hook = None

    # -- the hot path ---------------------------------------------------------

    def access(self, addr: int, is_write: bool, eip: int) -> int:
        """Perform one data access; return its latency in cycles."""
        if is_write:
            self.n_stores += 1
        else:
            self.n_loads += 1
        latency = 0

        # Address translation (same-page shortcut skips LRU bookkeeping;
        # hit/miss accounting is exact because a resident page stays
        # resident until an intervening miss evicts it, and any eviction
        # of the last-touched page can only happen after a page change).
        page = addr >> self._page_shift
        if page != self._last_page:
            if not self._tlb_access_page(page):
                self.n_dtlb_miss += 1
                latency = self._tlb_penalty
                if self._armed_event == "DTLB_MISS":
                    self._pebs_hook(eip)
                if self._observed_event == "DTLB_MISS":
                    self._observer_hook(eip)
            self._last_page = page

        # L1 data cache (inlined probe, MRU-first, single scan).
        line = addr >> self._l1_shift
        ways = self._l1_sets[line & self._l1_mask]
        if ways:
            if ways[0] == line:
                return latency + self._l1_hit_latency
            try:
                idx = ways.index(line, 1)
            except ValueError:
                pass
            else:
                del ways[idx]
                ways.insert(0, line)
                return latency + self._l1_hit_latency
        self.n_l1_miss += 1
        ways.insert(0, line)
        if len(ways) > self._l1_ways:
            ways.pop()
        if self._armed_event == "L1D_MISS":
            self._pebs_hook(eip)
        if self._observed_event == "L1D_MISS":
            self._observer_hook(eip)
        latency += self._l1_hit_latency

        # L2 unified cache.
        self.n_l2_access += 1
        l2_line = addr >> self._l2_shift
        if self._l2_access_line(l2_line):
            return latency + self._l2_hit_latency
        self.n_l2_miss += 1
        if self._armed_event == "L2_MISS":
            self._pebs_hook(eip)
        if self._observed_event == "L2_MISS":
            self._observer_hook(eip)
        latency += self._l2_hit_latency + self._memory_latency

        # Miss-stream prefetching into L2.
        prefetched = self._observe_miss(l2_line)
        if prefetched:
            self.n_prefetch += prefetched
        return latency

    # -- the batched hot path -------------------------------------------------

    def access_run(self, addrs, writes, eips, start: int = 0) -> int:
        """Perform one superblock's deferred accesses in one call.

        ``addrs`` is the block's address batch in program order;
        ``writes[start + j]`` / ``eips[start + j]`` carry the
        translate-time constant is-write flag and EIP of the ``j``-th
        batched access (the block may flush in segments — write
        barriers, faults — so ``start`` re-anchors the batch into the
        block's full metadata tuples).  Returns the summed latency.
        """
        return self.access_run_segments(((addrs, writes, eips, start),))

    def access_run_segments(self, segments) -> int:
        """Perform a run of deferred-access segments in one call.

        Each segment is an ``(addrs, writes, eips, start)`` quadruple as
        in :meth:`access_run`; consecutive superblocks executed since
        the last drain contribute one segment each, so the whole
        scheduler quantum's accesses are usually simulated here in a
        single call.  Returns the summed latency.

        Per-access semantics are exactly :meth:`access` — same probe
        order, same counter totals at every flush point, same
        PEBS/observer hook firing points with the same EIPs — so
        counters, cache/TLB state, and samples are bit-identical to
        issuing the accesses one at a time.  The batch additionally
        exploits what a single ``access`` call cannot: geometry, hook
        state, and the TLB's LRU dict are hoisted into locals once per
        drain, the raw event tallies accumulate in locals and fold at
        the end, and the EIP is only ever *read* on miss paths.  All of
        that is invisible mid-batch because nothing a PEBS/observer
        hook can reach reads the tallies or re-arms the hooks, and
        cache pollution only happens at GC points, which drain the
        pending segments first.
        """
        page_shift = self._page_shift
        l1_shift = self._l1_shift
        l1_sets = self._l1_sets
        l1_mask = self._l1_mask
        l1_ways = self._l1_ways
        l2_shift = self._l2_shift
        l1_hit = self._l1_hit_latency
        l2_hit = self._l2_hit_latency
        memory_latency = self._memory_latency
        tlb_penalty = self._tlb_penalty
        l2_access_line = self._l2_access_line
        observe_miss = self._observe_miss
        armed = self._armed_event
        observed = self._observed_event
        pebs_hook = self._pebs_hook
        observer_hook = self._observer_hook
        last_page = self._last_page
        # The TLB hit path is inlined against its LRU dict (the miss
        # path replicates TLB.access_page's insert + evict); its own
        # hit/miss statistics accumulate locally like the event tallies.
        tlb = self.tlb
        tlb_pages = tlb._pages
        tlb_move = tlb_pages.move_to_end
        tlb_capacity = tlb.entries
        loads = stores = l1_miss = l2_access = l2_miss = 0
        tlb_hits = tlb_misses = 0
        total = 0
        for addrs, writes, eips, start in segments:
            index = start
            for addr in addrs:
                if writes[index]:
                    stores += 1
                else:
                    loads += 1
                index += 1

                page = addr >> page_shift
                if page != last_page:
                    if page in tlb_pages:
                        tlb_move(page)
                        tlb_hits += 1
                    else:
                        tlb_misses += 1
                        tlb_pages[page] = None
                        if len(tlb_pages) > tlb_capacity:
                            tlb_pages.popitem(last=False)
                        total += tlb_penalty
                        if armed == "DTLB_MISS":
                            pebs_hook(eips[index - 1])
                        if observed == "DTLB_MISS":
                            observer_hook(eips[index - 1])
                    last_page = page

                line = addr >> l1_shift
                ways = l1_sets[line & l1_mask]
                if ways:
                    if ways[0] == line:
                        total += l1_hit
                        continue
                    try:
                        idx = ways.index(line, 1)
                    except ValueError:
                        pass
                    else:
                        del ways[idx]
                        ways.insert(0, line)
                        total += l1_hit
                        continue
                l1_miss += 1
                ways.insert(0, line)
                if len(ways) > l1_ways:
                    ways.pop()
                if armed == "L1D_MISS":
                    pebs_hook(eips[index - 1])
                if observed == "L1D_MISS":
                    observer_hook(eips[index - 1])
                total += l1_hit

                l2_access += 1
                l2_line = addr >> l2_shift
                if l2_access_line(l2_line):
                    total += l2_hit
                    continue
                l2_miss += 1
                if armed == "L2_MISS":
                    pebs_hook(eips[index - 1])
                if observed == "L2_MISS":
                    observer_hook(eips[index - 1])
                total += l2_hit + memory_latency

                prefetched = observe_miss(l2_line)
                if prefetched:
                    self.n_prefetch += prefetched
        self._last_page = last_page
        self.n_loads += loads
        self.n_stores += stores
        self.n_l1_miss += l1_miss
        self.n_l2_access += l2_access
        self.n_l2_miss += l2_miss
        self.n_dtlb_miss += tlb_misses
        tlb.hits += tlb_hits
        tlb.misses += tlb_misses
        return total

    # -- counter folding --------------------------------------------------------

    def sync_counters(self) -> EventCounters:
        """Fold the raw tallies into the shared counter bank."""
        counts = self.counters.counts
        accesses = self.n_loads + self.n_stores
        counts["LOADS"] = self.n_loads
        counts["STORES"] = self.n_stores
        counts["L1D_ACCESS"] = accesses
        counts["L1D_MISS"] = self.n_l1_miss
        counts["L2_ACCESS"] = self.n_l2_access
        counts["L2_MISS"] = self.n_l2_miss
        counts["DTLB_ACCESS"] = accesses
        counts["DTLB_MISS"] = self.n_dtlb_miss
        counts["PREFETCHES"] = self.n_prefetch
        return self.counters

    # -- pollution model ------------------------------------------------------

    def pollute_minor(self) -> None:
        """Model the cache displacement caused by a nursery collection."""
        self.l1.invalidate_all()
        self.tlb.invalidate_all()
        self.prefetcher.reset()
        self._last_page = -1

    def pollute_full(self) -> None:
        """Model the displacement caused by a full-heap collection."""
        self.pollute_minor()
        self.l2.invalidate_all()
