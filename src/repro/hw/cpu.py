"""The machine-code executor.

Executes the compiled code produced by :mod:`repro.jit` with full cycle
accounting: every instruction pays its base cost, every heap/stack
access goes through :class:`repro.hw.memsys.MemorySystem` (which feeds
the event counters and the PEBS unit with the precise EIP), and the
virtual-time scheduler is polled between instruction blocks so that the
"collector thread" and the AOS timer run at the right simulated times.

The CPU is also the GC's root provider: at GC points (allocations and
calls) every frame's live references are enumerated through the
compiler-generated GC maps — exactly the structure the paper's extended
machine-code maps piggyback on.

Implementation note: the interpreter loop accumulates cycles and
instruction counts in locals and flushes them to ``self.cycles`` /
``self.instructions`` at scheduler-quantum boundaries, GC points, and
frame switches.  Reentrant charges (PEBS microcode costs arriving
through ``charge`` *during* a memory access) remain correct because
cycle accounting is purely additive.

Three interpreters execute the same compiled code:

* the **reference** interpreter (:meth:`CPU._run_reference`) — the
  ``if/elif`` dispatch chain below, kept as the differential oracle,
* the **translated** fastpath (:meth:`CPU._run_translated`) — threaded
  dispatch through per-instruction closures built once per method by
  :mod:`repro.hw.translate` (level 1),
* the **superblock** fastpath (:meth:`CPU._run_superblock`) — the same
  driver plus whole-run dispatch through fused straight-line closures
  with batched memory simulation (level 2, the default).

They are bit-identical in every observable (cycles, instructions,
memory-access order, scheduler polls, faults); ``REPRO_FASTPATH``
(``0``/``1``/``2``) or ``SystemConfig.fastpath`` selects the level —
see :func:`repro.core.config.fastpath_level`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import MachineConfig, fastpath_level
from repro.gc import layout
from repro.hw.isa import (
    GuestError,
    M_ALOAD, M_ALU, M_ALUI, M_ASTORE, M_BC, M_BR, M_CALL, M_CALLV,
    M_GETF, M_GETSTATIC, M_LDF, M_LEN, M_MOV, M_MOVI, M_NEW, M_NEWARR,
    M_NOP, M_NULLCHK, M_PUTF, M_PUTSTATIC, M_RET, M_STF,
)
from repro.hw.memsys import MemorySystem
from repro.hw.translate import CALL_SENT, RET_SENT, translation_for
from repro.vm.objects import HeapArray, HeapObject

#: Stack-memory bytes reserved per frame (locals + operand stack).
FRAME_BYTES = 1024
MAX_FRAME_WORDS = FRAME_BYTES // 4
MAX_STACK_DEPTH = 4000

#: Fixed overhead of a call/return pair beyond its instructions.
CALL_OVERHEAD = 4

#: Instructions executed between scheduler polls.
SCHED_QUANTUM = 128


class Frame:
    """One activation record."""

    __slots__ = ("cm", "pc", "regs", "slots", "base")

    def __init__(self, cm, base: int):
        self.cm = cm
        self.pc = 0
        self.regs: List[object] = [None] * cm.reg_count
        self.slots: List[object] = [0] * cm.frame_words
        self.base = base

    def __repr__(self) -> str:
        return f"<frame {self.cm.method.qualified_name}@{self.pc}>"


class CPU:
    """Executes compiled guest code against the memory hierarchy.

    ``runtime`` supplies the VM services (duck-typed; see
    :class:`repro.vm.vmcore.VM`):

    * ``compiled_code_for(method)`` — returns a CompiledMethod, invoking
      the baseline compiler on first call,
    * ``plan`` — the GC plan (allocation, write barrier),
    * ``static_addr(klass, field)`` — statics-table address.
    """

    def __init__(self, config: MachineConfig, mem: MemorySystem, runtime,
                 scheduler=None, fastpath: "bool | int | None" = None):
        self.config = config
        self.mem = mem
        self.runtime = runtime
        self.scheduler = scheduler
        self.frames: List[Frame] = []
        self.cycles = 0
        self.instructions = 0
        self.exit_value = None
        self.calls = 0
        #: Execution level: 0 reference if/elif, 1 per-instruction
        #: closures, 2 superblocks (the default); see
        #: :func:`repro.core.config.fastpath_level`.
        self.fastpath_level = fastpath_level(fastpath)
        #: Boolean surface kept for older call sites: any translated level.
        self.fastpath = self.fastpath_level > 0
        #: Shared latency accumulator the translated handlers add memory
        #: and allocation cycles into; the fastpath driver folds it into
        #: ``self.cycles`` at the same flush points as the reference loop.
        self._cyc_cell = [0]
        #: Deferred-access segments appended by superblock closures
        #: (level 2), drained through ``mem.access_run_segments`` at
        #: quantum boundaries, before per-instruction fallback, and at
        #: write barriers / guest faults inside a block.
        self._pending: list = []
        # Sentinel mailboxes: call/return handlers stash their operands
        # here for the fastpath driver (see repro.hw.translate).
        self._call_target = None
        self._call_args = None
        self._ret_value = None
        #: Optional software method profiler (repro.core.counting) invoked
        #: at every call/return boundary — the instrumentation-based
        #: alternative the paper's sampling approach is compared against.
        self.profiler = None

    # -- public API -------------------------------------------------------------

    def charge(self, cycles: int) -> None:
        """Add non-application work (GC, monitoring) to the clock."""
        self.cycles += cycles

    def drain_accesses(self) -> int:
        """Simulate and clear the pending deferred-access segments.

        Returns the summed latency (the caller adds it to the cycle
        accumulator).  Bound into superblock closures for their write
        barrier and fault paths; the driver inlines the equivalent.
        """
        pending = self._pending
        if not pending:
            return 0
        latency = self.mem.access_run_segments(pending)
        del pending[:]
        return latency

    def call_main(self, method) -> object:
        """Execute a no-argument method to completion; returns its value."""
        self.begin_main(method)
        self.run()
        return self.exit_value

    def begin_main(self, method) -> None:
        """Push the entry frame without running (for sliced execution)."""
        cm = self.runtime.compiled_code_for(method)
        self._push_frame(cm, ())

    def gc_roots(self):
        """Enumerate live references from all frames via GC maps."""
        roots = []
        for frame in self.frames:
            gc_map = frame.cm.gc_maps.get(frame.pc)
            if gc_map is None:
                raise RuntimeError(
                    f"no GC map at {frame.cm.method.qualified_name}"
                    f":{frame.pc} — collection outside a GC point"
                )
            regs, slots = frame.regs, frame.slots
            for kind, index in gc_map:
                value = regs[index] if kind == "r" else slots[index]
                if isinstance(value, (HeapObject, HeapArray)):
                    roots.append(value)
        return roots

    # -- frames -----------------------------------------------------------------

    def _push_frame(self, cm, args) -> None:
        if len(self.frames) >= MAX_STACK_DEPTH:
            raise GuestError("stack overflow", cm.method, 0)
        if cm.frame_words > MAX_FRAME_WORDS:
            raise GuestError(
                f"frame of {cm.frame_words} words exceeds the "
                f"{MAX_FRAME_WORDS}-word frame size", cm.method, 0)
        base = layout.STACK_BASE + len(self.frames) * FRAME_BYTES
        frame = Frame(cm, base)
        frame.regs[: len(args)] = args
        self.frames.append(frame)

    # -- the interpreter loop ------------------------------------------------------

    def run(self, until_cycles: Optional[int] = None) -> None:
        """Run until the call stack empties (or a cycle deadline passes)."""
        if self.fastpath_level >= 2:
            self._run_superblock(until_cycles)
        elif self.fastpath_level == 1:
            self._run_translated(until_cycles)
        else:
            self._run_reference(until_cycles)

    def _run_superblock(self, until_cycles: Optional[int] = None) -> None:
        """Superblock dispatch: fused straight-line runs, batched memory.

        The driver is :meth:`_run_translated` plus one extra dispatch
        tier: when a superblock starts at ``pc`` *and* its whole run
        fits the remaining scheduler-quantum budget, the fused closure
        executes the entire run (its memory accesses join the pending
        segment list) and the budget drops by the run length — so
        flushes, scheduler polls, and the ``until_cycles`` check still
        land on exactly every 128th instruction, as the reference does.
        The pending accesses of consecutively chained blocks are
        simulated in one ``access_run_segments`` call at the quantum
        boundary, or earlier if a per-instruction fallback, write
        barrier, or guest fault needs the memory state.  A run that
        would overshoot the quantum (and a branch landing mid-block)
        falls back to per-instruction dispatch until the next block
        start, which is the split that keeps sliced ``until_cycles``
        replay bit-identical.
        """
        icost = self.config.instruction_cost
        runtime = self.runtime
        scheduler = self.scheduler
        frames = self.frames
        cell = self._cyc_cell
        cell[0] = 0
        pending = self._pending
        del pending[:]
        drain_segments = self.mem.access_run_segments
        budget = SCHED_QUANTUM

        while frames:
            frame = frames[-1]
            cm = frame.cm
            translation = translation_for(cm, self)
            handlers = translation.handlers
            phase2 = translation.phase2
            blocks = translation.blocks
            regs = frame.regs
            slots = frame.slots
            pc = frame.pc
            switch = False
            n = 0     # local instruction delta

            while not switch:
                blk = blocks[pc]
                if blk is not None and blk[0] <= budget:
                    k, fn = blk
                    n += k
                    budget -= k
                    pc = fn(frame, regs, slots)
                    if budget <= 0:
                        budget = SCHED_QUANTUM
                        if pending:
                            cell[0] += drain_segments(pending)
                            del pending[:]
                        self.cycles += cell[0] + n * icost
                        self.instructions += n
                        cell[0] = 0
                        n = 0
                        if scheduler is not None:
                            next_time = scheduler.next_time
                            if next_time is not None \
                                    and next_time <= self.cycles:
                                frame.pc = pc
                                scheduler.run_due(self.cycles)
                        if until_cycles is not None \
                                and self.cycles >= until_cycles:
                            frame.pc = pc
                            self.sync_counters()
                            return
                    continue
                n += 1
                # Per-instruction handlers issue their own ``mem.access``
                # calls, charge the cell directly, and may reach a GC
                # point: the deferred accesses must land first.
                if pending:
                    cell[0] += drain_segments(pending)
                    del pending[:]
                next_pc = handlers[pc](frame, regs, slots)
                if next_pc >= 0:
                    pc = next_pc
                elif next_pc == CALL_SENT:
                    self.cycles += cell[0] + n * icost + CALL_OVERHEAD
                    self.instructions += n
                    cell[0] = 0
                    n = 0
                    target = self._call_target
                    args = self._call_args
                    self._call_target = None
                    self._call_args = None
                    callee = runtime.compiled_code_for(target)
                    if self.profiler is not None:
                        self.profiler.on_call(target, self.cycles)
                    self.calls += 1
                    self._push_frame(callee, args)
                    switch = True
                elif next_pc == RET_SENT:
                    value = self._ret_value
                    self._ret_value = None
                    self.cycles += cell[0] + n * icost
                    self.instructions += n
                    cell[0] = 0
                    n = 0
                    if self.profiler is not None:
                        self.profiler.on_return(self.cycles)
                    frames.pop()
                    if frames:
                        caller = frames[-1]
                        call_inst = caller.cm.code[caller.pc]
                        if call_inst.rd is not None:
                            caller.regs[call_inst.rd] = value
                        caller.pc += 1
                    else:
                        self.exit_value = value
                    switch = True
                else:
                    # Allocation (GC point): flush, then run phase 2 so
                    # a collection sees a consistent clock and roots.
                    pc = ~next_pc
                    self.cycles += cell[0] + n * icost
                    self.instructions += n
                    cell[0] = 0
                    n = 0
                    alloc_cost = phase2[pc](regs)
                    cell[0] += alloc_cost
                    pc += 1

                budget -= 1
                if budget <= 0:
                    budget = SCHED_QUANTUM
                    self.cycles += cell[0] + n * icost
                    self.instructions += n
                    cell[0] = 0
                    n = 0
                    if scheduler is not None:
                        next_time = scheduler.next_time
                        if next_time is not None and next_time <= self.cycles:
                            frame.pc = pc
                            scheduler.run_due(self.cycles)
                    if until_cycles is not None and self.cycles >= until_cycles:
                        frame.pc = pc
                        self.sync_counters()
                        return
            if cell[0] or n:
                self.cycles += cell[0] + n * icost
                self.instructions += n
                cell[0] = 0
        self.sync_counters()

    def _run_translated(self, until_cycles: Optional[int] = None) -> None:
        """Threaded dispatch through per-method closure tables.

        The driver mirrors :meth:`_run_reference` exactly: ``n`` counts
        instructions locally (base cycles are ``n * instruction_cost``,
        since every instruction costs the same), memory latencies arrive
        through ``self._cyc_cell``, and both are flushed to
        ``self.cycles`` / ``self.instructions`` at scheduler-quantum
        boundaries, GC points, and frame switches — the points where the
        scheduler, the GC, and the profiler observe the clock.
        """
        icost = self.config.instruction_cost
        runtime = self.runtime
        scheduler = self.scheduler
        frames = self.frames
        cell = self._cyc_cell
        cell[0] = 0
        budget = SCHED_QUANTUM

        while frames:
            frame = frames[-1]
            cm = frame.cm
            translation = translation_for(cm, self)
            handlers = translation.handlers
            phase2 = translation.phase2
            regs = frame.regs
            slots = frame.slots
            pc = frame.pc
            switch = False
            n = 0     # local instruction delta

            while not switch:
                n += 1
                next_pc = handlers[pc](frame, regs, slots)
                if next_pc >= 0:
                    pc = next_pc
                elif next_pc == CALL_SENT:
                    # The handler anchored frame.pc, charged any vtable
                    # header access, and stashed the target and args.
                    self.cycles += cell[0] + n * icost + CALL_OVERHEAD
                    self.instructions += n
                    cell[0] = 0
                    n = 0
                    target = self._call_target
                    args = self._call_args
                    self._call_target = None
                    self._call_args = None
                    callee = runtime.compiled_code_for(target)
                    if self.profiler is not None:
                        self.profiler.on_call(target, self.cycles)
                    self.calls += 1
                    self._push_frame(callee, args)
                    switch = True
                elif next_pc == RET_SENT:
                    value = self._ret_value
                    self._ret_value = None
                    self.cycles += cell[0] + n * icost
                    self.instructions += n
                    cell[0] = 0
                    n = 0
                    if self.profiler is not None:
                        self.profiler.on_return(self.cycles)
                    frames.pop()
                    if frames:
                        caller = frames[-1]
                        call_inst = caller.cm.code[caller.pc]
                        if call_inst.rd is not None:
                            caller.regs[call_inst.rd] = value
                        caller.pc += 1
                    else:
                        self.exit_value = value
                    switch = True
                else:
                    # Allocation (GC point): flush, then run phase 2 so
                    # a collection sees a consistent clock and roots.
                    pc = ~next_pc
                    self.cycles += cell[0] + n * icost
                    self.instructions += n
                    cell[0] = 0
                    n = 0
                    alloc_cost = phase2[pc](regs)
                    cell[0] += alloc_cost
                    pc += 1

                budget -= 1
                if budget <= 0:
                    budget = SCHED_QUANTUM
                    self.cycles += cell[0] + n * icost
                    self.instructions += n
                    cell[0] = 0
                    n = 0
                    if scheduler is not None:
                        next_time = scheduler.next_time
                        if next_time is not None and next_time <= self.cycles:
                            frame.pc = pc
                            scheduler.run_due(self.cycles)
                    if until_cycles is not None and self.cycles >= until_cycles:
                        frame.pc = pc
                        self.sync_counters()
                        return
            if cell[0] or n:
                self.cycles += cell[0] + n * icost
                self.instructions += n
                cell[0] = 0
        self.sync_counters()

    def _run_reference(self, until_cycles: Optional[int] = None) -> None:
        """The reference if/elif interpreter (the differential oracle)."""
        mem_access = self.mem.access
        icost = self.config.instruction_cost
        runtime = self.runtime
        scheduler = self.scheduler
        frames = self.frames
        budget = SCHED_QUANTUM
        # Dispatch constants as locals: every ``op == M_*`` test below is
        # a LOAD_FAST instead of a LOAD_GLOBAL, which is measurable at
        # one comparison chain per simulated instruction.
        (m_getf, m_aload, m_alu, m_bc, m_alui, m_movi, m_mov, m_ldf,
         m_stf, m_astore, m_putf, m_br, m_len, m_call, m_callv, m_ret,
         m_new, m_newarr, m_getstatic, m_putstatic, m_nullchk, m_nop) = (
            M_GETF, M_ALOAD, M_ALU, M_BC, M_ALUI, M_MOVI, M_MOV, M_LDF,
            M_STF, M_ASTORE, M_PUTF, M_BR, M_LEN, M_CALL, M_CALLV, M_RET,
            M_NEW, M_NEWARR, M_GETSTATIC, M_PUTSTATIC, M_NULLCHK, M_NOP)

        while frames:
            frame = frames[-1]
            cm = frame.cm
            code = cm.code
            code_addr = cm.code_addr
            regs = frame.regs
            slots = frame.slots
            fbase = frame.base
            pc = frame.pc
            switch = False
            cyc = 0   # local cycle delta
            n = 0     # local instruction delta

            while not switch:
                inst = code[pc]
                op = inst.op
                cyc += icost
                n += 1

                if op == m_getf:
                    obj = regs[inst.rs1]
                    if obj is None:
                        raise GuestError("null getfield", cm.method, pc)
                    field = inst.aux
                    cyc += mem_access(obj.address + field.offset,
                                      False, code_addr + pc * 4)
                    regs[inst.rd] = obj.slots[field.index]
                    pc += 1
                elif op == m_aload:
                    arr = regs[inst.rs1]
                    if arr is None:
                        raise GuestError("null array load", cm.method, pc)
                    index = regs[inst.rs2]
                    elems = arr.elements
                    if index < 0 or index >= len(elems):
                        raise GuestError(
                            f"index {index} out of bounds [0,{len(elems)})",
                            cm.method, pc)
                    cyc += mem_access(arr.address + 12 + index * arr.esize,
                                      False, code_addr + pc * 4)
                    regs[inst.rd] = elems[index]
                    pc += 1
                elif op == m_alu:
                    a = regs[inst.rs1]
                    b = regs[inst.rs2]
                    aux = inst.aux
                    if aux == "add":
                        regs[inst.rd] = a + b
                    elif aux == "sub":
                        regs[inst.rd] = a - b
                    elif aux == "mul":
                        regs[inst.rd] = a * b
                    elif aux == "and":
                        regs[inst.rd] = a & b
                    elif aux == "xor":
                        regs[inst.rd] = a ^ b
                    elif aux == "or":
                        regs[inst.rd] = a | b
                    elif aux == "shl":
                        regs[inst.rd] = (a << (b & 31)) & 0xFFFFFFFF
                    elif aux == "shr":
                        regs[inst.rd] = a >> (b & 31)
                    elif aux == "div" or aux == "rem":
                        if b == 0:
                            raise GuestError("division by zero", cm.method, pc)
                        q = abs(a) // abs(b)
                        if (a >= 0) != (b >= 0):
                            q = -q
                        regs[inst.rd] = q if aux == "div" else a - q * b
                    else:
                        raise GuestError(f"bad alu op {aux}", cm.method, pc)
                    pc += 1
                elif op == m_bc:
                    a = regs[inst.rs1]
                    cond = inst.aux
                    if cond == "eq":
                        taken = a == (regs[inst.rs2] if inst.rs2 is not None else 0)
                    elif cond == "ne":
                        taken = a != (regs[inst.rs2] if inst.rs2 is not None else 0)
                    elif cond == "lt":
                        taken = a < (regs[inst.rs2] if inst.rs2 is not None else 0)
                    elif cond == "ge":
                        taken = a >= (regs[inst.rs2] if inst.rs2 is not None else 0)
                    elif cond == "gt":
                        taken = a > (regs[inst.rs2] if inst.rs2 is not None else 0)
                    elif cond == "le":
                        taken = a <= (regs[inst.rs2] if inst.rs2 is not None else 0)
                    elif cond == "null":
                        taken = a is None
                    else:  # nonnull
                        taken = a is not None
                    pc = inst.imm if taken else pc + 1
                elif op == m_alui:
                    a = regs[inst.rs1]
                    b = inst.imm
                    aux = inst.aux
                    if aux == "add":
                        regs[inst.rd] = a + b
                    elif aux == "sub":
                        regs[inst.rd] = a - b
                    elif aux == "mul":
                        regs[inst.rd] = a * b
                    elif aux == "and":
                        regs[inst.rd] = a & b
                    elif aux == "shl":
                        regs[inst.rd] = (a << (b & 31)) & 0xFFFFFFFF
                    elif aux == "shr":
                        regs[inst.rd] = a >> (b & 31)
                    elif aux == "neg":
                        regs[inst.rd] = -a
                    elif aux == "div" or aux == "rem":
                        if b == 0:
                            raise GuestError("division by zero", cm.method, pc)
                        q = abs(a) // abs(b)
                        if (a >= 0) != (b >= 0):
                            q = -q
                        regs[inst.rd] = q if aux == "div" else a - q * b
                    else:
                        raise GuestError(f"bad alui op {aux}", cm.method, pc)
                    pc += 1
                elif op == m_movi:
                    regs[inst.rd] = inst.imm
                    pc += 1
                elif op == m_mov:
                    regs[inst.rd] = regs[inst.rs1]
                    pc += 1
                elif op == m_ldf:
                    cyc += mem_access(fbase + inst.imm * 4, False,
                                      code_addr + pc * 4)
                    regs[inst.rd] = slots[inst.imm]
                    pc += 1
                elif op == m_stf:
                    cyc += mem_access(fbase + inst.imm * 4, True,
                                      code_addr + pc * 4)
                    slots[inst.imm] = regs[inst.rs1]
                    pc += 1
                elif op == m_astore:
                    arr = regs[inst.rs1]
                    if arr is None:
                        raise GuestError("null array store", cm.method, pc)
                    index = regs[inst.rs2]
                    elems = arr.elements
                    if index < 0 or index >= len(elems):
                        raise GuestError(
                            f"index {index} out of bounds [0,{len(elems)})",
                            cm.method, pc)
                    value = regs[inst.rd]
                    cyc += mem_access(arr.address + 12 + index * arr.esize,
                                      True, code_addr + pc * 4)
                    elems[index] = value
                    if arr.kind == "ref":
                        runtime.plan.write_barrier(arr, index, value)
                    pc += 1
                elif op == m_putf:
                    obj = regs[inst.rs1]
                    if obj is None:
                        raise GuestError("null putfield", cm.method, pc)
                    field = inst.aux
                    value = regs[inst.rs2]
                    cyc += mem_access(obj.address + field.offset,
                                      True, code_addr + pc * 4)
                    obj.slots[field.index] = value
                    if field.kind == "ref":
                        runtime.plan.write_barrier(obj, field.index, value)
                    pc += 1
                elif op == m_br:
                    pc = inst.imm
                elif op == m_len:
                    arr = regs[inst.rs1]
                    if arr is None:
                        raise GuestError("null arraylength", cm.method, pc)
                    cyc += mem_access(arr.address + 8, False,
                                      code_addr + pc * 4)
                    regs[inst.rd] = len(arr.elements)
                    pc += 1
                elif op == m_call or op == m_callv:
                    frame.pc = pc  # GC map anchor while the callee runs
                    if op == m_call:
                        target = inst.aux
                    else:
                        receiver = regs[inst.rs1]
                        if receiver is None:
                            raise GuestError("null receiver", cm.method, pc)
                        # Virtual dispatch reads the object header (a heap
                        # access the interest analysis also tracks).
                        cyc += mem_access(receiver.address, False,
                                          code_addr + pc * 4)
                        target = receiver.class_info.vtable[inst.aux[1]]
                    self.cycles += cyc + CALL_OVERHEAD
                    self.instructions += n
                    cyc = 0
                    n = 0
                    callee = runtime.compiled_code_for(target)
                    if self.profiler is not None:
                        self.profiler.on_call(target, self.cycles)
                    self.calls += 1
                    args = tuple(regs[r] for r in inst.imm)
                    self._push_frame(callee, args)
                    switch = True
                elif op == m_ret:
                    value = regs[inst.rs1] if inst.rs1 is not None else None
                    self.cycles += cyc
                    self.instructions += n
                    cyc = 0
                    n = 0
                    if self.profiler is not None:
                        self.profiler.on_return(self.cycles)
                    frames.pop()
                    if frames:
                        caller = frames[-1]
                        call_inst = caller.cm.code[caller.pc]
                        if call_inst.rd is not None:
                            caller.regs[call_inst.rd] = value
                        caller.pc += 1
                    else:
                        self.exit_value = value
                    switch = True
                elif op == m_new:
                    frame.pc = pc  # GC point
                    self.cycles += cyc
                    self.instructions += n
                    cyc = 0
                    n = 0
                    regs[inst.rd] = runtime.plan.alloc_object(inst.aux)
                    cyc += runtime.plan.config.alloc_cost
                    pc += 1
                elif op == m_newarr:
                    frame.pc = pc  # GC point
                    length = regs[inst.rs1]
                    if length < 0:
                        raise GuestError("negative array size", cm.method, pc)
                    self.cycles += cyc
                    self.instructions += n
                    cyc = 0
                    n = 0
                    regs[inst.rd] = runtime.plan.alloc_array(inst.aux, length)
                    cyc += runtime.plan.config.alloc_cost
                    pc += 1
                elif op == m_getstatic:
                    klass, field = inst.aux
                    cyc += mem_access(runtime.static_addr(klass, field),
                                      False, code_addr + pc * 4)
                    regs[inst.rd] = klass.static_values[field.index]
                    pc += 1
                elif op == m_putstatic:
                    klass, field = inst.aux
                    cyc += mem_access(runtime.static_addr(klass, field),
                                      True, code_addr + pc * 4)
                    klass.static_values[field.index] = regs[inst.rs1]
                    pc += 1
                elif op == m_nullchk:
                    if regs[inst.rs1] is None:
                        raise GuestError("null receiver", cm.method, pc)
                    pc += 1
                elif op == m_nop:
                    pc += 1
                else:
                    raise GuestError(f"illegal opcode {op}", cm.method, pc)

                budget -= 1
                if budget <= 0:
                    budget = SCHED_QUANTUM
                    self.cycles += cyc
                    self.instructions += n
                    cyc = 0
                    n = 0
                    if scheduler is not None:
                        next_time = scheduler.next_time
                        if next_time is not None and next_time <= self.cycles:
                            frame.pc = pc
                            scheduler.run_due(self.cycles)
                    if until_cycles is not None and self.cycles >= until_cycles:
                        frame.pc = pc
                        self.sync_counters()
                        return
            if cyc or n:
                self.cycles += cyc
                self.instructions += n
        self.sync_counters()

    def sync_counters(self) -> None:
        """Publish instruction/cycle totals to the shared counter bank."""
        self.mem.sync_counters()
        self.mem.counters.counts["INSTRUCTIONS"] = self.instructions
        self.mem.counters.counts["CYCLES"] = self.cycles
