"""Set-associative cache model with LRU replacement and stream prefetch.

The model is *timing-directed*: it tracks only tags, not data (data lives
in the functional state of the VM; see DESIGN.md section 5).  Each access
reports whether it hit, and the memory system converts hits/misses into
cycles and hardware events.

Geometry defaults (16 KB L1D / 1 MB L2, 128-byte lines, 8-way) follow the
paper's experimental platform (section 6.1).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.core.config import CacheConfig


class Cache:
    """One level of a set-associative, write-allocate, LRU cache.

    Addresses are byte addresses; internally the cache operates on line
    numbers (``addr >> line_shift``).  Each set is a most-recently-used-
    first list of line tags, which makes both lookup and LRU update cheap
    for the small associativities we model.
    """

    def __init__(self, config: CacheConfig, name: str = "cache"):
        if config.line_bytes & (config.line_bytes - 1):
            raise ValueError("line size must be a power of two")
        num_sets = config.num_sets
        if num_sets < 1 or num_sets & (num_sets - 1):
            raise ValueError("number of sets must be a power of two >= 1")
        self.config = config
        self.name = name
        self.line_shift = config.line_bytes.bit_length() - 1
        self.set_mask = num_sets - 1
        self.ways = config.ways
        self._sets: List[List[int]] = [[] for _ in range(num_sets)]
        # Statistics kept by the cache itself (the memory system keeps the
        # authoritative event counters; these are for unit inspection).
        self.hits = 0
        self.misses = 0

    # -- core operations ----------------------------------------------------

    def line_of(self, addr: int) -> int:
        """Return the line number containing byte address ``addr``."""
        return addr >> self.line_shift

    def access_line(self, line: int) -> bool:
        """Touch ``line``; return True on hit, False on miss (line filled)."""
        ways = self._sets[line & self.set_mask]
        # Single scan: index() both probes and locates the LRU position,
        # where ``in`` + ``remove`` would walk the set twice.
        try:
            idx = ways.index(line)
        except ValueError:
            self.misses += 1
            ways.insert(0, line)
            if len(ways) > self.ways:
                ways.pop()
            return False
        if idx:
            del ways[idx]
            ways.insert(0, line)
        self.hits += 1
        return True

    def access(self, addr: int) -> bool:
        """Touch the line containing byte address ``addr``."""
        return self.access_line(addr >> self.line_shift)

    def fill_line(self, line: int) -> bool:
        """Install ``line`` without counting an access (prefetch path).

        Returns True when the line was newly installed.
        """
        ways = self._sets[line & self.set_mask]
        if line in ways:
            return False
        ways.insert(0, line)
        if len(ways) > self.ways:
            ways.pop()
        return True

    def contains(self, addr: int) -> bool:
        """Check residency of the line holding ``addr`` without touching LRU."""
        line = addr >> self.line_shift
        return line in self._sets[line & self.set_mask]

    def invalidate_all(self) -> None:
        """Drop every line (models cache pollution by the collector)."""
        for ways in self._sets:
            ways.clear()

    def resident_lines(self) -> int:
        """Total number of valid lines currently cached."""
        return sum(len(ways) for ways in self._sets)


class StreamPrefetcher:
    """A multi-stream next-line prefetcher (P4 "hardware-based prefetching
    of data streams", section 6.1).

    Up to ``MAX_STREAMS`` independent sequential streams are tracked (the
    P4 tracks 8), so interleaved streams — a copy loop reading one buffer
    and writing another — are still detected.  After ``trigger`` misses
    on consecutive lines of one stream, the next ``depth`` lines are
    prefetched and the stream's expectation jumps past them (the demand
    stream then runs on prefetched lines until the next fill point).
    Prefetches install lines without charging the demand access any
    latency — the usual first-order model.
    """

    MAX_STREAMS = 8

    def __init__(self, cache: Cache, trigger: int = 2, depth: int = 4):
        self.cache = cache
        self.trigger = trigger
        self.depth = depth
        #: expected next miss line -> current run length.
        self._streams: "OrderedDict[int, int]" = OrderedDict()
        self.issued = 0

    def observe_miss(self, line: int) -> int:
        """Feed one miss line number; returns the number of lines prefetched."""
        if self.depth <= 0:
            return 0
        run = self._streams.pop(line, 0) + 1
        if run < self.trigger:
            self._streams[line + 1] = run
            while len(self._streams) > self.MAX_STREAMS:
                self._streams.popitem(last=False)
            return 0
        prefetched = 0
        for i in range(1, self.depth + 1):
            if self.cache.fill_line(line + i):
                prefetched += 1
        self.issued += prefetched
        # The stream continues on the prefetched lines; expect the next
        # demand miss right after them.
        self._streams[line + self.depth + 1] = run
        while len(self._streams) > self.MAX_STREAMS:
            self._streams.popitem(last=False)
        return prefetched

    def reset(self) -> None:
        self._streams.clear()
