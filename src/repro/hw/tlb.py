"""Data TLB model: fully associative, LRU, 4 KB pages.

The paper samples DTLB misses as one of the PEBS-capable events and notes
(section 6.3) that driving co-allocation with TLB misses instead of L1
misses "does not improve the results" — the benchmark harness reproduces
that ablation, so the DTLB is a first-class part of the memory system.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.config import TLBConfig


class TLB:
    """Fully associative translation lookaside buffer with true LRU.

    Backed by an :class:`collections.OrderedDict` used as an LRU list:
    the most recently used page is kept at the end.
    """

    def __init__(self, config: TLBConfig):
        if config.page_bytes & (config.page_bytes - 1):
            raise ValueError("page size must be a power of two")
        self.config = config
        self.page_shift = config.page_bytes.bit_length() - 1
        self.entries = config.entries
        self._pages: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def page_of(self, addr: int) -> int:
        return addr >> self.page_shift

    def access(self, addr: int) -> bool:
        """Translate ``addr``; return True on TLB hit."""
        return self.access_page(addr >> self.page_shift)

    def access_page(self, page: int) -> bool:
        """Translate an already-shifted page number (hot-path entry:
        the memory system computes the page once for its same-page
        shortcut and passes it through)."""
        pages = self._pages
        if page in pages:
            pages.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        pages[page] = None
        if len(pages) > self.entries:
            pages.popitem(last=False)
        return False

    def contains(self, addr: int) -> bool:
        return (addr >> self.page_shift) in self._pages

    def invalidate_all(self) -> None:
        self._pages.clear()

    def resident_pages(self) -> int:
        return len(self._pages)
