"""The target instruction set of the JIT compilers.

The simulated machine executes a typed load/store instruction set at
machine-instruction granularity: every instruction occupies 4 bytes of
code space and has its own EIP, which is what PEBS samples and what the
machine-code maps translate back to bytecode (section 4.2).

Design notes (DESIGN.md §5): the ISA is *functionally typed* — a field
load names its :class:`~repro.vm.model.FieldInfo` so the simulator can
read the functional state directly, while the *timing* side issues the
real byte address (``object.address + field.offset``) to the memory
hierarchy.  Register files are per-frame and effectively unbounded
(the optimizing compiler's virtual registers map 1:1).

Baseline-compiled code additionally traffics through *frame slots*
(``LDF``/``STF``): the operand stack and locals live in stack memory, so
every push/pop is a real (usually L1-hit) memory access — reproducing
the characteristic baseline/opt performance gap of Jikes RVM.
"""

from __future__ import annotations

from typing import Optional, Tuple

# Opcodes.  Dense small ints; dispatch in the CPU is an if/elif chain
# ordered roughly by dynamic frequency.
M_MOVI = 0      # rd <- imm
M_MOV = 1       # rd <- rs1
M_ALU = 2       # rd <- rs1 <aux> rs2
M_ALUI = 3      # rd <- rs1 <aux> imm
M_LDF = 4       # rd <- frame[imm]          (stack-memory load)
M_STF = 5       # frame[imm] <- rs1         (stack-memory store)
M_GETF = 6      # rd <- rs1.<aux:FieldInfo>
M_PUTF = 7      # rs1.<aux:FieldInfo> <- rs2
M_ALOAD = 8     # rd <- rs1[rs2]            (aux = element kind)
M_ASTORE = 9    # rs1[rs2] <- rd            (aux = element kind)
M_LEN = 10      # rd <- rs1.length
M_BR = 11       # goto imm
M_BC = 12       # if rs1 <aux> rs2 goto imm (rs2 None: compare vs 0/null)
M_CALL = 13     # rd <- call aux:MethodInfo(args=imm tuple of regs)
M_CALLV = 14    # rd <- callv rs1.vtable[aux[1]] (aux=(ClassInfo, slot); args=imm)
M_RET = 15      # return rs1 (None for void)
M_NEW = 16      # rd <- new aux:ClassInfo           [GC point]
M_NEWARR = 17   # rd <- new aux:kind [rs1 elements] [GC point]
M_GETSTATIC = 18  # rd <- statics[aux:(ClassInfo, FieldInfo)]
M_PUTSTATIC = 19  # statics[aux] <- rs1
M_NOP = 20
M_NULLCHK = 21   # fault if rs1 is null (guards devirtualized calls)

#: Instruction encoding size in bytes (fixed-width).
INSTRUCTION_BYTES = 4

#: Opcodes that are garbage-collection points: the compilers must emit a
#: GC map for these pcs, and collection may only be triggered there.
GC_POINT_OPS = frozenset({M_CALL, M_CALLV, M_NEW, M_NEWARR})

#: Opcodes that access the data heap (candidates for PEBS data events).
HEAP_TOUCH_OPS = frozenset({
    M_GETF, M_PUTF, M_ALOAD, M_ASTORE, M_LEN, M_CALLV,
    M_GETSTATIC, M_PUTSTATIC, M_LDF, M_STF,
})

OP_NAMES = {
    M_MOVI: "movi", M_MOV: "mov", M_ALU: "alu", M_ALUI: "alui",
    M_LDF: "ldf", M_STF: "stf", M_GETF: "getf", M_PUTF: "putf",
    M_ALOAD: "aload", M_ASTORE: "astore", M_LEN: "len",
    M_BR: "br", M_BC: "bc", M_CALL: "call", M_CALLV: "callv",
    M_RET: "ret", M_NEW: "new", M_NEWARR: "newarr",
    M_GETSTATIC: "getstatic", M_PUTSTATIC: "putstatic", M_NOP: "nop",
    M_NULLCHK: "nullchk",
}

#: ALU operation names accepted in ``aux`` of M_ALU/M_ALUI.
ALU_OPS = ("add", "sub", "mul", "div", "rem", "and", "or", "xor",
           "shl", "shr", "neg")

#: Branch conditions accepted in ``aux`` of M_BC.
BC_CONDS = ("eq", "ne", "lt", "ge", "gt", "le", "null", "nonnull")


class MInst:
    """One machine instruction.

    ``bc_index`` is the bytecode index this instruction was compiled
    from (the machine-code map entry), and ``ir_id`` is the HIR
    instruction id for opt-compiled code (resolution target of the
    instructions-of-interest table).
    """

    __slots__ = ("op", "rd", "rs1", "rs2", "imm", "aux", "bc_index", "ir_id")

    def __init__(self, op: int, rd: Optional[int] = None,
                 rs1: Optional[int] = None, rs2: Optional[int] = None,
                 imm=None, aux=None, bc_index: int = -1,
                 ir_id: Optional[int] = None):
        self.op = op
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.aux = aux
        self.bc_index = bc_index
        self.ir_id = ir_id

    def is_gc_point(self) -> bool:
        return self.op in GC_POINT_OPS

    def __repr__(self) -> str:
        parts = [OP_NAMES.get(self.op, f"op{self.op}")]
        for label, value in (("rd", self.rd), ("rs1", self.rs1),
                             ("rs2", self.rs2), ("imm", self.imm),
                             ("aux", self.aux)):
            if value is not None:
                parts.append(f"{label}={value!r}")
        return f"<{' '.join(parts)} bc={self.bc_index}>"


class GuestError(Exception):
    """A guest-program fault (null dereference, bounds, division by zero)."""

    def __init__(self, message: str, method=None, pc: Optional[int] = None):
        self.method = method
        self.pc = pc
        where = f" at {method.qualified_name}:{pc}" if method is not None else ""
        super().__init__(message + where)
