"""Hardware performance events.

The P4 performance measurement unit exposes a large set of countable
events; PEBS supports a subset (L1/L2 cache misses, DTLB misses, ...) and
allows only **one** event to be measured at a time (section 4.1).  This
module defines the event vocabulary shared by the memory hierarchy, the
PEBS unit, and the monitoring module, plus a counter bank used for the
"normal counting" mode of operation (section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable


#: Events observable in normal counting mode.
COUNTED_EVENTS = (
    "CYCLES",
    "INSTRUCTIONS",
    "LOADS",
    "STORES",
    "L1D_ACCESS",
    "L1D_MISS",
    "L2_ACCESS",
    "L2_MISS",
    "DTLB_ACCESS",
    "DTLB_MISS",
    "PREFETCHES",
)

#: Events the PEBS unit can be armed with (precise, per-instruction).
PEBS_EVENTS = ("L1D_MISS", "L2_MISS", "DTLB_MISS")


class UnknownEventError(ValueError):
    """Raised when an event name is not part of the vocabulary."""


def validate_event(name: str, *, pebs: bool = False) -> str:
    """Validate an event name, returning it unchanged.

    With ``pebs=True`` the event must additionally be PEBS-capable.
    """
    if name not in COUNTED_EVENTS:
        raise UnknownEventError(f"unknown hardware event: {name!r}")
    if pebs and name not in PEBS_EVENTS:
        raise UnknownEventError(f"event {name!r} is not PEBS-capable")
    return name


@dataclass
class EventCounters:
    """A bank of free-running event counters (normal counting mode).

    A tool can read the counter values after program execution to obtain
    aggregate numbers such as the cache miss rate or total cycles.
    """

    counts: Dict[str, int] = field(
        default_factory=lambda: {name: 0 for name in COUNTED_EVENTS}
    )

    def add(self, name: str, n: int = 1) -> None:
        self.counts[name] += n

    def read(self, name: str) -> int:
        return self.counts[validate_event(name)]

    def snapshot(self) -> Dict[str, int]:
        """Return a copy of all counters, e.g. for before/after deltas."""
        return dict(self.counts)

    def delta(self, before: Dict[str, int]) -> Dict[str, int]:
        """Return per-event differences relative to a prior snapshot."""
        return {k: self.counts[k] - before.get(k, 0) for k in self.counts}

    def reset(self, names: Iterable[str] = COUNTED_EVENTS) -> None:
        for name in names:
            self.counts[validate_event(name)] = 0

    def miss_rate(self, miss: str, access: str) -> float:
        """Return ``miss/access`` or 0.0 when there were no accesses."""
        accesses = self.read(access)
        if accesses == 0:
            return 0.0
        return self.read(miss) / accesses
