"""One-time translation of compiled guest code into Python closures.

The reference interpreter in :mod:`repro.hw.cpu` pays a ~20-way
``if/elif`` dispatch chain — plus string compares on ``inst.aux`` and
attribute loads on the :class:`~repro.hw.isa.MInst` — for every
simulated instruction.  All of that work depends only on values that
are *constant once a method is compiled*: the opcode, the register
numbers, the field offset, the branch target, the ALU operation, and
the instruction's EIP (``code_addr + pc * 4``).

This module resolves all of it exactly once per
:class:`~repro.jit.codecache.CompiledMethod`: :func:`translate` maps
each instruction to a specialized closure (a "template" instantiated
with the operands baked in as default arguments, which CPython loads as
fast locals), and execution becomes threaded dispatch —
``pc = handlers[pc](frame, regs, slots)`` — with zero per-step operand
decoding.  It is a template JIT for the simulator's own hot loop, the
same once-against-the-profile-stable-operands trade the paper's online
optimizations make for the guest program.

Bit-identical contract
----------------------
The translated code must be indistinguishable from the reference
interpreter in every observable: cycle and instruction counts at every
flush point, the order and addresses of all memory accesses (and hence
cache state, event counters, and PEBS samples), scheduler-poll timing,
GC-point ``frame.pc`` anchoring, profiler callbacks, and the text of
guest faults.  Three conventions make that cheap to maintain:

* Every instruction costs exactly ``instruction_cost``, so handlers do
  not account base cycles at all — the driver reconstructs them at
  flush points as ``n * instruction_cost`` from its local instruction
  count.  Only memory latencies and allocation costs flow through a
  shared one-slot accumulator (``cpu._cyc_cell``).
* Handlers return the next pc.  Control transfers the driver must
  observe (because they flush counts or switch frames) return sentinels
  instead: :data:`CALL_SENT` / :data:`RET_SENT` after stashing their
  operands on the CPU, and allocations return ``~pc`` so the driver can
  flush *before* running the second phase from :attr:`Translation.phase2`
  (collection may only happen there).
* Anything that is **not** constant after compilation stays a runtime
  lookup, exactly as in the reference: ``arr.esize`` / ``arr.kind``,
  vtable dispatch through the receiver, and ``static_addr`` (whose
  lazy base assignment depends on first-touch order).

Translations close over the CPU's bound services, so they are cached
per ``(CompiledMethod, CPU)`` and rebuilt if either changes; the code
cache drops them when a method is recompiled (see
:meth:`~repro.jit.codecache.CodeCache.note_replaced`).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.hw.isa import (
    GuestError, INSTRUCTION_BYTES,
    M_ALOAD, M_ALU, M_ALUI, M_ASTORE, M_BC, M_BR, M_CALL, M_CALLV,
    M_GETF, M_GETSTATIC, M_LDF, M_LEN, M_MOV, M_MOVI, M_NEW, M_NEWARR,
    M_NOP, M_NULLCHK, M_PUTF, M_PUTSTATIC, M_RET, M_STF,
)

#: Sentinel returned by call handlers (target/args stashed on the CPU).
CALL_SENT = -(1 << 30)
#: Sentinel returned by return handlers (value stashed on the CPU).
RET_SENT = CALL_SENT - 1
# Allocations return ``~pc`` (always in [-len(code), -1], far from the
# sentinels above) so the driver can recover the pc with another ``~``.

#: A translated instruction: ``(frame, regs, slots) -> next pc``.
Handler = Callable[..., int]


class Translation:
    """The compiled form of one method for one CPU.

    ``blocks`` (built only at fastpath level 2) is a per-pc table:
    ``blocks[pc]`` is ``(length, closure)`` when a superblock starts at
    ``pc`` and ``None`` everywhere else, so the driver can test
    eligibility with one list index.  Mid-block pcs are always ``None``
    — a quantum split or branch landing inside a fused run simply
    executes per-instruction until the next block start.
    """

    __slots__ = ("cpu", "handlers", "phase2", "blocks")

    def __init__(self, cpu, handlers: List[Handler],
                 phase2: Dict[int, Callable], blocks=None):
        self.cpu = cpu
        self.handlers = handlers
        self.phase2 = phase2
        self.blocks = blocks


def translation_for(cm, cpu) -> Translation:
    """The cached translation of ``cm``, built on first use."""
    tr = cm.translation
    if tr is None or tr.cpu is not cpu:
        tr = translate(cm, cpu)
        cm.translation = tr
    return tr


# ---------------------------------------------------------------------------
# Handler templates.  Operands arrive as default arguments so the inner
# function reads them as fast locals; the bodies replicate the reference
# interpreter's per-opcode semantics (including fault messages and the
# order of null/bounds checks relative to memory accesses) exactly.
# ---------------------------------------------------------------------------

def _h_movi(rd, imm, npc):
    def h(frame, regs, slots, rd=rd, imm=imm, npc=npc):
        regs[rd] = imm
        return npc
    return h


def _h_mov(rd, rs1, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, npc=npc):
        regs[rd] = regs[rs1]
        return npc
    return h


def _h_nop(npc):
    def h(frame, regs, slots, npc=npc):
        return npc
    return h


def _h_bad(message, method, pc):
    def h(frame, regs, slots, message=message, method=method, pc=pc):
        raise GuestError(message, method, pc)
    return h


# -- ALU (register/register) ------------------------------------------------

def _h_alu_add(rd, rs1, rs2, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, rs2=rs2, npc=npc):
        regs[rd] = regs[rs1] + regs[rs2]
        return npc
    return h


def _h_alu_sub(rd, rs1, rs2, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, rs2=rs2, npc=npc):
        regs[rd] = regs[rs1] - regs[rs2]
        return npc
    return h


def _h_alu_mul(rd, rs1, rs2, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, rs2=rs2, npc=npc):
        regs[rd] = regs[rs1] * regs[rs2]
        return npc
    return h


def _h_alu_and(rd, rs1, rs2, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, rs2=rs2, npc=npc):
        regs[rd] = regs[rs1] & regs[rs2]
        return npc
    return h


def _h_alu_xor(rd, rs1, rs2, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, rs2=rs2, npc=npc):
        regs[rd] = regs[rs1] ^ regs[rs2]
        return npc
    return h


def _h_alu_or(rd, rs1, rs2, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, rs2=rs2, npc=npc):
        regs[rd] = regs[rs1] | regs[rs2]
        return npc
    return h


def _h_alu_shl(rd, rs1, rs2, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, rs2=rs2, npc=npc):
        regs[rd] = (regs[rs1] << (regs[rs2] & 31)) & 0xFFFFFFFF
        return npc
    return h


def _h_alu_shr(rd, rs1, rs2, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, rs2=rs2, npc=npc):
        regs[rd] = regs[rs1] >> (regs[rs2] & 31)
        return npc
    return h


def _h_alu_divrem(rd, rs1, rs2, npc, method, pc, rem):
    def h(frame, regs, slots, rd=rd, rs1=rs1, rs2=rs2, npc=npc,
          method=method, pc=pc, rem=rem):
        a = regs[rs1]
        b = regs[rs2]
        if b == 0:
            raise GuestError("division by zero", method, pc)
        q = abs(a) // abs(b)
        if (a >= 0) != (b >= 0):
            q = -q
        regs[rd] = a - q * b if rem else q
        return npc
    return h


_ALU_FACTORIES = {
    "add": _h_alu_add, "sub": _h_alu_sub, "mul": _h_alu_mul,
    "and": _h_alu_and, "xor": _h_alu_xor, "or": _h_alu_or,
    "shl": _h_alu_shl, "shr": _h_alu_shr,
}


# -- ALU (register/immediate) -----------------------------------------------

def _h_alui_add(rd, rs1, imm, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, imm=imm, npc=npc):
        regs[rd] = regs[rs1] + imm
        return npc
    return h


def _h_alui_sub(rd, rs1, imm, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, imm=imm, npc=npc):
        regs[rd] = regs[rs1] - imm
        return npc
    return h


def _h_alui_mul(rd, rs1, imm, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, imm=imm, npc=npc):
        regs[rd] = regs[rs1] * imm
        return npc
    return h


def _h_alui_and(rd, rs1, imm, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, imm=imm, npc=npc):
        regs[rd] = regs[rs1] & imm
        return npc
    return h


def _h_alui_shl(rd, rs1, imm, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, sh=imm & 31, npc=npc):
        regs[rd] = (regs[rs1] << sh) & 0xFFFFFFFF
        return npc
    return h


def _h_alui_shr(rd, rs1, imm, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, sh=imm & 31, npc=npc):
        regs[rd] = regs[rs1] >> sh
        return npc
    return h


def _h_alui_neg(rd, rs1, imm, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, npc=npc):
        regs[rd] = -regs[rs1]
        return npc
    return h


def _h_alui_divrem(rd, rs1, imm, npc, method, pc, rem):
    def h(frame, regs, slots, rd=rd, rs1=rs1, b=imm, npc=npc,
          method=method, pc=pc, rem=rem):
        a = regs[rs1]
        if b == 0:
            raise GuestError("division by zero", method, pc)
        q = abs(a) // abs(b)
        if (a >= 0) != (b >= 0):
            q = -q
        regs[rd] = a - q * b if rem else q
        return npc
    return h


_ALUI_FACTORIES = {
    "add": _h_alui_add, "sub": _h_alui_sub, "mul": _h_alui_mul,
    "and": _h_alui_and, "shl": _h_alui_shl, "shr": _h_alui_shr,
    "neg": _h_alui_neg,
}


# -- branches ---------------------------------------------------------------

def _h_bc_eq(rs1, rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, rs2=rs2, timm=timm, npc=npc):
        return timm if regs[rs1] == regs[rs2] else npc
    return h


def _h_bc_ne(rs1, rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, rs2=rs2, timm=timm, npc=npc):
        return timm if regs[rs1] != regs[rs2] else npc
    return h


def _h_bc_lt(rs1, rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, rs2=rs2, timm=timm, npc=npc):
        return timm if regs[rs1] < regs[rs2] else npc
    return h


def _h_bc_ge(rs1, rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, rs2=rs2, timm=timm, npc=npc):
        return timm if regs[rs1] >= regs[rs2] else npc
    return h


def _h_bc_gt(rs1, rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, rs2=rs2, timm=timm, npc=npc):
        return timm if regs[rs1] > regs[rs2] else npc
    return h


def _h_bc_le(rs1, rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, rs2=rs2, timm=timm, npc=npc):
        return timm if regs[rs1] <= regs[rs2] else npc
    return h


def _h_bc_eq0(rs1, _rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, timm=timm, npc=npc):
        return timm if regs[rs1] == 0 else npc
    return h


def _h_bc_ne0(rs1, _rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, timm=timm, npc=npc):
        return timm if regs[rs1] != 0 else npc
    return h


def _h_bc_lt0(rs1, _rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, timm=timm, npc=npc):
        return timm if regs[rs1] < 0 else npc
    return h


def _h_bc_ge0(rs1, _rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, timm=timm, npc=npc):
        return timm if regs[rs1] >= 0 else npc
    return h


def _h_bc_gt0(rs1, _rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, timm=timm, npc=npc):
        return timm if regs[rs1] > 0 else npc
    return h


def _h_bc_le0(rs1, _rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, timm=timm, npc=npc):
        return timm if regs[rs1] <= 0 else npc
    return h


def _h_bc_null(rs1, _rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, timm=timm, npc=npc):
        return timm if regs[rs1] is None else npc
    return h


def _h_bc_nonnull(rs1, _rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, timm=timm, npc=npc):
        return timm if regs[rs1] is not None else npc
    return h


_BC_FACTORIES = {
    ("eq", True): _h_bc_eq, ("ne", True): _h_bc_ne,
    ("lt", True): _h_bc_lt, ("ge", True): _h_bc_ge,
    ("gt", True): _h_bc_gt, ("le", True): _h_bc_le,
    ("eq", False): _h_bc_eq0, ("ne", False): _h_bc_ne0,
    ("lt", False): _h_bc_lt0, ("ge", False): _h_bc_ge0,
    ("gt", False): _h_bc_gt0, ("le", False): _h_bc_le0,
    ("null", True): _h_bc_null, ("null", False): _h_bc_null,
    ("nonnull", True): _h_bc_nonnull, ("nonnull", False): _h_bc_nonnull,
}


def _h_br(timm):
    def h(frame, regs, slots, timm=timm):
        return timm
    return h


# -- memory traffic ---------------------------------------------------------

def _h_getf(cell, mem_access, rd, rs1, off, fi, eip, method, pc, npc):
    def h(frame, regs, slots, cell=cell, mem_access=mem_access, rd=rd,
          rs1=rs1, off=off, fi=fi, eip=eip, method=method, pc=pc, npc=npc):
        obj = regs[rs1]
        if obj is None:
            raise GuestError("null getfield", method, pc)
        cell[0] += mem_access(obj.address + off, False, eip)
        regs[rd] = obj.slots[fi]
        return npc
    return h


def _h_putf(cell, mem_access, rs1, rs2, off, fi, eip, method, pc, npc):
    def h(frame, regs, slots, cell=cell, mem_access=mem_access, rs1=rs1,
          rs2=rs2, off=off, fi=fi, eip=eip, method=method, pc=pc, npc=npc):
        obj = regs[rs1]
        if obj is None:
            raise GuestError("null putfield", method, pc)
        value = regs[rs2]
        cell[0] += mem_access(obj.address + off, True, eip)
        obj.slots[fi] = value
        return npc
    return h


def _h_putf_ref(cell, mem_access, wb, rs1, rs2, off, fi, eip, method, pc,
                npc):
    def h(frame, regs, slots, cell=cell, mem_access=mem_access, wb=wb,
          rs1=rs1, rs2=rs2, off=off, fi=fi, eip=eip, method=method, pc=pc,
          npc=npc):
        obj = regs[rs1]
        if obj is None:
            raise GuestError("null putfield", method, pc)
        value = regs[rs2]
        cell[0] += mem_access(obj.address + off, True, eip)
        obj.slots[fi] = value
        wb(obj, fi, value)
        return npc
    return h


def _h_aload(cell, mem_access, rd, rs1, rs2, eip, method, pc, npc):
    def h(frame, regs, slots, cell=cell, mem_access=mem_access, rd=rd,
          rs1=rs1, rs2=rs2, eip=eip, method=method, pc=pc, npc=npc):
        arr = regs[rs1]
        if arr is None:
            raise GuestError("null array load", method, pc)
        index = regs[rs2]
        elems = arr.elements
        if index < 0 or index >= len(elems):
            raise GuestError(
                f"index {index} out of bounds [0,{len(elems)})", method, pc)
        cell[0] += mem_access(arr.address + 12 + index * arr.esize,
                              False, eip)
        regs[rd] = elems[index]
        return npc
    return h


def _h_astore(cell, mem_access, wb, rd, rs1, rs2, eip, method, pc, npc):
    def h(frame, regs, slots, cell=cell, mem_access=mem_access, wb=wb,
          rd=rd, rs1=rs1, rs2=rs2, eip=eip, method=method, pc=pc, npc=npc):
        arr = regs[rs1]
        if arr is None:
            raise GuestError("null array store", method, pc)
        index = regs[rs2]
        elems = arr.elements
        if index < 0 or index >= len(elems):
            raise GuestError(
                f"index {index} out of bounds [0,{len(elems)})", method, pc)
        value = regs[rd]
        cell[0] += mem_access(arr.address + 12 + index * arr.esize,
                              True, eip)
        elems[index] = value
        # ``arr.kind`` is a runtime property of the array, not of the
        # instruction: keep the reference interpreter's check.
        if arr.kind == "ref":
            wb(arr, index, value)
        return npc
    return h


def _h_len(cell, mem_access, rd, rs1, eip, method, pc, npc):
    def h(frame, regs, slots, cell=cell, mem_access=mem_access, rd=rd,
          rs1=rs1, eip=eip, method=method, pc=pc, npc=npc):
        arr = regs[rs1]
        if arr is None:
            raise GuestError("null arraylength", method, pc)
        cell[0] += mem_access(arr.address + 8, False, eip)
        regs[rd] = len(arr.elements)
        return npc
    return h


def _h_ldf(cell, mem_access, rd, off, si, eip, npc):
    def h(frame, regs, slots, cell=cell, mem_access=mem_access, rd=rd,
          off=off, si=si, eip=eip, npc=npc):
        cell[0] += mem_access(frame.base + off, False, eip)
        regs[rd] = slots[si]
        return npc
    return h


def _h_stf(cell, mem_access, rs1, off, si, eip, npc):
    def h(frame, regs, slots, cell=cell, mem_access=mem_access, rs1=rs1,
          off=off, si=si, eip=eip, npc=npc):
        cell[0] += mem_access(frame.base + off, True, eip)
        slots[si] = regs[rs1]
        return npc
    return h


def _h_getstatic(cell, mem_access, static_addr, klass, fld, sv, fi, rd,
                 eip, npc):
    def h(frame, regs, slots, cell=cell, mem_access=mem_access,
          static_addr=static_addr, klass=klass, fld=fld, sv=sv, fi=fi,
          rd=rd, eip=eip, npc=npc):
        cell[0] += mem_access(static_addr(klass, fld), False, eip)
        regs[rd] = sv[fi]
        return npc
    return h


def _h_putstatic(cell, mem_access, static_addr, klass, fld, sv, fi, rs1,
                 eip, npc):
    def h(frame, regs, slots, cell=cell, mem_access=mem_access,
          static_addr=static_addr, klass=klass, fld=fld, sv=sv, fi=fi,
          rs1=rs1, eip=eip, npc=npc):
        cell[0] += mem_access(static_addr(klass, fld), True, eip)
        sv[fi] = regs[rs1]
        return npc
    return h


# -- calls, returns, allocation, checks -------------------------------------

def _h_call(cpu, target, argregs, pc):
    n_args = len(argregs)
    if n_args == 0:
        def h(frame, regs, slots, cpu=cpu, target=target, pc=pc):
            frame.pc = pc
            cpu._call_target = target
            cpu._call_args = ()
            return CALL_SENT
    elif n_args == 1:
        def h(frame, regs, slots, cpu=cpu, target=target, pc=pc,
              a0=argregs[0]):
            frame.pc = pc
            cpu._call_target = target
            cpu._call_args = (regs[a0],)
            return CALL_SENT
    elif n_args == 2:
        def h(frame, regs, slots, cpu=cpu, target=target, pc=pc,
              a0=argregs[0], a1=argregs[1]):
            frame.pc = pc
            cpu._call_target = target
            cpu._call_args = (regs[a0], regs[a1])
            return CALL_SENT
    elif n_args == 3:
        def h(frame, regs, slots, cpu=cpu, target=target, pc=pc,
              a0=argregs[0], a1=argregs[1], a2=argregs[2]):
            frame.pc = pc
            cpu._call_target = target
            cpu._call_args = (regs[a0], regs[a1], regs[a2])
            return CALL_SENT
    else:
        def h(frame, regs, slots, cpu=cpu, target=target, pc=pc,
              argregs=argregs):
            frame.pc = pc
            cpu._call_target = target
            cpu._call_args = tuple([regs[r] for r in argregs])
            return CALL_SENT
    return h


def _h_callv(cell, mem_access, cpu, rs1, slot, argregs, eip, method, pc):
    def h(frame, regs, slots, cell=cell, mem_access=mem_access, cpu=cpu,
          rs1=rs1, slot=slot, argregs=argregs, eip=eip, method=method,
          pc=pc):
        frame.pc = pc
        receiver = regs[rs1]
        if receiver is None:
            raise GuestError("null receiver", method, pc)
        # Virtual dispatch reads the object header (a heap access the
        # interest analysis also tracks).
        cell[0] += mem_access(receiver.address, False, eip)
        cpu._call_target = receiver.class_info.vtable[slot]
        cpu._call_args = tuple([regs[r] for r in argregs])
        return CALL_SENT
    return h


def _h_ret(cpu, rs1):
    if rs1 is None:
        def h(frame, regs, slots, cpu=cpu):
            cpu._ret_value = None
            return RET_SENT
    else:
        def h(frame, regs, slots, cpu=cpu, rs1=rs1):
            cpu._ret_value = regs[rs1]
            return RET_SENT
    return h


def _h_new(pc):
    sent = ~pc
    def h(frame, regs, slots, pc=pc, sent=sent):
        frame.pc = pc  # GC point
        return sent
    return h


def _p2_new(alloc_object, klass, rd, cost):
    def p2(regs, alloc_object=alloc_object, klass=klass, rd=rd, cost=cost):
        regs[rd] = alloc_object(klass)
        return cost
    return p2


def _h_newarr(rs1, method, pc):
    sent = ~pc
    def h(frame, regs, slots, rs1=rs1, method=method, pc=pc, sent=sent):
        frame.pc = pc  # GC point
        if regs[rs1] < 0:
            raise GuestError("negative array size", method, pc)
        return sent
    return h


def _p2_newarr(alloc_array, kind, rd, rs1, cost):
    def p2(regs, alloc_array=alloc_array, kind=kind, rd=rd, rs1=rs1,
           cost=cost):
        regs[rd] = alloc_array(kind, regs[rs1])
        return cost
    return p2


def _h_nullchk(rs1, method, pc, npc):
    def h(frame, regs, slots, rs1=rs1, method=method, pc=pc, npc=npc):
        if regs[rs1] is None:
            raise GuestError("null receiver", method, pc)
        return npc
    return h


# ---------------------------------------------------------------------------
# The translator.
# ---------------------------------------------------------------------------

def translate(cm, cpu) -> Translation:
    """Compile ``cm``'s instruction list into closures bound to ``cpu``."""
    mem_access = cpu.mem.access
    runtime = cpu.runtime
    plan = runtime.plan
    static_addr = runtime.static_addr
    wb = plan.write_barrier
    alloc_object = plan.alloc_object
    alloc_array = plan.alloc_array
    alloc_cost = plan.config.alloc_cost
    cell = cpu._cyc_cell
    method = cm.method
    base_eip = cm.code_addr

    handlers: List[Handler] = []
    phase2: Dict[int, Callable] = {}
    for pc, inst in enumerate(cm.code):
        op = inst.op
        eip = base_eip + pc * INSTRUCTION_BYTES
        npc = pc + 1
        if op == M_GETF:
            fld = inst.aux
            h = _h_getf(cell, mem_access, inst.rd, inst.rs1, fld.offset,
                        fld.index, eip, method, pc, npc)
        elif op == M_ALOAD:
            h = _h_aload(cell, mem_access, inst.rd, inst.rs1, inst.rs2,
                         eip, method, pc, npc)
        elif op == M_ALU:
            aux = inst.aux
            factory = _ALU_FACTORIES.get(aux)
            if factory is not None:
                h = factory(inst.rd, inst.rs1, inst.rs2, npc)
            elif aux == "div" or aux == "rem":
                h = _h_alu_divrem(inst.rd, inst.rs1, inst.rs2, npc,
                                  method, pc, aux == "rem")
            else:
                h = _h_bad(f"bad alu op {aux}", method, pc)
        elif op == M_BC:
            factory = _BC_FACTORIES.get((inst.aux, inst.rs2 is not None))
            if factory is None:
                # The reference interpreter treats any unknown condition
                # as "nonnull" (its final else); mirror that.
                factory = _h_bc_nonnull
            h = factory(inst.rs1, inst.rs2, inst.imm, npc)
        elif op == M_ALUI:
            aux = inst.aux
            factory = _ALUI_FACTORIES.get(aux)
            if factory is not None:
                h = factory(inst.rd, inst.rs1, inst.imm, npc)
            elif aux == "div" or aux == "rem":
                h = _h_alui_divrem(inst.rd, inst.rs1, inst.imm, npc,
                                   method, pc, aux == "rem")
            else:
                h = _h_bad(f"bad alui op {aux}", method, pc)
        elif op == M_MOVI:
            h = _h_movi(inst.rd, inst.imm, npc)
        elif op == M_MOV:
            h = _h_mov(inst.rd, inst.rs1, npc)
        elif op == M_LDF:
            h = _h_ldf(cell, mem_access, inst.rd, inst.imm * 4, inst.imm,
                       eip, npc)
        elif op == M_STF:
            h = _h_stf(cell, mem_access, inst.rs1, inst.imm * 4, inst.imm,
                       eip, npc)
        elif op == M_ASTORE:
            h = _h_astore(cell, mem_access, wb, inst.rd, inst.rs1,
                          inst.rs2, eip, method, pc, npc)
        elif op == M_PUTF:
            fld = inst.aux
            if fld.kind == "ref":
                h = _h_putf_ref(cell, mem_access, wb, inst.rs1, inst.rs2,
                                fld.offset, fld.index, eip, method, pc, npc)
            else:
                h = _h_putf(cell, mem_access, inst.rs1, inst.rs2,
                            fld.offset, fld.index, eip, method, pc, npc)
        elif op == M_BR:
            h = _h_br(inst.imm)
        elif op == M_LEN:
            h = _h_len(cell, mem_access, inst.rd, inst.rs1, eip, method,
                       pc, npc)
        elif op == M_CALL:
            h = _h_call(cpu, inst.aux, tuple(inst.imm), pc)
        elif op == M_CALLV:
            h = _h_callv(cell, mem_access, cpu, inst.rs1, inst.aux[1],
                         tuple(inst.imm), eip, method, pc)
        elif op == M_RET:
            h = _h_ret(cpu, inst.rs1)
        elif op == M_NEW:
            h = _h_new(pc)
            phase2[pc] = _p2_new(alloc_object, inst.aux, inst.rd,
                                 alloc_cost)
        elif op == M_NEWARR:
            h = _h_newarr(inst.rs1, method, pc)
            phase2[pc] = _p2_newarr(alloc_array, inst.aux, inst.rd,
                                    inst.rs1, alloc_cost)
        elif op == M_GETSTATIC:
            klass, fld = inst.aux
            h = _h_getstatic(cell, mem_access, static_addr, klass, fld,
                             klass.static_values, fld.index, inst.rd,
                             eip, npc)
        elif op == M_PUTSTATIC:
            klass, fld = inst.aux
            h = _h_putstatic(cell, mem_access, static_addr, klass, fld,
                             klass.static_values, fld.index, inst.rs1,
                             eip, npc)
        elif op == M_NULLCHK:
            h = _h_nullchk(inst.rs1, method, pc, npc)
        elif op == M_NOP:
            h = _h_nop(npc)
        else:
            h = _h_bad(f"illegal opcode {op}", method, pc)
        handlers.append(h)
    blocks = None
    if getattr(cpu, "fastpath_level", 0) >= 2:
        blocks = compile_superblocks(cm, cpu)
    return Translation(cpu, handlers, phase2, blocks)


# ---------------------------------------------------------------------------
# Superblock compilation (fastpath level 2).
#
# Straight-line runs of fusible instructions are compiled — via a small
# source-level template JIT (``compile()`` + ``exec`` once per method) —
# into single closures that execute the whole run, deferring memory
# accesses into a local batch.  The batch joins the CPU's pending
# segment list at block exit; the driver drains the list in one
# :meth:`~repro.hw.memsys.MemorySystem.access_run_segments` call at
# quantum boundaries and before any per-instruction fallback, so the
# accesses of many chained blocks are simulated together.  The driver
# charges a run's base cycles as ``length * instruction_cost`` in one
# step and polls the scheduler only when the quantum budget empties, so
# a fused run eliminates the per-instruction dispatch, the per-access
# call overhead, and most of the per-batch simulation setup.
#
# Bit-identity is preserved because deferral only ever reorders *pure*
# bookkeeping: between drain points the sequence of (memory access,
# charge) events observed by the clock, the counters, the PEBS unit,
# and any observer hook is exactly the reference interpreter's
# sequence, and everything that could *read* that state — scheduler
# polls, GC safepoints, profiler callbacks, ``until_cycles`` checks,
# per-instruction handlers issuing their own ``mem.access`` calls —
# sits behind a drain.  The two in-block places where a charge could
# interleave with accesses force a drain first:
#
# * **write barriers** charge GC cycles immediately, so all pending
#   accesses are drained before every ``wb(...)`` call (unconditionally
#   for a ref putfield, behind the runtime ``kind == 'ref'`` check for
#   an array store);
# * **guest faults** must observe the accesses of the instructions that
#   preceded them, so every fault in a memory-touching block routes
#   through a ``fault`` helper that drains before raising.
#
# Block boundaries (branches and their targets, calls, returns,
# allocations, unknown ALU ops) stay per-instruction, which keeps GC
# safepoints, profiler callbacks, and ``frame.pc`` anchoring untouched.
# ---------------------------------------------------------------------------

#: Fused runs are capped so a run usually fits the remaining scheduler
#: quantum (SCHED_QUANTUM = 128); longer runs split into chained blocks.
MAX_SUPERBLOCK = 64
#: Fusing a single instruction would only add overhead.
MIN_SUPERBLOCK = 2

#: Opcodes a superblock may contain (ALU/ALUI additionally need a known
#: ``aux``; everything else — control flow, calls, allocations — is a
#: block breaker handled per-instruction).
_FUSIBLE_SIMPLE = frozenset({
    M_MOVI, M_MOV, M_NOP, M_NULLCHK, M_LEN, M_LDF, M_STF, M_GETF,
    M_PUTF, M_ALOAD, M_ASTORE, M_GETSTATIC, M_PUTSTATIC,
})

#: Opcodes that issue a data access (one each) inside a block.
_MEM_OPS = frozenset({
    M_GETF, M_PUTF, M_ALOAD, M_ASTORE, M_LEN, M_LDF, M_STF,
    M_GETSTATIC, M_PUTSTATIC,
})

_ALU_EXPRS = {
    "add": "{a} + {b}", "sub": "{a} - {b}", "mul": "{a} * {b}",
    "and": "{a} & {b}", "xor": "{a} ^ {b}", "or": "{a} | {b}",
}

#: The bounds-fault message, verbatim from the reference interpreter
#: (``i``/``e`` are the generated index/elements locals).
_BOUNDS_MSG = 'f"index {i} out of bounds [0,{len(e)})"'


def _is_literal(value) -> bool:
    """May ``value`` be inlined into generated source via ``repr``?"""
    return value is None or (isinstance(value, int)
                             and not isinstance(value, bool))


def fusible(inst) -> bool:
    """Whether one instruction may live inside a superblock."""
    op = inst.op
    if op in _FUSIBLE_SIMPLE:
        if op == M_MOVI:
            return _is_literal(inst.imm)
        if op == M_ALOAD or op == M_ASTORE or op == M_LEN:
            return True
        return True
    if op == M_ALU:
        return inst.aux in _ALU_FACTORIES or inst.aux in ("div", "rem")
    if op == M_ALUI:
        return _is_literal(inst.imm) and inst.imm is not None and (
            inst.aux in _ALUI_FACTORIES or inst.aux in ("div", "rem"))
    return False


def superblock_ranges(code) -> List[tuple]:
    """Partition ``code`` into fusible ``(start, stop)`` runs.

    Leaders — pcs where control can enter other than by falling through
    a fused instruction — are branch targets and the successors of every
    control transfer and allocation; a run never spans one, so a branch
    into the middle of a straight-line region starts a fresh block
    there.  A run may additionally *end* with the branch that terminates
    it (the classic superblock shape): the branch executes inside the
    closure and the closure returns the taken pc, saving one driver
    dispatch per block without moving any flush point.
    """
    leaders = set()
    for pc, inst in enumerate(code):
        op = inst.op
        if op == M_BC or op == M_BR:
            leaders.add(inst.imm)
            leaders.add(pc + 1)
        elif op in (M_CALL, M_CALLV, M_RET, M_NEW, M_NEWARR):
            leaders.add(pc + 1)
    ranges = []
    n = len(code)
    pc = 0
    while pc < n:
        if not fusible(code[pc]):
            pc += 1
            continue
        end = pc + 1
        while (end < n and end not in leaders and end - pc < MAX_SUPERBLOCK
               and fusible(code[end])):
            end += 1
        stop = end
        if (end < n and end not in leaders
                and code[end].op in (M_BC, M_BR)):
            stop = end + 1
        if stop - pc >= MIN_SUPERBLOCK:
            ranges.append((pc, stop))
        pc = stop
    return ranges


#: Comparison operators of the two-operand / vs-zero BC conditions.
_BC_OPERATORS = {"eq": "==", "ne": "!=", "lt": "<", "ge": ">=",
                 "gt": ">", "le": "<="}


def _bc_condition(inst) -> str:
    """The Python expression of a BC terminator's taken-test."""
    a = f"regs[{inst.rs1}]"
    aux = inst.aux
    if aux == "null":
        return f"{a} is None"
    op = _BC_OPERATORS.get(aux)
    if op is not None:
        if inst.rs2 is not None:
            return f"{a} {op} regs[{inst.rs2}]"
        return f"{a} {op} 0"
    # The reference interpreter treats any unknown condition as
    # "nonnull" (its final else); mirror that.
    return f"{a} is not None"


def _emit_block(out, consts, const_ids, code, start, end, base_eip):
    """Append the source of the fused closure for ``code[start:end]``."""

    def const(obj) -> str:
        key = id(obj)
        name = const_ids.get(key)
        if name is None:
            name = f"K{len(consts)}"
            const_ids[key] = name
            consts.append(obj)
        return name

    insts = [code[pc] for pc in range(start, end)]
    term = insts.pop() if insts[-1].op in (M_BC, M_BR) else None
    has_mem = any(inst.op in _MEM_OPS for inst in insts)
    has_frame = any(inst.op == M_LDF or inst.op == M_STF for inst in insts)
    writes: List[bool] = []
    eips: List[int] = []
    if has_mem:
        # Reserve the const slots for the block's access-metadata
        # tuples now (they are referenced by flush/fault lines) and
        # patch them in once every access has been emitted.
        wslot = len(consts)
        wname = f"K{wslot}"
        consts.append(None)
        eslot = len(consts)
        ename = f"K{eslot}"
        consts.append(None)

    def meta(is_write: bool, eip: int) -> None:
        writes.append(is_write)
        eips.append(eip)

    W = out.append
    W(f"    def _sb_{start}(frame, regs, slots):")
    if has_mem:
        W("        b = []")
        W("        ap = b.append")
        W("        s = 0")
    if has_frame:
        W("        fb = frame.base")

    has_wb = False

    def emit_fault(indent, msg_expr, pc):
        if has_mem:
            W(f"{indent}fault(b, {wname}, {ename}, s, {msg_expr}, {pc})")
        else:
            W(f"{indent}raise GuestError({msg_expr}, method, {pc})")

    def emit_wb_flush(indent, args):
        # Write barriers charge cycles immediately; every pending
        # access — earlier blocks' segments and this block's batch so
        # far — must be simulated first so charge order matches the
        # reference.  (``b`` is never empty here: the barrier's own
        # store was appended just above.)
        nonlocal has_wb
        has_wb = True
        W(f"{indent}pend((b, {wname}, {ename}, s))")
        W(f"{indent}cell[0] += drain()")
        W(f"{indent}s = {len(writes)}")
        W(f"{indent}b = []")
        W(f"{indent}ap = b.append")
        W(f"{indent}wb({args})")

    # Redundancy elimination: track which register each scratch local
    # (``a``/``i``/``o``) currently mirrors, which registers are proven
    # non-null by an earlier check in this block, and whether the
    # current (array, index) pair has already passed its bounds check —
    # so repeated accesses through the same registers skip the reloads
    # and the provably-passing checks.  Eliding a check never changes
    # behavior: it is only elided when the same unmodified register
    # already passed one (which fault message would have fired is then
    # moot), and an array store cannot change ``len(elements)``.  Any
    # write to a register drops every fact about it; div/rem clobbers
    # the ``a`` scratch local.
    a_reg = i_reg = o_reg = None
    e_valid = bounds_ok = False
    nonnull = set()

    def invalidate(rd):
        nonlocal a_reg, i_reg, o_reg, e_valid, bounds_ok
        nonnull.discard(rd)
        if rd == a_reg:
            a_reg = None
            e_valid = bounds_ok = False
        if rd == i_reg:
            i_reg = None
            bounds_ok = False
        if rd == o_reg:
            o_reg = None

    def bind_array(rs1, msg_expr, pc):
        nonlocal a_reg, e_valid, bounds_ok
        if a_reg != rs1:
            W(f"        a = regs[{rs1}]")
            a_reg = rs1
            e_valid = bounds_ok = False
        if rs1 not in nonnull:
            W("        if a is None:")
            emit_fault("            ", msg_expr, pc)
            nonnull.add(rs1)

    def bind_index_and_bounds(rs2, pc):
        nonlocal i_reg, e_valid, bounds_ok
        if i_reg != rs2:
            W(f"        i = regs[{rs2}]")
            i_reg = rs2
            bounds_ok = False
        if not e_valid:
            W("        e = a.elements")
            e_valid = True
        if not bounds_ok:
            W("        if i < 0 or i >= len(e):")
            emit_fault("            ", _BOUNDS_MSG, pc)
            bounds_ok = True

    def bind_object(rs1, msg_expr, pc):
        nonlocal o_reg
        if o_reg != rs1:
            W(f"        o = regs[{rs1}]")
            o_reg = rs1
        if rs1 not in nonnull:
            W("        if o is None:")
            emit_fault("            ", msg_expr, pc)
            nonnull.add(rs1)

    for offset, inst in enumerate(insts):
        pc = start + offset
        eip = base_eip + pc * INSTRUCTION_BYTES
        op = inst.op
        if op == M_MOVI:
            W(f"        regs[{inst.rd}] = {inst.imm!r}")
            invalidate(inst.rd)
            if inst.imm is not None:
                nonnull.add(inst.rd)
        elif op == M_MOV:
            W(f"        regs[{inst.rd}] = regs[{inst.rs1}]")
            known = inst.rs1 in nonnull
            invalidate(inst.rd)
            if known and inst.rd != inst.rs1:
                nonnull.add(inst.rd)
        elif op == M_NOP:
            pass
        elif op == M_NULLCHK:
            if inst.rs1 not in nonnull:
                W(f"        if regs[{inst.rs1}] is None:")
                emit_fault("            ", "'null receiver'", pc)
                nonnull.add(inst.rs1)
        elif op == M_ALU or op == M_ALUI:
            if op == M_ALU:
                a, b = f"regs[{inst.rs1}]", f"regs[{inst.rs2}]"
                shift = f"(regs[{inst.rs2}] & 31)"
            else:
                a, b = f"regs[{inst.rs1}]", repr(inst.imm)
                shift = repr(inst.imm & 31)
            aux = inst.aux
            if aux in _ALU_EXPRS and (op == M_ALU or aux != "neg"):
                W(f"        regs[{inst.rd}] = "
                  + _ALU_EXPRS[aux].format(a=a, b=b))
            elif aux == "neg":
                W(f"        regs[{inst.rd}] = -{a}")
            elif aux == "shl":
                W(f"        regs[{inst.rd}] = "
                  f"(({a} << {shift}) & 0xFFFFFFFF)")
            elif aux == "shr":
                W(f"        regs[{inst.rd}] = {a} >> {shift}")
            else:  # div / rem — replicate the reference's rounding
                W(f"        a = {a}")
                W(f"        v = {b}")
                W("        if v == 0:")
                emit_fault("            ", "'division by zero'", pc)
                W("        q = abs(a) // abs(v)")
                W("        if (a >= 0) != (v >= 0):")
                W("            q = -q")
                if aux == "div":
                    W(f"        regs[{inst.rd}] = q")
                else:
                    W(f"        regs[{inst.rd}] = a - q * v")
                a_reg = None    # ``a`` scratch local clobbered
                e_valid = bounds_ok = False
            invalidate(inst.rd)
            nonnull.add(inst.rd)    # arithmetic yields an int
        elif op == M_LDF:
            meta(False, eip)
            W(f"        ap(fb + {inst.imm * 4})")
            W(f"        regs[{inst.rd}] = slots[{inst.imm}]")
            invalidate(inst.rd)
        elif op == M_STF:
            meta(True, eip)
            W(f"        ap(fb + {inst.imm * 4})")
            W(f"        slots[{inst.imm}] = regs[{inst.rs1}]")
        elif op == M_GETF:
            fld = inst.aux
            bind_object(inst.rs1, "'null getfield'", pc)
            meta(False, eip)
            W(f"        ap(o.address + {fld.offset})")
            W(f"        regs[{inst.rd}] = o.slots[{fld.index}]")
            invalidate(inst.rd)
        elif op == M_PUTF:
            fld = inst.aux
            bind_object(inst.rs1, "'null putfield'", pc)
            meta(True, eip)
            if fld.kind == "ref":
                W(f"        v = regs[{inst.rs2}]")
                W(f"        ap(o.address + {fld.offset})")
                W(f"        o.slots[{fld.index}] = v")
                emit_wb_flush("        ", f"o, {fld.index}, v")
            else:
                W(f"        ap(o.address + {fld.offset})")
                W(f"        o.slots[{fld.index}] = regs[{inst.rs2}]")
        elif op == M_ALOAD:
            bind_array(inst.rs1, "'null array load'", pc)
            bind_index_and_bounds(inst.rs2, pc)
            meta(False, eip)
            W("        ap(a.address + 12 + i * a.esize)")
            W(f"        regs[{inst.rd}] = e[i]")
            invalidate(inst.rd)
        elif op == M_ASTORE:
            bind_array(inst.rs1, "'null array store'", pc)
            bind_index_and_bounds(inst.rs2, pc)
            W(f"        v = regs[{inst.rd}]")
            meta(True, eip)
            W("        ap(a.address + 12 + i * a.esize)")
            W("        e[i] = v")
            # ``a.kind`` is a runtime property; only the ref case has a
            # write barrier (and hence needs the early flush).
            W("        if a.kind == 'ref':")
            emit_wb_flush("            ", "a, i, v")
        elif op == M_LEN:
            bind_array(inst.rs1, "'null arraylength'", pc)
            meta(False, eip)
            W("        ap(a.address + 8)")
            if e_valid:
                W(f"        regs[{inst.rd}] = len(e)")
            else:
                W(f"        regs[{inst.rd}] = len(a.elements)")
            invalidate(inst.rd)
            nonnull.add(inst.rd)    # a length is an int
        elif op == M_GETSTATIC or op == M_PUTSTATIC:
            klass, fld = inst.aux
            kk, kf = const(klass), const(fld)
            ksv = const(klass.static_values)
            # ``static_addr`` stays a runtime call at access-append time:
            # its lazy base assignment depends on first-touch order.
            if op == M_GETSTATIC:
                meta(False, eip)
                W(f"        ap(static_addr({kk}, {kf}))")
                W(f"        regs[{inst.rd}] = {ksv}[{fld.index}]")
                invalidate(inst.rd)
            else:
                meta(True, eip)
                W(f"        ap(static_addr({kk}, {kf}))")
                W(f"        {ksv}[{fld.index}] = regs[{inst.rs1}]")
        else:  # pragma: no cover — superblock_ranges only admits the above
            raise AssertionError(f"unfusible op {op} in superblock")

    if has_mem:
        consts[wslot] = tuple(writes)
        consts[eslot] = tuple(eips)
        # The batch is not simulated here: it joins the CPU's pending
        # segment list, drained once per quantum (or at the next
        # per-instruction fallback, write barrier, or fault) so the
        # drain's setup cost amortizes over many chained blocks.
        if has_wb:
            # A write barrier may have emptied the batch mid-block.
            W("        if b:")
            W(f"            pend((b, {wname}, {ename}, s))")
        else:
            W(f"        pend((b, {wname}, {ename}, s))")
    # A BC/BR terminator executes inside the closure: the return value
    # IS the taken pc, so the driver skips a whole dispatch per block.
    if term is None:
        W(f"        return {end}")
    elif term.op == M_BR:
        W(f"        return {term.imm}")
    else:
        W(f"        return {term.imm} if {_bc_condition(term)} "
          f"else {end}")


def superblock_source(cm) -> tuple:
    """The factory source for all of ``cm``'s superblocks.

    Returns ``(source, consts, ranges)``; ``None`` when the method has
    no fusible run.  The factory binds the CPU-specific services once
    and returns the block closures in ``ranges`` order.
    """
    ranges = superblock_ranges(cm.code)
    if not ranges:
        return None
    consts: List[object] = []
    const_ids: Dict[int, str] = {}
    body: List[str] = []
    for start, end in ranges:
        _emit_block(body, consts, const_ids, cm.code, start, end,
                    cm.code_addr)
    lines = ["def _factory(cell, pend, drain, wb, static_addr, "
             "GuestError, method, consts):"]
    if consts:
        names = ", ".join(f"K{i}" for i in range(len(consts)))
        lines.append(f"    ({names},) = consts")
    lines.append("    def fault(b, writes, eips, s, message, pc):")
    lines.append("        if b:")
    lines.append("            pend((b, writes, eips, s))")
    lines.append("        cell[0] += drain()")
    lines.append("        raise GuestError(message, method, pc)")
    lines.extend(body)
    names = ", ".join(f"_sb_{start}" for start, _ in ranges)
    lines.append(f"    return [{names}]")
    return "\n".join(lines) + "\n", consts, ranges


def compile_superblocks(cm, cpu) -> "List | None":
    """Build the per-pc superblock table for ``cm`` bound to ``cpu``."""
    built = superblock_source(cm)
    blocks: List = [None] * len(cm.code)
    if built is None:
        return blocks
    source, consts, ranges = built
    filename = f"<superblock {cm.method.qualified_name}>"
    namespace: Dict[str, object] = {}
    exec(compile(source, filename, "exec"), namespace)
    closures = namespace["_factory"](
        cpu._cyc_cell, cpu._pending.append, cpu.drain_accesses,
        cpu.runtime.plan.write_barrier, cpu.runtime.static_addr,
        GuestError, cm.method, tuple(consts))
    for (start, end), closure in zip(ranges, closures):
        blocks[start] = (end - start, closure)
    return blocks
