"""One-time translation of compiled guest code into Python closures.

The reference interpreter in :mod:`repro.hw.cpu` pays a ~20-way
``if/elif`` dispatch chain — plus string compares on ``inst.aux`` and
attribute loads on the :class:`~repro.hw.isa.MInst` — for every
simulated instruction.  All of that work depends only on values that
are *constant once a method is compiled*: the opcode, the register
numbers, the field offset, the branch target, the ALU operation, and
the instruction's EIP (``code_addr + pc * 4``).

This module resolves all of it exactly once per
:class:`~repro.jit.codecache.CompiledMethod`: :func:`translate` maps
each instruction to a specialized closure (a "template" instantiated
with the operands baked in as default arguments, which CPython loads as
fast locals), and execution becomes threaded dispatch —
``pc = handlers[pc](frame, regs, slots)`` — with zero per-step operand
decoding.  It is a template JIT for the simulator's own hot loop, the
same once-against-the-profile-stable-operands trade the paper's online
optimizations make for the guest program.

Bit-identical contract
----------------------
The translated code must be indistinguishable from the reference
interpreter in every observable: cycle and instruction counts at every
flush point, the order and addresses of all memory accesses (and hence
cache state, event counters, and PEBS samples), scheduler-poll timing,
GC-point ``frame.pc`` anchoring, profiler callbacks, and the text of
guest faults.  Three conventions make that cheap to maintain:

* Every instruction costs exactly ``instruction_cost``, so handlers do
  not account base cycles at all — the driver reconstructs them at
  flush points as ``n * instruction_cost`` from its local instruction
  count.  Only memory latencies and allocation costs flow through a
  shared one-slot accumulator (``cpu._cyc_cell``).
* Handlers return the next pc.  Control transfers the driver must
  observe (because they flush counts or switch frames) return sentinels
  instead: :data:`CALL_SENT` / :data:`RET_SENT` after stashing their
  operands on the CPU, and allocations return ``~pc`` so the driver can
  flush *before* running the second phase from :attr:`Translation.phase2`
  (collection may only happen there).
* Anything that is **not** constant after compilation stays a runtime
  lookup, exactly as in the reference: ``arr.esize`` / ``arr.kind``,
  vtable dispatch through the receiver, and ``static_addr`` (whose
  lazy base assignment depends on first-touch order).

Translations close over the CPU's bound services, so they are cached
per ``(CompiledMethod, CPU)`` and rebuilt if either changes; the code
cache drops them when a method is recompiled (see
:meth:`~repro.jit.codecache.CodeCache.note_replaced`).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.hw.isa import (
    GuestError, INSTRUCTION_BYTES,
    M_ALOAD, M_ALU, M_ALUI, M_ASTORE, M_BC, M_BR, M_CALL, M_CALLV,
    M_GETF, M_GETSTATIC, M_LDF, M_LEN, M_MOV, M_MOVI, M_NEW, M_NEWARR,
    M_NOP, M_NULLCHK, M_PUTF, M_PUTSTATIC, M_RET, M_STF,
)

#: Sentinel returned by call handlers (target/args stashed on the CPU).
CALL_SENT = -(1 << 30)
#: Sentinel returned by return handlers (value stashed on the CPU).
RET_SENT = CALL_SENT - 1
# Allocations return ``~pc`` (always in [-len(code), -1], far from the
# sentinels above) so the driver can recover the pc with another ``~``.

#: A translated instruction: ``(frame, regs, slots) -> next pc``.
Handler = Callable[..., int]


class Translation:
    """The compiled form of one method for one CPU."""

    __slots__ = ("cpu", "handlers", "phase2")

    def __init__(self, cpu, handlers: List[Handler],
                 phase2: Dict[int, Callable]):
        self.cpu = cpu
        self.handlers = handlers
        self.phase2 = phase2


def translation_for(cm, cpu) -> Translation:
    """The cached translation of ``cm``, built on first use."""
    tr = cm.translation
    if tr is None or tr.cpu is not cpu:
        tr = translate(cm, cpu)
        cm.translation = tr
    return tr


# ---------------------------------------------------------------------------
# Handler templates.  Operands arrive as default arguments so the inner
# function reads them as fast locals; the bodies replicate the reference
# interpreter's per-opcode semantics (including fault messages and the
# order of null/bounds checks relative to memory accesses) exactly.
# ---------------------------------------------------------------------------

def _h_movi(rd, imm, npc):
    def h(frame, regs, slots, rd=rd, imm=imm, npc=npc):
        regs[rd] = imm
        return npc
    return h


def _h_mov(rd, rs1, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, npc=npc):
        regs[rd] = regs[rs1]
        return npc
    return h


def _h_nop(npc):
    def h(frame, regs, slots, npc=npc):
        return npc
    return h


def _h_bad(message, method, pc):
    def h(frame, regs, slots, message=message, method=method, pc=pc):
        raise GuestError(message, method, pc)
    return h


# -- ALU (register/register) ------------------------------------------------

def _h_alu_add(rd, rs1, rs2, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, rs2=rs2, npc=npc):
        regs[rd] = regs[rs1] + regs[rs2]
        return npc
    return h


def _h_alu_sub(rd, rs1, rs2, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, rs2=rs2, npc=npc):
        regs[rd] = regs[rs1] - regs[rs2]
        return npc
    return h


def _h_alu_mul(rd, rs1, rs2, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, rs2=rs2, npc=npc):
        regs[rd] = regs[rs1] * regs[rs2]
        return npc
    return h


def _h_alu_and(rd, rs1, rs2, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, rs2=rs2, npc=npc):
        regs[rd] = regs[rs1] & regs[rs2]
        return npc
    return h


def _h_alu_xor(rd, rs1, rs2, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, rs2=rs2, npc=npc):
        regs[rd] = regs[rs1] ^ regs[rs2]
        return npc
    return h


def _h_alu_or(rd, rs1, rs2, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, rs2=rs2, npc=npc):
        regs[rd] = regs[rs1] | regs[rs2]
        return npc
    return h


def _h_alu_shl(rd, rs1, rs2, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, rs2=rs2, npc=npc):
        regs[rd] = (regs[rs1] << (regs[rs2] & 31)) & 0xFFFFFFFF
        return npc
    return h


def _h_alu_shr(rd, rs1, rs2, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, rs2=rs2, npc=npc):
        regs[rd] = regs[rs1] >> (regs[rs2] & 31)
        return npc
    return h


def _h_alu_divrem(rd, rs1, rs2, npc, method, pc, rem):
    def h(frame, regs, slots, rd=rd, rs1=rs1, rs2=rs2, npc=npc,
          method=method, pc=pc, rem=rem):
        a = regs[rs1]
        b = regs[rs2]
        if b == 0:
            raise GuestError("division by zero", method, pc)
        q = abs(a) // abs(b)
        if (a >= 0) != (b >= 0):
            q = -q
        regs[rd] = a - q * b if rem else q
        return npc
    return h


_ALU_FACTORIES = {
    "add": _h_alu_add, "sub": _h_alu_sub, "mul": _h_alu_mul,
    "and": _h_alu_and, "xor": _h_alu_xor, "or": _h_alu_or,
    "shl": _h_alu_shl, "shr": _h_alu_shr,
}


# -- ALU (register/immediate) -----------------------------------------------

def _h_alui_add(rd, rs1, imm, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, imm=imm, npc=npc):
        regs[rd] = regs[rs1] + imm
        return npc
    return h


def _h_alui_sub(rd, rs1, imm, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, imm=imm, npc=npc):
        regs[rd] = regs[rs1] - imm
        return npc
    return h


def _h_alui_mul(rd, rs1, imm, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, imm=imm, npc=npc):
        regs[rd] = regs[rs1] * imm
        return npc
    return h


def _h_alui_and(rd, rs1, imm, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, imm=imm, npc=npc):
        regs[rd] = regs[rs1] & imm
        return npc
    return h


def _h_alui_shl(rd, rs1, imm, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, sh=imm & 31, npc=npc):
        regs[rd] = (regs[rs1] << sh) & 0xFFFFFFFF
        return npc
    return h


def _h_alui_shr(rd, rs1, imm, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, sh=imm & 31, npc=npc):
        regs[rd] = regs[rs1] >> sh
        return npc
    return h


def _h_alui_neg(rd, rs1, imm, npc):
    def h(frame, regs, slots, rd=rd, rs1=rs1, npc=npc):
        regs[rd] = -regs[rs1]
        return npc
    return h


def _h_alui_divrem(rd, rs1, imm, npc, method, pc, rem):
    def h(frame, regs, slots, rd=rd, rs1=rs1, b=imm, npc=npc,
          method=method, pc=pc, rem=rem):
        a = regs[rs1]
        if b == 0:
            raise GuestError("division by zero", method, pc)
        q = abs(a) // abs(b)
        if (a >= 0) != (b >= 0):
            q = -q
        regs[rd] = a - q * b if rem else q
        return npc
    return h


_ALUI_FACTORIES = {
    "add": _h_alui_add, "sub": _h_alui_sub, "mul": _h_alui_mul,
    "and": _h_alui_and, "shl": _h_alui_shl, "shr": _h_alui_shr,
    "neg": _h_alui_neg,
}


# -- branches ---------------------------------------------------------------

def _h_bc_eq(rs1, rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, rs2=rs2, timm=timm, npc=npc):
        return timm if regs[rs1] == regs[rs2] else npc
    return h


def _h_bc_ne(rs1, rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, rs2=rs2, timm=timm, npc=npc):
        return timm if regs[rs1] != regs[rs2] else npc
    return h


def _h_bc_lt(rs1, rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, rs2=rs2, timm=timm, npc=npc):
        return timm if regs[rs1] < regs[rs2] else npc
    return h


def _h_bc_ge(rs1, rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, rs2=rs2, timm=timm, npc=npc):
        return timm if regs[rs1] >= regs[rs2] else npc
    return h


def _h_bc_gt(rs1, rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, rs2=rs2, timm=timm, npc=npc):
        return timm if regs[rs1] > regs[rs2] else npc
    return h


def _h_bc_le(rs1, rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, rs2=rs2, timm=timm, npc=npc):
        return timm if regs[rs1] <= regs[rs2] else npc
    return h


def _h_bc_eq0(rs1, _rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, timm=timm, npc=npc):
        return timm if regs[rs1] == 0 else npc
    return h


def _h_bc_ne0(rs1, _rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, timm=timm, npc=npc):
        return timm if regs[rs1] != 0 else npc
    return h


def _h_bc_lt0(rs1, _rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, timm=timm, npc=npc):
        return timm if regs[rs1] < 0 else npc
    return h


def _h_bc_ge0(rs1, _rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, timm=timm, npc=npc):
        return timm if regs[rs1] >= 0 else npc
    return h


def _h_bc_gt0(rs1, _rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, timm=timm, npc=npc):
        return timm if regs[rs1] > 0 else npc
    return h


def _h_bc_le0(rs1, _rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, timm=timm, npc=npc):
        return timm if regs[rs1] <= 0 else npc
    return h


def _h_bc_null(rs1, _rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, timm=timm, npc=npc):
        return timm if regs[rs1] is None else npc
    return h


def _h_bc_nonnull(rs1, _rs2, timm, npc):
    def h(frame, regs, slots, rs1=rs1, timm=timm, npc=npc):
        return timm if regs[rs1] is not None else npc
    return h


_BC_FACTORIES = {
    ("eq", True): _h_bc_eq, ("ne", True): _h_bc_ne,
    ("lt", True): _h_bc_lt, ("ge", True): _h_bc_ge,
    ("gt", True): _h_bc_gt, ("le", True): _h_bc_le,
    ("eq", False): _h_bc_eq0, ("ne", False): _h_bc_ne0,
    ("lt", False): _h_bc_lt0, ("ge", False): _h_bc_ge0,
    ("gt", False): _h_bc_gt0, ("le", False): _h_bc_le0,
    ("null", True): _h_bc_null, ("null", False): _h_bc_null,
    ("nonnull", True): _h_bc_nonnull, ("nonnull", False): _h_bc_nonnull,
}


def _h_br(timm):
    def h(frame, regs, slots, timm=timm):
        return timm
    return h


# -- memory traffic ---------------------------------------------------------

def _h_getf(cell, mem_access, rd, rs1, off, fi, eip, method, pc, npc):
    def h(frame, regs, slots, cell=cell, mem_access=mem_access, rd=rd,
          rs1=rs1, off=off, fi=fi, eip=eip, method=method, pc=pc, npc=npc):
        obj = regs[rs1]
        if obj is None:
            raise GuestError("null getfield", method, pc)
        cell[0] += mem_access(obj.address + off, False, eip)
        regs[rd] = obj.slots[fi]
        return npc
    return h


def _h_putf(cell, mem_access, rs1, rs2, off, fi, eip, method, pc, npc):
    def h(frame, regs, slots, cell=cell, mem_access=mem_access, rs1=rs1,
          rs2=rs2, off=off, fi=fi, eip=eip, method=method, pc=pc, npc=npc):
        obj = regs[rs1]
        if obj is None:
            raise GuestError("null putfield", method, pc)
        value = regs[rs2]
        cell[0] += mem_access(obj.address + off, True, eip)
        obj.slots[fi] = value
        return npc
    return h


def _h_putf_ref(cell, mem_access, wb, rs1, rs2, off, fi, eip, method, pc,
                npc):
    def h(frame, regs, slots, cell=cell, mem_access=mem_access, wb=wb,
          rs1=rs1, rs2=rs2, off=off, fi=fi, eip=eip, method=method, pc=pc,
          npc=npc):
        obj = regs[rs1]
        if obj is None:
            raise GuestError("null putfield", method, pc)
        value = regs[rs2]
        cell[0] += mem_access(obj.address + off, True, eip)
        obj.slots[fi] = value
        wb(obj, fi, value)
        return npc
    return h


def _h_aload(cell, mem_access, rd, rs1, rs2, eip, method, pc, npc):
    def h(frame, regs, slots, cell=cell, mem_access=mem_access, rd=rd,
          rs1=rs1, rs2=rs2, eip=eip, method=method, pc=pc, npc=npc):
        arr = regs[rs1]
        if arr is None:
            raise GuestError("null array load", method, pc)
        index = regs[rs2]
        elems = arr.elements
        if index < 0 or index >= len(elems):
            raise GuestError(
                f"index {index} out of bounds [0,{len(elems)})", method, pc)
        cell[0] += mem_access(arr.address + 12 + index * arr.esize,
                              False, eip)
        regs[rd] = elems[index]
        return npc
    return h


def _h_astore(cell, mem_access, wb, rd, rs1, rs2, eip, method, pc, npc):
    def h(frame, regs, slots, cell=cell, mem_access=mem_access, wb=wb,
          rd=rd, rs1=rs1, rs2=rs2, eip=eip, method=method, pc=pc, npc=npc):
        arr = regs[rs1]
        if arr is None:
            raise GuestError("null array store", method, pc)
        index = regs[rs2]
        elems = arr.elements
        if index < 0 or index >= len(elems):
            raise GuestError(
                f"index {index} out of bounds [0,{len(elems)})", method, pc)
        value = regs[rd]
        cell[0] += mem_access(arr.address + 12 + index * arr.esize,
                              True, eip)
        elems[index] = value
        # ``arr.kind`` is a runtime property of the array, not of the
        # instruction: keep the reference interpreter's check.
        if arr.kind == "ref":
            wb(arr, index, value)
        return npc
    return h


def _h_len(cell, mem_access, rd, rs1, eip, method, pc, npc):
    def h(frame, regs, slots, cell=cell, mem_access=mem_access, rd=rd,
          rs1=rs1, eip=eip, method=method, pc=pc, npc=npc):
        arr = regs[rs1]
        if arr is None:
            raise GuestError("null arraylength", method, pc)
        cell[0] += mem_access(arr.address + 8, False, eip)
        regs[rd] = len(arr.elements)
        return npc
    return h


def _h_ldf(cell, mem_access, rd, off, si, eip, npc):
    def h(frame, regs, slots, cell=cell, mem_access=mem_access, rd=rd,
          off=off, si=si, eip=eip, npc=npc):
        cell[0] += mem_access(frame.base + off, False, eip)
        regs[rd] = slots[si]
        return npc
    return h


def _h_stf(cell, mem_access, rs1, off, si, eip, npc):
    def h(frame, regs, slots, cell=cell, mem_access=mem_access, rs1=rs1,
          off=off, si=si, eip=eip, npc=npc):
        cell[0] += mem_access(frame.base + off, True, eip)
        slots[si] = regs[rs1]
        return npc
    return h


def _h_getstatic(cell, mem_access, static_addr, klass, fld, sv, fi, rd,
                 eip, npc):
    def h(frame, regs, slots, cell=cell, mem_access=mem_access,
          static_addr=static_addr, klass=klass, fld=fld, sv=sv, fi=fi,
          rd=rd, eip=eip, npc=npc):
        cell[0] += mem_access(static_addr(klass, fld), False, eip)
        regs[rd] = sv[fi]
        return npc
    return h


def _h_putstatic(cell, mem_access, static_addr, klass, fld, sv, fi, rs1,
                 eip, npc):
    def h(frame, regs, slots, cell=cell, mem_access=mem_access,
          static_addr=static_addr, klass=klass, fld=fld, sv=sv, fi=fi,
          rs1=rs1, eip=eip, npc=npc):
        cell[0] += mem_access(static_addr(klass, fld), True, eip)
        sv[fi] = regs[rs1]
        return npc
    return h


# -- calls, returns, allocation, checks -------------------------------------

def _h_call(cpu, target, argregs, pc):
    n_args = len(argregs)
    if n_args == 0:
        def h(frame, regs, slots, cpu=cpu, target=target, pc=pc):
            frame.pc = pc
            cpu._call_target = target
            cpu._call_args = ()
            return CALL_SENT
    elif n_args == 1:
        def h(frame, regs, slots, cpu=cpu, target=target, pc=pc,
              a0=argregs[0]):
            frame.pc = pc
            cpu._call_target = target
            cpu._call_args = (regs[a0],)
            return CALL_SENT
    elif n_args == 2:
        def h(frame, regs, slots, cpu=cpu, target=target, pc=pc,
              a0=argregs[0], a1=argregs[1]):
            frame.pc = pc
            cpu._call_target = target
            cpu._call_args = (regs[a0], regs[a1])
            return CALL_SENT
    elif n_args == 3:
        def h(frame, regs, slots, cpu=cpu, target=target, pc=pc,
              a0=argregs[0], a1=argregs[1], a2=argregs[2]):
            frame.pc = pc
            cpu._call_target = target
            cpu._call_args = (regs[a0], regs[a1], regs[a2])
            return CALL_SENT
    else:
        def h(frame, regs, slots, cpu=cpu, target=target, pc=pc,
              argregs=argregs):
            frame.pc = pc
            cpu._call_target = target
            cpu._call_args = tuple([regs[r] for r in argregs])
            return CALL_SENT
    return h


def _h_callv(cell, mem_access, cpu, rs1, slot, argregs, eip, method, pc):
    def h(frame, regs, slots, cell=cell, mem_access=mem_access, cpu=cpu,
          rs1=rs1, slot=slot, argregs=argregs, eip=eip, method=method,
          pc=pc):
        frame.pc = pc
        receiver = regs[rs1]
        if receiver is None:
            raise GuestError("null receiver", method, pc)
        # Virtual dispatch reads the object header (a heap access the
        # interest analysis also tracks).
        cell[0] += mem_access(receiver.address, False, eip)
        cpu._call_target = receiver.class_info.vtable[slot]
        cpu._call_args = tuple([regs[r] for r in argregs])
        return CALL_SENT
    return h


def _h_ret(cpu, rs1):
    if rs1 is None:
        def h(frame, regs, slots, cpu=cpu):
            cpu._ret_value = None
            return RET_SENT
    else:
        def h(frame, regs, slots, cpu=cpu, rs1=rs1):
            cpu._ret_value = regs[rs1]
            return RET_SENT
    return h


def _h_new(pc):
    sent = ~pc
    def h(frame, regs, slots, pc=pc, sent=sent):
        frame.pc = pc  # GC point
        return sent
    return h


def _p2_new(alloc_object, klass, rd, cost):
    def p2(regs, alloc_object=alloc_object, klass=klass, rd=rd, cost=cost):
        regs[rd] = alloc_object(klass)
        return cost
    return p2


def _h_newarr(rs1, method, pc):
    sent = ~pc
    def h(frame, regs, slots, rs1=rs1, method=method, pc=pc, sent=sent):
        frame.pc = pc  # GC point
        if regs[rs1] < 0:
            raise GuestError("negative array size", method, pc)
        return sent
    return h


def _p2_newarr(alloc_array, kind, rd, rs1, cost):
    def p2(regs, alloc_array=alloc_array, kind=kind, rd=rd, rs1=rs1,
           cost=cost):
        regs[rd] = alloc_array(kind, regs[rs1])
        return cost
    return p2


def _h_nullchk(rs1, method, pc, npc):
    def h(frame, regs, slots, rs1=rs1, method=method, pc=pc, npc=npc):
        if regs[rs1] is None:
            raise GuestError("null receiver", method, pc)
        return npc
    return h


# ---------------------------------------------------------------------------
# The translator.
# ---------------------------------------------------------------------------

def translate(cm, cpu) -> Translation:
    """Compile ``cm``'s instruction list into closures bound to ``cpu``."""
    mem_access = cpu.mem.access
    runtime = cpu.runtime
    plan = runtime.plan
    static_addr = runtime.static_addr
    wb = plan.write_barrier
    alloc_object = plan.alloc_object
    alloc_array = plan.alloc_array
    alloc_cost = plan.config.alloc_cost
    cell = cpu._cyc_cell
    method = cm.method
    base_eip = cm.code_addr

    handlers: List[Handler] = []
    phase2: Dict[int, Callable] = {}
    for pc, inst in enumerate(cm.code):
        op = inst.op
        eip = base_eip + pc * INSTRUCTION_BYTES
        npc = pc + 1
        if op == M_GETF:
            fld = inst.aux
            h = _h_getf(cell, mem_access, inst.rd, inst.rs1, fld.offset,
                        fld.index, eip, method, pc, npc)
        elif op == M_ALOAD:
            h = _h_aload(cell, mem_access, inst.rd, inst.rs1, inst.rs2,
                         eip, method, pc, npc)
        elif op == M_ALU:
            aux = inst.aux
            factory = _ALU_FACTORIES.get(aux)
            if factory is not None:
                h = factory(inst.rd, inst.rs1, inst.rs2, npc)
            elif aux == "div" or aux == "rem":
                h = _h_alu_divrem(inst.rd, inst.rs1, inst.rs2, npc,
                                  method, pc, aux == "rem")
            else:
                h = _h_bad(f"bad alu op {aux}", method, pc)
        elif op == M_BC:
            factory = _BC_FACTORIES.get((inst.aux, inst.rs2 is not None))
            if factory is None:
                # The reference interpreter treats any unknown condition
                # as "nonnull" (its final else); mirror that.
                factory = _h_bc_nonnull
            h = factory(inst.rs1, inst.rs2, inst.imm, npc)
        elif op == M_ALUI:
            aux = inst.aux
            factory = _ALUI_FACTORIES.get(aux)
            if factory is not None:
                h = factory(inst.rd, inst.rs1, inst.imm, npc)
            elif aux == "div" or aux == "rem":
                h = _h_alui_divrem(inst.rd, inst.rs1, inst.imm, npc,
                                   method, pc, aux == "rem")
            else:
                h = _h_bad(f"bad alui op {aux}", method, pc)
        elif op == M_MOVI:
            h = _h_movi(inst.rd, inst.imm, npc)
        elif op == M_MOV:
            h = _h_mov(inst.rd, inst.rs1, npc)
        elif op == M_LDF:
            h = _h_ldf(cell, mem_access, inst.rd, inst.imm * 4, inst.imm,
                       eip, npc)
        elif op == M_STF:
            h = _h_stf(cell, mem_access, inst.rs1, inst.imm * 4, inst.imm,
                       eip, npc)
        elif op == M_ASTORE:
            h = _h_astore(cell, mem_access, wb, inst.rd, inst.rs1,
                          inst.rs2, eip, method, pc, npc)
        elif op == M_PUTF:
            fld = inst.aux
            if fld.kind == "ref":
                h = _h_putf_ref(cell, mem_access, wb, inst.rs1, inst.rs2,
                                fld.offset, fld.index, eip, method, pc, npc)
            else:
                h = _h_putf(cell, mem_access, inst.rs1, inst.rs2,
                            fld.offset, fld.index, eip, method, pc, npc)
        elif op == M_BR:
            h = _h_br(inst.imm)
        elif op == M_LEN:
            h = _h_len(cell, mem_access, inst.rd, inst.rs1, eip, method,
                       pc, npc)
        elif op == M_CALL:
            h = _h_call(cpu, inst.aux, tuple(inst.imm), pc)
        elif op == M_CALLV:
            h = _h_callv(cell, mem_access, cpu, inst.rs1, inst.aux[1],
                         tuple(inst.imm), eip, method, pc)
        elif op == M_RET:
            h = _h_ret(cpu, inst.rs1)
        elif op == M_NEW:
            h = _h_new(pc)
            phase2[pc] = _p2_new(alloc_object, inst.aux, inst.rd,
                                 alloc_cost)
        elif op == M_NEWARR:
            h = _h_newarr(inst.rs1, method, pc)
            phase2[pc] = _p2_newarr(alloc_array, inst.aux, inst.rd,
                                    inst.rs1, alloc_cost)
        elif op == M_GETSTATIC:
            klass, fld = inst.aux
            h = _h_getstatic(cell, mem_access, static_addr, klass, fld,
                             klass.static_values, fld.index, inst.rd,
                             eip, npc)
        elif op == M_PUTSTATIC:
            klass, fld = inst.aux
            h = _h_putstatic(cell, mem_access, static_addr, klass, fld,
                             klass.static_values, fld.index, inst.rs1,
                             eip, npc)
        elif op == M_NULLCHK:
            h = _h_nullchk(inst.rs1, method, pc, npc)
        elif op == M_NOP:
            h = _h_nop(npc)
        else:
            h = _h_bad(f"illegal opcode {op}", method, pc)
        handlers.append(h)
    return Translation(cpu, handlers, phase2)
