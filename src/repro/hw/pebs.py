"""Precise event-based sampling (PEBS) unit.

Models the P4 mechanism of sections 3.1/4.1:

* an interval counter is armed with the sampling interval *n*; every
  *n*-th occurrence of the monitored event is sampled,
* the low bits of the reset value are randomized to avoid measuring
  biased results "by sampling at the same locations over and over"
  (section 6.1; 8 bits in the paper's configuration),
* a microcode routine saves the CPU state (40 bytes: EIP + registers)
  into a debug-store (DS) buffer supplied by the OS — we charge its cost
  in cycles to the running program,
* an interrupt is generated only when the buffer is filled to a
  specified watermark; the handler (the perfmon kernel module) drains it.

Only one event can be measured at a time, enforced here as on the P4.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from repro.core.config import PEBSConfig
from repro.hw.events import validate_event


class Sample:
    """One 40-byte PEBS record: the EIP plus the register contents.

    The paper analyzes only the EIP ("at the moment we do not monitor the
    data register contents"), so registers are carried as an opaque tuple.
    """

    __slots__ = ("eip", "regs")

    def __init__(self, eip: int, regs: tuple = ()):
        self.eip = eip
        self.regs = regs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sample(eip={self.eip:#x})"


class PEBSUnit:
    """The sampling hardware.

    Parameters
    ----------
    config:
        Buffer geometry and per-sample/per-interrupt cycle costs.
    cost_sink:
        Called with a cycle count whenever the unit charges time to the
        executing program (microcode save, interrupt delivery).
    interrupt_handler:
        The kernel module's PMU interrupt handler.  Receives the drained
        DS-buffer contents when the watermark is reached.
    rng:
        Source of the interval randomization.
    """

    def __init__(
        self,
        config: PEBSConfig,
        cost_sink: Callable[[int], None],
        interrupt_handler: Callable[[List[Sample]], None],
        rng: Optional[random.Random] = None,
    ):
        self.config = config
        self.cost_sink = cost_sink
        self.interrupt_handler = interrupt_handler
        self.rng = rng if rng is not None else random.Random(0)
        self.event: Optional[str] = None
        self.interval = 0
        self._countdown = 0
        self._ds_buffer: List[Sample] = []
        self._watermark = max(1, int(config.ds_capacity * config.watermark))
        self.enabled = False
        # Lifetime statistics.
        self.samples_taken = 0
        self.interrupts_raised = 0
        self.samples_dropped = 0
        # Reseed bookkeeping: how many jitter values the RNG has
        # served, and the live countdown's draw parameters.  Lets
        # :meth:`reseed` decide whether a snapshotted prefix is still
        # seed-invariant (see repro.harness.runner.measure).
        self.rng_draws = 0
        self._countdown_start = 0
        self._countdown_interval = 0

    # -- configuration --------------------------------------------------------

    def configure(self, event: str, interval: int) -> None:
        """Arm the unit for ``event`` with the given sampling interval."""
        if interval < 1:
            raise ValueError("sampling interval must be >= 1")
        self.event = validate_event(event, pebs=True)
        self.interval = interval
        self._countdown = self._next_countdown()
        self.enabled = True

    def set_interval(self, interval: int) -> None:
        """Change the sampling interval (used by the adaptive "auto" mode)."""
        if interval < 1:
            raise ValueError("sampling interval must be >= 1")
        self.interval = interval
        if self._countdown > interval:
            self._countdown = self._next_countdown()

    def stop(self) -> None:
        self.enabled = False

    def _next_countdown(self) -> int:
        """Interval with randomized low bits (mean-preserving jitter).

        The number of randomized bits is capped so the jitter stays well
        below the (scaled) interval; with the paper's unscaled 25K..100K
        intervals the full 8 bits are used.  With ``randomize_bits = 0``
        the interval is exact — which exposes the aliasing bias the
        randomization exists to prevent ("this should prevent us from
        measuring biased results by sampling at the same locations over
        and over", section 6.1); see the bias tests/ablation.
        """
        if self.config.randomize_bits <= 0:
            self._countdown_start = self.interval
            self._countdown_interval = self.interval
            return self.interval
        bits = min(self.config.randomize_bits,
                   max(1, self.interval.bit_length() - 3))
        jitter = self.rng.getrandbits(bits) - (1 << (bits - 1))
        self.rng_draws += 1
        value = max(1, self.interval + jitter)
        self._countdown_start = value
        self._countdown_interval = self.interval
        return value

    def reseed(self, rng: random.Random) -> bool:
        """Swap in a fresh jitter RNG mid-run, before any sample.

        Used by the harness to turn one snapshotted warmup prefix into
        the prefix of a *different-seeded* run.  The prefix is seed-
        invariant — identical to what the new seed's unbroken run would
        have simulated — exactly when the old seed has not yet been
        *observable*: no sample taken or dropped, at most the single
        countdown drawn at :meth:`configure` time, and the new seed's
        first countdown not yet expired at the current event count.
        Returns False (leaving the unit untouched) when the invariant
        does not hold; callers must then fall back to a full run.
        """
        if self.config.randomize_bits <= 0:
            # No jitter: the event stream never consults the RNG at
            # all, so every seed simulates the same run.
            self.rng = rng
            return True
        if self.rng_draws > 1 or self.samples_taken or self.samples_dropped:
            return False
        if self.rng_draws == 0:
            self.rng = rng
            return True
        # Replay the one configure-time draw against the new stream.
        interval = self._countdown_interval
        bits = min(self.config.randomize_bits,
                   max(1, interval.bit_length() - 3))
        jitter = rng.getrandbits(bits) - (1 << (bits - 1))
        fresh = max(1, interval + jitter)
        consumed = self._countdown_start - self._countdown
        remaining = fresh - consumed
        if remaining <= 0:
            # The new seed's run would already have sampled inside the
            # shared prefix — the prefix is not reusable for it.
            return False
        self.rng = rng
        self._countdown_start = fresh
        self._countdown = remaining
        return True

    # -- the event path --------------------------------------------------------

    def on_event(self, eip: int) -> None:
        """Called by the memory system on each occurrence of the armed event."""
        if not self.enabled:
            return
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self._next_countdown()
        # Microcode save routine: store the CPU state into the DS area.
        self.cost_sink(self.config.microcode_cost)
        if len(self._ds_buffer) >= self.config.ds_capacity:
            # Buffer overrun: the sample is lost.  This only happens when
            # the interrupt handler cannot keep up.
            self.samples_dropped += 1
            return
        self._ds_buffer.append(Sample(eip))
        self.samples_taken += 1
        if len(self._ds_buffer) >= self._watermark:
            self._raise_interrupt()

    def _raise_interrupt(self) -> None:
        self.interrupts_raised += 1
        batch = self._ds_buffer
        self._ds_buffer = []
        self.cost_sink(self.config.interrupt_cost)
        self.cost_sink(self.config.kernel_copy_cost * len(batch))
        self.interrupt_handler(batch)

    def flush(self) -> None:
        """Drain a partially filled DS buffer (used on session teardown and
        by the kernel module's explicit read path)."""
        if self._ds_buffer:
            self._raise_interrupt()

    def drain(self) -> List[Sample]:
        """Read-side drain: hand pending samples to the caller without an
        interrupt (the perfmon read path), charging only the copy cost."""
        batch = self._ds_buffer
        if not batch:
            return []
        self._ds_buffer = []
        self.cost_sink(self.config.kernel_copy_cost * len(batch))
        return batch

    @property
    def pending(self) -> int:
        """Samples sitting in the DS area, not yet delivered to the kernel."""
        return len(self._ds_buffer)
