"""Run provenance: where a result came from, pinned to the record.

A :class:`~repro.harness.record.RunRecord` is a pure function of the
simulator's code and its :class:`~repro.harness.runner.RunSpec`, so two
records can only legitimately differ when one of those inputs differs.
The provenance manifest embeds exactly those inputs — code version,
spec (and its cache key), seed, the resolved fastpath knob, and the
record schema — so a record on disk is self-explaining: ``repro diff``
can tell "same experiment, different code" from "same code, different
seed" without access to the processes that produced either file.

The manifest is deliberately free of wall-clock timestamps, hostnames,
and process ids: identical runs must produce byte-identical manifests,
or the disk cache's "cached == recomputed" equality would break.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.core.config import fastpath_enabled
from repro.harness import diskcache
from repro.harness.record import SCHEMA_VERSION

#: Bump when the manifest layout changes.
MANIFEST_VERSION = 1


def manifest(spec, fastpath: "bool | None" = None) -> dict:
    """The provenance manifest for one run of ``spec``.

    ``fastpath`` is the knob the run actually used (``None`` resolves
    the environment default, the same way :func:`fastpath_enabled`
    does for an execution).
    """
    return {
        "manifest_version": MANIFEST_VERSION,
        "code_version": diskcache.code_version(),
        "spec": asdict(spec),
        "spec_key": diskcache.spec_key(spec),
        "seed": spec.seed,
        "fastpath": fastpath_enabled(fastpath),
        "record_schema": SCHEMA_VERSION,
    }


def describe(prov: "dict | None") -> str:
    """One-line human rendering of a manifest (used by the CLI)."""
    if not prov:
        return "no provenance recorded"
    spec = prov.get("spec", {})
    return (f"{spec.get('benchmark', '?')} "
            f"spec={prov.get('spec_key', '?')[:10]} "
            f"seed={prov.get('seed', '?')} "
            f"code={prov.get('code_version', '?')} "
            f"fastpath={'on' if prov.get('fastpath') else 'off'}")
