"""Offline analysis of simulated runs.

Everything in this package is a *consumer* of runs, never a
participant: the fidelity auditor (:mod:`repro.analysis.fidelity`)
observes a run through a pure-observer tap, the provenance module
(:mod:`repro.analysis.provenance`) describes how a record came to be,
and the differ (:mod:`repro.analysis.diff`) explains how two records
disagree.  None of them may change a single simulated number.
"""
