"""Structured run-record diffing with thresholded significance.

``repro diff a.json b.json`` answers the forensic question "why do two
runs differ?" without eyeballing raw JSON.  The differ walks the
comparable surfaces of two :class:`~repro.harness.record.RunRecord`\\ s —
provenance, cycle buckets, hardware counters, GC statistics,
co-allocation decisions, the revert log, per-field miss series totals,
compiler map sizes, and the monitoring summary — and classifies each
difference as *significant* (relative delta above a threshold, or a
categorical mismatch like a diverging revert log or code version) or
noise.

Two runs of the same spec + seed are bit-identical by construction, so
they diff clean at any threshold; two seeds of the same spec differ
only in sampling jitter, which the differ surfaces as significant
monitoring/series deltas while the structural surfaces stay quiet.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import List, Optional

from repro.harness.record import RunRecord

#: Default relative-delta significance threshold for numeric surfaces.
DEFAULT_THRESHOLD = 0.01

#: Provenance keys whose mismatch is categorical (always significant).
_PROVENANCE_KEYS = ("code_version", "spec_key", "seed", "fastpath",
                    "record_schema")


@dataclass
class Delta:
    """One observed difference between two records."""

    path: str          # dotted path, e.g. "counters.L1D_MISS"
    a: object
    b: object
    rel: float         # relative delta (0.0 for categorical surfaces)
    significant: bool

    def to_json(self) -> dict:
        return {"path": self.path, "a": self.a, "b": self.b,
                "rel": self.rel, "significant": self.significant}


@dataclass
class RecordDiff:
    """All differences between two records, significant ones first."""

    deltas: List[Delta] = field(default_factory=list)
    threshold: float = DEFAULT_THRESHOLD
    #: First diverging lineage decision (see
    #: :func:`repro.lineage.explain.first_divergence`): ``{"index",
    #: "a": {"id", "parents", "summary"}, "b": ...}``, or None when the
    #: decision streams agree or either record carries no ledger.
    lineage_divergence: Optional[dict] = None

    @property
    def significant(self) -> List[Delta]:
        return [d for d in self.deltas if d.significant]

    def __bool__(self) -> bool:
        return bool(self.deltas)

    def to_json(self) -> dict:
        return {"threshold": self.threshold,
                "differences": len(self.deltas),
                "significant": len(self.significant),
                "deltas": [d.to_json() for d in self.deltas],
                "lineage_divergence": self.lineage_divergence}


def _rel_delta(a, b) -> float:
    scale = max(abs(a), abs(b))
    return abs(a - b) / scale if scale else 0.0


class _Differ:
    def __init__(self, threshold: float):
        self.threshold = threshold
        self.deltas: List[Delta] = []

    def numeric(self, path: str, a, b) -> None:
        if a == b:
            return
        rel = _rel_delta(a, b)
        self.deltas.append(Delta(path, a, b, rel,
                                 significant=rel > self.threshold))

    def categorical(self, path: str, a, b) -> None:
        if a == b:
            return
        self.deltas.append(Delta(path, a, b, 0.0, significant=True))

    def mapping(self, prefix: str, a: dict, b: dict,
                numeric: bool = True) -> None:
        for key in sorted(set(a) | set(b), key=str):
            va, vb = a.get(key, 0), b.get(key, 0)
            if isinstance(va, (int, float)) and isinstance(vb, (int, float)) \
                    and numeric:
                self.numeric(f"{prefix}.{key}", va, vb)
            else:
                self.categorical(f"{prefix}.{key}", va, vb)


def diff_records(a: RunRecord, b: RunRecord,
                 threshold: float = DEFAULT_THRESHOLD) -> RecordDiff:
    """Compare two records surface by surface."""
    d = _Differ(threshold)

    # Provenance: categorical — any mismatch means the runs were not
    # the same experiment (different code, spec, seed, or interpreter).
    pa, pb = a.provenance or {}, b.provenance or {}
    d.categorical("program", a.program, b.program)
    for key in _PROVENANCE_KEYS:
        d.categorical(f"provenance.{key}", pa.get(key), pb.get(key))

    # Cycle buckets and instruction counts.
    for name in ("cycles", "instructions", "app_cycles", "gc_cycles",
                 "monitoring_cycles"):
        d.numeric(name, getattr(a, name), getattr(b, name))

    # Guest exit value: a divergence here means the resumed/replayed
    # run computed something else entirely — always significant.
    d.categorical("exit_value", a.exit_value, b.exit_value)

    # Hardware counters.
    d.mapping("counters", a.counters, b.counters)

    # GC statistics, including the co-allocation decisions.
    d.mapping("gc_stats", asdict(a.gc_stats), asdict(b.gc_stats))

    # Compiled-corpus map sizes.
    for i, name in enumerate(("machine_code", "gc_maps", "mc_maps")):
        d.numeric(f"map_sizes.{name}", a.map_sizes[i], b.map_sizes[i])

    # Revert log: a diverging feedback decision is always significant.
    d.categorical("reverted_experiments",
                  sorted(a.reverted_experiments),
                  sorted(b.reverted_experiments))

    # Monitoring summary.
    d.mapping("monitor_summary",
              a.monitor_summary or {}, b.monitor_summary or {})

    # Per-field miss series: compare total attributed events per field.
    totals_a = {name: sum(n for _, n in series)
                for name, series in a.field_series.items()}
    totals_b = {name: sum(n for _, n in series)
                for name, series in b.field_series.items()}
    d.mapping("field_series", totals_a, totals_b)

    # Run health: the verdict and the per-detector finding census are
    # categorical (a run that went from ok to critical is a different
    # run, whatever the numbers say); the phase count is numeric but
    # compared exactly — segmentation is deterministic, so any drift is
    # a real behavioral difference.
    ha, hb = a.health or {}, b.health or {}
    if ha or hb:
        d.categorical("health.verdict", ha.get("verdict"), hb.get("verdict"))
        d.categorical("health.phases", len(ha.get("phases") or ()),
                      len(hb.get("phases") or ()))

        def _census(doc: dict) -> dict:
            census: dict = {}
            for finding in doc.get("findings") or ():
                key = finding.get("detector", "?")
                census[key] = census.get(key, 0) + 1
            return census

        d.mapping("health.findings", _census(ha), _census(hb),
                  numeric=False)

    # Decision lineage: when both records carry a ledger, locate the
    # first decision where the two runs took different paths — the
    # forensic answer behind a diverging revert log.
    divergence = None
    if a.lineage and b.lineage:
        from repro.lineage import explain

        divergence = explain.first_divergence(a.lineage, b.lineage)
        if divergence is not None:
            d.categorical("lineage.first_divergence",
                          divergence["a"] and divergence["a"]["summary"],
                          divergence["b"] and divergence["b"]["summary"])

    deltas = sorted(d.deltas, key=lambda x: (not x.significant, x.path))
    return RecordDiff(deltas=deltas, threshold=threshold,
                      lineage_divergence=divergence)


def record_from_doc(doc: object) -> RunRecord:
    """Rebuild a record from an already-parsed JSON document.

    Accepts both the bare record document (``repro run --record``) and
    the envelope form (``{"version"/"spec", "record"}``) that the disk
    cache writes and the fleet server's ``GET /records/<key>`` returns.
    """
    if isinstance(doc, dict) and "record" in doc and "schema" not in doc:
        doc = doc["record"]
    return RunRecord.from_json(doc)


def diff_docs(a_doc: object, b_doc: object,
              threshold: float = DEFAULT_THRESHOLD) -> RecordDiff:
    """Diff two record JSON documents (either bare or enveloped).

    The wire-level entry point behind the fleet server's ``GET /diff``:
    both sides arrive as parsed JSON, never as live records.
    """
    return diff_records(record_from_doc(a_doc), record_from_doc(b_doc),
                        threshold=threshold)


def load_record(path: str) -> RunRecord:
    """Load a record from a JSON file.

    Accepts both the bare record document (``repro run --record``) and
    the disk-cache entry envelope (``{"version", "spec", "record"}``).
    """
    with open(path, "r") as fh:
        doc = json.load(fh)
    return record_from_doc(doc)


def format_diff(diff: RecordDiff, a_name: str = "a",
                b_name: str = "b", limit: Optional[int] = 40) -> str:
    """Human-readable diff report for the ``repro diff`` subcommand."""
    sig = diff.significant
    lines = [f"record diff: {len(diff.deltas)} difference(s), "
             f"{len(sig)} significant "
             f"(threshold {diff.threshold:.1%})"]
    shown = diff.deltas if limit is None else diff.deltas[:limit]
    for delta in shown:
        marker = "!" if delta.significant else " "
        if delta.rel:
            extra = f"  (delta {delta.rel:.2%})"
        else:
            extra = ""
        lines.append(f"  {marker} {delta.path:<32} "
                     f"{delta.a!r} -> {delta.b!r}{extra}")
    if limit is not None and len(diff.deltas) > limit:
        lines.append(f"  ... {len(diff.deltas) - limit} more")
    if not diff.deltas:
        lines.append(f"  {a_name} and {b_name} are identical")
    div = diff.lineage_divergence
    if div is not None:
        lines.append(f"first diverging decision (index {div['index']}):")
        for label, side in ((a_name, div["a"]), (b_name, div["b"])):
            if side is None:
                lines.append(f"  {label}: (no further decisions)")
            else:
                lines.append(f"  {label}: #{side['id']} {side['summary']}"
                             f"  (parents {side['parents']})")
    return "\n".join(lines)
