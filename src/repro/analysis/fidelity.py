"""Sampling-fidelity auditor: sampled profiles vs. exact ground truth.

The paper's central claim is that *sampled* PEBS profiles are accurate
enough (and cheap enough) to steer online co-allocation.  The simulator
is in the unique position to check that claim exactly: it sees every
cache miss, not every *n*-th one.  This module taps that stream with an
:class:`ExactAttributionOracle` — a pure observer that charges every
occurrence of the monitored event to its method / bytecode / field
through the *same* resolution pipeline the sampling stack uses
(sorted code table -> machine-code maps -> instructions-of-interest,
sections 4.2/5.2) — and scores the run's sample-derived profile against
that ground truth:

* **overlap coefficient** of the top-N hot sets (methods and fields):
  did sampling find the same hot spots?
* **Spearman rank correlation** over the union of profiled names: did
  sampling order them the same way?
* **normalized per-field absolute error**: how far off are the
  estimated (interval-weighted) event counts?

Swept across the paper's sampling intervals this yields the
accuracy-vs-overhead frontier of Figure 2's regime: fidelity falls and
overhead falls as the interval grows (Nonell et al. quantify the same
frontier on real PEBS hardware).

The oracle is subject to the telemetry invariant: attaching it must
leave cycles, counters, and the PEBS sample stream bit-identical
(enforced by ``tests/test_fidelity.py``).  It charges no cycles,
consumes no randomness, and keeps its own interest tables so it never
touches the controller's resolver statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import scaled_interval
from repro.core.interest import analyze_compiled_method
from repro.jit.codecache import LEVEL_OPT, CodeCache

#: Bump when the audit report layout changes (checked by the CI smoke job).
AUDIT_SCHEMA_VERSION = 1

#: The paper's sampling intervals, densest first.  The first entry is
#: the default evaluation point for the acceptance thresholds.
DEFAULT_INTERVALS: Tuple[str, ...] = ("25K", "50K", "100K")

#: Size of the hot sets compared by the overlap coefficient.
DEFAULT_TOP_N = 10


class ExactAttributionOracle:
    """Exhaustive, zero-cost sample resolution: the ground truth.

    Mirrors :class:`repro.core.mapping.SampleResolver` semantics —
    foreign EIPs are dropped, baseline-compiled methods carry no
    interest information, opt methods attribute through the interest
    table — but sees every event instead of every *n*-th, charges no
    mapping cost, and accumulates into its own tables keyed by
    qualified names (portable, comparison-ready).
    """

    def __init__(self, codecache: CodeCache):
        self.codecache = codecache
        #: id(cm) -> InterestMap, computed lazily on first miss in cm.
        self._interest: Dict[int, dict] = {}
        #: qualified method name -> exact events in its code.
        self.method_events: Dict[str, int] = {}
        #: qualified field name -> exact events attributed to it.
        self.field_events: Dict[str, int] = {}
        #: (qualified method name, bytecode index) -> exact events.
        self.bytecode_events: Dict[Tuple[str, int], int] = {}
        self.total_events = 0
        self.dropped_foreign = 0
        self.dropped_baseline = 0
        self.unattributed = 0
        self.attributed = 0

    def attach(self, vm) -> None:
        """Tap ``vm``'s memory system for its monitored event."""
        vm.memsys.attach_observer(vm.config.sampled_event, self.on_event)

    def on_event(self, eip: int) -> None:
        """Observe one event occurrence (the memory-system hook)."""
        self.total_events += 1
        cm = self.codecache.lookup(eip)
        if cm is None:
            self.dropped_foreign += 1
            return
        if cm.level != LEVEL_OPT:
            self.dropped_baseline += 1
            return
        pc = cm.pc_of_eip(eip)
        name = cm.method.qualified_name
        self.method_events[name] = self.method_events.get(name, 0) + 1
        bc_key = (name, cm.bc_map[pc])
        self.bytecode_events[bc_key] = self.bytecode_events.get(bc_key, 0) + 1
        key = id(cm)
        interest = self._interest.get(key)
        if interest is None and key not in self._interest:
            interest = analyze_compiled_method(cm)
            self._interest[key] = interest
        ir_id = cm.ir_map[pc]
        fld = interest.get(ir_id) if (interest and ir_id is not None) else None
        if fld is None:
            self.unattributed += 1
            return
        self.attributed += 1
        fname = fld.qualified_name
        self.field_events[fname] = self.field_events.get(fname, 0) + 1


# ---------------------------------------------------------------------------
# Fidelity metrics
# ---------------------------------------------------------------------------

def hot_set(profile: Dict[str, int], top_n: int) -> List[str]:
    """The ``top_n`` hottest names, deterministically tie-broken."""
    ranked = sorted(profile.items(), key=lambda kv: (-kv[1], kv[0]))
    return [name for name, _ in ranked[:top_n]]

def overlap_coefficient(exact: Dict[str, int], sampled: Dict[str, int],
                        top_n: int = DEFAULT_TOP_N) -> float:
    """Overlap of the two top-N hot sets: ``|A & B| / min(|A|, |B|)``.

    1.0 means sampling found exactly the hot set the ground truth
    names; an empty sampled profile against a non-empty exact one
    scores 0.0 (sampling found nothing).
    """
    a, b = set(hot_set(exact, top_n)), set(hot_set(sampled, top_n))
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    return len(a & b) / min(len(a), len(b))


def _ranks(values: List[float]) -> List[float]:
    """Fractional ranks (average rank across ties)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        avg = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[order[k]] = avg
        i = j + 1
    return ranks


def spearman(exact: Dict[str, int], sampled: Dict[str, int]) -> float:
    """Spearman rank correlation over the union of profiled names.

    Names missing from one profile count as 0 events there.  Degenerate
    inputs (fewer than two names, or a constant profile) return 1.0
    when the profiles induce the same ordering and 0.0 otherwise.
    """
    names = sorted(set(exact) | set(sampled))
    if len(names) < 2:
        # One or zero names: the ordering is trivially identical; all
        # that can differ is *which* names were seen at all.
        hit = {n for n in exact if exact[n]} == {n for n in sampled
                                                if sampled[n]}
        return 1.0 if hit else 0.0
    xs = _ranks([float(exact.get(n, 0)) for n in names])
    ys = _ranks([float(sampled.get(n, 0)) for n in names])
    n = len(names)
    mean = (n + 1) / 2
    cov = sum((x - mean) * (y - mean) for x, y in zip(xs, ys))
    var_x = sum((x - mean) ** 2 for x in xs)
    var_y = sum((y - mean) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 1.0 if xs == ys else 0.0
    return cov / (var_x * var_y) ** 0.5


def normalized_abs_error(exact: Dict[str, int],
                         sampled: Dict[str, int]) -> float:
    """Normalized L1 error of the estimated counts: ``sum |est - true|
    / sum true`` over the union of names (0.0 = perfect estimates)."""
    names = set(exact) | set(sampled)
    total = sum(exact.values())
    err = sum(abs(sampled.get(n, 0) - exact.get(n, 0)) for n in names)
    return err / max(1, total)


# ---------------------------------------------------------------------------
# The audit
# ---------------------------------------------------------------------------

@dataclass
class IntervalAudit:
    """Fidelity and overhead of one run at one sampling interval."""

    interval: str
    scaled_interval: int
    cycles: int
    monitoring_cycles: int
    samples_taken: int
    exact_events: int
    exact_attributed: int
    sampled_attributed: int
    method_overlap: float
    field_overlap: float
    method_spearman: float
    field_spearman: float
    field_abs_error: float
    top_methods_exact: List[Tuple[str, int]] = field(default_factory=list)
    top_methods_sampled: List[Tuple[str, int]] = field(default_factory=list)
    top_fields_exact: List[Tuple[str, int]] = field(default_factory=list)
    top_fields_sampled: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def overhead(self) -> float:
        """Monitoring cycles as a fraction of total cycles."""
        return self.monitoring_cycles / self.cycles if self.cycles else 0.0

    @property
    def fidelity(self) -> float:
        """The headline fidelity score: top-N hot-method overlap."""
        return self.method_overlap

    def to_json(self) -> dict:
        return {
            "interval": self.interval,
            "scaled_interval": self.scaled_interval,
            "cycles": self.cycles,
            "monitoring_cycles": self.monitoring_cycles,
            "overhead": self.overhead,
            "samples_taken": self.samples_taken,
            "exact_events": self.exact_events,
            "exact_attributed": self.exact_attributed,
            "sampled_attributed": self.sampled_attributed,
            "fidelity": self.fidelity,
            "method_overlap": self.method_overlap,
            "field_overlap": self.field_overlap,
            "method_spearman": self.method_spearman,
            "field_spearman": self.field_spearman,
            "field_abs_error": self.field_abs_error,
            "top_methods_exact": [list(t) for t in self.top_methods_exact],
            "top_methods_sampled": [list(t) for t in self.top_methods_sampled],
            "top_fields_exact": [list(t) for t in self.top_fields_exact],
            "top_fields_sampled": [list(t) for t in self.top_fields_sampled],
        }


@dataclass
class AuditReport:
    """The accuracy-vs-overhead frontier for one benchmark."""

    benchmark: str
    seed: int
    event: str
    top_n: int
    intervals: List[IntervalAudit]

    def frontier(self) -> List[Tuple[float, float]]:
        """(overhead, fidelity) points, in sweep order."""
        return [(ia.overhead, ia.fidelity) for ia in self.intervals]

    def to_json(self) -> dict:
        return {
            "schema": AUDIT_SCHEMA_VERSION,
            "benchmark": self.benchmark,
            "seed": self.seed,
            "event": self.event,
            "top_n": self.top_n,
            "intervals": [ia.to_json() for ia in self.intervals],
        }


def _top(profile: Dict[str, int], top_n: int) -> List[Tuple[str, int]]:
    return sorted(profile.items(), key=lambda kv: (-kv[1], kv[0]))[:top_n]


def audit_run(spec, top_n: int = DEFAULT_TOP_N) -> Tuple[IntervalAudit, object]:
    """Run ``spec`` once with the oracle attached; score the profiles.

    Returns ``(audit, run_result)``.  The run is always simulated fresh
    (the oracle needs a live memory system), but by the pure-observer
    invariant its result is bit-identical to an unaudited run of the
    same spec.
    """
    from repro.harness.runner import make_vm

    vm, _workload = make_vm(spec.benchmark, spec)
    if vm.controller is None:
        raise ValueError("the fidelity audit needs monitoring enabled "
                         f"(spec {spec!r} has monitoring=False)")
    oracle = ExactAttributionOracle(vm.codecache)
    oracle.attach(vm)
    result = vm.run()

    monitor = vm.controller.monitor
    sampled_methods = {m.qualified_name: n
                       for m, n in monitor.method_events.items()}
    sampled_fields = {f.qualified_name: n
                      for f, n in monitor.cumulative.items()}

    audit = IntervalAudit(
        interval=spec.interval,
        scaled_interval=(scaled_interval(spec.interval)
                         if spec.interval != "auto"
                         else vm.controller.current_interval),
        cycles=result.cycles,
        monitoring_cycles=result.monitoring_cycles,
        samples_taken=vm.pebs.samples_taken,
        exact_events=oracle.total_events,
        exact_attributed=oracle.attributed,
        sampled_attributed=vm.controller.resolver.stats.attributed,
        method_overlap=overlap_coefficient(oracle.method_events,
                                           sampled_methods, top_n),
        field_overlap=overlap_coefficient(oracle.field_events,
                                          sampled_fields, top_n),
        method_spearman=spearman(oracle.method_events, sampled_methods),
        field_spearman=spearman(oracle.field_events, sampled_fields),
        field_abs_error=normalized_abs_error(oracle.field_events,
                                             sampled_fields),
        top_methods_exact=_top(oracle.method_events, top_n),
        top_methods_sampled=_top(sampled_methods, top_n),
        top_fields_exact=_top(oracle.field_events, top_n),
        top_fields_sampled=_top(sampled_fields, top_n),
    )
    return audit, result


def audit_benchmark(benchmark: str,
                    intervals: Tuple[str, ...] = DEFAULT_INTERVALS,
                    seed: int = 1, top_n: int = DEFAULT_TOP_N,
                    event: str = "L1D_MISS",
                    coalloc: bool = False) -> AuditReport:
    """Sweep the sampling intervals; return the fidelity frontier.

    Defaults mirror the Figure 2 configuration: monitoring on,
    co-allocation off, so the sweep isolates sampling accuracy from
    placement feedback effects.
    """
    from repro.harness.runner import RunSpec

    audits: List[IntervalAudit] = []
    for interval in intervals:
        spec = RunSpec(benchmark=benchmark, coalloc=coalloc,
                       monitoring=True, interval=interval,
                       event=event, seed=seed)
        audit, _result = audit_run(spec, top_n=top_n)
        audits.append(audit)
    return AuditReport(benchmark=benchmark, seed=seed, event=event,
                       top_n=top_n, intervals=audits)


def format_report(report: AuditReport) -> str:
    """Human-readable audit report for the ``repro audit`` subcommand."""
    lines = [
        f"fidelity audit: {report.benchmark} "
        f"(event {report.event}, seed {report.seed}, "
        f"top-{report.top_n} hot sets)",
        "",
        f"{'interval':>8} {'overhead':>9} {'samples':>8} {'exact':>9} "
        f"{'m.overlap':>9} {'f.overlap':>9} {'m.rho':>6} {'f.rho':>6} "
        f"{'f.err':>6}",
    ]
    for ia in report.intervals:
        lines.append(
            f"{ia.interval:>8} {ia.overhead:>8.2%} {ia.samples_taken:>8,} "
            f"{ia.exact_events:>9,} {ia.method_overlap:>9.2f} "
            f"{ia.field_overlap:>9.2f} {ia.method_spearman:>6.2f} "
            f"{ia.field_spearman:>6.2f} {ia.field_abs_error:>6.2f}")
    first = report.intervals[0] if report.intervals else None
    if first is not None:
        lines.append("")
        lines.append(f"hottest methods at {first.interval} "
                     f"(exact | sampled estimate):")
        sampled = dict(first.top_methods_sampled)
        for name, events in first.top_methods_exact[:5]:
            est = sampled.get(name)
            est_txt = f"{est:,}" if est is not None else "missed"
            lines.append(f"  {name:<28} {events:>9,} | {est_txt}")
        if first.top_fields_exact:
            lines.append(f"hottest fields at {first.interval} "
                         f"(exact | sampled estimate):")
            sampled_f = dict(first.top_fields_sampled)
            for name, events in first.top_fields_exact[:5]:
                est = sampled_f.get(name)
                est_txt = f"{est:,}" if est is not None else "missed"
                lines.append(f"  {name:<28} {events:>9,} | {est_txt}")
    return "\n".join(lines)
