"""HPM-guided object co-allocation policy (section 5.4).

When the GC promotes an object whose class has a "hot" reference field
(ranked hottest by cache-miss count, supplied online by the monitoring
controller), it tries to co-allocate the parent with that child: one
free-list cell is requested for the combined size, so both objects end
up contiguous — usually within one 128-byte cache line — and the child
is implicitly prefetched whenever the parent is touched.

The policy layer is deliberately separate from the collector:

* the *ranking* comes from :class:`repro.core.controller`'s per-class
  hot-field table (or any callable, which tests exploit),
* the *mechanism* (combined cells, placement) lives in
  :mod:`repro.gc.genms`,
* Figure 8's controlled experiment injects ``gap_bytes`` between parent
  and child — the deliberately bad placement the online feedback must
  detect and revert.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.vm.model import ClassInfo, FieldInfo
from repro.vm.objects import SPACE_NURSERY

#: Type of the hot-field oracle: class -> hottest reference field or None.
HotFieldProvider = Callable[[ClassInfo], Optional[FieldInfo]]


class CoallocationPolicy:
    """Decides, per promoted object, whether and how to co-allocate."""

    def __init__(self, hot_field_provider: HotFieldProvider,
                 max_combined_bytes: int = 4096,
                 gap_bytes: int = 0,
                 enabled: bool = True,
                 telemetry=None, lineage=None):
        from repro.lineage import NULL_LEDGER
        from repro.telemetry import NULL_TELEMETRY

        self.hot_field_provider = hot_field_provider
        self.lineage = lineage if lineage is not None else NULL_LEDGER
        self.max_combined_bytes = max_combined_bytes
        #: Empty space inserted between parent and child (0 normally;
        #: 128 in Figure 8's deliberately poor configuration).
        self.gap_bytes = gap_bytes
        self.enabled = enabled
        metrics = (telemetry or NULL_TELEMETRY).metrics
        self._m_considered = metrics.counter(
            "gc.coalloc.considered", "promotions examined for co-allocation")
        self._m_accepted = metrics.counter(
            "gc.coalloc.accepted",
            "co-allocations performed, labeled (class, field)")
        self._m_rejected = metrics.counter(
            "gc.coalloc.rejected", "co-allocation rejections, by reason")
        # Decision statistics.
        self.considered = 0
        self.no_hot_field = 0
        self.child_unavailable = 0
        self.too_large = 0
        self.accepted = 0

    def select_child(self, obj) -> "tuple | None":
        """Return ``(child, combined_size)`` when ``obj`` should be
        co-allocated with its hottest child, else None.

        ``obj`` must still be in the nursery (promotion in progress); the
        child qualifies only if it is a live nursery object that has not
        been promoted yet and the combined allocation fits the free-list
        limit (section 5.4).
        """
        if not self.enabled:
            return None
        klass = obj.class_info
        if klass is None:  # arrays have no per-class hot-field entry
            return None
        self.considered += 1
        self._m_considered.inc()
        field = self.hot_field_provider(klass)
        if field is None:
            self.no_hot_field += 1
            self._m_rejected.labels("no_hot_field").inc()
            return None
        child = obj.slots[field.index]
        if child is None or child.space != SPACE_NURSERY or child is obj:
            self.child_unavailable += 1
            self._m_rejected.labels("child_unavailable").inc()
            return None
        combined = obj.size + self.gap_bytes + child.size
        if combined > self.max_combined_bytes:
            self.too_large += 1
            self._m_rejected.labels("too_large").inc()
            return None
        self.accepted += 1
        self._m_accepted.labels(klass.name, field.name).inc()
        self.lineage.placement_pending(klass, field, obj.size, child.size,
                                       self.gap_bytes, combined)
        return child, combined

    def set_gap(self, gap_bytes: int) -> None:
        """Change the placement gap (Figure 8's manual intervention)."""
        if gap_bytes < 0:
            raise ValueError("gap must be non-negative")
        self.lineage.gap_set(self.gap_bytes, gap_bytes)
        self.gap_bytes = gap_bytes


def static_hot_fields(table: dict) -> HotFieldProvider:
    """Build a provider from a fixed {ClassInfo: FieldInfo} table.

    Used by unit tests and by ablation benchmarks that bypass the online
    monitoring (e.g. to measure the oracle upper bound).
    """
    def provider(klass: ClassInfo) -> Optional[FieldInfo]:
        return table.get(klass)
    return provider
