"""Size classes of the free-list mature-space allocator.

The paper's collector "allocates objects into 40 different size classes
up to 4 KBytes (=VM default setting) to minimize heap fragmentation"
(section 5.1).  We build the same structure: fine-grained 8-byte-stepped
classes for small objects, then geometrically growing classes up to the
4 KB limit.  Objects larger than the limit go to the large-object space.

Internal fragmentation — the slack between an object and its cell — is
exactly the cost the paper warns co-allocation can *increase*
("this approach may increase internal fragmentation because there is
only a limited number of size classes"), so the classes are built to be
inspectable and the allocator reports per-allocation slack.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional


def build_size_classes(count: int = 40, max_bytes: int = 4096) -> List[int]:
    """Return ``count`` strictly increasing cell sizes ending at ``max_bytes``.

    The structure follows the MMTk segregated-fit layout: 8-byte steps
    for tiny objects, 16- and 32-byte steps through the mid range, then
    geometric growth up to ``max_bytes``.  The mid-range coarseness
    matters for fidelity: co-allocated pairs land there, and the slack
    they pick up is the internal-fragmentation cost the paper observes
    at small heaps (section 6.3).  All sizes are 4-byte aligned.
    """
    if count < 2:
        raise ValueError("need at least two size classes")
    sizes: List[int] = []
    for step, limit in ((8, 64), (16, 160), (32, 256)):
        start = (sizes[-1] if sizes else 0) + step
        value = start
        while value <= limit and len(sizes) < count - 1:
            sizes.append(value)
            value += step
    lo = sizes[-1]
    remaining = count - len(sizes)
    if remaining < 1:
        raise ValueError("count too small for the linear prefix")
    ratio = (max_bytes / lo) ** (1.0 / remaining)
    value = float(lo)
    for _ in range(remaining):
        value *= ratio
        size = int(value + 3) & ~3
        if size <= sizes[-1]:
            size = sizes[-1] + 4
        sizes.append(size)
    sizes[-1] = max_bytes
    if sizes[-2] >= max_bytes:
        raise ValueError("size classes do not fit under max_bytes")
    return sizes


class SizeClasses:
    """Lookup structure mapping an object size to its size class."""

    def __init__(self, count: int = 40, max_bytes: int = 4096):
        self.sizes = build_size_classes(count, max_bytes)
        self.max_bytes = max_bytes

    def __len__(self) -> int:
        return len(self.sizes)

    def class_for(self, size: int) -> Optional[int]:
        """Return the index of the smallest class holding ``size`` bytes,
        or None when the object must go to the large-object space."""
        if size <= 0:
            raise ValueError("object size must be positive")
        if size > self.max_bytes:
            return None
        return bisect_left(self.sizes, size)

    def cell_bytes(self, index: int) -> int:
        return self.sizes[index]

    def slack(self, size: int) -> Optional[int]:
        """Internal fragmentation for an object of ``size`` bytes."""
        idx = self.class_for(size)
        if idx is None:
            return None
        return self.sizes[idx] - size
