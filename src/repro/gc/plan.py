"""Common machinery of the generational collection plans.

A *plan* (MMTk terminology) owns the heap spaces, the allocation entry
points used by the CPU's ``alloc`` instructions, the write barrier, and
the collection triggers.  :class:`GenMSPlan` and :class:`GenCopyPlan`
specialize promotion and full collection.

The plan talks to the rest of the VM through :class:`GCHooks`:

* ``roots()`` enumerates the root objects (thread stacks via GC maps,
  statics),
* ``charge(cycles)`` adds collector work to the simulated time,
* ``pollute_minor()/pollute_full()`` model cache displacement
  (DESIGN.md §5: the collector does not run through the cache simulator).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.core.config import GCConfig
from repro.gc import layout
from repro.gc.bump import BumpAllocator
from repro.gc.coalloc import CoallocationPolicy
from repro.gc.los import LargeObjectSpace
from repro.gc.remset import RememberedSet
from repro.gc.stats import GCStats
from repro.telemetry import NULL_TELEMETRY
from repro.vm.model import ClassInfo
from repro.vm.objects import (
    SPACE_LOS,
    SPACE_NURSERY,
    HeapArray,
    HeapObject,
)


class HeapExhausted(Exception):
    """The configured heap budget cannot satisfy an allocation."""


class GCHooks:
    """Callbacks wiring a plan into the VM.

    The defaults make a plan usable standalone in unit tests: no roots,
    free collections, no cache model.
    """

    def __init__(self,
                 roots: Callable[[], Iterable] = lambda: (),
                 charge: Callable[[int], None] = lambda cycles: None,
                 pollute_minor: Callable[[], None] = lambda: None,
                 pollute_full: Callable[[], None] = lambda: None):
        self.roots = roots
        self.charge = charge
        self.pollute_minor = pollute_minor
        self.pollute_full = pollute_full


class Plan:
    """Base class: nursery allocation, LOS, barrier, heap sizing."""

    name = "base"

    def __init__(self, config: GCConfig, hooks: Optional[GCHooks] = None,
                 coalloc: Optional[CoallocationPolicy] = None,
                 telemetry=None):
        self.config = config
        self.hooks = hooks or GCHooks()
        self.coalloc = coalloc
        self.stats = GCStats()
        self.telemetry = telemetry or NULL_TELEMETRY
        self._trace = self.telemetry.tracer
        metrics = self.telemetry.metrics
        self._m_minor = metrics.counter(
            "gc.minor_collections", "nursery collections")
        self._m_full = metrics.counter(
            "gc.full_collections", "whole-heap collections")
        self._m_promoted = metrics.counter(
            "gc.promoted_objects", "objects promoted out of the nursery")
        self._m_promoted_bytes = metrics.counter(
            "gc.promoted_bytes", "bytes promoted out of the nursery")
        self._m_pause = metrics.histogram(
            "gc.pause_cycles", "simulated cycles per collection")
        self.remset = RememberedSet()
        self.los = LargeObjectSpace(layout.LOS_BASE,
                                    layout.LOS_LIMIT - layout.LOS_BASE)
        self.los_objects: List[object] = []
        #: All nursery-resident objects since the last minor collection.
        self.nursery_objects: List[object] = []
        self.nursery = BumpAllocator(layout.NURSERY_BASE,
                                     self._initial_nursery())
        self._collecting = False

    # -- sizing ------------------------------------------------------------------

    def _initial_nursery(self) -> int:
        cfg = self.config
        return min(cfg.max_nursery_bytes,
                   max(cfg.min_nursery_bytes, cfg.heap_bytes // 2))

    def mature_footprint(self) -> int:
        """Bytes of the budget consumed by the old generation."""
        raise NotImplementedError

    def _resize_nursery(self) -> None:
        """Appel-style variable nursery: half the remaining budget,
        clamped to the configured bounds."""
        cfg = self.config
        free = cfg.heap_bytes - self.mature_footprint()
        self.nursery.reset(min(cfg.max_nursery_bytes,
                               max(cfg.min_nursery_bytes, free // 2)))

    def heap_pressure(self) -> bool:
        """True when the old generation needs a full collection."""
        budget = self.config.heap_bytes
        return self.mature_footprint() > budget - 2 * self.config.min_nursery_bytes

    # -- allocation ---------------------------------------------------------------

    def alloc_object(self, class_info: ClassInfo) -> HeapObject:
        obj = HeapObject(class_info)
        self._place_new(obj)
        return obj

    def alloc_array(self, kind: str, length: int) -> HeapArray:
        arr = HeapArray(kind, length)
        self._place_new(arr)
        return arr

    def _place_new(self, obj) -> None:
        size = obj.size
        self.stats.alloc_objects += 1
        self.stats.alloc_bytes += size
        if size > self.config.max_cell_bytes:
            # Large objects bypass the nursery (section 5.1: handled in a
            # separate portion of the heap).
            addr = self.los.alloc(size)
            if addr is None:
                self.collect_full()
                addr = self.los.alloc(size)
                if addr is None:
                    raise HeapExhausted(f"LOS cannot fit {size} bytes")
            obj.address = addr
            obj.space = SPACE_LOS
            self.los_objects.append(obj)
            self.stats.los_objects += 1
            return
        addr = self.nursery.alloc(size)
        if addr is None:
            self.collect_minor()
            addr = self.nursery.alloc(size)
            if addr is None:
                raise HeapExhausted(
                    f"nursery of {self.nursery.capacity} B cannot fit {size} B"
                )
        obj.address = addr
        obj.space = SPACE_NURSERY
        self.nursery_objects.append(obj)

    # -- write barrier ---------------------------------------------------------------

    def write_barrier(self, holder, slot_index: int, value) -> None:
        """Reference-store barrier; records mature->nursery slots."""
        self.remset.record_store(holder, slot_index, value)
        self.hooks.charge(self.config.write_barrier_cost)

    # -- collection -------------------------------------------------------------------

    def collect_minor(self) -> None:
        raise NotImplementedError

    def collect_full(self) -> None:
        raise NotImplementedError

    def _minor_roots(self) -> List[object]:
        """Nursery objects directly reachable from roots and the remset."""
        out = []
        for root in self.hooks.roots():
            if root is not None and root.space == SPACE_NURSERY:
                out.append(root)
        out.extend(self.remset.targets())
        return out

    def _trace_live_nursery(self, seeds: List[object]) -> List[object]:
        """BFS over nursery objects only; returns them in trace order.

        The old generation is not traversed: mature->nursery edges are
        covered by the remembered set (the seeds).
        """
        order: List[object] = []
        seen = set()
        queue = list(seeds)
        head = 0
        while head < len(queue):
            obj = queue[head]
            head += 1
            key = id(obj)
            if key in seen:
                continue
            seen.add(key)
            order.append(obj)
            if obj.is_array:
                if obj.kind == "ref":
                    for child in obj.elements:
                        if child is not None and child.space == SPACE_NURSERY:
                            queue.append(child)
            else:
                for slot, field in zip(obj.slots, obj.class_info.fields):
                    if field.kind == "ref" and slot is not None \
                            and slot.space == SPACE_NURSERY:
                        queue.append(slot)
        return order

    def _trace_all_live(self) -> List[object]:
        """Full-heap reachability (mark phase), in BFS order."""
        order: List[object] = []
        seen = set()
        queue = [r for r in self.hooks.roots() if r is not None]
        head = 0
        while head < len(queue):
            obj = queue[head]
            head += 1
            key = id(obj)
            if key in seen:
                continue
            seen.add(key)
            obj.gc_mark = True
            order.append(obj)
            if obj.is_array:
                if obj.kind == "ref":
                    queue.extend(c for c in obj.elements if c is not None)
            else:
                for slot, field in zip(obj.slots, obj.class_info.fields):
                    if field.kind == "ref" and slot is not None:
                        queue.append(slot)
        return order
