"""Generational write barrier and remembered set.

Minor collections must see every mature→nursery reference without
scanning the whole mature space.  The write barrier intercepts reference
stores; when a non-nursery holder receives a nursery target, the *slot*
(holder, slot index) is remembered.  Slots — not values — are recorded,
so the collector always reads the slot's current content at GC time.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from repro.vm.objects import SPACE_NURSERY


class RememberedSet:
    """Slot-remembering set with duplicate suppression."""

    def __init__(self):
        self._entries: List[Tuple[object, int]] = []
        # (holder, slot) keyed by the holder object itself, not
        # id(holder): membership must survive a snapshot pickle,
        # and heap objects hash by identity.
        self._seen: Set[Tuple[object, int]] = set()
        self.barrier_stores = 0
        self.remembered = 0

    def record_store(self, holder, slot_index: int, value) -> bool:
        """Barrier slow path: called for every reference store.

        Returns True when the slot was (newly) remembered.
        """
        self.barrier_stores += 1
        if value is None or holder is None:
            return False
        if holder.space == SPACE_NURSERY:
            return False
        if value.space != SPACE_NURSERY:
            return False
        key = (holder, slot_index)
        if key in self._seen:
            return False
        self._seen.add(key)
        self._entries.append((holder, slot_index))
        self.remembered += 1
        return True

    def slots(self) -> Iterable[Tuple[object, int]]:
        """The remembered (holder, slot) pairs."""
        return list(self._entries)

    def targets(self):
        """Current nursery objects referenced from remembered slots."""
        for holder, index in self._entries:
            value = (holder.elements[index] if holder.is_array
                     else holder.slots[index])
            if value is not None and value.space == SPACE_NURSERY:
                yield value

    def clear(self) -> None:
        self._entries.clear()
        self._seen.clear()

    def __len__(self) -> int:
        return len(self._entries)
