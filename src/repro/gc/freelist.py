"""Segregated free-list allocator for the mature space (GenMS).

Matured objects are managed "using a free-list allocator that allocates
objects into 40 different size classes up to 4 KBytes" (section 5.1).
Blocks are carved from the mature region and split into equal cells of
one size class; freed cells return to their class's free list.

Co-allocation support: a cell may host *several* objects (the paper's GC
"just requests enough space to fit both objects" — the pair is assigned
to the size class of the combined size).  The sweep releases a cell only
once every inhabitant is dead, so :class:`Cell` keeps its inhabitant
list explicitly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.gc.sizeclass import SizeClasses

#: Blocks carved from the region are one VM page.
BLOCK_BYTES = 4096


class Cell:
    """One free-list cell: an address range of a fixed size class."""

    __slots__ = ("addr", "class_index", "size", "inhabitants", "charged")

    def __init__(self, addr: int, class_index: int, size: int):
        self.addr = addr
        self.class_index = class_index
        self.size = size
        #: Objects currently placed in this cell (1 normally, 2+ when
        #: co-allocated).
        self.inhabitants: List[object] = []
        #: Bytes this cell was charged for at allocation time (for the
        #: internal-fragmentation accounting).
        self.charged = 0

    def __repr__(self) -> str:
        return f"<cell {self.addr:#x} sz={self.size} n={len(self.inhabitants)}>"


class OutOfMemory(Exception):
    """The mature region is exhausted."""


class FreeListSpace:
    """Segregated-fit allocator over ``[base, base + region_bytes)``."""

    def __init__(self, base: int, region_bytes: int,
                 size_classes: Optional[SizeClasses] = None):
        self.base = base
        self.region_bytes = region_bytes
        self.size_classes = size_classes or SizeClasses()
        self._free: List[List[Cell]] = [[] for _ in self.size_classes.sizes]
        self._block_cursor = base
        #: Live cells indexed by address (for diagnostics and sweeping).
        self.cells: Dict[int, Cell] = {}
        # Accounting.
        self.bytes_committed = 0   # blocks carved from the region
        self.bytes_in_use = 0      # cell bytes currently allocated
        self.internal_fragmentation = 0  # slack of live allocations

    # -- allocation ------------------------------------------------------------

    def alloc(self, size: int) -> Cell:
        """Allocate a cell for ``size`` bytes.

        Raises :class:`ValueError` for sizes above the free-list limit
        (callers route those to the LOS) and :class:`OutOfMemory` when
        the region cannot supply a fresh block.
        """
        idx = self.size_classes.class_for(size)
        if idx is None:
            raise ValueError(f"size {size} exceeds free-list limit")
        bucket = self._free[idx]
        if not bucket:
            self._refill(idx)
            bucket = self._free[idx]
        cell = bucket.pop()
        cell.charged = size
        self.cells[cell.addr] = cell
        self.bytes_in_use += cell.size
        self.internal_fragmentation += cell.size - size
        return cell

    def _refill(self, idx: int) -> None:
        cell_size = self.size_classes.cell_bytes(idx)
        block_size = max(BLOCK_BYTES, cell_size)
        if self._block_cursor + block_size > self.base + self.region_bytes:
            raise OutOfMemory(
                f"mature region exhausted ({self.bytes_committed} committed)"
            )
        block = self._block_cursor
        self._block_cursor += block_size
        self.bytes_committed += block_size
        bucket = self._free[idx]
        for offset in range(0, block_size - cell_size + 1, cell_size):
            bucket.append(Cell(block + offset, idx, cell_size))

    def free(self, cell: Cell) -> None:
        """Return ``cell`` to its free list (unwinds all accounting)."""
        if self.cells.pop(cell.addr, None) is None:
            raise ValueError(f"double free of cell {cell.addr:#x}")
        self.bytes_in_use -= cell.size
        self.internal_fragmentation -= cell.size - cell.charged
        cell.inhabitants = []
        cell.charged = 0
        self._free[cell.class_index].append(cell)

    # -- queries ---------------------------------------------------------------

    @property
    def live_cells(self) -> int:
        return len(self.cells)

    def free_cells(self) -> int:
        return sum(len(b) for b in self._free)

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self._block_cursor

    def reset(self) -> None:
        """Drop all state (GenCopy's full collection rebuilds the space)."""
        self._free = [[] for _ in self.size_classes.sizes]
        self._block_cursor = self.base
        self.cells.clear()
        self.bytes_committed = 0
        self.bytes_in_use = 0
        self.internal_fragmentation = 0
