"""Generational mark-and-sweep plan (the paper's collector, section 5.1).

Young objects are bump-allocated in an Appel-style variable nursery;
minor collections promote survivors into a free-list-managed mature
space (40 size classes up to 4 KB); larger objects live in the LOS.
Full collections mark the whole heap and sweep free-list cells and LOS
entries.  Mature objects never move — which is exactly why the paper
introduces *co-allocation at promotion time* to recover spatial
locality: the placement decided during the nursery trace is final.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import GCConfig
from repro.gc import layout
from repro.gc.coalloc import CoallocationPolicy
from repro.gc.freelist import FreeListSpace
from repro.gc.plan import GCHooks, HeapExhausted, Plan
from repro.vm.objects import SPACE_LOS, SPACE_MATURE, SPACE_NURSERY


class GenMSPlan(Plan):
    """The FastAdaptiveGenMS analog, with optional HPM-guided co-allocation."""

    name = "genms"

    def __init__(self, config: GCConfig, hooks: Optional[GCHooks] = None,
                 coalloc: Optional[CoallocationPolicy] = None,
                 telemetry=None):
        super().__init__(config, hooks, coalloc, telemetry)
        # The region is the whole mature address range; the *budget* is
        # enforced against bytes in use, not address space.
        self.freelist = FreeListSpace(
            layout.MATURE_BASE, layout.MATURE_LIMIT - layout.MATURE_BASE
        )
        self.mature_objects: List[object] = []

    # -- sizing --------------------------------------------------------------

    def mature_footprint(self) -> int:
        return self.freelist.bytes_in_use + self.los.bytes_in_use

    # -- minor collection -------------------------------------------------------

    def collect_minor(self) -> None:
        if self._collecting:
            return
        self._collecting = True
        self._trace.begin("gc.minor", cat="gc")
        promoted_before = self.stats.promoted_objects
        try:
            cfg = self.config
            self.stats.minor_gcs += 1
            self._m_minor.inc()
            self.hooks.charge(cfg.minor_fixed_cost)
            order = self._trace_live_nursery(self._minor_roots())
            self.hooks.charge(cfg.scan_object_cost * len(order))
            for obj in order:
                if obj.space == SPACE_NURSERY:
                    self._promote(obj)
            self.nursery_objects = []
            self.remset.clear()
            footprint = self.mature_footprint()
            if footprint > self.stats.peak_footprint:
                self.stats.peak_footprint = footprint
            if cfg.pollute_caches:
                self.hooks.pollute_minor()
            if self.heap_pressure():
                self._full_locked()
            self._resize_nursery()
        finally:
            span = self._trace.end(
                promoted=self.stats.promoted_objects - promoted_before)
            if span is not None:
                self._m_pause.observe(span.dur)
            self._collecting = False

    def _promote(self, obj) -> None:
        """Move one nursery survivor to the mature space (or LOS).

        This is where co-allocation happens: "when the GC hits an object
        that contains reference fields ... it checks if it is possible to
        co-allocate the most frequently missed child object"
        (section 5.4).
        """
        cfg = self.config
        stats = self.stats
        pair = self.coalloc.select_child(obj) if self.coalloc else None
        if pair is not None:
            child, combined = pair
            cell = self.freelist.alloc(combined)
            gap = self.coalloc.gap_bytes
            obj.address = cell.addr
            child.address = cell.addr + obj.size + gap
            self.coalloc.lineage.placement_commit(obj.address, child.address)
            obj.space = child.space = SPACE_MATURE
            obj.cell = child.cell = cell
            obj.coallocated = child.coallocated = True
            cell.inhabitants.extend((obj, child))
            self.mature_objects.append(obj)
            self.mature_objects.append(child)
            stats.note_coalloc(obj.class_info.name)
            stats.promoted_objects += 2
            stats.promoted_bytes += combined
            self._m_promoted.inc(2)
            self._m_promoted_bytes.inc(combined)
            self.hooks.charge(int(cfg.copy_byte_cost * combined))
            return
        if self.coalloc is not None and not obj.is_array:
            stats.coalloc_rejected += 1
        size = obj.size
        if size > cfg.max_cell_bytes:
            addr = self.los.alloc(size)
            if addr is None:
                raise HeapExhausted("LOS exhausted during promotion")
            obj.address = addr
            obj.space = SPACE_LOS
            self.los_objects.append(obj)
        else:
            cell = self.freelist.alloc(size)
            obj.address = cell.addr
            obj.space = SPACE_MATURE
            obj.cell = cell
            cell.inhabitants.append(obj)
            self.mature_objects.append(obj)
        stats.promoted_objects += 1
        stats.promoted_bytes += size
        self._m_promoted.inc()
        self._m_promoted_bytes.inc(size)
        self.hooks.charge(int(cfg.copy_byte_cost * size))

    # -- full collection -----------------------------------------------------------

    def collect_full(self) -> None:
        if self._collecting:
            return
        self._collecting = True
        try:
            self._full_locked()
        finally:
            self._collecting = False

    def _full_locked(self) -> None:
        cfg = self.config
        self.stats.full_gcs += 1
        self._m_full.inc()
        self._trace.begin("gc.full", cat="gc")
        try:
            self._full_body(cfg)
        finally:
            span = self._trace.end()
            if span is not None:
                self._m_pause.observe(span.dur)

    def _full_body(self, cfg) -> None:
        self.hooks.charge(cfg.full_fixed_cost)
        live = self._trace_all_live()
        self.hooks.charge(cfg.mark_object_cost * len(live))

        # Sweep the free-list space: a cell is released only when *all*
        # its inhabitants are dead.
        survivors: List[object] = []
        dead = 0
        freed_cells = []
        for obj in self.mature_objects:
            if obj.gc_mark:
                survivors.append(obj)
            else:
                dead += 1
                cell = obj.cell
                cell.inhabitants.remove(obj)
                obj.cell = None
                if not cell.inhabitants:
                    freed_cells.append(cell)
        for cell in freed_cells:
            self.freelist.free(cell)
        self.hooks.charge(cfg.sweep_cell_cost * max(1, self.freelist.live_cells
                                                    + len(freed_cells)))
        self.mature_objects = survivors

        # Sweep the large-object space.
        los_survivors = []
        for obj in self.los_objects:
            if obj.gc_mark:
                los_survivors.append(obj)
            else:
                self.los.free(obj.address)
                dead += 1
        self.los_objects = los_survivors
        self.stats.swept_objects += dead

        for obj in live:
            obj.gc_mark = False
        if cfg.pollute_caches:
            self.hooks.pollute_full()
        if self.mature_footprint() > cfg.heap_bytes:
            raise HeapExhausted(
                f"live data ({self.mature_footprint()} B) exceeds the heap "
                f"budget ({cfg.heap_bytes} B)"
            )
        if not self.nursery_objects:
            self._resize_nursery()
