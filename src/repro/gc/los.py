"""Large-object space.

Objects above the free-list limit (4 KB) are "handled in a separate
portion of the heap" (section 5.1).  Allocation is first-fit over a free
list of address ranges with eager coalescing of neighbours; large
objects never move.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

PAGE = 4096


def _round_pages(size: int) -> int:
    return (size + PAGE - 1) & ~(PAGE - 1)


class LargeObjectSpace:
    """Page-granular first-fit allocator for big objects."""

    def __init__(self, base: int, region_bytes: int):
        self.base = base
        self.region_bytes = region_bytes
        #: Sorted list of free (addr, size) extents.
        self._free: List[Tuple[int, int]] = [(base, region_bytes)]
        #: addr -> rounded size of live allocations.
        self._live: Dict[int, int] = {}
        self.bytes_in_use = 0

    def alloc(self, size: int) -> "int | None":
        """Allocate ``size`` bytes (page-rounded); None when exhausted."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        need = _round_pages(size)
        for i, (addr, extent) in enumerate(self._free):
            if extent >= need:
                if extent == need:
                    del self._free[i]
                else:
                    self._free[i] = (addr + need, extent - need)
                self._live[addr] = need
                self.bytes_in_use += need
                return addr
        return None

    def free(self, addr: int) -> None:
        size = self._live.pop(addr, None)
        if size is None:
            raise ValueError(f"freeing unknown LOS object at {addr:#x}")
        self.bytes_in_use -= size
        self._insert_free(addr, size)

    def _insert_free(self, addr: int, size: int) -> None:
        """Insert an extent, coalescing with adjacent free neighbours."""
        free = self._free
        lo, hi = 0, len(free)
        while lo < hi:
            mid = (lo + hi) // 2
            if free[mid][0] < addr:
                lo = mid + 1
            else:
                hi = mid
        free.insert(lo, (addr, size))
        # Coalesce with successor, then predecessor.
        if lo + 1 < len(free) and free[lo][0] + free[lo][1] == free[lo + 1][0]:
            a, s = free[lo]
            free[lo] = (a, s + free[lo + 1][1])
            del free[lo + 1]
        if lo > 0 and free[lo - 1][0] + free[lo - 1][1] == free[lo][0]:
            a, s = free[lo - 1]
            free[lo - 1] = (a, s + free[lo][1])
            del free[lo]

    def contains(self, addr: int) -> bool:
        return addr in self._live

    @property
    def live_objects(self) -> int:
        return len(self._live)

    def free_extents(self) -> int:
        return len(self._free)
