"""Address-space layout of the simulated VM.

The heap is split into disjoint regions, mirroring the Jikes RVM / MMTk
organization the paper relies on:

* **stack** — thread stacks (frames of baseline-compiled code keep their
  operand stack and locals here),
* **statics** — the class statics table (JTOC analog),
* **code** — the *immortal* space where compiled machine code lives.
  The paper allocates compiled methods here precisely so that the copying
  GC never moves code, keeping the sorted method lookup table valid
  (section 4.2),
* **nursery** — bump-pointer-allocated young space,
* **mature** — free-list (GenMS) or semispace (GenCopy) old space,
* **los** — the large-object space for objects above the free-list limit.

Addresses are plain integers; the regions are generously sized and far
apart, so region membership can be tested by range.
"""

from __future__ import annotations

STACK_BASE = 0x0100_0000
STACK_LIMIT = 0x0600_0000

STATICS_BASE = 0x0600_0000
STATICS_LIMIT = 0x0800_0000

CODE_BASE = 0x0800_0000
CODE_LIMIT = 0x1000_0000

NURSERY_BASE = 0x1000_0000
NURSERY_LIMIT = 0x2000_0000

MATURE_BASE = 0x2000_0000
MATURE_LIMIT = 0x4000_0000

LOS_BASE = 0x4000_0000
LOS_LIMIT = 0x6000_0000


def in_code_space(addr: int) -> bool:
    """True when ``addr`` points into JIT-generated machine code.

    The sample collector drops addresses outside the VM-generated code
    (kernel space, native libraries) immediately — section 4.2.
    """
    return CODE_BASE <= addr < CODE_LIMIT


def in_nursery(addr: int) -> bool:
    return NURSERY_BASE <= addr < NURSERY_LIMIT


def in_mature(addr: int) -> bool:
    return MATURE_BASE <= addr < MATURE_LIMIT


def in_los(addr: int) -> bool:
    return LOS_BASE <= addr < LOS_LIMIT


def region_name(addr: int) -> str:
    """Human-readable region for diagnostics."""
    for base, limit, name in (
        (STACK_BASE, STACK_LIMIT, "stack"),
        (STATICS_BASE, STATICS_LIMIT, "statics"),
        (CODE_BASE, CODE_LIMIT, "code"),
        (NURSERY_BASE, NURSERY_LIMIT, "nursery"),
        (MATURE_BASE, MATURE_LIMIT, "mature"),
        (LOS_BASE, LOS_LIMIT, "los"),
    ):
        if base <= addr < limit:
            return name
    return "unmapped"
