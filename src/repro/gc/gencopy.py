"""Generational copying plan (Figure 6's comparator).

GenCopy pairs the same Appel-style nursery with a *semispace* mature
space: minor collections copy survivors to the mature to-space in
Cheney (breadth-first) order, and full collections evacuate the live
mature objects into the other semispace, again in traversal order.

Copying "generally enhances data locality" (section 5.1, [9]) because
allocation order follows the object graph — but it costs a copy
reserve: only half the mature budget is usable, so at small heaps
GenCopy collects far more often than GenMS.  Figure 6 shows the paper's
GenMS+co-allocation beating GenCopy at *all* heap sizes; the benchmark
harness reproduces that comparison.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import GCConfig
from repro.gc import layout
from repro.gc.bump import BumpAllocator
from repro.gc.plan import GCHooks, HeapExhausted, Plan
from repro.vm.objects import SPACE_LOS, SPACE_MATURE, SPACE_NURSERY

#: Address span reserved for each semispace.
_SEMI_SPAN = (layout.MATURE_LIMIT - layout.MATURE_BASE) // 2


class GenCopyPlan(Plan):
    """Generational copying collector with a semispace mature space."""

    name = "gencopy"

    def __init__(self, config: GCConfig, hooks: Optional[GCHooks] = None,
                 coalloc=None, telemetry=None):
        if coalloc is not None:
            raise ValueError(
                "co-allocation requires the free-list mature space (GenMS); "
                "a copying mature space re-decides placement at every GC"
            )
        super().__init__(config, hooks, None, telemetry)
        self._spaces = (
            BumpAllocator(layout.MATURE_BASE, _SEMI_SPAN),
            BumpAllocator(layout.MATURE_BASE + _SEMI_SPAN, _SEMI_SPAN),
        )
        self._to_index = 0
        self.mature_objects: List[object] = []

    @property
    def tospace(self) -> BumpAllocator:
        return self._spaces[self._to_index]

    # -- sizing --------------------------------------------------------------------

    def mature_footprint(self) -> int:
        # The copy reserve makes every mature byte cost two bytes of budget.
        return 2 * self.tospace.used + self.los.bytes_in_use

    # -- minor collection ---------------------------------------------------------------

    def collect_minor(self) -> None:
        if self._collecting:
            return
        self._collecting = True
        self._trace.begin("gc.minor", cat="gc")
        promoted_before = self.stats.promoted_objects
        try:
            cfg = self.config
            # Guarantee the copy reserve: if the to-space cannot absorb a
            # full nursery, evacuate the mature space first.
            if self.tospace.remaining < self.nursery.used:
                self._full_locked()
                if self.tospace.remaining < self.nursery.used:
                    raise HeapExhausted("copy reserve exhausted")
            self.stats.minor_gcs += 1
            self._m_minor.inc()
            self.hooks.charge(cfg.minor_fixed_cost)
            order = self._trace_live_nursery(self._minor_roots())
            self.hooks.charge(cfg.scan_object_cost * len(order))
            for obj in order:
                if obj.space == SPACE_NURSERY:
                    self._promote(obj)
            self.nursery_objects = []
            self.remset.clear()
            footprint = self.mature_footprint()
            if footprint > self.stats.peak_footprint:
                self.stats.peak_footprint = footprint
            if cfg.pollute_caches:
                self.hooks.pollute_minor()
            if self.heap_pressure():
                self._full_locked()
            self._resize_nursery()
        finally:
            span = self._trace.end(
                promoted=self.stats.promoted_objects - promoted_before)
            if span is not None:
                self._m_pause.observe(span.dur)
            self._collecting = False

    def _promote(self, obj) -> None:
        cfg = self.config
        size = obj.size
        if size > cfg.max_cell_bytes:
            addr = self.los.alloc(size)
            if addr is None:
                raise HeapExhausted("LOS exhausted during promotion")
            obj.address = addr
            obj.space = SPACE_LOS
            self.los_objects.append(obj)
        else:
            addr = self.tospace.alloc(size)
            if addr is None:
                raise HeapExhausted("to-space exhausted during promotion")
            obj.address = addr
            obj.space = SPACE_MATURE
            self.mature_objects.append(obj)
        self.stats.promoted_objects += 1
        self.stats.promoted_bytes += size
        self._m_promoted.inc()
        self._m_promoted_bytes.inc(size)
        self.hooks.charge(int(cfg.copy_byte_cost * size))

    # -- full collection ------------------------------------------------------------------

    def collect_full(self) -> None:
        if self._collecting:
            return
        self._collecting = True
        try:
            self._full_locked()
        finally:
            self._collecting = False

    def _full_locked(self) -> None:
        cfg = self.config
        self.stats.full_gcs += 1
        self._m_full.inc()
        self._trace.begin("gc.full", cat="gc")
        try:
            self._full_body(cfg)
        finally:
            span = self._trace.end()
            if span is not None:
                self._m_pause.observe(span.dur)

    def _full_body(self, cfg) -> None:
        self.hooks.charge(cfg.full_fixed_cost)
        live = self._trace_all_live()
        self.hooks.charge(cfg.mark_object_cost * len(live))

        # Evacuate live mature objects into the other semispace in BFS
        # order (this is the locality advantage of a copying collector:
        # parents and children end up near each other).
        from_index = self._to_index
        self._to_index = 1 - self._to_index
        target = self.tospace
        target.reset(_SEMI_SPAN)
        survivors: List[object] = []
        copied_bytes = 0
        dead = 0
        old_count = len(self.mature_objects)
        for obj in live:  # BFS order from the trace
            if obj.space == SPACE_MATURE:
                addr = target.alloc(obj.size)
                if addr is None:  # pragma: no cover - span is huge
                    raise HeapExhausted("semispace overflow")
                obj.address = addr
                survivors.append(obj)
                copied_bytes += obj.size
        dead += old_count - len(survivors)
        self.mature_objects = survivors
        self._spaces[from_index].reset(_SEMI_SPAN)
        self.hooks.charge(int(cfg.copy_byte_cost * copied_bytes))

        los_survivors = []
        for obj in self.los_objects:
            if obj.gc_mark:
                los_survivors.append(obj)
            else:
                self.los.free(obj.address)
                dead += 1
        self.los_objects = los_survivors
        self.stats.swept_objects += dead

        for obj in live:
            obj.gc_mark = False
        if cfg.pollute_caches:
            self.hooks.pollute_full()
        if self.mature_footprint() > cfg.heap_bytes:
            raise HeapExhausted(
                f"live data ({self.mature_footprint()} B, incl. copy "
                f"reserve) exceeds the heap budget ({cfg.heap_bytes} B)"
            )
        if not self.nursery_objects:
            self._resize_nursery()


def make_plan(name: str, config: GCConfig, hooks: Optional[GCHooks] = None,
              coalloc=None, telemetry=None) -> Plan:
    """Plan factory used by the VM: ``genms`` or ``gencopy``."""
    from repro.gc.genms import GenMSPlan

    if name == "genms":
        return GenMSPlan(config, hooks, coalloc, telemetry)
    if name == "gencopy":
        return GenCopyPlan(config, hooks, coalloc, telemetry)
    raise ValueError(f"unknown GC plan {name!r}")
