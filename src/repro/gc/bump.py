"""Bump-pointer allocator (nursery, and GenCopy's copy spaces).

The paper's collector "does bump-pointer allocation for young objects"
(section 5.1): allocation is a pointer increment bounded by a limit; when
the limit is reached the caller (the plan) must collect.
"""

from __future__ import annotations


class BumpAllocator:
    """Sequential allocation within ``[base, base + capacity)``."""

    def __init__(self, base: int, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.base = base
        self.capacity = capacity
        self.cursor = base

    @property
    def used(self) -> int:
        return self.cursor - self.base

    @property
    def remaining(self) -> int:
        return self.base + self.capacity - self.cursor

    def alloc(self, size: int) -> "int | None":
        """Allocate ``size`` bytes; returns the address or None when full."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        size = (size + 3) & ~3
        if self.cursor + size > self.base + self.capacity:
            return None
        addr = self.cursor
        self.cursor += size
        return addr

    def reset(self, capacity: "int | None" = None) -> None:
        """Empty the space (after evacuation); optionally resize it."""
        self.cursor = self.base
        if capacity is not None:
            if capacity <= 0:
                raise ValueError("capacity must be positive")
            self.capacity = capacity

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.cursor
