"""Garbage-collection statistics.

Several of the paper's figures read directly off these numbers: Figure 3
plots ``coallocated_objects``, Figure 5 folds ``gc_cycles`` into total
execution time, and the fragmentation counters quantify the
internal-fragmentation cost discussed for small heaps (section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class GCStats:
    minor_gcs: int = 0
    full_gcs: int = 0
    #: Objects promoted out of the nursery (lifetime total).
    promoted_objects: int = 0
    promoted_bytes: int = 0
    #: Objects placed by the co-allocation policy (parents + children),
    #: the quantity of Figure 3.
    coallocated_objects: int = 0
    coalloc_pairs: int = 0
    #: Pairs that matched a hot field but could not be co-allocated
    #: (combined size above the free-list limit, child already promoted..).
    coalloc_rejected: int = 0
    #: Cycles spent inside the collector (charged to execution time).
    gc_cycles: int = 0
    #: Objects reclaimed by full collections.
    swept_objects: int = 0
    #: Per-class co-allocation counts (diagnostics for the harness).
    coalloc_by_class: Dict[str, int] = field(default_factory=dict)
    #: Largest mature footprint observed at a collection (bytes) — the
    #: basis for per-benchmark minimum-heap estimates.
    peak_footprint: int = 0
    #: Allocation totals.
    alloc_objects: int = 0
    alloc_bytes: int = 0
    los_objects: int = 0

    def note_coalloc(self, class_name: str) -> None:
        self.coalloc_pairs += 1
        self.coallocated_objects += 2
        self.coalloc_by_class[class_name] = (
            self.coalloc_by_class.get(class_name, 0) + 1
        )

    def summary(self) -> str:
        return (
            f"GC: {self.minor_gcs} minor / {self.full_gcs} full, "
            f"promoted {self.promoted_objects} objs "
            f"({self.promoted_bytes} B), "
            f"co-allocated {self.coallocated_objects} objs "
            f"({self.coalloc_pairs} pairs, {self.coalloc_rejected} rejected), "
            f"{self.gc_cycles} cycles"
        )
