"""repro — Online Optimizations Driven by Hardware Performance Monitoring.

A from-scratch reproduction of Schneider, Payer & Gross (PLDI 2007):
a simulated Pentium-4-class machine with precise event-based sampling
(PEBS), a Java-like VM with baseline/optimizing JIT compilers and an
adaptive optimization system, a perfmon-style three-layer sampling
stack, generational mark-sweep and copying collectors, and the paper's
HPM-guided object co-allocation with online feedback.

Quick start::

    from repro import Program, SystemConfig, run_program
    from repro.workloads import suite

    workload = suite.build("db")
    result = run_program(workload.program,
                         SystemConfig(coalloc=True),
                         compilation_plan=workload.plan)
    print(result.cycles, result.counters["L1D_MISS"])

The experiment harness (``repro.harness``) regenerates every table and
figure of the paper's evaluation; see DESIGN.md and EXPERIMENTS.md.
"""

from repro.core.config import (
    GCConfig,
    JITConfig,
    MachineConfig,
    MonitorConfig,
    PEBSConfig,
    PerfmonConfig,
    SystemConfig,
    scaled_interval,
)
from repro.jit.aos import CompilationPlan
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.vm.program import Program
from repro.vm.vmcore import VM, RunResult, run_program

__version__ = "1.0.0"

__all__ = [
    "CompilationPlan",
    "GCConfig",
    "JITConfig",
    "MachineConfig",
    "MonitorConfig",
    "NULL_TELEMETRY",
    "PEBSConfig",
    "PerfmonConfig",
    "Program",
    "RunResult",
    "SystemConfig",
    "Telemetry",
    "VM",
    "run_program",
    "scaled_interval",
    "__version__",
]
