"""Span tracing on the simulated cycle clock.

Every timestamp comes from a ``clock`` callable that the VM binds to
its CPU cycle counter (:attr:`repro.hw.cpu.CPU.cycles`) — *never* wall
time.  A span therefore measures exactly the simulated cycles its
enclosed code charged to the clock: a ``gc.minor`` span's duration is
the minor collection's cost model output, a ``collector.poll`` span's
duration is the JNI round trip plus copy costs, and the gaps between
spans are attributable application time.  That is what makes the trace
comparable to the paper's Figure 2/5 cycle accounting.

Spans nest via an explicit stack (``begin``/``end`` or the ``span``
context manager); ``instant`` marks zero-duration events (interval
adaptations, feedback verdicts, buffer overflows); ``sample`` records a
named value over time (buffer fill levels) that exporters turn into
Chrome counter tracks.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional


class SpanEvent:
    """One finished span: ``[ts, ts+dur)`` on the simulated clock."""

    __slots__ = ("name", "cat", "ts", "dur", "depth", "args")

    def __init__(self, name: str, cat: str, ts: int, dur: int,
                 depth: int, args: Optional[dict]):
        self.name = name
        self.cat = cat
        self.ts = ts
        self.dur = dur
        self.depth = depth
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpanEvent({self.name!r}, cat={self.cat!r}, ts={self.ts}, "
                f"dur={self.dur})")


class InstantEvent:
    """A zero-duration marker on the simulated clock."""

    __slots__ = ("name", "cat", "ts", "args")

    def __init__(self, name: str, cat: str, ts: int, args: Optional[dict]):
        self.name = name
        self.cat = cat
        self.ts = ts
        self.args = args


class CounterSample:
    """A named value sampled at one point in simulated time."""

    __slots__ = ("name", "cat", "ts", "value")

    def __init__(self, name: str, cat: str, ts: int, value):
        self.name = name
        self.cat = cat
        self.ts = ts
        self.value = value


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer",)

    def __init__(self, tracer: "Tracer"):
        self._tracer = tracer

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self._tracer.end()
        return False


def _zero_clock() -> int:
    """Default clock before a VM binds its cycle counter.

    A module-level function (not a lambda) so an unbound tracer — and a
    tracer caught inside a run snapshot — pickles.  The VM re-binds the
    real cycle clock on construction and again on snapshot restore.
    """
    return 0


class Tracer:
    """Collects spans/instants/samples stamped with the simulated clock."""

    enabled = True

    #: Safety cap: events past this bound are counted, not stored, so a
    #: pathological run cannot exhaust memory.  Generous relative to any
    #: simulated execution in this repository.
    max_events = 500_000

    def __init__(self, clock: Optional[Callable[[], int]] = None):
        self.clock: Callable[[], int] = clock or _zero_clock
        self.spans: List[SpanEvent] = []
        self.instants: List[InstantEvent] = []
        self.samples: List[CounterSample] = []
        self.dropped_events = 0
        self._stack: List[list] = []  # [name, cat, ts, args]

    # -- spans -------------------------------------------------------------

    def begin(self, name: str, cat: str = "vm", **args) -> None:
        """Open a span; pair with :meth:`end` (stack discipline)."""
        self._stack.append([name, cat, self.clock(), args or None])

    def end(self, **extra) -> Optional[SpanEvent]:
        """Close the innermost open span; ``extra`` merges into its args."""
        name, cat, ts, args = self._stack.pop()
        if extra:
            args = {**(args or {}), **extra}
        now = self.clock()
        event = SpanEvent(name, cat, ts, now - ts, len(self._stack), args)
        if len(self.spans) < self.max_events:
            self.spans.append(event)
        else:
            self.dropped_events += 1
        return event

    def span(self, name: str, cat: str = "vm", **args) -> _SpanContext:
        """``with tracer.span("gc.minor", cat="gc"): ...``"""
        self.begin(name, cat, **args)
        return _SpanContext(self)

    def complete(self, name: str, cat: str, ts: int, dur: int,
                 **args) -> Optional[SpanEvent]:
        """Record an already-finished span with explicit timestamps.

        For observers that learn a span's extent only after the fact
        (e.g. a health phase is bounded once the *next* phase begins):
        ``begin``/``end`` would interleave wrongly with the live span
        stack, so the event is appended directly at depth 0.
        """
        event = SpanEvent(name, cat, ts, dur, 0, args or None)
        if len(self.spans) < self.max_events:
            self.spans.append(event)
        else:
            self.dropped_events += 1
        return event

    # -- point events ------------------------------------------------------

    def instant(self, name: str, cat: str = "vm", **args) -> None:
        if len(self.instants) < self.max_events:
            self.instants.append(
                InstantEvent(name, cat, self.clock(), args or None))
        else:
            self.dropped_events += 1

    def sample(self, name: str, value, cat: str = "vm") -> None:
        if len(self.samples) < self.max_events:
            self.samples.append(CounterSample(name, cat, self.clock(), value))
        else:
            self.dropped_events += 1

    # -- views -------------------------------------------------------------

    @property
    def open_spans(self) -> int:
        return len(self._stack)

    def categories(self) -> List[str]:
        """Distinct span/instant categories, in first-appearance order."""
        seen: Dict[str, None] = {}
        for ev in self.spans:
            seen.setdefault(ev.cat)
        for ev in self.instants:
            seen.setdefault(ev.cat)
        return list(seen)

    def end_cycle(self) -> int:
        """Last timestamp observed in any recorded event."""
        end = 0
        for ev in self.spans:
            end = max(end, ev.ts + ev.dur)
        for ev in self.instants:
            end = max(end, ev.ts)
        for ev in self.samples:
            end = max(end, ev.ts)
        return end


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpanContext()


class NullTracer(Tracer):
    """Tracer that records nothing; every operation is a no-op."""

    enabled = False

    def __init__(self):
        super().__init__()

    def begin(self, name: str, cat: str = "vm", **args) -> None:
        pass

    def end(self, **extra) -> Optional[SpanEvent]:
        return None

    def span(self, name: str, cat: str = "vm", **args) -> _NullSpanContext:
        return _NULL_SPAN

    def complete(self, name: str, cat: str, ts: int, dur: int,
                 **args) -> Optional[SpanEvent]:
        return None

    def instant(self, name: str, cat: str = "vm", **args) -> None:
        pass

    def sample(self, name: str, value, cat: str = "vm") -> None:
        pass
