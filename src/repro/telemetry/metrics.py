"""Labeled metrics with an O(1) hot path and a free "off" switch.

The registry is deliberately minimal — three instrument kinds, no
timestamps, no background threads — because it records *simulated*
quantities: every number in here is derived from the virtual cycle
clock and the deterministic event streams of the simulation, so a
sample-on-write model is exact, not approximate.

Two properties matter for the paper's methodology:

* **Recording must not perturb the simulation.**  Instruments never
  touch the cycle clock, the RNGs, or any VM state; they are pure
  observers.  The telemetry invariant test
  (``tests/test_telemetry.py``) asserts that runs with and without
  telemetry produce bit-identical :class:`~repro.vm.vmcore.RunResult`
  numbers.
* **Disabled telemetry must cost (almost) nothing.**  The null
  registry hands out one shared no-op instrument, so instrumented code
  holds a reference whose ``inc``/``set``/``observe`` are empty
  methods — no branches at the call sites.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class Counter:
    """Monotonically increasing count, optionally split by label values."""

    __slots__ = ("name", "help", "value", "_children")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0
        self._children: Dict[Tuple[str, ...], "Counter"] = {}

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def labels(self, *values: str) -> "Counter":
        """Child counter for one label-value combination (created lazily)."""
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            child = Counter(self.name)
            self._children[key] = child
        return child

    @property
    def children(self) -> Dict[Tuple[str, ...], "Counter"]:
        return self._children


class Gauge:
    """A value that can go up and down (buffer fills, current interval)."""

    __slots__ = ("name", "help", "value", "_children")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0
        self._children: Dict[Tuple[str, ...], "Gauge"] = {}

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def dec(self, amount: int = 1) -> None:
        self.value -= amount

    def labels(self, *values: str) -> "Gauge":
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            child = Gauge(self.name)
            self._children[key] = child
        return child

    @property
    def children(self) -> Dict[Tuple[str, ...], "Gauge"]:
        return self._children


class Histogram:
    """Power-of-two-bucketed distribution (batch sizes, pause cycles).

    ``observe(v)`` is O(1): the bucket index is ``v.bit_length()``, i.e.
    bucket *i* holds values in ``[2^(i-1), 2^i)``.
    """

    __slots__ = ("name", "help", "count", "sum", "buckets")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.count = 0
        self.sum = 0
        self.buckets: Dict[int, int] = {}

    def observe(self, value) -> None:
        self.count += 1
        self.sum += value
        idx = int(value).bit_length()
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def bucket_bounds(self) -> List[Tuple[int, int]]:
        """[(upper_bound_exclusive, count), ...] sorted by bound."""
        return sorted(((1 << i, n) for i, n in self.buckets.items()))


class MetricsRegistry:
    """Process-wide named-instrument registry.

    Factories are idempotent: asking twice for the same name returns the
    same instrument, so instrumented components can re-declare their
    metrics cheaply in ``__init__`` and share series across VM runs that
    reuse one :class:`~repro.telemetry.Telemetry`.
    """

    enabled = True

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _get(self, kind, name: str, help: str):
        inst = self._metrics.get(name)
        if inst is None:
            inst = kind(name, help)
            self._metrics[name] = inst
        elif not isinstance(inst, kind):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{type(inst).__name__}")
        return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get(Histogram, name, help)

    def get(self, name: str):
        """Look up an instrument by name (None when absent)."""
        return self._metrics.get(name)

    def instruments(self) -> List[Tuple[str, object]]:
        """All registered instruments as sorted (name, instrument)."""
        return sorted(self._metrics.items())

    def value(self, name: str, default=None):
        """Convenience: the scalar value of a counter/gauge by name."""
        inst = self._metrics.get(name)
        if inst is None:
            return default
        return inst.value

    # -- views -------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Plain-data dump: {name: value | {label-key: value} | hist-dict}."""
        out: Dict[str, object] = {}
        for name, inst in sorted(self._metrics.items()):
            if isinstance(inst, Histogram):
                out[name] = {"count": inst.count, "sum": inst.sum,
                             "buckets": {str(b): n
                                         for b, n in inst.bucket_bounds()}}
            elif inst.children:
                per_label = {",".join(k): c.value
                             for k, c in sorted(inst.children.items())}
                if inst.value:
                    per_label[""] = inst.value
                out[name] = per_label
            else:
                out[name] = inst.value
        return out

    def render(self) -> str:
        """Human-readable text dump, one instrument per line."""
        lines: List[str] = []
        for name, inst in sorted(self._metrics.items()):
            kind = type(inst).__name__.lower()
            if isinstance(inst, Histogram):
                lines.append(f"{kind} {name} count={inst.count} "
                             f"sum={inst.sum} mean={inst.mean:.1f}")
            else:
                if inst.value or not inst.children:
                    lines.append(f"{kind} {name} {inst.value}")
                for key, child in sorted(inst.children.items()):
                    lines.append(f"{kind} {name}{{{','.join(key)}}} "
                                 f"{child.value}")
        return "\n".join(lines)


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind."""

    __slots__ = ()
    name = "null"
    help = ""
    value = 0
    count = 0
    sum = 0
    mean = 0.0
    children: Dict[Tuple[str, ...], object] = {}
    buckets: Dict[int, int] = {}

    def inc(self, amount: int = 1) -> None:
        pass

    def dec(self, amount: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def labels(self, *values: str) -> "_NullInstrument":
        return self

    def bucket_bounds(self):
        return []


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """Registry whose instruments record nothing and store nothing."""

    enabled = False

    def __init__(self):
        super().__init__()

    def counter(self, name: str, help: str = "") -> Counter:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "") -> Histogram:
        return _NULL_INSTRUMENT  # type: ignore[return-value]


#: The default process-wide registry (the CLI uses a fresh one per run;
#: library users who want cross-run aggregation can share this).
REGISTRY = MetricsRegistry()
