"""Telemetry for the simulated HPM pipeline.

The paper's contribution is a *low-overhead monitoring pipeline*; this
package makes our reproduction of that pipeline observable instead of a
black box.  It bundles:

* :mod:`repro.telemetry.metrics` — a registry of labeled
  Counters/Gauges/Histograms with an O(1) hot path,
* :mod:`repro.telemetry.tracer` — span tracing stamped with the
  **simulated cycle clock** (never wall time),
* :mod:`repro.telemetry.export` — Chrome trace-event JSON (Perfetto),
  JSONL, and text-timeline exporters.

Usage::

    from repro.telemetry import Telemetry
    tele = Telemetry()
    result = run_program(program, SystemConfig(telemetry=tele))
    export.write_chrome_trace("out.json", tele.tracer, tele.metrics)

The hard invariant: telemetry is a pure observer.  Instrumented code
paths never charge cycles, consume randomness, or mutate VM state on
behalf of telemetry, so a run with telemetry enabled is cycle-identical
to a run without it — and the disabled default (:data:`NULL_TELEMETRY`)
routes every record into shared no-op instruments.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    REGISTRY,
)
from repro.telemetry.tracer import NullTracer, SpanEvent, Tracer


class Telemetry:
    """One metrics registry + one tracer, enabled or null."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None, enabled: bool = True):
        if enabled:
            self.metrics = metrics if metrics is not None else MetricsRegistry()
            self.tracer = tracer if tracer is not None else Tracer()
        else:
            self.metrics = metrics if metrics is not None \
                else NullMetricsRegistry()
            self.tracer = tracer if tracer is not None else NullTracer()
        self.enabled = enabled

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Point the tracer at a cycle clock (the VM binds its CPU's)."""
        if self.enabled:
            self.tracer.clock = clock


#: Shared disabled instance: recording through it stores nothing.  The
#: VM uses this whenever ``SystemConfig.telemetry`` is None (the
#: default), which is what keeps un-instrumented runs bit-identical to
#: the pre-telemetry behavior.
NULL_TELEMETRY = Telemetry(enabled=False)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NullTracer",
    "NULL_TELEMETRY",
    "REGISTRY",
    "SpanEvent",
    "Telemetry",
    "Tracer",
]
