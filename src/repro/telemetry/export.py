"""Trace and metrics exporters.

Three output forms:

* **Chrome trace-event JSON** (:func:`chrome_trace` /
  :func:`write_chrome_trace`) — loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  Each telemetry
  category (perfmon, controller, gc, jit, feedback, vm) becomes one
  named "thread" track; spans are complete (``ph: "X"``) events,
  instants are ``ph: "i"``, and counter samples become ``ph: "C"``
  counter tracks.  Timestamps are **simulated cycles**, not
  microseconds — the viewer's time axis reads in cycles.
* **JSONL** (:func:`write_jsonl`) — one self-describing JSON object per
  line (``type`` is ``span`` / ``instant`` / ``sample`` / ``metrics``),
  for ad-hoc analysis with ``jq`` or pandas.
* **Plain-text timeline** (:func:`format_timeline`) — a terminal Gantt
  chart of per-category occupancy over the run, used by the
  ``python -m repro timeline`` subcommand.
* **Prometheus text exposition** (:func:`prometheus_text`) — the
  metrics registry rendered in the Prometheus 0.0.4 text format, for
  scraping a run's end-state into a production dashboard.  Counters and
  gauges map directly; power-of-two histograms become cumulative
  ``_bucket{le=...}`` series.  Metric names are sanitized to the
  Prometheus grammar, and label values are escaped per the spec.
* **Collapsed stacks** (:func:`collapsed_stacks` /
  :func:`format_collapsed`) — the span tree folded into Brendan
  Gregg's one-line-per-stack format (``frame;frame;frame weight``),
  directly consumable by ``flamegraph.pl`` and speedscope.  Weights
  are **self** cycles: each span's duration minus its children's, so
  the flame graph's column widths sum to traced time exactly.  The
  same formatter renders the host-side cProfile stacks produced by
  ``repro bench profile``.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional

from repro.telemetry.metrics import (Counter, Gauge, Histogram,
                                     MetricsRegistry)
from repro.telemetry.tracer import Tracer

#: Stable thread-id assignment so traces from different runs line up.
_KNOWN_CATEGORIES = ("vm", "jit", "gc", "perfmon", "controller", "feedback")

_OCCUPANCY_CHARS = " ░▒▓█"


def _tid_map(tracer: Tracer) -> Dict[str, int]:
    tids: Dict[str, int] = {cat: i + 1
                            for i, cat in enumerate(_KNOWN_CATEGORIES)}
    for cat in tracer.categories():
        if cat not in tids:
            tids[cat] = len(tids) + 1
    return tids


def chrome_trace(tracer: Tracer,
                 metrics: Optional[MetricsRegistry] = None,
                 metadata: Optional[dict] = None) -> dict:
    """Build a Chrome trace-event document from recorded telemetry."""
    tids = _tid_map(tracer)
    events: List[dict] = [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "repro simulated VM"}},
    ]
    for cat, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append({"name": "thread_name", "ph": "M", "pid": 1,
                       "tid": tid, "args": {"name": cat}})
    for ev in tracer.spans:
        record = {"name": ev.name, "cat": ev.cat, "ph": "X",
                  "ts": ev.ts, "dur": ev.dur, "pid": 1,
                  "tid": tids[ev.cat]}
        if ev.args:
            record["args"] = ev.args
        events.append(record)
    for ev in tracer.instants:
        record = {"name": ev.name, "cat": ev.cat, "ph": "i", "s": "t",
                  "ts": ev.ts, "pid": 1, "tid": tids.get(ev.cat, 0)}
        if ev.args:
            record["args"] = ev.args
        events.append(record)
    for ev in tracer.samples:
        events.append({"name": ev.name, "cat": ev.cat, "ph": "C",
                       "ts": ev.ts, "pid": 1, "tid": tids.get(ev.cat, 0),
                       "args": {"value": ev.value}})
    other = {"clock": "simulated cycles"}
    if tracer.dropped_events:
        other["dropped_events"] = tracer.dropped_events
    if metadata:
        other.update(metadata)
    doc = {"traceEvents": events, "displayTimeUnit": "ns",
           "otherData": other}
    if metrics is not None:
        doc["metrics"] = metrics.snapshot()
    return doc


def write_chrome_trace(path: str, tracer: Tracer,
                       metrics: Optional[MetricsRegistry] = None,
                       metadata: Optional[dict] = None) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer, metrics, metadata), fh)
        fh.write("\n")


def jsonl_records(tracer: Tracer,
                  metrics: Optional[MetricsRegistry] = None) -> List[dict]:
    records: List[dict] = []
    for ev in tracer.spans:
        records.append({"type": "span", "name": ev.name, "cat": ev.cat,
                        "ts": ev.ts, "dur": ev.dur, "depth": ev.depth,
                        "args": ev.args})
    for ev in tracer.instants:
        records.append({"type": "instant", "name": ev.name, "cat": ev.cat,
                        "ts": ev.ts, "args": ev.args})
    for ev in tracer.samples:
        records.append({"type": "sample", "name": ev.name, "cat": ev.cat,
                        "ts": ev.ts, "value": ev.value})
    records.sort(key=lambda r: r["ts"])
    if metrics is not None:
        records.append({"type": "metrics", "data": metrics.snapshot()})
    return records


def write_jsonl(path: str, tracer: Tracer,
                metrics: Optional[MetricsRegistry] = None) -> None:
    with open(path, "w") as fh:
        for record in jsonl_records(tracer, metrics):
            fh.write(json.dumps(record))
            fh.write("\n")


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

#: Characters legal in a Prometheus metric name (after the first char).
_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, prefix: str) -> str:
    clean = _PROM_NAME_RE.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return prefix + clean


def _prom_escape(value: str) -> str:
    """Escape a label value per the text-format spec: backslash,
    double-quote, and newline."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_help(text: str) -> str:
    """HELP lines escape backslash and newline (quotes are legal)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_labels(key: tuple) -> str:
    return "{" + ",".join(
        f'label{i}="{_prom_escape(v)}"' for i, v in enumerate(key)) + "}"


def prometheus_text(metrics: MetricsRegistry,
                    prefix: str = "repro_") -> str:
    """Render the registry in the Prometheus text exposition format.

    Labeled instruments carry their (positional) label values as
    ``label0`` / ``label1`` / ... — the registry records values, not
    label names.  The output ends with a newline, as scrapers expect.
    """
    lines: List[str] = []
    for name, inst in metrics.instruments():
        pname = _prom_name(name, prefix)
        if inst.help:
            lines.append(f"# HELP {pname} {_prom_help(inst.help)}")
        if isinstance(inst, Histogram):
            lines.append(f"# TYPE {pname} histogram")
            cumulative = 0
            for bound, count in inst.bucket_bounds():
                cumulative += count
                lines.append(f'{pname}_bucket{{le="{bound}"}} {cumulative}')
            lines.append(f'{pname}_bucket{{le="+Inf"}} {inst.count}')
            lines.append(f"{pname}_sum {inst.sum}")
            lines.append(f"{pname}_count {inst.count}")
            continue
        kind = "counter" if isinstance(inst, Counter) else "gauge"
        lines.append(f"# TYPE {pname} {kind}")
        if inst.value or not inst.children:
            lines.append(f"{pname} {inst.value}")
        for key, child in sorted(inst.children.items()):
            lines.append(f"{pname}{_prom_labels(key)} {child.value}")
    return "\n".join(lines) + "\n"


def write_prometheus(path: str, metrics: MetricsRegistry,
                     prefix: str = "repro_") -> None:
    with open(path, "w") as fh:
        fh.write(prometheus_text(metrics, prefix))


#: One sample line: name, optional {labels}, numeric value.
_PROM_SERIES_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{((?:[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\",?)*)\})?"
    r" (-?(?:[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?|\+?Inf|NaN))$")

_PROM_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def parse_prometheus_text(text: str) -> Dict[str, dict]:
    """Parse (and validate) Prometheus 0.0.4 text exposition.

    Returns ``{metric_name: {"type": str|None, "help": str|None,
    "samples": [(series_name, labels_dict, value), ...]}}`` where
    histogram ``_bucket``/``_sum``/``_count`` series are grouped under
    their base metric name.  Raises :class:`ValueError` on any grammar
    violation — an unparseable line, a ``TYPE`` naming an unknown kind,
    a non-cumulative histogram, or missing final newline — so scrapers
    and tests can treat "parses" as a hard gate, not a best effort.
    """
    if text and not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    metrics: Dict[str, dict] = {}

    def base_name(series: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            if series.endswith(suffix):
                stripped = series[:-len(suffix)]
                entry = metrics.get(stripped)
                if entry is not None and entry["type"] == "histogram":
                    return stripped
        return series

    def entry_for(name: str) -> dict:
        return metrics.setdefault(
            name, {"type": None, "help": None, "samples": []})

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            if not parts or not parts[0]:
                raise ValueError(f"line {lineno}: malformed HELP")
            entry_for(parts[0])["help"] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split(" ")
            if len(parts) != 2 or parts[1] not in _PROM_TYPES:
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            entry_for(parts[0])["type"] = parts[1]
            continue
        if line.startswith("#"):
            continue  # plain comment
        match = _PROM_SERIES_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: not a valid sample: {line!r}")
        series, raw_labels, raw_value = match.groups()
        labels: Dict[str, str] = {}
        if raw_labels:
            for pair in re.findall(
                    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"',
                    raw_labels):
                labels[pair[0]] = pair[1]
        value = float(raw_value.replace("Inf", "inf"))
        entry_for(base_name(series))["samples"].append(
            (series, labels, value))

    for name, entry in metrics.items():
        if entry["type"] != "histogram":
            continue
        buckets = [(lbl.get("le"), val) for ser, lbl, val in entry["samples"]
                   if ser == name + "_bucket"]
        if not buckets:
            raise ValueError(f"histogram {name} has no buckets")
        if buckets[-1][0] != "+Inf":
            raise ValueError(f"histogram {name} missing le=\"+Inf\" bucket")
        counts = [val for _le, val in buckets]
        if counts != sorted(counts):
            raise ValueError(f"histogram {name} buckets not cumulative")
        series_names = {ser for ser, _lbl, _val in entry["samples"]}
        for required in (name + "_sum", name + "_count"):
            if required not in series_names:
                raise ValueError(f"histogram {name} missing {required}")
    return metrics


# ---------------------------------------------------------------------------
# Collapsed stacks (flamegraph.pl / speedscope)
# ---------------------------------------------------------------------------

def _collapsed_frame(cat: str, name: str) -> str:
    """One frame label: spaces separate stack from weight, semicolons
    separate frames, so neither may appear inside a frame.  Span names
    that already carry their category prefix (``gc.minor`` in cat
    ``gc``) are not double-prefixed."""
    label = name if name.startswith(cat + ".") else f"{cat}.{name}"
    return label.replace(" ", "_").replace(";", ":")


def collapsed_stacks(tracer: Tracer) -> Dict[tuple, int]:
    """Fold the recorded span tree into ``{(frame, ...): self_cycles}``.

    Frames are ``cat.name``.  Nesting is reconstructed from each
    span's recorded depth (spans arrive in end order; sorting by start
    time plus the depth invariant recovers the tree), and every span
    contributes its *self* time — duration minus enclosed children —
    to the stack ending at it.
    """
    out: Dict[tuple, int] = {}
    stack: List[list] = []  # [span, child_cycles]

    def pop() -> None:
        span, child_cycles = stack.pop()
        self_cycles = max(span.dur - child_cycles, 0)
        if stack:
            stack[-1][1] += span.dur
        if self_cycles > 0:
            path = tuple(_collapsed_frame(s.cat, s.name)
                         for s, _ in stack) + (
                _collapsed_frame(span.cat, span.name),)
            out[path] = out.get(path, 0) + self_cycles

    for ev in sorted(tracer.spans, key=lambda e: (e.ts, e.depth, -e.dur)):
        while len(stack) > ev.depth:
            pop()
        stack.append([ev, 0])
    while stack:
        pop()
    return out


def format_collapsed(stacks: Dict[tuple, int]) -> str:
    """Render ``{path_tuple: weight}`` in the collapsed-stack format.

    One ``frame;frame;frame weight`` line per stack, sorted by path
    for determinism; zero- and negative-weight stacks are dropped.
    The result ends with a newline when non-empty.
    """
    lines = [f"{';'.join(path)} {int(weight)}"
             for path, weight in sorted(stacks.items())
             if int(weight) > 0]
    return "\n".join(lines) + ("\n" if lines else "")


def write_collapsed(path: str, stacks: Dict[tuple, int]) -> int:
    """Write collapsed stacks to ``path``; returns the line count."""
    text = format_collapsed(stacks)
    with open(path, "w") as fh:
        fh.write(text)
    return text.count("\n")


# ---------------------------------------------------------------------------
# Text timeline
# ---------------------------------------------------------------------------

def _occupancy_row(spans, start: int, bucket: int, width: int) -> str:
    """One category lane: per-column fraction of the bucket inside spans."""
    filled = [0.0] * width
    for ev in spans:
        lo = ev.ts
        hi = ev.ts + max(ev.dur, 1)  # zero-cost spans still show up
        first = max(0, int((lo - start) // bucket))
        last = min(width - 1, int((hi - 1 - start) // bucket))
        for col in range(first, last + 1):
            c_lo = start + col * bucket
            c_hi = c_lo + bucket
            overlap = min(hi, c_hi) - max(lo, c_lo)
            if overlap > 0:
                filled[col] += overlap / bucket
    out = []
    for frac in filled:
        if frac <= 0:
            out.append(_OCCUPANCY_CHARS[0])
        else:
            idx = min(len(_OCCUPANCY_CHARS) - 1,
                      1 + int(min(frac, 1.0) * (len(_OCCUPANCY_CHARS) - 2)))
            out.append(_OCCUPANCY_CHARS[idx])
    return "".join(out)


def format_timeline(tracer: Tracer, total_cycles: Optional[int] = None,
                    width: int = 72, top_spans: int = 3) -> str:
    """Render the trace as a text Gantt of per-category occupancy.

    Each row is one telemetry category (gc, perfmon, ...); each column
    covers ``total/width`` simulated cycles; the glyph encodes how much
    of that slice the category's spans occupied (' ' none .. '█' all).
    """
    end = max(total_cycles or 0, tracer.end_cycle())
    if end <= 0 or not tracer.spans:
        return "timeline: no spans recorded"
    width = max(10, width)
    bucket = max(1, (end + width - 1) // width)
    by_cat: Dict[str, list] = {}
    for ev in tracer.spans:
        by_cat.setdefault(ev.cat, []).append(ev)
    lanes = [cat for cat in _KNOWN_CATEGORIES if cat in by_cat]
    lanes += [cat for cat in by_cat if cat not in lanes]

    label_w = max(len(cat) for cat in lanes)
    lines = [f"timeline: 0 .. {end:,} cycles "
             f"({bucket:,} cycles/column, {len(tracer.spans)} spans)"]
    for cat in lanes:
        spans = by_cat[cat]
        busy = sum(ev.dur for ev in spans)
        row = _occupancy_row(spans, 0, bucket, width)
        lines.append(f"{cat:>{label_w}} |{row}| "
                     f"{len(spans)} spans, {busy:,} cy "
                     f"({busy / end:.1%})")
    if top_spans:
        lines.append("")
        lines.append("longest spans:")
        for ev in sorted(tracer.spans, key=lambda e: -e.dur)[:top_spans]:
            lines.append(f"  {ev.cat}/{ev.name}: {ev.dur:,} cy "
                         f"@ {ev.ts:,}")
    return "\n".join(lines)
