"""Trace and metrics exporters.

Three output forms:

* **Chrome trace-event JSON** (:func:`chrome_trace` /
  :func:`write_chrome_trace`) — loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  Each telemetry
  category (perfmon, controller, gc, jit, feedback, vm) becomes one
  named "thread" track; spans are complete (``ph: "X"``) events,
  instants are ``ph: "i"``, and counter samples become ``ph: "C"``
  counter tracks.  Timestamps are **simulated cycles**, not
  microseconds — the viewer's time axis reads in cycles.
* **JSONL** (:func:`write_jsonl`) — one self-describing JSON object per
  line (``type`` is ``span`` / ``instant`` / ``sample`` / ``metrics``),
  for ad-hoc analysis with ``jq`` or pandas.
* **Plain-text timeline** (:func:`format_timeline`) — a terminal Gantt
  chart of per-category occupancy over the run, used by the
  ``python -m repro timeline`` subcommand.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import Tracer

#: Stable thread-id assignment so traces from different runs line up.
_KNOWN_CATEGORIES = ("vm", "jit", "gc", "perfmon", "controller", "feedback")

_OCCUPANCY_CHARS = " ░▒▓█"


def _tid_map(tracer: Tracer) -> Dict[str, int]:
    tids: Dict[str, int] = {cat: i + 1
                            for i, cat in enumerate(_KNOWN_CATEGORIES)}
    for cat in tracer.categories():
        if cat not in tids:
            tids[cat] = len(tids) + 1
    return tids


def chrome_trace(tracer: Tracer,
                 metrics: Optional[MetricsRegistry] = None,
                 metadata: Optional[dict] = None) -> dict:
    """Build a Chrome trace-event document from recorded telemetry."""
    tids = _tid_map(tracer)
    events: List[dict] = [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "repro simulated VM"}},
    ]
    for cat, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append({"name": "thread_name", "ph": "M", "pid": 1,
                       "tid": tid, "args": {"name": cat}})
    for ev in tracer.spans:
        record = {"name": ev.name, "cat": ev.cat, "ph": "X",
                  "ts": ev.ts, "dur": ev.dur, "pid": 1,
                  "tid": tids[ev.cat]}
        if ev.args:
            record["args"] = ev.args
        events.append(record)
    for ev in tracer.instants:
        record = {"name": ev.name, "cat": ev.cat, "ph": "i", "s": "t",
                  "ts": ev.ts, "pid": 1, "tid": tids.get(ev.cat, 0)}
        if ev.args:
            record["args"] = ev.args
        events.append(record)
    for ev in tracer.samples:
        events.append({"name": ev.name, "cat": ev.cat, "ph": "C",
                       "ts": ev.ts, "pid": 1, "tid": tids.get(ev.cat, 0),
                       "args": {"value": ev.value}})
    other = {"clock": "simulated cycles"}
    if tracer.dropped_events:
        other["dropped_events"] = tracer.dropped_events
    if metadata:
        other.update(metadata)
    doc = {"traceEvents": events, "displayTimeUnit": "ns",
           "otherData": other}
    if metrics is not None:
        doc["metrics"] = metrics.snapshot()
    return doc


def write_chrome_trace(path: str, tracer: Tracer,
                       metrics: Optional[MetricsRegistry] = None,
                       metadata: Optional[dict] = None) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer, metrics, metadata), fh)
        fh.write("\n")


def jsonl_records(tracer: Tracer,
                  metrics: Optional[MetricsRegistry] = None) -> List[dict]:
    records: List[dict] = []
    for ev in tracer.spans:
        records.append({"type": "span", "name": ev.name, "cat": ev.cat,
                        "ts": ev.ts, "dur": ev.dur, "depth": ev.depth,
                        "args": ev.args})
    for ev in tracer.instants:
        records.append({"type": "instant", "name": ev.name, "cat": ev.cat,
                        "ts": ev.ts, "args": ev.args})
    for ev in tracer.samples:
        records.append({"type": "sample", "name": ev.name, "cat": ev.cat,
                        "ts": ev.ts, "value": ev.value})
    records.sort(key=lambda r: r["ts"])
    if metrics is not None:
        records.append({"type": "metrics", "data": metrics.snapshot()})
    return records


def write_jsonl(path: str, tracer: Tracer,
                metrics: Optional[MetricsRegistry] = None) -> None:
    with open(path, "w") as fh:
        for record in jsonl_records(tracer, metrics):
            fh.write(json.dumps(record))
            fh.write("\n")


# ---------------------------------------------------------------------------
# Text timeline
# ---------------------------------------------------------------------------

def _occupancy_row(spans, start: int, bucket: int, width: int) -> str:
    """One category lane: per-column fraction of the bucket inside spans."""
    filled = [0.0] * width
    for ev in spans:
        lo = ev.ts
        hi = ev.ts + max(ev.dur, 1)  # zero-cost spans still show up
        first = max(0, int((lo - start) // bucket))
        last = min(width - 1, int((hi - 1 - start) // bucket))
        for col in range(first, last + 1):
            c_lo = start + col * bucket
            c_hi = c_lo + bucket
            overlap = min(hi, c_hi) - max(lo, c_lo)
            if overlap > 0:
                filled[col] += overlap / bucket
    out = []
    for frac in filled:
        if frac <= 0:
            out.append(_OCCUPANCY_CHARS[0])
        else:
            idx = min(len(_OCCUPANCY_CHARS) - 1,
                      1 + int(min(frac, 1.0) * (len(_OCCUPANCY_CHARS) - 2)))
            out.append(_OCCUPANCY_CHARS[idx])
    return "".join(out)


def format_timeline(tracer: Tracer, total_cycles: Optional[int] = None,
                    width: int = 72, top_spans: int = 3) -> str:
    """Render the trace as a text Gantt of per-category occupancy.

    Each row is one telemetry category (gc, perfmon, ...); each column
    covers ``total/width`` simulated cycles; the glyph encodes how much
    of that slice the category's spans occupied (' ' none .. '█' all).
    """
    end = max(total_cycles or 0, tracer.end_cycle())
    if end <= 0 or not tracer.spans:
        return "timeline: no spans recorded"
    width = max(10, width)
    bucket = max(1, (end + width - 1) // width)
    by_cat: Dict[str, list] = {}
    for ev in tracer.spans:
        by_cat.setdefault(ev.cat, []).append(ev)
    lanes = [cat for cat in _KNOWN_CATEGORIES if cat in by_cat]
    lanes += [cat for cat in by_cat if cat not in lanes]

    label_w = max(len(cat) for cat in lanes)
    lines = [f"timeline: 0 .. {end:,} cycles "
             f"({bucket:,} cycles/column, {len(tracer.spans)} spans)"]
    for cat in lanes:
        spans = by_cat[cat]
        busy = sum(ev.dur for ev in spans)
        row = _occupancy_row(spans, 0, bucket, width)
        lines.append(f"{cat:>{label_w}} |{row}| "
                     f"{len(spans)} spans, {busy:,} cy "
                     f"({busy / end:.1%})")
    if top_spans:
        lines.append("")
        lines.append("longest spans:")
        for ev in sorted(tracer.spans, key=lambda e: -e.dur)[:top_spans]:
            lines.append(f"  {ev.cat}/{ev.name}: {ev.dur:,} cy "
                         f"@ {ev.ts:,}")
    return "\n".join(lines)
