"""Optimization assessment and reversion (sections 5.3 and 6.4, Figure 8).

"A system that includes feedback based on a performance reporting unit
allows an assessment of the effectiveness of an optimization step.  If
the transformation improved performance, the system can proceed
normally.  If the transformation reduced performance, either a
different optimization step can be performed or it is possible to
revert to the old code."

:class:`FeedbackEngine` tracks *experiments*: a placement (or other)
policy change applied at a known period, with the pre-change miss rate
as the baseline.  After each measurement period the engine compares the
moving-average rate against the baseline; a sustained regression (the
paper's "simple heuristic": several consecutive worse periods) triggers
the experiment's revert callback.  Already-placed mature objects remain
in place — "only newly promoted objects will follow the new copying
policy" — so the rate recovers gradually, exactly Figure 8's shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Callable, List, Optional

from repro.core.config import MonitorConfig
from repro.core.monitor import OnlineMonitor
from repro.health import NULL_HEALTH
from repro.lineage import NULL_LEDGER
from repro.telemetry import NULL_TELEMETRY
from repro.vm.model import ClassInfo, FieldInfo


@dataclass
class Experiment:
    """One policy change under observation."""

    name: str
    #: Field whose miss rate judges the experiment.
    field: FieldInfo
    #: Called when the engine decides the change hurt performance.
    revert: Callable[[], None]
    #: Pre-change events/period (the comparison baseline).
    baseline_rate: float
    started_period: int
    #: Consecutive regressed periods observed so far.
    regressed_periods: int = 0
    active: bool = True
    reverted: bool = False
    reverted_period: Optional[int] = None
    #: Rate history while the experiment ran (diagnostics / Figure 8).
    observed: List[float] = dataclass_field(default_factory=list)


class FeedbackEngine:
    """Judges policy experiments against monitored miss rates."""

    def __init__(self, monitor: OnlineMonitor, config: MonitorConfig,
                 telemetry=None, lineage=None, health=None):
        self.monitor = monitor
        self.config = config
        self.experiments: List[Experiment] = []
        self.lineage = lineage if lineage is not None else NULL_LEDGER
        self.health = health if health is not None else NULL_HEALTH
        tele = telemetry or NULL_TELEMETRY
        self._trace = tele.tracer
        metrics = tele.metrics
        self._m_started = metrics.counter(
            "feedback.experiments_started",
            "policy experiments begun, by experiment name")
        self._m_reverts = metrics.counter(
            "feedback.reverts",
            "experiments reverted after regression, by experiment name")

    def begin_experiment(self, name: str, field: FieldInfo,
                         revert: Callable[[], None],
                         baseline_window: Optional[int] = None) -> Experiment:
        """Start observing a policy change applied *now*.

        The baseline is the moving-average rate over the periods before
        the change.
        """
        baseline = self.monitor.recent_rate(field, baseline_window)
        exp = Experiment(name=name, field=field, revert=revert,
                         baseline_rate=baseline,
                         started_period=len(self.monitor.periods))
        self.experiments.append(exp)
        eid = self.lineage.experiment_begin(
            name, field, baseline, exp.started_period,
            self.monitor.sample_counts.get(field, 0),
            self.config.revert_threshold, self.config.revert_patience)
        self.health.on_experiment_begin(name, field.qualified_name,
                                        baseline, exp.started_period, eid)
        self._m_started.labels(name).inc()
        self._trace.instant("feedback.experiment_begin", cat="feedback",
                            experiment=name, field=field.qualified_name,
                            baseline_rate=baseline)
        return exp

    def on_period(self) -> None:
        """Evaluate all active experiments after a period closed."""
        cfg = self.config
        current_period = len(self.monitor.periods)
        for exp in self.experiments:
            if not exp.active:
                continue
            # Let at least one full period elapse under the new policy.
            if current_period <= exp.started_period:
                continue
            rate = self.monitor.recent_rate(exp.field)
            exp.observed.append(rate)
            threshold = exp.baseline_rate * (1.0 + cfg.revert_threshold)
            regressed = exp.baseline_rate > 0 and rate > threshold
            if regressed:
                exp.regressed_periods += 1
            else:
                exp.regressed_periods = 0
            eid = self.lineage.experiment_verdict(exp.name, rate, threshold,
                                                  regressed,
                                                  exp.regressed_periods)
            self.health.on_experiment_verdict(exp.name, rate, threshold,
                                              regressed,
                                              exp.regressed_periods, eid)
            self._trace.instant("feedback.verdict", cat="feedback",
                                experiment=exp.name, rate=rate,
                                regressed=regressed,
                                streak=exp.regressed_periods)
            if exp.regressed_periods >= cfg.revert_patience:
                exp.revert()
                exp.active = False
                exp.reverted = True
                exp.reverted_period = current_period
                eid = self.lineage.experiment_revert(
                    exp.name, exp.field, current_period, rate,
                    exp.baseline_rate, cfg.revert_threshold)
                self.health.on_experiment_revert(
                    exp.name, exp.field.qualified_name, current_period,
                    rate, exp.baseline_rate, eid)
                self._m_reverts.labels(exp.name).inc()
                self._trace.instant("feedback.revert", cat="feedback",
                                    experiment=exp.name,
                                    period=current_period)

    def active_experiments(self) -> List[Experiment]:
        return [e for e in self.experiments if e.active]

    def reverted_experiments(self) -> List[Experiment]:
        return [e for e in self.experiments if e.reverted]
