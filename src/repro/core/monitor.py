"""The online monitoring module (sections 5.3 and 6.4).

Attributed samples accumulate in two structures:

* **cumulative per-field counts** — "a per-reference event count which
  tells the runtime system how many misses occurred when dereferencing
  the corresponding access path expressions",
* **per-period time series** — "the rate of events for each reference
  field is measured throughout the execution", enabling phase-change
  detection and the optimization-assessment figures (7a: cumulative
  misses for ``String::value``; 7b: the per-period rate and its
  3-period moving average).

It also maintains the per-class hot-field ranking the GC consults when
promoting ("the VM keeps a list [of] the reference fields for each
class type sorted by number of associated cache misses", section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import MonitorConfig
from repro.vm.model import ClassInfo, FieldInfo


def moving_average(values: List[int], window: int) -> List[float]:
    """Trailing moving average over ``window`` periods ("the moving
    average over the last 3 periods ... follows the general trend
    without heavy local fluctuations", section 6.4).  Module-level so
    portable run records can smooth cached series without a monitor."""
    out: List[float] = []
    for i in range(len(values)):
        lo = max(0, i - window + 1)
        chunk = values[lo:i + 1]
        out.append(sum(chunk) / len(chunk))
    return out


@dataclass
class PeriodRecord:
    """One closed measurement period."""

    index: int
    end_cycle: int
    #: Events attributed per field during this period.
    field_counts: Dict[FieldInfo, int]
    #: All attributed events in the period.
    total: int


class OnlineMonitor:
    """Per-field / per-class event accounting with period aggregation.

    Counts are *estimated event counts*: each sample is weighted by the
    sampling interval in force when it was taken (inverse sampling
    probability), so the reported numbers approximate true miss counts
    even under the adaptive "auto" interval.  Hot-field *guidance*
    thresholds use raw sample counts (``sample_counts``) — evidence is
    a number of observations, not an extrapolation.
    """

    def __init__(self, config: MonitorConfig):
        self.config = config
        self.cumulative: Dict[FieldInfo, int] = {}
        self._current: Dict[FieldInfo, int] = {}
        self.periods: List[PeriodRecord] = []
        #: field -> raw number of samples attributed (guidance evidence).
        self.sample_counts: Dict[FieldInfo, int] = {}
        #: method -> estimated events landing in its code (all resolved
        #: samples, attributed or not): machine-level feedback usable by
        #: any part of the runtime, e.g. to steer recompilation.
        self.method_events: Dict[object, int] = {}
        #: class -> field -> cumulative estimated events (hot ranking).
        self._by_class: Dict[ClassInfo, Dict[FieldInfo, int]] = {}
        self._hot_cache: Dict[ClassInfo, Optional[FieldInfo]] = {}
        self.total_attributed = 0

    # -- recording -----------------------------------------------------------

    def record(self, field: FieldInfo, weight: int = 1) -> None:
        """Credit one sample, scaled to ``weight`` estimated events."""
        self.cumulative[field] = self.cumulative.get(field, 0) + weight
        self._current[field] = self._current.get(field, 0) + weight
        self.sample_counts[field] = self.sample_counts.get(field, 0) + 1
        self.total_attributed += 1
        klass = field.declaring_class
        per_class = self._by_class.setdefault(klass, {})
        per_class[field] = per_class.get(field, 0) + weight
        self._hot_cache.pop(klass, None)

    def record_method(self, method, weight: int = 1) -> None:
        """Credit a resolved sample to the method containing its EIP."""
        self.method_events[method] = self.method_events.get(method, 0) + weight

    def ranked_methods(self) -> List[Tuple[object, int]]:
        """Methods by estimated event count, hottest first."""
        return sorted(self.method_events.items(), key=lambda kv: -kv[1])

    def close_period(self, now_cycle: int) -> PeriodRecord:
        """End the current measurement period and open the next."""
        record = PeriodRecord(len(self.periods), now_cycle,
                              dict(self._current),
                              sum(self._current.values()))
        self.periods.append(record)
        self._current = {}
        return record

    # -- hot-field ranking (read by the co-allocation policy) --------------------

    def ranked_fields(self, klass: ClassInfo) -> List[Tuple[FieldInfo, int]]:
        """Reference fields of ``klass`` sorted by miss count, hottest first."""
        per_class = self._by_class.get(klass, {})
        return sorted(per_class.items(), key=lambda kv: -kv[1])

    def hot_field(self, klass: ClassInfo,
                  min_samples: int = 1) -> Optional[FieldInfo]:
        """The hottest reference field of ``klass``, or None below the
        evidence threshold (``min_samples`` raw attributed samples)."""
        if klass in self._hot_cache:
            hot = self._hot_cache[klass]
        else:
            ranked = self.ranked_fields(klass)
            hot = ranked[0][0] if ranked else None
            self._hot_cache[klass] = hot
        if hot is None:
            return None
        if self.sample_counts.get(hot, 0) < min_samples:
            return None
        return hot

    # -- time series (Figures 7 and 8) ---------------------------------------------

    def series(self, field: FieldInfo) -> List[Tuple[int, int]]:
        """Per-period counts for ``field``: [(end_cycle, events), ...]."""
        return [(p.end_cycle, p.field_counts.get(field, 0))
                for p in self.periods]

    def cumulative_series(self, field: FieldInfo) -> List[Tuple[int, int]]:
        """Running total per period — Figure 7(a)'s shape."""
        out = []
        total = 0
        for p in self.periods:
            total += p.field_counts.get(field, 0)
            out.append((p.end_cycle, total))
        return out

    def class_series(self, klass: ClassInfo) -> List[Tuple[int, int]]:
        """Per-period events summed over all fields of ``klass``."""
        out = []
        for p in self.periods:
            events = sum(n for f, n in p.field_counts.items()
                         if f.declaring_class is klass)
            out.append((p.end_cycle, events))
        return out

    def moving_average(self, values: List[int],
                       window: Optional[int] = None) -> List[float]:
        """Trailing moving average at the configured window (see the
        module-level :func:`moving_average`)."""
        return moving_average(values, window or
                              self.config.moving_average_window)

    def recent_rate(self, field: FieldInfo,
                    window: Optional[int] = None) -> float:
        """Moving-average events/period for ``field`` over recent periods."""
        w = window or self.config.moving_average_window
        recent = self.periods[-w:]
        if not recent:
            return 0.0
        return sum(p.field_counts.get(field, 0) for p in recent) / len(recent)

    def detect_phase_changes(self, field: FieldInfo,
                             threshold: float = 0.5,
                             window: Optional[int] = None) -> List[int]:
        """Detect sustained level shifts in a field's miss rate.

        "The rate of events for each reference field is measured
        throughout the execution and this allows detecting phase changes
        in the execution" (section 5.3).  A phase change is reported at
        period *i* when the moving average shifts by more than
        ``threshold`` (relative) against the previous window and the new
        level persists for a full window.  Returns the period indices.
        """
        w = window or self.config.moving_average_window
        values = [n for _, n in self.series(field)]
        if len(values) < 2 * w:
            return []
        changes: List[int] = []
        i = w
        while i + w <= len(values):
            before = sum(values[i - w:i]) / w
            after = sum(values[i:i + w]) / w
            base = max(before, 1e-9)
            if abs(after - before) / base > threshold:
                changes.append(i)
                i += w  # skip past the shift before looking again
            else:
                i += 1
        return changes
