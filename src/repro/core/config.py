"""Central configuration for the simulated platform.

Every tunable of the reproduction lives here: the machine model (a
Pentium-4-like memory hierarchy), the PEBS sampling unit, the cycle costs
charged for monitoring work, the garbage-collector cost model, and the
scaling factors that map the paper's absolute quantities onto our
laptop-scale simulated workloads (see DESIGN.md section 2, "Scaling").

The defaults reproduce the experimental platform of section 6.1 of the
paper: a 3 GHz Pentium 4 with a 16 KB L1 data cache (128-byte lines),
a 1 MB L2 cache, hardware stream prefetching, and a PEBS unit whose
sampling intervals have their low 8 bits randomized.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace


# ---------------------------------------------------------------------------
# Scaling: the paper's workloads execute ~10^11 instructions; ours execute
# ~10^5..10^7.  Sampling intervals and polling periods are divided by
# INTERVAL_SCALE so the *density* of samples per miss matches the paper.
# ---------------------------------------------------------------------------
INTERVAL_SCALE = 100

#: The paper's headline sampling intervals (Figure 2 / Figure 3), expressed
#: in events between samples *before* scaling.
PAPER_INTERVALS = {"25K": 25_000, "50K": 50_000, "100K": 100_000}


def fastpath_level(setting: "bool | int | None" = None) -> int:
    """Resolve the translated-interpreter knob to an execution level.

    * ``0`` — the reference if/elif interpreter (the oracle),
    * ``1`` — per-instruction closure-threaded dispatch (the PR-3 path),
    * ``2`` — superblock dispatch: straight-line runs fused into single
      closures with batched memory simulation (the default).

    An explicit ``setting`` (``SystemConfig.fastpath``; ``True`` means
    "fastest", ``False`` means "reference", an int names a level) wins;
    otherwise the ``REPRO_FASTPATH`` environment variable decides
    (``0``/``1``/anything else → level 2).  The knob selects *how*
    guest code is executed, never *what* it computes: all three levels
    are bit-identical (cycles, instructions, every event counter, PEBS
    samples), which is why the knob is deliberately absent from
    :class:`~repro.harness.runner.RunSpec` and therefore from the
    disk-cache key.
    """
    # ``is True`` / ``is False`` before the int clamp: True == 1 in
    # Python, but a bool True means "the fastest level", not level 1.
    if setting is True:
        return 2
    if setting is False:
        return 0
    if setting is not None:
        return min(2, max(0, int(setting)))
    raw = os.environ.get("REPRO_FASTPATH", "2")
    if raw == "0":
        return 0
    if raw == "1":
        return 1
    return 2


def fastpath_enabled(setting: "bool | int | None" = None) -> bool:
    """Whether any translated level is selected (level > 0).

    Kept as the boolean surface provenance manifests and older call
    sites use: levels 1 and 2 are bit-identical, so a bool is the only
    distinction a run record can ever observe.
    """
    return fastpath_level(setting) > 0


def scaled_interval(name: str) -> int:
    """Return the scaled sampling interval for a paper interval name.

    >>> scaled_interval("25K")
    250
    """
    return PAPER_INTERVALS[name] // INTERVAL_SCALE


@dataclass
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    line_bytes: int
    ways: int
    hit_latency: int

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways


@dataclass
class TLBConfig:
    """Geometry and miss penalty of the data TLB."""

    entries: int = 64
    page_bytes: int = 4096
    miss_penalty: int = 30


@dataclass
class MachineConfig:
    """The simulated CPU and memory hierarchy.

    Latencies are in cycles and follow the published characteristics of the
    3 GHz Pentium 4 (Northwood/Prescott era) used in the paper.
    """

    #: L1 data cache: 16 KB, 128-byte lines (two 64-byte sectors; the paper
    #: counts 128-byte lines), 8-way.
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(16 * 1024, 128, 8, 2)
    )
    #: L2 unified cache: 128-byte lines, 8-way, 18-cycle hits.  The
    #: paper's machine has 1 MB; we default to a 128 KB *scaled* L2 so
    #: that the benchmarks' scaled working sets stand in the same
    #: relation to L2 capacity as the paper's (db's working set is many
    #: times L2 there; DESIGN.md §2).  Set ``size_bytes`` back to 1 MB
    #: for an unscaled machine.
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(128 * 1024, 128, 8, 18)
    )
    tlb: TLBConfig = field(default_factory=TLBConfig)
    #: Main-memory access latency in cycles.
    memory_latency: int = 200
    #: Base cost of one machine instruction (superscalar average).
    instruction_cost: int = 1
    #: Hardware stream prefetcher (P4 "hardware-based prefetching of data
    #: streams"): number of sequential-miss observations required to start
    #: a stream, and prefetch depth in lines.
    prefetch_trigger: int = 2
    prefetch_depth: int = 4
    #: Clock rate, used only to convert the paper's wall-clock polling
    #: intervals into cycles.
    clock_hz: int = 3_000_000_000


@dataclass
class PEBSConfig:
    """The precise event-based sampling unit (section 3.1 / 4.1).

    One sample is 40 bytes (EIP plus the register file).  The CPU's
    microcode routine stores samples into the debug-store (DS) area and an
    interrupt is raised when the buffer fills to a watermark.
    """

    sample_bytes: int = 40
    #: DS save-area capacity in samples (~4 KB buffer).
    ds_capacity: int = 100
    #: Interrupt watermark as a fraction of the DS capacity.
    watermark: float = 0.9
    #: Number of low interval-counter bits randomized per sample
    #: (section 6.1: "8 bits in our configuration").
    randomize_bits: int = 8
    #: Cycles charged for the microcode sample-save routine, per sample.
    microcode_cost: int = 40
    #: Cycles charged per PMU interrupt (kernel entry/exit + handler).
    interrupt_cost: int = 2000
    #: Cycles charged per sample copied from the DS area to the kernel
    #: buffer inside the interrupt handler.
    kernel_copy_cost: int = 8


@dataclass
class PerfmonConfig:
    """The three-layer sample collection stack (section 4.1).

    Polling intervals are expressed in cycles; the paper's 10 ms - 1000 ms
    adaptive range at 3 GHz is scaled by INTERVAL_SCALE to match our
    shorter executions.
    """

    #: Kernel sample buffer capacity (samples).
    kernel_buffer_capacity: int = 2048
    #: User-space library buffer: 80 KB / 40-byte samples = 2048 samples.
    user_buffer_bytes: int = 80 * 1024
    #: Cycles charged per sample copied kernel -> user (single batched copy,
    #: no per-sample JNI calls).
    user_copy_cost: int = 4
    #: Fixed cycles charged per poll (the JNI round trip).
    poll_cost: int = 400
    #: Adaptive polling range in cycles.  Paper: 10 ms .. 1000 ms on
    #: multi-minute executions; scaled to our run lengths (DESIGN.md §2)
    #: so a poll happens every ~0.5-20% of a typical execution.
    poll_min_cycles: int = 50_000
    poll_max_cycles: int = 2_000_000
    #: Collector-thread adaptivity targets (samples per poll): halve the
    #: polling interval above the high watermark, back off below the low.
    poll_batch_high: int = 64
    poll_batch_low: int = 8
    #: Cycles charged per sample for mapping raw EIPs to methods, bytecode
    #: and fields in the monitoring module.
    map_cost: int = 150


@dataclass
class MonitorConfig:
    """The online monitoring module (sections 4.2, 5.3, 6.4)."""

    #: Length of one measurement period in cycles; per-field miss-rate time
    #: series (Figure 7) are aggregated per period.
    period_cycles: int = 200_000
    #: Moving-average window, in periods, for the Figure 7(b) trend line.
    moving_average_window: int = 3
    #: Auto mode targets this many samples per simulated second
    #: (paper: "a default of 200 samples/sec provides reasonable accuracy").
    auto_samples_per_second: int = 200
    #: Number of consecutive regressed periods before a placement policy is
    #: reverted (Figure 8's "simple heuristic").
    revert_patience: int = 3
    #: Relative miss-rate increase that counts as a regression.
    revert_threshold: float = 0.25
    #: Monitoring duty cycle (the paper's suggested extension, section
    #: 6.3: "the overhead could be reduced by turning off monitoring for
    #: most of the time" when a program yields nothing to optimize).
    #: After ``duty_idle_periods`` consecutive periods without a single
    #: attributed sample, sampling is paused for ``duty_off_periods``
    #: periods, then re-armed to re-check for phase changes.
    duty_cycle: bool = False
    duty_idle_periods: int = 4
    duty_off_periods: int = 12


@dataclass
class GCConfig:
    """Memory management (section 5.1) and its cost model."""

    #: Total heap budget in bytes (mature + nursery).  Set per benchmark by
    #: the harness as a multiple of the measured minimum heap.
    heap_bytes: int = 4 * 1024 * 1024
    #: Free-list allocator: number of size classes and the maximum cell
    #: size (VM default setting of the paper: 40 classes up to 4 KB).
    size_classes: int = 40
    max_cell_bytes: int = 4096
    #: Smallest nursery the Appel-style variable nursery may shrink to.
    min_nursery_bytes: int = 64 * 1024
    #: Upper bound on the variable nursery.  Real deployments bound the
    #: nursery (Jikes' -X:gc:boundedNursery); for the simulator this is
    #: also the scaling knob that keeps promotion activity per simulated
    #: instruction in the paper's regime (DESIGN.md §2): without a bound,
    #: a 4x heap's nursery would swallow our scaled allocation volume and
    #: no minor GC would ever run.
    max_nursery_bytes: int = 192 * 1024
    #: Cost model (cycles).  Calibrated so that the baseline GenMS
    #: slowdown at the minimum heap lands in the 1.1-1.4x band typical
    #: of the paper-era measurements.
    minor_fixed_cost: int = 8000
    full_fixed_cost: int = 36000
    scan_object_cost: int = 40
    copy_byte_cost: float = 1.8
    sweep_cell_cost: int = 9
    mark_object_cost: int = 30
    write_barrier_cost: int = 2
    alloc_cost: int = 12
    #: Whether a minor GC invalidates the L1/TLB (cache pollution model) and
    #: a full GC additionally invalidates the L2.
    pollute_caches: bool = True


@dataclass
class JITConfig:
    """The adaptive optimization system (section 3.2) and compiler costs."""

    #: Virtual-time interval of the AOS call-stack sampling timer (cycles).
    aos_timer_cycles: int = 40_000
    #: A method whose top-of-stack sample count reaches this threshold is
    #: considered for recompilation.
    hot_samples: int = 6
    #: Compile cost per bytecode, per compiler (cycles).
    baseline_cost_per_bc: int = 30
    opt_cost_per_bc: int = 400
    #: Estimated speedup of opt-compiled code over baseline code, used by
    #: the cost/benefit model.
    opt_speedup: float = 2.5
    #: Method inlining in the opt compiler (small static callees).
    inline: bool = True
    inline_max_bytecodes: int = 24
    #: Class-hierarchy-based devirtualization of monomorphic callv sites.
    devirtualize: bool = True


@dataclass
class SystemConfig:
    """Top-level configuration bundle for one VM execution."""

    machine: MachineConfig = field(default_factory=MachineConfig)
    pebs: PEBSConfig = field(default_factory=PEBSConfig)
    perfmon: PerfmonConfig = field(default_factory=PerfmonConfig)
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    gc: GCConfig = field(default_factory=GCConfig)
    jit: JITConfig = field(default_factory=JITConfig)
    #: Monitoring on/off and the sampling interval (events between samples,
    #: already scaled).  ``None`` interval selects the adaptive "auto" mode.
    monitoring: bool = True
    sampling_interval: "int | None" = None
    #: Monitored event name (see repro.hw.events).
    sampled_event: str = "L1D_MISS"
    #: Object co-allocation in the GC on/off.
    coalloc: bool = True
    #: Software method-boundary instrumentation profiling (the Georges
    #: et al. alternative to HPM sampling; see repro.core.counting).
    method_profiling: bool = False
    #: GC plan: "genms" (paper) or "gencopy" (Figure 6 comparator).
    gc_plan: str = "genms"
    #: Guest-code execution strategy: ``True`` forces the fastest
    #: translated level (superblocks), ``False`` the reference if/elif
    #: interpreter, an int names a level (0 reference, 1 per-instruction
    #: closures, 2 superblocks), ``None`` (default) defers to
    #: ``REPRO_FASTPATH``.  Every level produces bit-identical results;
    #: see :func:`fastpath_level`.
    fastpath: "bool | int | None" = None
    #: Seed for all randomized components.
    seed: int = 42
    #: Optional :class:`repro.telemetry.Telemetry` instance.  ``None``
    #: (the default) selects the shared null telemetry: no metrics, no
    #: spans, and — by the telemetry invariant — bit-identical simulated
    #: cycle counts to an instrumented-but-disabled run.
    telemetry: "object | None" = None
    #: Optional :class:`repro.lineage.DecisionLedger`.  ``None`` (the
    #: default) selects the shared null ledger; like telemetry, the
    #: ledger is a pure observer, so attaching one leaves every
    #: simulated number bit-identical.
    lineage: "object | None" = None
    #: Optional :class:`repro.health.HealthMonitor`.  ``None`` (the
    #: default) selects the shared null monitor; the third pure
    #: observer — phase segmentation and pathology detection read the
    #: interval stream without perturbing a single simulated number.
    health: "object | None" = None

    def copy(self, **overrides) -> "SystemConfig":
        """Return a shallow copy with ``overrides`` applied."""
        return replace(self, **overrides)


DEFAULT_CONFIG = SystemConfig()
