"""The online-optimization controller.

Glue between the sampling stack and the consumers of performance data:

* receives raw sample batches from the collector thread and resolves /
  attributes them (charging the per-sample mapping cost to the clock),
* owns the :class:`OnlineMonitor` (per-field counts, period series),
  the per-class hot-field oracle the GC's co-allocation policy reads,
  and the :class:`FeedbackEngine` (Figure 8's revert logic),
* runs the measurement-period timer and the adaptive "auto" sampling
  interval ("adapts the sampling interval to obtain a certain number of
  samples per second", section 6.3).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.config import MonitorConfig, PerfmonConfig
from repro.core.feedback import FeedbackEngine
from repro.core.mapping import SampleResolver
from repro.core.monitor import OnlineMonitor
from repro.jit.codecache import CodeCache, CompiledMethod
from repro.lineage import NULL_LEDGER
from repro.telemetry import NULL_TELEMETRY
from repro.vm.model import ClassInfo, FieldInfo

#: Bounds for the adaptive sampling interval (events between samples).
AUTO_MIN_INTERVAL = 50
AUTO_MAX_INTERVAL = 100_000
AUTO_INITIAL_INTERVAL = 1000
#: Auto mode's target, expressed per measurement period.  Corresponds to
#: the paper's "default of 200 samples/sec" after the DESIGN.md scaling.
AUTO_TARGET_PER_PERIOD = 25


class OnlineOptimizationController:
    """Consumes samples; produces optimization guidance."""

    def __init__(self, codecache: CodeCache,
                 monitor_config: MonitorConfig,
                 perfmon_config: PerfmonConfig,
                 charge: Callable[[int], None],
                 set_sampling_interval: Optional[Callable[[int], None]] = None,
                 auto_interval: bool = False,
                 sampling_switch: Optional[Callable[[bool], None]] = None,
                 telemetry=None, lineage=None, health=None,
                 interval_tap: Optional[Callable] = None):
        self.monitor_config = monitor_config
        self.resolver = SampleResolver(codecache)
        self.monitor = OnlineMonitor(monitor_config)
        self.telemetry = telemetry or NULL_TELEMETRY
        self.lineage = lineage if lineage is not None else NULL_LEDGER
        #: Health observer hook: called with each closed period's
        #: observation vector (see repro.perfmon.tap).  Pure read-only.
        self._interval_tap = interval_tap
        self.feedback = FeedbackEngine(self.monitor, monitor_config,
                                       telemetry=self.telemetry,
                                       lineage=self.lineage,
                                       health=health)
        self.perfmon_config = perfmon_config
        self._trace = self.telemetry.tracer
        metrics = self.telemetry.metrics
        self._m_batches = metrics.counter(
            "controller.batches", "sample batches processed")
        self._m_samples = metrics.counter(
            "controller.samples", "raw EIP samples received")
        self._m_attributed = metrics.counter(
            "controller.attributed_samples",
            "samples attributed to a reference field")
        self._m_interval = metrics.gauge(
            "controller.sampling_interval",
            "current hardware sampling interval (events between samples)")
        self._m_duty_pauses = metrics.counter(
            "controller.duty_pauses", "duty-cycle sampling pauses")
        self.charge = charge
        self._set_interval = set_sampling_interval
        self.auto_interval = auto_interval
        self.current_interval = AUTO_INITIAL_INTERVAL
        self._samples_this_period = 0
        #: Duty cycle (paper section 6.3's suggested extension): pause
        #: sampling after a run of fruitless periods.
        self._sampling_switch = sampling_switch
        self._attributed_this_period = 0
        self._idle_periods = 0
        self._paused_periods_left = 0
        self.sampling_paused = False
        self.duty_pauses = 0
        #: Minimum attributed *samples* on a field before it may steer
        #: the GC.  The warm-up this imposes is what produces Figure 7a's
        #: bend: survivors promoted before guidance exists stay scattered
        #: until churn replaces them.
        self.min_samples_for_guidance = 6
        self.batches_processed = 0

    # -- compilation-time hook -----------------------------------------------------

    def on_method_compiled(self, cm: CompiledMethod) -> None:
        """Run the instructions-of-interest filter for a fresh method."""
        self.resolver.register_method(cm)

    # -- sample path ------------------------------------------------------------------

    def process_samples(self, eips: List[int]) -> int:
        """Resolve and attribute one batch; returns attributed count.

        Samples are "buffered and processed in batches inside the VM"
        (section 5.3); the per-sample mapping cost is charged to the
        simulated clock — it is a real part of the Figure 2 overhead.
        """
        if not eips:
            return 0
        self.batches_processed += 1
        self._trace.begin("controller.batch", cat="controller")
        self.charge(self.perfmon_config.map_cost * len(eips))
        attributed = 0
        record = self.monitor.record
        resolve = self.resolver.resolve
        # Each sample stands for ~interval events (inverse sampling
        # probability), so the monitor's counts estimate true miss counts
        # even under the adaptive interval.
        weight = max(1, self.current_interval)
        record_method = self.monitor.record_method
        per_field = {} if self.lineage.enabled else None
        for eip in eips:
            resolved = resolve(eip)
            if resolved is not None:
                record_method(resolved.cm.method, weight)
                if resolved.field is not None:
                    record(resolved.field, weight)
                    attributed += 1
                    if per_field is not None:
                        acc = per_field.get(resolved.field)
                        if acc is None:
                            per_field[resolved.field] = [1, weight]
                        else:
                            acc[0] += 1
                            acc[1] += weight
        if per_field is not None:
            self.lineage.attribution(
                len(eips), attributed, weight,
                tuple((f, c[0], c[1]) for f, c in per_field.items()))
        self._samples_this_period += len(eips)
        self._attributed_this_period += attributed
        self._m_batches.inc()
        self._m_samples.inc(len(eips))
        self._m_attributed.inc(attributed)
        self._trace.end(samples=len(eips), attributed=attributed)
        return attributed

    # -- GC guidance --------------------------------------------------------------------

    def hot_field(self, klass: ClassInfo) -> Optional[FieldInfo]:
        """The hottest (most-missed) reference field of ``klass``.

        This is the oracle the co-allocation policy queries at promotion
        time; it returns None until enough evidence accumulated, which is
        why co-allocation "kicks in" only after the warm-up (Figure 7a).
        """
        return self.monitor.hot_field(klass, self.min_samples_for_guidance)

    # -- period timer -------------------------------------------------------------------

    def on_period(self, now_cycle: int) -> None:
        """Close a measurement period; adapt the interval; judge experiments."""
        self._trace.instant("controller.period_close", cat="controller",
                            period=len(self.monitor.periods),
                            samples=self._samples_this_period,
                            attributed=self._attributed_this_period)
        period = self.monitor.close_period(now_cycle)
        if self.lineage.enabled:
            self.lineage.period_close(period.index,
                                      self._samples_this_period,
                                      self._attributed_this_period)
            self.lineage.ranking_snapshot(
                period.index, self._ranking_for_lineage())
        self.feedback.on_period()
        if self._interval_tap is not None:
            self._interval_tap(period, now_cycle,
                               self._samples_this_period,
                               self._attributed_this_period)
        if self.auto_interval and self._set_interval is not None \
                and not self.sampling_paused:
            self._adapt_interval()
        if self.monitor_config.duty_cycle:
            self._duty_cycle_tick()
        self._samples_this_period = 0
        self._attributed_this_period = 0

    def _ranking_for_lineage(self, max_classes: int = 16,
                             max_fields: int = 4) -> tuple:
        """The hot-field ranking as the ledger records it: the hottest
        classes (by total estimated events), each with its top fields as
        ``(field, events, raw_samples)``.  Bounded so a snapshot per
        period stays cheap on benchmarks with many sampled classes."""
        monitor = self.monitor
        ranked = []
        for klass, per_class in monitor._by_class.items():
            ranked.append((klass, sum(per_class.values())))
        ranked.sort(key=lambda kv: -kv[1])
        out = []
        for klass, _total in ranked[:max_classes]:
            fields = tuple(
                (field, events, monitor.sample_counts.get(field, 0))
                for field, events in monitor.ranked_fields(klass)[:max_fields])
            out.append((klass, fields))
        return tuple(out)

    def _duty_cycle_tick(self) -> None:
        """Pause sampling after fruitless periods; re-arm later.

        Implements the paper's suggestion (section 6.3): "Note that
        monitoring is turned on throughout the whole execution even when
        no candidate objects are found.  The overhead could be reduced
        by turning off monitoring for most of the time in such a
        scenario."
        """
        cfg = self.monitor_config
        if self.sampling_paused:
            self._paused_periods_left -= 1
            if self._paused_periods_left <= 0:
                self.sampling_paused = False
                self._idle_periods = 0
                if self._sampling_switch is not None:
                    self._sampling_switch(True)
                self._trace.instant("controller.duty_resume",
                                    cat="controller")
            return
        if self._attributed_this_period == 0:
            self._idle_periods += 1
        else:
            self._idle_periods = 0
        if self._idle_periods >= cfg.duty_idle_periods:
            self.sampling_paused = True
            self.duty_pauses += 1
            self._m_duty_pauses.inc()
            self._paused_periods_left = cfg.duty_off_periods
            if self._sampling_switch is not None:
                self._sampling_switch(False)
            self._trace.instant("controller.duty_pause", cat="controller",
                                idle_periods=self._idle_periods,
                                off_periods=cfg.duty_off_periods)

    def _adapt_interval(self) -> None:
        observed = self._samples_this_period
        target = AUTO_TARGET_PER_PERIOD
        if observed == 0:
            # No events sampled: halve the interval to regain coverage.
            new = max(AUTO_MIN_INTERVAL, self.current_interval // 2)
        else:
            scaled = int(self.current_interval * observed / target)
            new = min(AUTO_MAX_INTERVAL, max(AUTO_MIN_INTERVAL, scaled))
        if new != self.current_interval:
            self._trace.instant("controller.interval_adapted",
                                cat="controller",
                                old=self.current_interval, new=new,
                                observed=observed)
            self.current_interval = new
            self._set_interval(new)
            self._m_interval.set(new)

    # -- summaries ----------------------------------------------------------------------

    def _summary_items(self) -> List[tuple]:
        """The canonical end-of-run statistics, as (key, value) pairs.

        Single source of truth: :meth:`summary` (the dict the harness
        and CLI read) and :meth:`publish_metrics` (the
        ``controller.summary.*`` gauges in the telemetry registry) are
        both views of this list.
        """
        stats = self.resolver.stats
        return [
            ("attributed", stats.attributed),
            ("resolved", stats.resolved),
            ("dropped_foreign", stats.dropped_foreign),
            ("dropped_baseline", stats.dropped_baseline),
            ("unattributed", stats.unattributed),
            ("interest_pairs", self.resolver.interesting_pairs()),
            ("periods", len(self.monitor.periods)),
            ("batches", self.batches_processed),
            ("final_interval", self.current_interval),
            ("duty_pauses", self.duty_pauses),
        ]

    def summary(self) -> dict:
        return dict(self._summary_items())

    def publish_metrics(self) -> None:
        """Mirror the canonical summary into the metrics registry as
        ``controller.summary.<key>`` gauges (no-op on a null registry)."""
        metrics = self.telemetry.metrics
        if not metrics.enabled:
            return
        for key, value in self._summary_items():
            metrics.gauge(f"controller.summary.{key}").set(value)
