"""Raw-sample resolution: EIP -> method -> bytecode/HIR -> field.

Implements the pipeline of section 4.2:

1. drop addresses outside the VM-generated code space (kernel, native
   libraries),
2. find the method through the sorted code table (code never moves —
   it lives in the immortal space),
3. translate the EIP to a bytecode index / HIR instruction through the
   extended machine-code map,
4. look the HIR instruction up in the method's instructions-of-interest
   table to find the reference field to credit (section 5.3); samples in
   baseline-compiled methods or on uninteresting instructions are
   counted but not attributed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.interest import InterestMap, analyze_compiled_method
from repro.jit.codecache import LEVEL_OPT, CodeCache, CompiledMethod
from repro.vm.model import FieldInfo


@dataclass
class ResolvedSample:
    """Outcome of resolving one raw EIP."""

    cm: CompiledMethod
    pc: int
    bc_index: int
    ir_id: Optional[int]
    field: Optional[FieldInfo]


@dataclass
class ResolutionStats:
    resolved: int = 0
    attributed: int = 0
    dropped_foreign: int = 0   # outside the VM code space
    dropped_baseline: int = 0  # baseline-compiled method (no interest info)
    unattributed: int = 0      # opt method, instruction not of interest


class SampleResolver:
    """Stateful resolver bound to a code cache.

    Interest tables are computed once per compiled method, at the time
    the method is registered (i.e., at compilation time, as in the
    paper), and cached here.
    """

    def __init__(self, codecache: CodeCache):
        self.codecache = codecache
        # Keyed by the CompiledMethod itself (identity hash): id()
        # keys would dangle after a snapshot round-trip re-creates
        # the object graph at new addresses.
        self._interest: Dict[CompiledMethod, InterestMap] = {}
        self.stats = ResolutionStats()

    def register_method(self, cm: CompiledMethod) -> InterestMap:
        """Run the instructions-of-interest filter for a new method."""
        table = analyze_compiled_method(cm)
        self._interest[cm] = table
        return table

    def interest_table(self, cm: CompiledMethod) -> InterestMap:
        return self._interest.get(cm, {})

    def interesting_pairs(self) -> int:
        """Total (S, f) pairs across all registered methods."""
        return sum(len(t) for t in self._interest.values())

    def resolve(self, eip: int) -> Optional[ResolvedSample]:
        """Resolve one sample; None when it must be dropped."""
        cm = self.codecache.lookup(eip)
        if cm is None:
            self.stats.dropped_foreign += 1
            return None
        if cm.level != LEVEL_OPT:
            self.stats.dropped_baseline += 1
            return None
        pc = cm.pc_of_eip(eip)
        bc_index = cm.bc_map[pc]
        ir_id = cm.ir_map[pc]
        interest = self._interest.get(cm)
        fld: Optional[FieldInfo] = None
        if interest is not None and ir_id is not None:
            fld = interest.get(ir_id)
        self.stats.resolved += 1
        if fld is not None:
            self.stats.attributed += 1
        else:
            self.stats.unattributed += 1
        return ResolvedSample(cm, pc, bc_index, ir_id, fld)
