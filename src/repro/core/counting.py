"""Normal counting mode and software instrumentation profiling.

Section 3.1 describes the P4's two modes of operation.  Sampling-based
counting drives the co-allocation optimization; this module implements
the other one plus the software-only alternative the paper positions
itself against:

* :class:`CountingSession` — "the performance counters are configured
  to count events detected by the CPU's event detectors.  A tool can
  read those counter values after program execution and reports the
  total number of events."  Used to "evaluate the precise effect of
  program transformations" — e.g., the before/after L1-miss counts of
  Figure 4.
* :class:`MethodProfiler` — the instrumentation approach of Georges et
  al. [15], discussed in related work: "instrument method entries and
  exits with reads of the hardware performance counters."  Every
  call/return boundary pays a counter-read cost, which is exactly why
  the paper's conclusion — sampling overhead "is low compared to
  software-only profiling techniques" (section 6.2) — holds; the
  benchmark suite reproduces that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.hw.events import COUNTED_EVENTS, EventCounters, validate_event
from repro.vm.model import MethodInfo

#: Cycles charged per hardware-counter read at a method boundary.  The
#: P4's rdpmc/rdtsc are notoriously slow (tens of cycles) and the probe
#: must also spill/update its bookkeeping; Georges et al. report
#: substantial per-method instrumentation cost, which their phase-level
#: instrumentation exists to amortize.
COUNTER_READ_COST = 60


class CountingSession:
    """Aggregate event counting around a region of execution.

    >>> session = CountingSession(counters)      # doctest: +SKIP
    >>> session.start(); run_workload(); delta = session.stop()
    """

    def __init__(self, counters: EventCounters,
                 events: Optional[List[str]] = None):
        self.counters = counters
        self.events = [validate_event(e) for e in (events or COUNTED_EVENTS)]
        self._before: Optional[Dict[str, int]] = None
        self.deltas: Optional[Dict[str, int]] = None

    def start(self) -> None:
        self._before = self.counters.snapshot()
        self.deltas = None

    def stop(self) -> Dict[str, int]:
        if self._before is None:
            raise RuntimeError("counting session not started")
        full = self.counters.delta(self._before)
        self.deltas = {e: full[e] for e in self.events}
        self._before = None
        return self.deltas

    @staticmethod
    def compare(before: Dict[str, int],
                after: Dict[str, int]) -> Dict[str, float]:
        """Relative change per event: the "precise effect of program
        transformations" use case of section 3.1."""
        out = {}
        for event in before:
            if before[event]:
                out[event] = after.get(event, 0) / before[event] - 1.0
        return out


@dataclass
class MethodProfile:
    """Exclusive per-method event totals."""

    method: MethodInfo
    invocations: int = 0
    cycles: int = 0
    events: int = 0


class MethodProfiler:
    """Software instrumentation at every method entry and exit.

    Attached to the CPU (``cpu.profiler``), it is invoked on every call
    and return with the current cycle count and the value of one chosen
    event counter; deltas between boundaries are attributed
    *exclusively* to the method on top of the (mirrored) call stack.
    Each boundary charges :data:`COUNTER_READ_COST` cycles through
    ``charge`` — the software-profiling overhead the paper's sampling
    approach avoids.
    """

    def __init__(self, event_reader: Callable[[], int],
                 charge: Callable[[int], None],
                 event_name: str = "L1D_MISS"):
        self.event_reader = event_reader
        self.charge = charge
        self.event_name = validate_event(event_name)
        self.profiles: Dict[MethodInfo, MethodProfile] = {}
        self._stack: List[MethodInfo] = []
        self._last_cycles = 0
        self._last_events = 0
        self.boundary_reads = 0

    def _account(self, cycles: int, events: int) -> None:
        if self._stack:
            profile = self._profile(self._stack[-1])
            profile.cycles += cycles - self._last_cycles
            profile.events += events - self._last_events
        self._last_cycles = cycles
        self._last_events = events

    def _profile(self, method: MethodInfo) -> MethodProfile:
        profile = self.profiles.get(method)
        if profile is None:
            profile = MethodProfile(method)
            self.profiles[method] = profile
        return profile

    # -- CPU hooks -------------------------------------------------------------

    def on_call(self, method: MethodInfo, cycles: int) -> None:
        self.boundary_reads += 1
        self.charge(COUNTER_READ_COST)
        self._account(cycles, self.event_reader())
        self._stack.append(method)
        self._profile(method).invocations += 1

    def on_return(self, cycles: int) -> None:
        self.boundary_reads += 1
        self.charge(COUNTER_READ_COST)
        self._account(cycles, self.event_reader())
        if self._stack:
            self._stack.pop()

    # -- reporting --------------------------------------------------------------

    def ranked(self) -> List[MethodProfile]:
        """Profiles sorted by exclusive event count, hottest first."""
        return sorted(self.profiles.values(), key=lambda p: -p.events)

    def total_overhead_cycles(self) -> int:
        return self.boundary_reads * COUNTER_READ_COST
