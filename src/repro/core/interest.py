"""Instructions-of-interest analysis (section 5.2).

For each opt-compiled method, find every heap-access instruction S whose
*base address was loaded from a reference field f*, and record the pair
(S, f).  A cache-miss sample on S is then charged to f: "if we encounter
a miss on I3 (load of field i), we increase the event count for the
associated reference field (A::y)".

The walk follows the HIR's explicit use-def edges upward from the base
operand of each heap access (field/array accesses, ``arraylength``, and
virtual calls — the object-header access).  The walk looks through
register-to-register moves and stops at block parameters (unknown
producer), allocations, call results, and array loads — none of which
name a field to credit.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.jit.codecache import LEVEL_OPT, CompiledMethod
from repro.jit.hir import HEAP_ACCESS_HIR_OPS, HIRFunction, HIRInst
from repro.vm.model import FieldInfo

#: An interest table: HIR instruction id -> the reference field that
#: produced the instruction's base address.
InterestMap = Dict[int, FieldInfo]


def _base_producer(inst: HIRInst) -> Optional[HIRInst]:
    """Walk use-def edges upward from the base operand of ``inst``."""
    if not inst.args:
        return None
    base = inst.args[0]
    # Look through shield/sync copies.
    while base is not None and base.op == "move":
        base = base.args[0]
    return base


def analyze_function(func: HIRFunction) -> InterestMap:
    """Compute the (S, f) pairs of one method's HIR."""
    table: InterestMap = {}
    for inst in func.all_insts():
        if inst.op not in HEAP_ACCESS_HIR_OPS:
            continue
        producer = _base_producer(inst)
        if producer is not None and producer.op == "getfield":
            field = producer.aux
            if field.is_ref:
                table[inst.id] = field
    return table


def analyze_compiled_method(cm: CompiledMethod) -> InterestMap:
    """Interest table for a compiled method.

    Only opt-compiled methods are analyzed — "the monitoring system does
    not consider instructions in non-optimized methods.  However, this
    is not a major limitation since those methods are rarely executed"
    (section 5.1).
    """
    if cm.level != LEVEL_OPT or cm.hir is None:
        return {}
    return analyze_function(cm.hir)
