"""Walk a serialized decision ledger into human justification chains.

Everything here operates on the *serialized* ledger form
(:meth:`~repro.lineage.ledger.DecisionLedger.to_json`), which is also
what :class:`~repro.harness.record.RunRecord` persists (schema 3), so
the same code explains a live run and a record loaded from disk.

The central operation is the ancestor walk: starting from a decision
entry, follow parent links transitively to collect the evidence that
justified it — a revert leads to its final verdict, the verdict to the
period that produced the rate, the period to the attribution batches,
each batch to the raw sample drain.  :func:`format_chain` renders that
walk as an indented narrative, :func:`to_dot` as a Graphviz digraph,
and :func:`validate` machine-checks the parent-link invariants the CI
smoke job relies on (ids strictly increasing, every parent resolving to
an earlier entry).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.lineage.ledger import (
    DECISION_KINDS,
    K_ATTRIBUTION,
    K_BATCH,
    K_EXPERIMENT,
    K_GAP,
    K_PERIOD,
    K_PLACEMENT,
    K_RANKING,
    K_RECOMPILE,
    K_REVERT,
    K_VERDICT,
    LINEAGE_SCHEMA_VERSION,
)

#: Priority order for the default explain target: the most decision-like
#: recent entry wins.
_TARGET_PRIORITY = (K_REVERT, K_EXPERIMENT, K_GAP, K_PLACEMENT,
                    K_RECOMPILE, K_RANKING)


def index_entries(doc: dict) -> Dict[int, dict]:
    """Index a serialized ledger by entry id; raises ValueError when the
    document is not a lineage ledger."""
    if not isinstance(doc, dict) or "entries" not in doc:
        raise ValueError("not a lineage ledger document")
    return {entry["id"]: entry for entry in doc["entries"]}


def validate(doc: dict) -> List[str]:
    """Check the ledger invariants; returns problems (empty == valid).

    * the schema version is one we understand,
    * entry ids are unique and strictly increasing,
    * every parent id resolves to an *earlier* entry (DAG by
      construction).
    """
    problems: List[str] = []
    if doc.get("schema") != LINEAGE_SCHEMA_VERSION:
        problems.append(f"unsupported lineage schema {doc.get('schema')!r}")
        return problems
    last_id = -1
    seen = set()
    for entry in doc.get("entries", []):
        eid = entry.get("id")
        if not isinstance(eid, int) or eid in seen:
            problems.append(f"duplicate or invalid entry id {eid!r}")
            continue
        if eid <= last_id:
            problems.append(f"entry ids not strictly increasing at {eid}")
        seen.add(eid)
        last_id = max(last_id, eid)
        if "kind" not in entry or "parents" not in entry:
            problems.append(f"entry {eid} missing kind/parents")
            continue
        for parent in entry["parents"]:
            if parent not in seen or parent == eid:
                problems.append(
                    f"entry {eid} parent {parent} does not resolve to an "
                    f"earlier entry")
    return problems


def find_target(doc: dict, field: Optional[str] = None,
                revert: Optional[int] = None,
                decision: Optional[int] = None) -> Optional[dict]:
    """Select the entry a chain should justify.

    ``decision`` picks an entry by id; ``revert`` picks the N-th revert
    of the run (1-based); ``field`` picks the most recent decision
    entry touching that qualified field name.  With no selector the
    most recent decision wins, preferring reverts, then experiment
    begins, gap changes, placements, recompiles, and finally rankings.
    """
    entries = doc.get("entries", [])
    if decision is not None:
        return next((e for e in entries if e["id"] == decision), None)
    if revert is not None:
        reverts = [e for e in entries if e["kind"] == K_REVERT]
        if 1 <= revert <= len(reverts):
            return reverts[revert - 1]
        return None
    if field is not None:
        touching = [e for e in entries
                    if e["kind"] in DECISION_KINDS
                    and e.get("field") == field]
        return touching[-1] if touching else None
    for kind in _TARGET_PRIORITY:
        matching = [e for e in entries if e["kind"] == kind]
        if matching:
            return matching[-1]
    return entries[-1] if entries else None


def chain_ids(by_id: Dict[int, dict], target_id: int) -> List[int]:
    """All transitive ancestors of ``target_id`` (inclusive), ascending."""
    seen = set()
    stack = [target_id]
    while stack:
        eid = stack.pop()
        if eid in seen or eid not in by_id:
            continue
        seen.add(eid)
        stack.extend(by_id[eid]["parents"])
    return sorted(seen)


# ---------------------------------------------------------------------------
# Narration
# ---------------------------------------------------------------------------

def narrate(entry: dict) -> str:
    """One sentence for one entry (no id/cycle prefix)."""
    kind = entry["kind"]
    if kind == K_BATCH:
        return (f"collector {entry['source']} drained "
                f"{entry['samples']} sample(s)")
    if kind == K_ATTRIBUTION:
        top = sorted(entry["fields"], key=lambda f: -f["events"])[:3]
        detail = ", ".join(f"{f['field']} +{f['events']}" for f in top)
        return (f"batch of {entry['samples']} sample(s) attributed "
                f"{entry['attributed']} (weight {entry['weight']}"
                + (f"): {detail}" if detail else ")"))
    if kind == K_PERIOD:
        return (f"period {entry['period']} closed: {entry['samples']} "
                f"sample(s), {entry['attributed']} attributed")
    if kind == K_RANKING:
        rows = []
        for klass in entry["classes"][:3]:
            if klass["fields"]:
                hot = klass["fields"][0]
                rows.append(f"{hot['field']} ({hot['events']} events from "
                            f"{hot['samples']} samples)")
        detail = "; ".join(rows) if rows else "no fields ranked"
        return f"hot-field ranking at period {entry['period']}: {detail}"
    if kind == K_EXPERIMENT:
        return (f"experiment '{entry['experiment']}' on {entry['field']} "
                f"begun at period {entry['period']}: baseline "
                f"{entry['baseline_rate']:.2f} events/period from "
                f"{entry['baseline_samples']} sample(s), revert above "
                f"x{1.0 + entry['threshold']:.2f} for {entry['patience']} "
                f"period(s)")
    if kind == K_VERDICT:
        verdict = "regressed" if entry["regressed"] else "ok"
        return (f"verdict for '{entry['experiment']}': rate "
                f"{entry['rate']:.2f} vs threshold "
                f"{entry['threshold']:.2f} -> {verdict} "
                f"(streak {entry['streak']})")
    if kind == K_REVERT:
        return (f"revert of experiment '{entry['experiment']}' "
                f"({entry['field']}) at period {entry['period']}: rate "
                f"{entry['rate']:.2f} events/period vs baseline "
                f"{entry['baseline_rate']:.2f} x {1.0 + entry['threshold']:.2f}"
                f" = {entry['baseline_rate'] * (1.0 + entry['threshold']):.2f}")
    if kind == K_GAP:
        return (f"co-allocation gap set: {entry['old_gap']} -> "
                f"{entry['new_gap']} bytes")
    if kind == K_PLACEMENT:
        return (f"co-allocated {entry['class']} with hot child via "
                f"{entry['field']}: {entry['parent_bytes']}+"
                f"{entry['child_bytes']}B, gap {entry['gap']}B at "
                f"0x{entry['parent_addr']:x}/0x{entry['child_addr']:x}")
    if kind == K_RECOMPILE:
        return (f"opt-recompile {entry['method']} ({entry['reason']}): "
                f"{entry['samples']} AOS sample(s), benefit "
                f"{entry['benefit']:.0f} > cost {entry['cost']:.0f}, "
                f"{entry['devirt_sites']} site(s) devirtualized")
    return f"{kind} entry"


def _ordered_parents(entry: dict, by_id: Dict[int, dict],
                     limit: int) -> "tuple[List[int], int]":
    """Parents to narrate, most informative first, capped at ``limit``.

    Periods can have dozens of attribution parents; prefer the ones
    that actually attributed samples, and report how many were elided.
    """
    parents = [p for p in entry["parents"] if p in by_id]

    def weight(pid: int) -> tuple:
        parent = by_id[pid]
        return (-(parent.get("attributed") or 0), -pid)

    parents.sort(key=weight)
    return parents[:limit], max(0, len(parents) - limit)


def format_chain(doc: dict, target: dict, max_parents: int = 3) -> str:
    """The indented justification narrative for one decision."""
    by_id = index_entries(doc)
    lines: List[str] = []
    visited = set()

    def emit(eid: int, depth: int) -> None:
        indent = "    " * depth
        arrow = "<- " if depth else ""
        if eid in visited:
            lines.append(f"{indent}{arrow}#{eid} (see above)")
            return
        visited.add(eid)
        entry = by_id[eid]
        lines.append(f"{indent}{arrow}#{eid} [cycle {entry['cycle']:,}] "
                     f"{narrate(entry)}")
        parents, elided = _ordered_parents(entry, by_id, max_parents)
        for parent in parents:
            emit(parent, depth + 1)
        if elided:
            lines.append(f"{'    ' * (depth + 1)}<- ... {elided} more "
                         f"contributing entr{'y' if elided == 1 else 'ies'}")

    emit(target["id"], 0)
    return "\n".join(lines)


def format_summary(doc: dict) -> str:
    """Header lines: entry counts by kind, decisions with their ids."""
    entries = doc.get("entries", [])
    counts: Dict[str, int] = {}
    for entry in entries:
        counts[entry["kind"]] = counts.get(entry["kind"], 0) + 1
    lines = [f"lineage: {len(entries)} entr"
             f"{'y' if len(entries) == 1 else 'ies'}"
             + (f" ({doc.get('dropped', 0)} dropped)"
                if doc.get("dropped") else "")]
    for kind in (K_BATCH, K_ATTRIBUTION, K_PERIOD, K_RANKING, K_PLACEMENT,
                 K_RECOMPILE, K_GAP, K_EXPERIMENT, K_VERDICT, K_REVERT):
        if counts.get(kind):
            lines.append(f"  {kind:20s} {counts[kind]}")
    decisions = [e for e in entries
                 if e["kind"] in (K_EXPERIMENT, K_REVERT, K_GAP)]
    for entry in decisions[-8:]:
        lines.append(f"  decision #{entry['id']:<6d} {narrate(entry)}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Graphviz
# ---------------------------------------------------------------------------

def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(doc: dict, chain: Optional[List[int]] = None) -> str:
    """Render the ledger as a Graphviz digraph.

    With ``chain`` given, those entries are filled; everything else
    stays plain so the justification path pops out visually.
    """
    highlight = set(chain or ())
    lines = ["digraph lineage {", "  rankdir=BT;",
             '  node [shape=box, fontsize=10, fontname="monospace"];']
    for entry in doc.get("entries", []):
        label = _dot_escape(f"#{entry['id']} {entry['kind']}\n"
                            f"{narrate(entry)[:60]}")
        style = (', style=filled, fillcolor="lightgoldenrod1"'
                 if entry["id"] in highlight else "")
        lines.append(f'  n{entry["id"]} [label="{label}"{style}];')
        for parent in entry["parents"]:
            lines.append(f"  n{entry['id']} -> n{parent};")
    lines.append("}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Divergence (repro diff support)
# ---------------------------------------------------------------------------

def decision_signature(entry: dict) -> tuple:
    """A cycle-free comparable summary of one decision entry.

    Cycles are omitted deliberately: two records of the same spec under
    different code versions legitimately shift every timestamp, and the
    interesting question is *which decision* diverged first, not when.
    """
    kind = entry["kind"]
    keys = {
        K_EXPERIMENT: ("experiment", "field", "period"),
        K_VERDICT: ("experiment", "regressed", "streak"),
        K_REVERT: ("experiment", "field", "period"),
        K_GAP: ("old_gap", "new_gap"),
        K_PLACEMENT: ("class", "field", "gap"),
        K_RECOMPILE: ("method", "reason"),
    }.get(kind, ())
    return (kind,) + tuple(entry.get(k) for k in keys)


def first_divergence(doc_a: Optional[dict],
                     doc_b: Optional[dict]) -> Optional[dict]:
    """The first decision where two ledgers disagree, or None.

    Compares the ordered decision entries of both ledgers by
    :func:`decision_signature`.  Returns ``{"index", "a", "b"}`` where
    ``a``/``b`` are ``{"id", "parents", "summary"}`` (None on the side
    that ran out of decisions first).
    """
    if not doc_a or not doc_b:
        return None
    decisions_a = [e for e in doc_a.get("entries", [])
                   if e["kind"] in DECISION_KINDS]
    decisions_b = [e for e in doc_b.get("entries", [])
                   if e["kind"] in DECISION_KINDS]

    def describe(entry: Optional[dict]) -> Optional[dict]:
        if entry is None:
            return None
        return {"id": entry["id"], "parents": list(entry["parents"]),
                "summary": narrate(entry)}

    for i in range(max(len(decisions_a), len(decisions_b))):
        a = decisions_a[i] if i < len(decisions_a) else None
        b = decisions_b[i] if i < len(decisions_b) else None
        if (a is None) != (b is None) or \
                (a is not None and
                 decision_signature(a) != decision_signature(b)):
            return {"index": i, "a": describe(a), "b": describe(b)}
    return None
