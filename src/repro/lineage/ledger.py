"""The append-only decision ledger.

Entries are plain tuples ``(id, kind, cycle, parents, payload)`` —
integer ids assigned in append order, a shared interned kind string, the
simulated cycle at which the event happened, a tuple of parent entry
ids, and a kind-specific positional payload tuple.  The hot path does no
string formatting and allocates no dicts: payloads hold live
:class:`~repro.vm.model.FieldInfo` / ``ClassInfo`` / ``MethodInfo``
references, and qualified names are rendered only at serialization time
(:meth:`DecisionLedger.to_json`), long after the simulated run ended.

Parent links always point at earlier entries (``parent id < entry id``),
which makes the graph a DAG by construction and lets
:mod:`repro.lineage.explain` validate a serialized ledger with one pass.

The ledger is a **pure observer**: recording reads simulator state but
never charges cycles, consumes randomness, or mutates anything the
simulation reads back.  ``NULL_LEDGER`` (a :class:`NullLedger`) is the
disabled default every instrumented component receives when no ledger
is attached; all its record methods are no-ops returning ``-1``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

#: Bump when the serialized entry layout changes.
LINEAGE_SCHEMA_VERSION = 1

# Tuple indices of one entry.
E_ID, E_KIND, E_CYCLE, E_PARENTS, E_PAYLOAD = range(5)

# Entry kinds (shared interned strings; payload layouts documented at
# the recording method of each kind).
K_BATCH = "sample_batch"
K_ATTRIBUTION = "attribution"
K_PERIOD = "period_close"
K_RANKING = "ranking"
K_EXPERIMENT = "experiment_begin"
K_VERDICT = "experiment_verdict"
K_REVERT = "experiment_revert"
K_GAP = "gap_set"
K_PLACEMENT = "coalloc_placement"
K_RECOMPILE = "jit_recompile"

#: Kinds that represent *decisions* (as opposed to evidence flowing
#: toward them).  ``repro explain`` targets these; ``repro diff`` uses
#: them to locate the first diverging decision between two runs.
DECISION_KINDS = (K_EXPERIMENT, K_VERDICT, K_REVERT, K_GAP, K_PLACEMENT,
                  K_RECOMPILE)

_NO_PARENTS: Tuple[int, ...] = ()


def _zero_clock() -> int:
    """Default clock before a VM binds one; module-level (not a
    lambda) so an unbound ledger pickles inside a run snapshot."""
    return 0


class DecisionLedger:
    """Append-only log of causally-linked online-optimization events."""

    enabled = True

    def __init__(self, max_entries: int = 1_000_000):
        #: The entry list; tuples ``(id, kind, cycle, parents, payload)``.
        self.entries: List[tuple] = []
        self.max_entries = max_entries
        #: Entries discarded after :attr:`max_entries` was reached.
        self.dropped = 0
        self._clock: Callable[[], int] = _zero_clock
        # Causal bookkeeping (all integer ids; -1 = none yet).
        self._open_batch = -1
        self._period_attrs: List[int] = []
        self.last_period_id = -1
        self.last_ranking_id = -1
        self._experiments = {}       # experiment name -> begin entry id
        self._last_verdict = {}      # experiment name -> last verdict id
        self._pending_placement: Optional[tuple] = None

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Point entry timestamps at a cycle clock (the VM binds its
        CPU's, exactly like telemetry)."""
        self._clock = clock

    def __len__(self) -> int:
        return len(self.entries)

    # -- the one append point ------------------------------------------------

    def _add(self, kind: str, parents: Tuple[int, ...],
             payload: tuple) -> int:
        entries = self.entries
        if len(entries) >= self.max_entries:
            self.dropped += 1
            return -1
        eid = len(entries)
        entries.append((eid, kind, self._clock(), parents, payload))
        return eid

    # -- perfmon: sample batches ---------------------------------------------

    def sample_batch(self, n_samples: int, source: str) -> int:
        """A batch of EIPs left the user buffer (collector poll/drain).

        Payload: ``(n_samples, source)`` with source ``"poll"``/``"drain"``.
        """
        eid = self._add(K_BATCH, _NO_PARENTS, (n_samples, source))
        self._open_batch = eid
        return eid

    # -- controller: attribution ----------------------------------------------

    def attribution(self, n_samples: int, attributed: int, weight: int,
                    fields: tuple) -> int:
        """One batch resolved and attributed by the controller.

        Payload: ``(n_samples, attributed, weight, fields)`` where
        ``fields`` is a tuple of ``(FieldInfo, samples, events)`` — the
        per-field increments this batch contributed to the monitor.
        Parent: the collector batch entry the EIPs came from.
        """
        batch = self._open_batch
        self._open_batch = -1
        parents = (batch,) if batch >= 0 else _NO_PARENTS
        eid = self._add(K_ATTRIBUTION, parents,
                        (n_samples, attributed, weight, fields))
        if eid >= 0:
            self._period_attrs.append(eid)
        return eid

    # -- monitor/controller: periods and rankings ------------------------------

    def period_close(self, index: int, samples: int, attributed: int) -> int:
        """A measurement period closed.

        Payload: ``(period_index, samples, attributed)``.  Parents: the
        attribution entries recorded during the period.
        """
        parents = tuple(self._period_attrs)
        self._period_attrs = []
        eid = self._add(K_PERIOD, parents, (index, samples, attributed))
        if eid >= 0:
            self.last_period_id = eid
        return eid

    def ranking_snapshot(self, period_index: int, classes: tuple) -> int:
        """The hot-field ranking in force after a period closed.

        Payload: ``(period_index, classes)`` where ``classes`` is a
        tuple of ``(ClassInfo, ((FieldInfo, events, samples), ...))``
        rows, hottest class first.  Parent: the period-close entry.
        """
        parents = ((self.last_period_id,) if self.last_period_id >= 0
                   else _NO_PARENTS)
        eid = self._add(K_RANKING, parents, (period_index, classes))
        if eid >= 0:
            self.last_ranking_id = eid
        return eid

    # -- feedback: experiments --------------------------------------------------

    def experiment_begin(self, name: str, field, baseline_rate: float,
                         started_period: int, baseline_samples: int,
                         threshold: float, patience: int) -> int:
        """A policy experiment began.

        Payload: ``(name, FieldInfo, baseline_rate, started_period,
        baseline_samples, threshold, patience)``.  Parent: the ranking
        snapshot in force when the baseline was taken.
        """
        parents = ((self.last_ranking_id,) if self.last_ranking_id >= 0
                   else _NO_PARENTS)
        eid = self._add(K_EXPERIMENT, parents,
                        (name, field, baseline_rate, started_period,
                         baseline_samples, threshold, patience))
        if eid >= 0:
            self._experiments[name] = eid
        return eid

    def experiment_verdict(self, name: str, rate: float, threshold: float,
                           regressed: bool, streak: int) -> int:
        """One per-period judgment of an active experiment ("refresh").

        Payload: ``(name, rate, threshold, regressed, streak)``.
        Parents: the experiment-begin entry and the period judged.
        """
        parents = []
        exp = self._experiments.get(name, -1)
        if exp >= 0:
            parents.append(exp)
        if self.last_period_id >= 0:
            parents.append(self.last_period_id)
        eid = self._add(K_VERDICT, tuple(parents),
                        (name, rate, threshold, regressed, streak))
        if eid >= 0:
            self._last_verdict[name] = eid
        return eid

    def experiment_revert(self, name: str, field, period: int, rate: float,
                          baseline_rate: float, threshold: float) -> int:
        """The feedback engine reverted an experiment.

        Payload: ``(name, FieldInfo, period, rate, baseline_rate,
        threshold)``.  Parents: the experiment-begin entry and the final
        regressed verdict.
        """
        parents = []
        exp = self._experiments.get(name, -1)
        if exp >= 0:
            parents.append(exp)
        verdict = self._last_verdict.get(name, -1)
        if verdict >= 0:
            parents.append(verdict)
        return self._add(K_REVERT, tuple(parents),
                         (name, field, period, rate, baseline_rate,
                          threshold))

    # -- GC: placement and gap decisions -----------------------------------------

    def gap_set(self, old_gap: int, new_gap: int) -> int:
        """The co-allocation gap changed (Figure 8's intervention).

        Payload: ``(old_gap, new_gap)``.
        """
        return self._add(K_GAP, _NO_PARENTS, (old_gap, new_gap))

    def placement_pending(self, klass, field, parent_bytes: int,
                          child_bytes: int, gap: int, combined: int) -> None:
        """The policy accepted a co-allocation; the collector has not
        placed the pair yet.  :meth:`placement_commit` (called by the
        plan once addresses are assigned) emits the entry."""
        self._pending_placement = (klass, field, parent_bytes, child_bytes,
                                   gap, combined)

    def placement_commit(self, parent_addr: int, child_addr: int) -> int:
        """The promoted pair received its final mature-space addresses.

        Payload: ``(ClassInfo, FieldInfo, parent_bytes, child_bytes,
        gap, combined, parent_addr, child_addr)``.  Parent: the ranking
        snapshot whose hot-field table selected the child.
        """
        pending = self._pending_placement
        if pending is None:
            return -1
        self._pending_placement = None
        parents = ((self.last_ranking_id,) if self.last_ranking_id >= 0
                   else _NO_PARENTS)
        return self._add(K_PLACEMENT, parents,
                         pending + (parent_addr, child_addr))

    # -- JIT: recompilation decisions ----------------------------------------------

    def recompile(self, method, reason: str, samples: int, benefit: float,
                  cost: float, devirt_sites: int) -> int:
        """The AOS (or a compilation plan) selected a method for opt
        recompilation.

        Payload: ``(MethodInfo, reason, samples, benefit, cost,
        devirt_sites)`` with reason ``"aos"`` or ``"plan"``.
        """
        return self._add(K_RECOMPILE, _NO_PARENTS,
                         (method, reason, samples, benefit, cost,
                          devirt_sites))

    # -- queries ----------------------------------------------------------------

    def by_kind(self, kind: str) -> List[tuple]:
        return [e for e in self.entries if e[E_KIND] == kind]

    # -- serialization -----------------------------------------------------------

    def to_json(self) -> dict:
        """Render the ledger as plain JSON data (the RunRecord surface).

        Every entry becomes ``{"id", "kind", "cycle", "parents", ...}``
        with kind-specific fields; object references are rendered to
        their qualified names here, never on the recording path.
        """
        out = []
        for entry in self.entries:
            doc = {"id": entry[E_ID], "kind": entry[E_KIND],
                   "cycle": entry[E_CYCLE],
                   "parents": list(entry[E_PARENTS])}
            doc.update(_PAYLOAD_RENDERERS[entry[E_KIND]](entry[E_PAYLOAD]))
            out.append(doc)
        return {"schema": LINEAGE_SCHEMA_VERSION,
                "entries": out,
                "dropped": self.dropped}


class NullLedger(DecisionLedger):
    """The disabled ledger: every record method is a no-op."""

    enabled = False

    def _add(self, kind, parents, payload) -> int:  # noqa: D102
        return -1

    def placement_pending(self, klass, field, parent_bytes, child_bytes,
                          gap, combined) -> None:
        return None

    def bind_clock(self, clock) -> None:
        return None


#: Shared disabled instance (the ``SystemConfig.lineage=None`` default).
NULL_LEDGER = NullLedger()


# ---------------------------------------------------------------------------
# Payload -> JSON renderers (cold path only)
# ---------------------------------------------------------------------------

def _render_batch(p):
    return {"samples": p[0], "source": p[1]}


def _render_attribution(p):
    return {"samples": p[0], "attributed": p[1], "weight": p[2],
            "fields": [{"field": f.qualified_name, "samples": s, "events": e}
                       for f, s, e in p[3]]}


def _render_period(p):
    return {"period": p[0], "samples": p[1], "attributed": p[2]}


def _render_ranking(p):
    return {"period": p[0],
            "classes": [{"class": klass.name,
                         "fields": [{"field": f.qualified_name,
                                     "events": events, "samples": samples}
                                    for f, events, samples in fields]}
                        for klass, fields in p[1]]}


def _render_experiment(p):
    return {"experiment": p[0], "field": p[1].qualified_name,
            "baseline_rate": p[2], "period": p[3],
            "baseline_samples": p[4], "threshold": p[5], "patience": p[6]}


def _render_verdict(p):
    return {"experiment": p[0], "rate": p[1], "threshold": p[2],
            "regressed": p[3], "streak": p[4]}


def _render_revert(p):
    return {"experiment": p[0], "field": p[1].qualified_name,
            "period": p[2], "rate": p[3], "baseline_rate": p[4],
            "threshold": p[5]}


def _render_gap(p):
    return {"old_gap": p[0], "new_gap": p[1]}


def _render_placement(p):
    return {"class": p[0].name, "field": p[1].qualified_name,
            "parent_bytes": p[2], "child_bytes": p[3], "gap": p[4],
            "combined": p[5], "parent_addr": p[6], "child_addr": p[7]}


def _render_recompile(p):
    return {"method": p[0].qualified_name, "reason": p[1], "samples": p[2],
            "benefit": p[3], "cost": p[4], "devirt_sites": p[5]}


_PAYLOAD_RENDERERS = {
    K_BATCH: _render_batch,
    K_ATTRIBUTION: _render_attribution,
    K_PERIOD: _render_period,
    K_RANKING: _render_ranking,
    K_EXPERIMENT: _render_experiment,
    K_VERDICT: _render_verdict,
    K_REVERT: _render_revert,
    K_GAP: _render_gap,
    K_PLACEMENT: _render_placement,
    K_RECOMPILE: _render_recompile,
}
