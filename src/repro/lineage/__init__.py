"""Decision lineage: explain every online optimization from the
samples that caused it.

The paper's loop is causal — PEBS samples are drained in batches,
attributed to reference fields, aggregated into per-period hot-field
rankings, consumed by the GC's co-allocation policy at promotion time,
and judged by the feedback engine, which reverts experiments that
regress.  Telemetry (PR 1) and the fidelity auditor (PR 4) observe the
endpoints of that chain; this package records the chain itself.

:class:`~repro.lineage.ledger.DecisionLedger` is an append-only,
pure-observer log of typed entries with stable integer ids and parent
links.  Every decision the online loop takes — a co-allocation
placement, an experiment begin, a revert, an AOS recompile — is an
entry whose parents lead transitively back to the raw sample batches
that justified it.  :mod:`repro.lineage.explain` walks those links to
produce the ``repro explain`` justification chains, Graphviz exports,
and the machine-checkable JSON the CI smoke job validates.

The hard invariant is the same as telemetry's: the ledger is a pure
observer.  Recording never charges simulated cycles, consumes
randomness, or mutates VM state, so a run with the ledger attached is
bit-identical (cycles, counters, PEBS sample stream) to a run without
it.  The disabled default (:data:`NULL_LEDGER`) routes every record
into no-ops.
"""

from repro.lineage.ledger import (
    DecisionLedger,
    LINEAGE_SCHEMA_VERSION,
    NULL_LEDGER,
    NullLedger,
)

__all__ = [
    "DecisionLedger",
    "LINEAGE_SCHEMA_VERSION",
    "NULL_LEDGER",
    "NullLedger",
]
