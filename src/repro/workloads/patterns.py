"""Reusable workload kernels.

Each Table 1 benchmark is synthesized from a few parameterized kernels
(DESIGN.md §2): the published per-benchmark *characteristics* — who has
co-allocation candidates, how large the mature working set is, how much
young-object churn there is — are what the paper's evaluation keys on,
and these kernels reproduce them:

* :func:`add_pair_kernel` — a table of parent objects, each holding a
  reference to a payload child (the String/char[] shape of _209_db).
  Shuffled lookups dereference parent -> child, producing the two-miss
  pattern co-allocation halves; churn re-allocates entries so newly
  promoted pairs follow the current placement policy.
* :func:`add_stream_kernel` — sequential processing of large arrays
  (compress/mpegaudio): the hardware prefetcher hides the misses, the
  arrays live in the LOS, and there are *no* co-allocation candidates.
* :func:`add_young_churn_kernel` — bursts of short-lived small objects
  (javac/jack): almost nothing survives a nursery collection, so the
  mature space stays small and co-allocation has little to chew on.
* :func:`add_filler_methods` — cold, once-invoked methods that size the
  compiled-code corpus realistically (Table 2's per-benchmark machine
  code and map sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.jit.aos import CompilationPlan
from repro.vm.model import ClassInfo, MethodInfo
from repro.vm.program import Program
from repro.workloads.synth import Fn, lcg_step, local_ref


@dataclass
class Workload:
    """A runnable benchmark: program + pseudo-adaptive plan + metadata."""

    name: str
    program: Program
    plan: CompilationPlan
    #: Minimum heap for Figure 5/6's "1x" point (generous enough that
    #: both GenMS and GenCopy complete).
    min_heap_bytes: int
    description: str
    #: Class::field pairs expected to become hot (documentation/tests).
    hot_fields: List[str] = field(default_factory=list)
    #: True when the workload allocates no co-allocation candidates
    #: (compress, mpegaudio).
    no_candidates: bool = False


def make_app_class(program: Program, extra_statics: int = 0) -> ClassInfo:
    """The benchmark's driver class with a checksum static."""
    app = program.define_class("App")
    app.add_static("checksum", "int")
    app.add_static("rngstate", "int")
    for i in range(extra_statics):
        app.add_static(f"g{i}", "int")
    app.seal()
    return app


# ---------------------------------------------------------------------------
# The parent/child pair kernel (db, pseudojbb, hsqldb, luindex, pmd, ...)
# ---------------------------------------------------------------------------

def define_pair_classes(program: Program, parent_name: str,
                        payload_kind: str = "char",
                        pad_ints: int = 0) -> ClassInfo:
    """``class Parent { ref data; int pad0..padK }`` with an array child."""
    parent = program.define_class(parent_name)
    parent.add_field("data", "ref")
    parent.add_field("key", "int")
    for i in range(pad_ints):
        parent.add_field(f"pad{i}", "int")
    parent.seal()
    return parent


def define_pair_factory(program: Program, app: ClassInfo, parent: ClassInfo,
                        payload_len: int, payload_kind: str = "char",
                        fill: bool = True, data_field: str = "data",
                        key_field: str = "key",
                        payload_span: int = 0) -> MethodInfo:
    """``static Parent make(int seed)``: child array + parent object.

    With ``payload_span`` > 0 the child length varies per seed between
    ``payload_len`` and ``payload_len + payload_span - 1`` — variable
    record sizes are what makes combined co-allocation cells land in
    coarse size classes and *increase* internal fragmentation, the
    small-heap cost the paper observes in section 6.3.
    """
    from repro.workloads.synth import local_ref

    fn = Fn(program, parent, "make", args=["int"], returns="ref")
    seed = 0
    arr = fn.local()
    obj = fn.local()
    length = fn.local()
    if payload_span > 0:
        # length = payload_len + (seed * 31 + 7) % payload_span
        fn.iload(seed).iconst(31).emit("imul").iconst(7).emit("iadd")
        fn.iconst(payload_span).emit("irem")
        fn.iconst(payload_len).emit("iadd").istore(length)
    else:
        fn.iconst(payload_len).istore(length)
    fn.iload(length).emit("newarray", payload_kind).rstore(arr)
    if fill:
        with fn.loop(local_ref(length)) as i:
            fn.rload(arr).iload(i)
            fn.iload(seed).iload(i).emit("iadd").iconst(0xFF).emit("iand")
            fn.emit("arrstore", payload_kind)
    fn.new(parent).rstore(obj)
    fn.rload(obj).rload(arr).putfield(parent, data_field)
    fn.rload(obj).iload(seed).putfield(parent, key_field)
    fn.rload(obj).rret()
    return fn.finish()


def add_pair_kernel(program: Program, app: ClassInfo, parent: ClassInfo,
                    make: MethodInfo, *, n: int, churn_mask: int,
                    payload_len: int, payload_kind: str = "char",
                    shuffled: bool = True,
                    deref_payload: bool = True,
                    data_field: str = "data",
                    key_field: str = "key") -> MethodInfo:
    """``static int scan(ref table)``: one pass of shuffled lookups.

    Per lookup: optionally replace the entry (churn — this is what lets
    newly promoted pairs follow the current co-allocation policy), load
    the parent, dereference ``parent.data`` and read one payload element.
    The payload read's base comes from the reference field ``data``, so
    its misses are attributed to ``Parent::data`` by the
    instructions-of-interest machinery.
    """
    fn = Fn(program, app, "scan", args=["ref"], returns="int")
    table = 0
    acc = fn.local()
    state = fn.local()
    idx = fn.local()
    obj = fn.local()
    fn.getstatic(app, "rngstate").istore(state)
    fn.iconst(0).istore(acc)
    with fn.loop(n) as i:
        if shuffled:
            lcg_step(fn, state, n)
            fn.istore(idx)
        else:
            fn.iload(i).istore(idx)
        if churn_mask >= 0:
            # if ((state >> 16) & mask) == 0: table[idx] = make(idx)
            # (decided from the LCG's high bits, independent of idx)
            fn.iload(state).iconst(16).emit("ishr")
            fn.iconst(churn_mask).emit("iand")
            skip = fn.fresh_label("nochurn")
            fn.emit("ifz", "ne", skip)
            fn.rload(table).iload(idx)
            fn.iload(idx).call(make)
            fn.emit("arrstore", "ref")
            fn.label(skip)
        # obj = table[idx]
        fn.rload(table).iload(idx).emit("arrload", "ref").rstore(obj)
        # acc += obj.key
        fn.iload(acc)
        fn.rload(obj).getfield(parent, key_field)
        fn.emit("iadd").istore(acc)
        if deref_payload:
            # acc += obj.data[idx % obj.data.length]  <- the attributed miss
            fn.iload(acc)
            fn.rload(obj).getfield(parent, data_field)
            fn.emit("dup").emit("arraylength")
            fn.iload(idx).emit("swap").emit("irem")
            fn.emit("arrload", payload_kind)
            fn.emit("iadd").istore(acc)
    fn.iload(state).putstatic(app, "rngstate")
    fn.iload(acc).iret()
    return fn.finish()


def add_pair_setup(program: Program, app: ClassInfo, make: MethodInfo,
                   n: int) -> MethodInfo:
    """``static ref setup()``: build and populate the parent table."""
    fn = Fn(program, app, "setup", returns="ref")
    table = fn.local()
    fn.iconst(n).emit("newarray", "ref").rstore(table)
    with fn.loop(n) as i:
        fn.rload(table).iload(i)
        fn.iload(i).call(make)
        fn.emit("arrstore", "ref")
    fn.rload(table).rret()
    return fn.finish()


# ---------------------------------------------------------------------------
# The streaming kernel (compress, mpegaudio)
# ---------------------------------------------------------------------------

def add_stream_kernel(program: Program, app: ClassInfo, *, buffer_len: int,
                      kind: str = "int", name: str = "process") -> MethodInfo:
    """``static int process(ref src, ref dst)``: sequential transform.

    The buffers are large enough for the LOS; accesses are sequential so
    the stream prefetcher absorbs most misses — and, critically, there
    are no reference fields anywhere, so co-allocation finds nothing
    (Figure 3's zero bars for compress and mpegaudio).
    """
    fn = Fn(program, app, name, args=["ref", "ref"], returns="int")
    src, dst = 0, 1
    acc = fn.local()
    fn.iconst(0).istore(acc)
    with fn.loop(buffer_len) as i:
        # dst[i] = (src[i] * 31 + acc) & 0xffff; acc ^= dst[i]
        fn.rload(dst).iload(i)
        fn.rload(src).iload(i).emit("arrload", kind)
        fn.iconst(31).emit("imul").iload(acc).emit("iadd")
        fn.iconst(0xFFFF).emit("iand")
        fn.emit("arrstore", kind)
        fn.iload(acc)
        fn.rload(dst).iload(i).emit("arrload", kind)
        fn.emit("ixor").istore(acc)
    fn.iload(acc).iret()
    return fn.finish()


# ---------------------------------------------------------------------------
# The young-object churn kernel (javac, jack, jess, mtrt, ...)
# ---------------------------------------------------------------------------

def define_young_class(program: Program, name: str,
                       ref_fields: int = 1, int_fields: int = 3) -> ClassInfo:
    klass = program.define_class(name)
    for i in range(ref_fields):
        klass.add_field(f"r{i}", "ref")
    for i in range(int_fields):
        klass.add_field(f"v{i}", "int")
    klass.seal()
    return klass


def add_young_churn_kernel(program: Program, app: ClassInfo,
                           klass: ClassInfo, *, burst: int,
                           keep_every: int,
                           name: str = "parse") -> MethodInfo:
    """``static int parse(ref keep)``: allocate a burst of small objects,
    linking each to the previous; only every ``keep_every``-th survives
    (stored into the keep array), the rest die young.

    This is the JVM98 shape the paper observes: "These programs have
    relatively small working sets and/or many young objects that do not
    benefit from better spatial locality in the mature space."
    """
    fn = Fn(program, app, name, args=["ref"], returns="int")
    keep = 0
    prev = fn.local()
    cur = fn.local()
    acc = fn.local()
    fn.emit("aconst_null").rstore(prev)
    fn.iconst(0).istore(acc)
    with fn.loop(burst) as i:
        fn.new(klass).rstore(cur)
        fn.rload(cur).rload(prev).putfield(klass, "r0")
        fn.rload(cur).iload(i).putfield(klass, "v0")
        # acc += cur.r0 != null ? cur.r0.v0 : 0
        nonull = fn.fresh_label("nn")
        done = fn.fresh_label("dn")
        fn.rload(cur).getfield(klass, "r0")
        fn.emit("ifnonnull", nonull)
        fn.emit("goto", done)
        fn.label(nonull)
        fn.iload(acc)
        fn.rload(cur).getfield(klass, "r0").getfield(klass, "v0")
        fn.emit("iadd").istore(acc)
        fn.label(done)
        # keep[i / keep_every] = cur  (only every keep_every-th slot wins)
        fn.iload(i).iconst(keep_every).emit("irem")
        survives = fn.fresh_label("sv")
        fn.emit("ifz", "ne", survives)
        fn.rload(keep)
        fn.iload(i).iconst(keep_every).emit("idiv")
        fn.rload(cur)
        fn.emit("arrstore", "ref")
        fn.label(survives)
        fn.rload(cur).rstore(prev)
    fn.iload(acc).iret()
    return fn.finish()


# ---------------------------------------------------------------------------
# Code-corpus filler (Table 2)
# ---------------------------------------------------------------------------

def add_filler_methods(program: Program, app: ClassInfo, count: int,
                       body_loops: int = 3) -> List[MethodInfo]:
    """Generate ``count`` cold methods, each invoked once by the caller.

    Real benchmarks compile hundreds to thousands of methods that run a
    handful of times; the per-benchmark ``count`` reproduces Table 2's
    machine-code and map-size spread (jython's corpus dwarfs db's).
    Each body contains calls (GC points), like real library code — the
    GC-map density of the corpus matters for Table 2.
    """
    mixer_name = "mix"
    if mixer_name in app.methods:
        mixer = app.methods[mixer_name]
    else:
        mfn = Fn(program, app, mixer_name, args=["int", "int"],
                 returns="int")
        mfn.iload(0).iload(1).emit("ixor")
        mfn.iconst(0x9E3779B9 & 0x7FFFFFFF).emit("iadd").iret()
        mixer = mfn.finish()
    methods = []
    for k in range(count):
        fn = Fn(program, app, f"cold{k}", args=["int"], returns="int")
        x = 0
        acc = fn.local()
        fn.iload(x).istore(acc)
        with fn.loop(body_loops) as i:
            fn.iload(acc).iload(i).call(mixer)
            fn.iconst(1 + (k % 7)).emit("ishr")
            fn.istore(acc)
        fn.iload(acc).iret()
        methods.append(fn.finish())
    return methods


def call_fillers(fn: Fn, app: ClassInfo, fillers: List[MethodInfo]) -> None:
    """Invoke each filler once (forcing baseline compilation)."""
    for k, m in enumerate(fillers):
        fn.iconst(k).call(m).emit("pop")
