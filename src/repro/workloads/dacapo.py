"""DaCapo benchmark analogs (Table 1, version 10-2006 MR-2 subset).

``chart``, ``eclipse`` and ``xalan`` are excluded, as in the paper
("not compatible with version 2.4.2 of Jikes RVM").

Per-benchmark targets (sections 6.2/6.3, Figures 2-5):

* **antlr, fop** — small heaps, few co-allocated objects, counts
  sensitive to the sampling interval.
* **bloat** — one of the three programs with a real speedup: an IR node
  graph traversed through a hot reference field.
* **hsqldb, luindex, pmd** — many co-allocated objects, insensitive to
  the interval; noticeable L1 reductions for pmd.
* **jython** — by far the largest compiled-code corpus (Table 2:
  685 KB machine code, 1870 KB MC maps).
* **lusearch** — read-mostly index probing, moderate counts.
"""

from __future__ import annotations

from repro.jit.aos import CompilationPlan
from repro.vm.program import Program
from repro.workloads.patterns import (
    Workload,
    add_filler_methods,
    add_pair_kernel,
    add_pair_setup,
    add_young_churn_kernel,
    call_fillers,
    define_pair_classes,
    define_pair_factory,
    define_young_class,
    make_app_class,
)
from repro.workloads.synth import Fn


def _pair_benchmark(name: str, *, parent_class: str, n: int, rounds: int,
                    churn_mask: int, payload_len: int, pad_ints: int = 0,
                    payload_span: int = 0, fillers: int = 20,
                    min_heap: int = 512 * 1024, description: str = "",
                    young_class: str = "", young_burst: int = 0,
                    young_keep: int = 64, seed: int = 1) -> Workload:
    """Shared scaffolding for the pair-kernel DaCapo programs."""
    p = Program(name)
    app = make_app_class(p)
    parent = define_pair_classes(p, parent_class, pad_ints=pad_ints)
    make = define_pair_factory(p, app, parent, payload_len,
                               payload_span=payload_span)
    setup = add_pair_setup(p, app, make, n)
    scan = add_pair_kernel(p, app, parent, make, n=n, churn_mask=churn_mask,
                           payload_len=payload_len)
    plan_methods = [scan.qualified_name, make.qualified_name]
    young = None
    if young_class:
        yc = define_young_class(p, young_class)
        young = add_young_churn_kernel(p, app, yc, burst=young_burst,
                                       keep_every=young_keep)
        plan_methods.append(young.qualified_name)
    cold = add_filler_methods(p, app, fillers)

    fn = Fn(p, app, "main")
    table = fn.local()
    keep = fn.local()
    fn.iconst(seed).putstatic(app, "rngstate")
    call_fillers(fn, app, cold)
    fn.call(setup).rstore(table)
    if young is not None:
        fn.iconst(young_burst // young_keep + 1)
        fn.emit("newarray", "ref").rstore(keep)
    with fn.loop(rounds):
        fn.rload(table).call(scan)
        fn.getstatic(app, "checksum").emit("iadd").putstatic(app, "checksum")
        if young is not None:
            fn.rload(keep).call(young).emit("pop")
    fn.ret()
    p.set_main(fn.finish())

    return Workload(
        name=name, program=p, plan=CompilationPlan(plan_methods),
        min_heap_bytes=min_heap, description=description,
        hot_fields=[f"{parent_class}::data"],
    )


def build_antlr() -> Workload:
    """Grammar analysis: a small persistent grammar graph, low churn —
    few co-allocation candidates, interval-sensitive counts."""
    return _pair_benchmark(
        "antlr", parent_class="GrammarNode", n=260, rounds=34,
        churn_mask=15, payload_len=10, fillers=32,
        min_heap=320 * 1024, seed=11,
        young_class="ParseTmp", young_burst=520, young_keep=80,
        description="grammar-graph walks, few and interval-sensitive pairs")


def build_bloat() -> Workload:
    """Bytecode optimizer: heavy traversal of an IR node graph through a
    hot reference field — one of the paper's three speedup programs."""
    return _pair_benchmark(
        "bloat", parent_class="IrNode", n=1050, rounds=30,
        churn_mask=3, payload_len=14, payload_span=12, pad_ints=1,
        fillers=70, min_heap=320 * 1024, seed=23,
        description="IR-graph rewriting with hot use-def payloads")


def build_fop() -> Workload:
    """XSL-FO formatter: a tiny layout tree, one pass; almost nothing
    matures."""
    return _pair_benchmark(
        "fop", parent_class="LayoutBox", n=220, rounds=30,
        churn_mask=7, payload_len=8, fillers=4,
        min_heap=320 * 1024, seed=31,
        young_class="Span", young_burst=760, young_keep=60,
        description="one-shot layout-tree formatting, tiny mature set")


def build_hsqldb() -> Workload:
    """In-memory SQL: rows with value arrays; many co-allocated pairs."""
    return _pair_benchmark(
        "hsqldb", parent_class="Row", n=1000, rounds=48,
        churn_mask=3, payload_len=18, payload_span=16, pad_ints=1,
        fillers=100, min_heap=320 * 1024, seed=41,
        description="row/value-array lookups under transaction churn")


def build_jython() -> Workload:
    """Python-on-JVM: the largest compiled-code corpus (Table 2), frame
    and dict-entry churn with a moderately hot chain field."""
    return _pair_benchmark(
        "jython", parent_class="DictEntry", n=900, rounds=30,
        churn_mask=7, payload_len=12, fillers=250,
        min_heap=320 * 1024, seed=53,
        young_class="PyFrame", young_burst=240, young_keep=96,
        description="interpreter dict/frame churn; huge method corpus")


def build_luindex() -> Workload:
    """Text indexing: postings built once and extended steadily — many
    co-allocated Posting/doc-array pairs."""
    return _pair_benchmark(
        "luindex", parent_class="Posting", n=1000, rounds=48,
        churn_mask=2 ** 2 - 1, payload_len=16, payload_span=12,
        fillers=110, min_heap=320 * 1024, seed=61,
        description="index construction with growing postings")


def build_lusearch() -> Workload:
    """Index search: read-mostly probes of the postings, less churn."""
    return _pair_benchmark(
        "lusearch", parent_class="Hit", n=1300, rounds=34,
        churn_mask=15, payload_len=14, fillers=85,
        min_heap=640 * 1024, seed=71,
        description="read-mostly postings probes")


def build_pmd() -> Workload:
    """Source analyzer: AST nodes with a hot child field; noticeable L1
    reduction (Figure 4)."""
    return _pair_benchmark(
        "pmd", parent_class="AstNode", n=900, rounds=50,
        churn_mask=3, payload_len=12, payload_span=10,
        fillers=55, min_heap=320 * 1024, seed=83,
        description="AST rule matching with node churn")
