"""Workload-construction helpers.

The benchmark programs of Table 1 are synthesized as guest bytecode
(DESIGN.md §2).  Writing stack bytecode by hand is noisy, so this
module provides :class:`Fn`, a structured-assembly wrapper over
:class:`repro.vm.bytecode.Asm`: named locals, ``with``-based counted
loops, and field/array access shorthands.  Everything lowers to plain
verified bytecode — the workloads exercise exactly the same compiler
and VM paths as hand-written code.
"""

from __future__ import annotations

from contextlib import contextmanager
from itertools import count
from typing import List, Optional, Sequence

from repro.vm.bytecode import Asm
from repro.vm.model import ClassInfo, FieldInfo, MethodInfo
from repro.vm.program import Program


class Fn:
    """A method under construction."""

    _label_counter = count()

    def __init__(self, program: Program, klass: ClassInfo, name: str,
                 args: Sequence[str] = (), returns: str = "void",
                 static: bool = True):
        self.program = program
        self.klass = klass
        self.name = name
        self.args = list(args)
        self.returns = returns
        self.static = static
        self.asm = Asm()
        self._nlocals = len(self.args)
        self._finished: Optional[MethodInfo] = None

    # -- locals -------------------------------------------------------------

    def local(self) -> int:
        """Allocate a fresh local-variable slot."""
        index = self._nlocals
        self._nlocals += 1
        return index

    # -- raw emission ---------------------------------------------------------

    def emit(self, op: str, a=None, b=None) -> "Fn":
        self.asm.emit(op, a, b)
        return self

    def label(self, name: str) -> "Fn":
        self.asm.label(name)
        return self

    def fresh_label(self, hint: str = "L") -> str:
        return f"{hint}_{next(Fn._label_counter)}"

    # -- shorthands -----------------------------------------------------------

    def iconst(self, value: int) -> "Fn":
        return self.emit("iconst", value)

    def iload(self, idx: int) -> "Fn":
        return self.emit("iload", idx)

    def istore(self, idx: int) -> "Fn":
        return self.emit("istore", idx)

    def rload(self, idx: int) -> "Fn":
        return self.emit("rload", idx)

    def rstore(self, idx: int) -> "Fn":
        return self.emit("rstore", idx)

    def getfield(self, klass: "ClassInfo | str", field: str) -> "Fn":
        if isinstance(klass, str):
            klass = self.program.klass(klass)
        return self.emit("getfield", klass.field(field))

    def putfield(self, klass: "ClassInfo | str", field: str) -> "Fn":
        if isinstance(klass, str):
            klass = self.program.klass(klass)
        return self.emit("putfield", klass.field(field))

    def getstatic(self, klass: ClassInfo, field: str) -> "Fn":
        return self.emit("getstatic", klass.static(field))

    def putstatic(self, klass: ClassInfo, field: str) -> "Fn":
        return self.emit("putstatic", klass.static(field))

    def new(self, klass: "ClassInfo | str") -> "Fn":
        if isinstance(klass, str):
            klass = self.program.klass(klass)
        return self.emit("new", klass)

    def call(self, method: MethodInfo) -> "Fn":
        return self.emit("invokestatic", method)

    def callv(self, klass: ClassInfo, name: str) -> "Fn":
        return self.emit("invokevirtual", klass, name)

    # -- structured control flow ------------------------------------------------

    @contextmanager
    def loop(self, limit, start: int = 0, step: int = 1):
        """Counted loop; yields the induction-variable local.

        ``limit`` is an int constant or a local index wrapped in
        :func:`local_ref`.

        with fn.loop(100) as i:
            ... body using local i ...
        """
        i = self.local()
        head = self.fresh_label("head")
        done = self.fresh_label("done")
        self.iconst(start).istore(i)
        self.label(head)
        self.iload(i)
        if isinstance(limit, LocalRef):
            self.iload(limit.index)
        else:
            self.iconst(limit)
        self.emit("if_icmp", "ge", done)
        yield i
        self.iload(i).iconst(step).emit("iadd").istore(i)
        self.emit("goto", head)
        self.label(done)

    @contextmanager
    def if_nonzero(self):
        """Emit an if-block guarded by the int on top of the stack."""
        skip = self.fresh_label("skip")
        self.emit("ifz", "eq", skip)
        yield
        self.label(skip)

    @contextmanager
    def if_cond(self, cond: str):
        """If-block comparing the two ints on top of the stack.

        ``cond`` is the condition under which the block *runs*.
        """
        inverse = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt",
                   "gt": "le", "le": "gt"}[cond]
        skip = self.fresh_label("skip")
        self.emit("if_icmp", inverse, skip)
        yield
        self.label(skip)

    # -- finalization ---------------------------------------------------------------

    def ret(self) -> "Fn":
        return self.emit("return")

    def iret(self) -> "Fn":
        return self.emit("ireturn")

    def rret(self) -> "Fn":
        return self.emit("rreturn")

    def finish(self) -> MethodInfo:
        if self._finished is None:
            self._finished = self.program.define_method(
                self.klass, self.name, args=self.args, returns=self.returns,
                max_locals=self._nlocals, static=self.static, code=self.asm)
        return self._finished


class LocalRef:
    """Marks a loop limit as a local index rather than a constant."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index


def local_ref(index: int) -> LocalRef:
    return LocalRef(index)


def define_string_factory(program: Program) -> MethodInfo:
    """``String makeString(int length, int seed)``.

    Allocates a String with a fresh char[] and fills it — the standard
    allocation pattern of the db workload's records (and the object pair
    of Figures 7/8).
    """
    string_class = program.string_class
    fn = Fn(program, string_class, "make", args=["int", "int"], returns="ref")
    length, seed = 0, 1
    s = fn.local()
    arr = fn.local()
    # char[] value = new char[length];
    fn.iload(length).emit("newarray", "char").rstore(arr)
    # fill with (seed + i) & 0xff
    with fn.loop(local_ref(length)) as i:
        fn.rload(arr).iload(i)
        fn.iload(seed).iload(i).emit("iadd").iconst(0xFF).emit("iand")
        fn.emit("arrstore", "char")
    # String s = new String; s.value = arr; s.count = length;
    fn.new(string_class).rstore(s)
    fn.rload(s).rload(arr).putfield(string_class, "value")
    fn.rload(s).iload(length).putfield(string_class, "count")
    fn.rload(s).rret()
    return fn.finish()


def lcg_step(fn: Fn, state_local: int, modulus: int) -> None:
    """Advance an LCG and leave ``(state >> 7) % modulus`` on the stack —
    a deterministic shuffled access pattern.

    The high bits are used because the low bits of a power-of-two LCG
    cycle with a tiny period (the classic LCG pitfall)."""
    fn.iload(state_local)
    fn.iconst(1103515245).emit("imul")
    fn.iconst(12345).emit("iadd")
    fn.iconst(0x7FFFFFFF).emit("iand")
    fn.istore(state_local)
    fn.iload(state_local)
    fn.iconst(7).emit("ishr")
    fn.iconst(modulus).emit("irem")
