"""The benchmark suite registry (Table 1).

Programs from SPEC JVM98 (largest workload, repeated), the DaCapo suite
(version 10-2006 MR-2, minus chart/eclipse/xalan, as in the paper), and
pseudojbb (SPEC JBB2000 with a fixed number of transactions).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.workloads import dacapo, jvm98, pseudojbb
from repro.workloads.patterns import Workload

#: Table 1 order.
BENCHMARKS: Dict[str, Callable[[], Workload]] = {
    "compress": jvm98.build_compress,
    "jess": jvm98.build_jess,
    "db": jvm98.build_db,
    "javac": jvm98.build_javac,
    "mpegaudio": jvm98.build_mpegaudio,
    "mtrt": jvm98.build_mtrt,
    "jack": jvm98.build_jack,
    "pseudojbb": pseudojbb.build_pseudojbb,
    "antlr": dacapo.build_antlr,
    "bloat": dacapo.build_bloat,
    "fop": dacapo.build_fop,
    "hsqldb": dacapo.build_hsqldb,
    "jython": dacapo.build_jython,
    "luindex": dacapo.build_luindex,
    "lusearch": dacapo.build_lusearch,
    "pmd": dacapo.build_pmd,
}

JVM98_NAMES = ("compress", "jess", "db", "javac", "mpegaudio", "mtrt", "jack")
DACAPO_NAMES = ("antlr", "bloat", "fop", "hsqldb", "jython", "luindex",
                "lusearch", "pmd")

#: Programs that should show zero co-allocated objects (Figure 3).
NO_CANDIDATE_NAMES = ("compress", "mpegaudio")


def all_names() -> List[str]:
    return list(BENCHMARKS)


def extended_names() -> List[str]:
    """Table 1 plus the adversarial probes (CLI choices for tools that
    accept any buildable program, like ``repro doctor``)."""
    from repro.workloads.adversarial import ADVERSARIAL

    return list(BENCHMARKS) + [n for n in ADVERSARIAL
                               if n not in BENCHMARKS]


def build(name: str) -> Workload:
    """Build one benchmark program (a fresh Program every call).

    Names outside Table 1 fall back to the adversarial registry
    (:mod:`repro.workloads.adversarial`) — probe programs for the
    observability layers that must not inflate the paper's suite.
    """
    builder = BENCHMARKS.get(name)
    if builder is None:
        from repro.workloads.adversarial import ADVERSARIAL

        builder = ADVERSARIAL.get(name)
    if builder is None:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(BENCHMARKS)}"
        )
    return builder()


def build_all() -> List[Workload]:
    return [build(name) for name in BENCHMARKS]
