"""SPEC JVM98 benchmark analogs (Table 1, upper half).

Each builder synthesizes a guest program whose allocation and access
profile matches the published characterization of its namesake (see
DESIGN.md §2 and the per-benchmark notes below).  Sizes are scaled to
the simulator (DESIGN.md "Scaling"); the paper-relevant *shape* is what
each program preserves.
"""

from __future__ import annotations

from repro.jit.aos import CompilationPlan
from repro.vm.program import Program
from repro.workloads.patterns import (
    Workload,
    add_filler_methods,
    add_pair_kernel,
    add_pair_setup,
    add_stream_kernel,
    add_young_churn_kernel,
    call_fillers,
    define_pair_classes,
    define_pair_factory,
    define_young_class,
    make_app_class,
)
from repro.workloads.synth import Fn


def _finish_main(fn: Fn, app) -> None:
    fn.ret()
    method = fn.finish()
    fn.program.set_main(method)


def build_db() -> Workload:
    """_209_db: an in-memory database of String records.

    Shuffled index lookups dereference ``String::value`` — the miss
    pattern of Figures 4/5/6/7.  Steady churn replaces entries so that
    newly promoted String/char[] pairs follow the co-allocation policy;
    over the run most of the mature population turns over, giving the
    paper's gradual "bend" (Figure 7a).
    """
    N, ROUNDS, PAYLOAD = 2000, 52, 16
    p = Program("db")
    app = make_app_class(p)
    string = p.string_class
    make = define_pair_factory(p, app, string, PAYLOAD,
                               data_field="value", key_field="count",
                               payload_span=24)
    setup = add_pair_setup(p, app, make, N)
    scan = add_pair_kernel(p, app, string, make, n=N, churn_mask=3,
                           payload_len=PAYLOAD, data_field="value",
                           key_field="count")
    fillers = add_filler_methods(p, app, 6)

    fn = Fn(p, app, "main")
    table = fn.local()
    fn.iconst(12345).putstatic(app, "rngstate")
    call_fillers(fn, app, fillers)
    fn.call(setup).rstore(table)
    with fn.loop(ROUNDS):
        fn.rload(table).call(scan)
        fn.getstatic(app, "checksum").emit("iadd").putstatic(app, "checksum")
    _finish_main(fn, app)

    return Workload(
        name="db", program=p,
        plan=CompilationPlan([scan.qualified_name, make.qualified_name]),
        min_heap_bytes=512 * 1024,
        description="shuffled String-index lookups with steady churn",
        hot_fields=["String::value"],
    )


def build_compress() -> Workload:
    """_201_compress: block compression over large byte/int buffers.

    Only a handful of large arrays are allocated (straight into the
    LOS); there are no reference fields, hence *zero* co-allocation
    candidates (Figure 3).
    """
    BUF = 96 * 1024 // 4  # 96 KB int buffers: the pair exceeds the L2
    ROUNDS = 16
    p = Program("compress")
    app = make_app_class(p)
    process = add_stream_kernel(p, app, buffer_len=BUF)
    fillers = add_filler_methods(p, app, 10)

    fn = Fn(p, app, "main")
    src = fn.local()
    dst = fn.local()
    fn.iconst(BUF).emit("newarray", "int").rstore(src)
    fn.iconst(BUF).emit("newarray", "int").rstore(dst)
    call_fillers(fn, app, fillers)
    with fn.loop(ROUNDS):
        fn.rload(src).rload(dst).call(process)
        fn.getstatic(app, "checksum").emit("iadd").putstatic(app, "checksum")
    _finish_main(fn, app)

    return Workload(
        name="compress", program=p,
        plan=CompilationPlan([process.qualified_name]),
        min_heap_bytes=320 * 1024,
        description="sequential compression over LOS-resident buffers",
        no_candidates=True,
    )


def build_mpegaudio() -> Workload:
    """_222_mpegaudio: decode loops over constant tables.

    Small working set, nearly no allocation; any execution-time
    variation under monitoring comes from the sampling machinery itself
    ("mpegaudio shows varying numbers ... from the event monitoring and
    processing", section 6.3).
    """
    TABLE = 6 * 1024 // 4  # 6 KB tables: inside L1 after warm-up
    ROUNDS = 130
    p = Program("mpegaudio")
    app = make_app_class(p)
    decode = add_stream_kernel(p, app, buffer_len=TABLE, name="decode")
    fillers = add_filler_methods(p, app, 65)

    fn = Fn(p, app, "main")
    coeff = fn.local()
    frame = fn.local()
    fn.iconst(TABLE).emit("newarray", "int").rstore(coeff)
    fn.iconst(TABLE).emit("newarray", "int").rstore(frame)
    call_fillers(fn, app, fillers)
    with fn.loop(ROUNDS):
        fn.rload(coeff).rload(frame).call(decode)
        fn.getstatic(app, "checksum").emit("iadd").putstatic(app, "checksum")
    _finish_main(fn, app)

    return Workload(
        name="mpegaudio", program=p,
        plan=CompilationPlan([decode.qualified_name]),
        min_heap_bytes=320 * 1024,
        description="decode loops over cache-resident tables",
        no_candidates=True,
    )


def build_jess() -> Workload:
    """_202_jess: expert system.

    A persistent rule network (pair kernel with moderate churn) plus
    bursts of short-lived fact objects.  Noticeable L1 miss reduction
    with co-allocation, small execution-time effect (Figures 4/5).
    """
    N, ROUNDS = 650, 40
    p = Program("jess")
    app = make_app_class(p)
    node = define_pair_classes(p, "ReteNode", pad_ints=2)
    make = define_pair_factory(p, app, node, payload_len=12)
    setup = add_pair_setup(p, app, make, N)
    match = add_pair_kernel(p, app, node, make, n=N, churn_mask=3,
                            payload_len=12)
    fact = define_young_class(p, "Fact")
    assert_facts = add_young_churn_kernel(p, app, fact, burst=220,
                                          keep_every=64, name="assertFacts")
    fillers = add_filler_methods(p, app, 18)

    fn = Fn(p, app, "main")
    table = fn.local()
    keep = fn.local()
    fn.iconst(999).putstatic(app, "rngstate")
    call_fillers(fn, app, fillers)
    fn.call(setup).rstore(table)
    fn.iconst(8).emit("newarray", "ref").rstore(keep)
    with fn.loop(ROUNDS):
        fn.rload(table).call(match)
        fn.getstatic(app, "checksum").emit("iadd").putstatic(app, "checksum")
        fn.rload(keep).call(assert_facts).emit("pop")
    _finish_main(fn, app)

    return Workload(
        name="jess", program=p,
        plan=CompilationPlan([match.qualified_name, make.qualified_name,
                              assert_facts.qualified_name]),
        min_heap_bytes=320 * 1024,
        description="rule network matching plus short-lived fact bursts",
        hot_fields=["ReteNode::data"],
    )


def build_javac() -> Workload:
    """_213_javac: the JDK compiler.

    Dominated by bursts of short-lived AST nodes; the mature working
    set is small, so co-allocation finds little and the (small) net
    effect is the monitoring overhead — the paper's worst case at large
    heaps (-2.1%, section 6.3).
    """
    ROUNDS, BURST = 75, 650
    p = Program("javac")
    app = make_app_class(p)
    ast = define_young_class(p, "AstNode", ref_fields=2, int_fields=2)
    parse = add_young_churn_kernel(p, app, ast, burst=BURST, keep_every=96)
    fillers = add_filler_methods(p, app, 50)

    fn = Fn(p, app, "main")
    keep = fn.local()
    call_fillers(fn, app, fillers)
    fn.iconst(BURST // 96 + 1).emit("newarray", "ref").rstore(keep)
    with fn.loop(ROUNDS):
        fn.rload(keep).call(parse)
        fn.getstatic(app, "checksum").emit("iadd").putstatic(app, "checksum")
    _finish_main(fn, app)

    return Workload(
        name="javac", program=p,
        plan=CompilationPlan([parse.qualified_name]),
        min_heap_bytes=320 * 1024,
        description="AST-node bursts, almost nothing survives the nursery",
    )


def build_mtrt() -> Workload:
    """_227_mtrt: ray tracer.

    A modest scene graph traversed with good locality (the scene fits
    mostly in L2) plus per-ray temporary vectors; little co-allocation
    benefit.
    """
    N, ROUNDS = 500, 55
    p = Program("mtrt")
    app = make_app_class(p)
    shape = define_pair_classes(p, "Shape", pad_ints=4)
    make = define_pair_factory(p, app, shape, payload_len=10)
    setup = add_pair_setup(p, app, make, N)
    trace = add_pair_kernel(p, app, shape, make, n=N, churn_mask=31,
                            payload_len=10)
    vec = define_young_class(p, "Vec", ref_fields=1, int_fields=3)
    shade = add_young_churn_kernel(p, app, vec, burst=170, keep_every=128,
                                   name="shade")
    fillers = add_filler_methods(p, app, 42)

    fn = Fn(p, app, "main")
    scene = fn.local()
    keep = fn.local()
    fn.iconst(4242).putstatic(app, "rngstate")
    call_fillers(fn, app, fillers)
    fn.call(setup).rstore(scene)
    fn.iconst(4).emit("newarray", "ref").rstore(keep)
    with fn.loop(ROUNDS):
        fn.rload(scene).call(trace)
        fn.getstatic(app, "checksum").emit("iadd").putstatic(app, "checksum")
        fn.rload(keep).call(shade).emit("pop")
    _finish_main(fn, app)

    return Workload(
        name="mtrt", program=p,
        plan=CompilationPlan([trace.qualified_name, make.qualified_name,
                              shade.qualified_name]),
        min_heap_bytes=320 * 1024,
        description="scene-graph traversal plus per-ray temporaries",
        hot_fields=["Shape::data"],
    )


def build_jack() -> Workload:
    """_228_jack: parser generator.

    Token-stream processing: bursts of young token objects, a tiny
    persistent grammar table.
    """
    ROUNDS, BURST = 65, 480
    p = Program("jack")
    app = make_app_class(p)
    token = define_young_class(p, "Token", ref_fields=1, int_fields=4)
    tokenize = add_young_churn_kernel(p, app, token, burst=BURST,
                                      keep_every=80, name="tokenize")
    grammar = define_pair_classes(p, "Rule")
    make = define_pair_factory(p, app, grammar, payload_len=8)
    setup = add_pair_setup(p, app, make, 240)
    lookup = add_pair_kernel(p, app, grammar, make, n=240, churn_mask=15,
                             payload_len=8)
    fillers = add_filler_methods(p, app, 36)

    fn = Fn(p, app, "main")
    keep = fn.local()
    rules = fn.local()
    fn.iconst(777).putstatic(app, "rngstate")
    call_fillers(fn, app, fillers)
    fn.iconst(BURST // 80 + 1).emit("newarray", "ref").rstore(keep)
    fn.call(setup).rstore(rules)
    with fn.loop(ROUNDS):
        fn.rload(keep).call(tokenize).emit("pop")
        fn.rload(rules).call(lookup)
        fn.getstatic(app, "checksum").emit("iadd").putstatic(app, "checksum")
    _finish_main(fn, app)

    return Workload(
        name="jack", program=p,
        plan=CompilationPlan([tokenize.qualified_name, lookup.qualified_name,
                              make.qualified_name]),
        min_heap_bytes=320 * 1024,
        description="token bursts over a small persistent grammar",
        hot_fields=["Rule::data"],
    )
