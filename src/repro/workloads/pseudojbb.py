"""pseudojbb: SPEC JBB2000 with a fixed number of transactions (Table 1).

The paper's analysis of jbb (section 6.3): "there are many frequently
missed objects (2.4 million objects were co-allocated) and ... the
majority of those objects are relatively large (long[] arrays with a
size of >128 bytes).  As a consequence, optimizing for reduced cache
misses at the cache-line level does not yield a significant benefit."

The analog: warehouses of Order objects whose hot child is a ``long[]``
history larger than one 128-byte cache line.  Co-allocation fires a lot
(Figure 3's tall bar) but parent and child can never share a line's
worth of payload, so the L1 reduction is small (2-6 %) and the speedup
marginal (≈2 % at large heaps).
"""

from __future__ import annotations

from repro.jit.aos import CompilationPlan
from repro.vm.program import Program
from repro.workloads.patterns import (
    Workload,
    add_filler_methods,
    add_pair_kernel,
    add_pair_setup,
    call_fillers,
    define_pair_classes,
    define_pair_factory,
    make_app_class,
)
from repro.workloads.synth import Fn

#: 56 longs = 448 payload bytes: several cache lines, as in the paper.
HISTORY_LONGS = 56
WAREHOUSE_ORDERS = 650
TRANSACTIONS = 26  # rounds over the order table


def build_pseudojbb() -> Workload:
    p = Program("pseudojbb")
    app = make_app_class(p)
    order = define_pair_classes(p, "Order", pad_ints=6)
    make = define_pair_factory(p, app, order, payload_len=HISTORY_LONGS,
                               payload_kind="long", fill=True)
    setup = add_pair_setup(p, app, make, WAREHOUSE_ORDERS)
    transact = add_pair_kernel(p, app, order, make, n=WAREHOUSE_ORDERS,
                               churn_mask=1, payload_len=HISTORY_LONGS,
                               payload_kind="long")
    fillers = add_filler_methods(p, app, 120)

    fn = Fn(p, app, "main")
    orders = fn.local()
    fn.iconst(20060101).putstatic(app, "rngstate")
    call_fillers(fn, app, fillers)
    fn.call(setup).rstore(orders)
    with fn.loop(TRANSACTIONS):
        fn.rload(orders).call(transact)
        fn.getstatic(app, "checksum").emit("iadd").putstatic(app, "checksum")
    fn.ret()
    p.set_main(fn.finish())

    return Workload(
        name="pseudojbb", program=p,
        plan=CompilationPlan([transact.qualified_name, make.qualified_name]),
        min_heap_bytes=704 * 1024,
        description="fixed-transaction JBB: orders with >128B long[] history",
        hot_fields=["Order::data"],
    )
