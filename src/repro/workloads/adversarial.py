"""Adversarial workloads for the health observatory (not in Table 1).

These programs exist to *provoke* the run-health layer rather than to
reproduce a published benchmark: ``phased`` alternates between a
streaming kernel (prefetch-friendly large-array passes: low attributed
samples, no churn) and a pointer-chasing pair kernel (shuffled
parent->child dereferences with churn: high L1D miss attribution,
steady allocation) in long unrolled segments, so the per-interval HPM
vector shifts sharply several times over the run — exactly what the
online phase segmentation must pick up.

Registered in their own table so :data:`repro.workloads.suite.BENCHMARKS`
stays exactly the paper's 16 programs; :func:`repro.workloads.suite.build`
falls back here for names outside Table 1.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.jit.aos import CompilationPlan
from repro.vm.program import Program
from repro.workloads.patterns import (
    Workload,
    add_filler_methods,
    add_pair_kernel,
    add_pair_setup,
    add_stream_kernel,
    call_fillers,
    define_pair_classes,
    define_pair_factory,
    make_app_class,
)
from repro.workloads.synth import Fn


def build_phased() -> Workload:
    """Alternating stream / pointer-chase segments (a phase-shift probe).

    Four unrolled segments (stream, chase, stream, chase), each long
    enough to span many measurement periods, so the segmentation sees
    at least one committed boundary per transition under the default
    hysteresis.
    """
    BUF = 48 * 1024 // 4     # 48 KB int buffers: misses prefetch away
    STREAM_ROUNDS = 9
    N, PAYLOAD = 1400, 16    # pair table: shuffled lookups miss in L1
    CHASE_ROUNDS = 12
    p = Program("phased")
    app = make_app_class(p)
    rec = define_pair_classes(p, "Rec", pad_ints=2)
    make = define_pair_factory(p, app, rec, PAYLOAD, payload_span=16)
    setup = add_pair_setup(p, app, make, N)
    scan = add_pair_kernel(p, app, rec, make, n=N, churn_mask=3,
                           payload_len=PAYLOAD)
    process = add_stream_kernel(p, app, buffer_len=BUF)
    fillers = add_filler_methods(p, app, 8)

    fn = Fn(p, app, "main")
    src = fn.local()
    dst = fn.local()
    table = fn.local()
    fn.iconst(31337).putstatic(app, "rngstate")
    call_fillers(fn, app, fillers)
    fn.iconst(BUF).emit("newarray", "int").rstore(src)
    fn.iconst(BUF).emit("newarray", "int").rstore(dst)
    fn.call(setup).rstore(table)
    for segment in range(4):
        if segment % 2 == 0:
            with fn.loop(STREAM_ROUNDS):
                fn.rload(src).rload(dst).call(process)
                fn.getstatic(app, "checksum").emit("iadd")
                fn.putstatic(app, "checksum")
        else:
            with fn.loop(CHASE_ROUNDS):
                fn.rload(table).call(scan)
                fn.getstatic(app, "checksum").emit("iadd")
                fn.putstatic(app, "checksum")
    fn.ret()
    main = fn.finish()
    p.set_main(main)

    return Workload(
        name="phased", program=p,
        plan=CompilationPlan([process.qualified_name, scan.qualified_name,
                              make.qualified_name]),
        min_heap_bytes=512 * 1024,
        description="alternating stream / pointer-chase segments "
                    "(health-observatory phase-shift probe)",
        hot_fields=["Rec::data"],
    )


#: Adversarial registry: probes for the observability layers.
ADVERSARIAL: Dict[str, Callable[[], Workload]] = {
    "phased": build_phased,
}
