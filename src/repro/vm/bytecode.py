"""The guest bytecode: a compact Java-bytecode analog.

The instruction set mirrors the subset of Java bytecode the paper's
analyses care about: local-variable traffic, an operand stack, field and
array accesses (the heap accesses the instructions-of-interest analysis
filters), object allocation, virtual/static calls, and branches.

Operands are *resolved* (FieldInfo / ClassInfo / MethodInfo references,
not constant-pool indices): this is the form a JIT sees after constant
pool resolution.

The module also provides:

* :class:`Asm` — a tiny assembler with labels, used by the workload
  generators,
* :func:`analyze` — the abstract interpretation of the operand stack and
  locals used by both compilers (stack depths, ref-ness of every slot at
  every pc — the raw material for GC maps).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.vm.model import ClassInfo, FieldInfo, MethodInfo

# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------

#: op -> (pops, pushes) for fixed-effect instructions; variable-effect ops
#: (calls) are handled explicitly.
STACK_EFFECTS = {
    "iconst": (0, 1),
    "aconst_null": (0, 1),
    "iload": (0, 1),
    "rload": (0, 1),
    "istore": (1, 0),
    "rstore": (1, 0),
    "iadd": (2, 1), "isub": (2, 1), "imul": (2, 1), "idiv": (2, 1),
    "irem": (2, 1), "iand": (2, 1), "ior": (2, 1), "ixor": (2, 1),
    "ishl": (2, 1), "ishr": (2, 1),
    "ineg": (1, 1),
    "dup": (1, 2),
    "pop": (1, 0),
    "swap": (2, 2),
    "goto": (0, 0),
    "if_icmp": (2, 0),
    "ifz": (1, 0),
    "ifnull": (1, 0),
    "ifnonnull": (1, 0),
    "getfield": (1, 1),
    "putfield": (2, 0),
    "getstatic": (0, 1),
    "putstatic": (1, 0),
    "new": (0, 1),
    "newarray": (1, 1),
    "arraylength": (1, 1),
    "arrload": (2, 1),
    "arrstore": (3, 0),
    "return": (0, 0),
    "ireturn": (1, 0),
    "rreturn": (1, 0),
    "nop": (0, 0),
}

BRANCH_OPS = {"goto", "if_icmp", "ifz", "ifnull", "ifnonnull"}
TERMINAL_OPS = {"goto", "return", "ireturn", "rreturn"}
CONDITIONS = ("eq", "ne", "lt", "ge", "gt", "le")

#: Heap-accessing opcodes — the candidates S of the instructions-of-
#: interest analysis (section 5.2: field/array access, virtual calls and
#: object-header access).
HEAP_ACCESS_OPS = {
    "getfield", "putfield", "arrload", "arrstore", "arraylength",
    "invokevirtual",
}


class Instr:
    """One bytecode instruction: an opcode with up to two operands."""

    __slots__ = ("op", "a", "b")

    def __init__(self, op: str, a=None, b=None):
        self.op = op
        self.a = a
        self.b = b

    def __repr__(self) -> str:
        parts = [self.op]
        if self.a is not None:
            parts.append(repr(self.a))
        if self.b is not None:
            parts.append(repr(self.b))
        return " ".join(parts)


class BytecodeError(Exception):
    """Malformed bytecode (assembler or analysis failure)."""


# ---------------------------------------------------------------------------
# Assembler
# ---------------------------------------------------------------------------

class Asm:
    """A label-resolving assembler for guest bytecode.

    >>> asm = Asm()
    >>> asm.emit("iconst", 0)          # doctest: +SKIP
    >>> asm.label("loop")              # doctest: +SKIP
    >>> asm.emit("goto", "loop")       # doctest: +SKIP
    >>> code = asm.finish()            # doctest: +SKIP
    """

    def __init__(self):
        self._code: List[Instr] = []
        self._labels: Dict[str, int] = {}

    def emit(self, op: str, a=None, b=None) -> "Asm":
        if op not in STACK_EFFECTS and op != "invokestatic" and op != "invokevirtual":
            raise BytecodeError(f"unknown opcode {op!r}")
        self._code.append(Instr(op, a, b))
        return self

    def label(self, name: str) -> "Asm":
        if name in self._labels:
            raise BytecodeError(f"duplicate label {name!r}")
        self._labels[name] = len(self._code)
        return self

    def finish(self) -> List[Instr]:
        """Resolve labels to instruction indices and return the code."""
        code = self._code
        for instr in code:
            if instr.op in BRANCH_OPS:
                target_operand = "a" if instr.op in ("goto", "ifnull", "ifnonnull") else "b"
                target = getattr(instr, target_operand)
                if isinstance(target, str):
                    if target not in self._labels:
                        raise BytecodeError(f"undefined label {target!r}")
                    setattr(instr, target_operand, self._labels[target])
        return code


def branch_target(instr: Instr) -> int:
    """Return the branch target index of a branch instruction."""
    if instr.op in ("goto", "ifnull", "ifnonnull"):
        return instr.a
    if instr.op in ("if_icmp", "ifz"):
        return instr.b
    raise BytecodeError(f"{instr.op} is not a branch")


# ---------------------------------------------------------------------------
# Abstract interpretation (stack/locals typing)
# ---------------------------------------------------------------------------

#: Abstract slot types: int, reference, or conflict (never used as a ref).
T_INT = "i"
T_REF = "r"
T_CONFLICT = "x"


class StackState:
    """Per-pc abstract state: operand-stack types and local-slot types."""

    __slots__ = ("stack", "locals")

    def __init__(self, stack: Tuple[str, ...], locals_: Tuple[str, ...]):
        self.stack = stack
        self.locals = locals_

    def merge(self, other: "StackState") -> Optional["StackState"]:
        """Join two states; returns None when nothing changed."""
        if len(self.stack) != len(other.stack):
            raise BytecodeError("stack depth mismatch at merge point")
        new_stack = tuple(
            a if a == b else T_CONFLICT for a, b in zip(self.stack, other.stack)
        )
        new_locals = tuple(
            a if a == b else T_CONFLICT for a, b in zip(self.locals, other.locals)
        )
        if new_stack == self.stack and new_locals == self.locals:
            return None
        return StackState(new_stack, new_locals)


class Analysis:
    """Result of :func:`analyze`: one :class:`StackState` per reachable pc."""

    def __init__(self, states: List[Optional[StackState]], max_stack: int):
        self.states = states
        self.max_stack = max_stack

    def state_at(self, pc: int) -> StackState:
        state = self.states[pc]
        if state is None:
            raise BytecodeError(f"pc {pc} is unreachable")
        return state

    def stack_depth(self, pc: int) -> int:
        return len(self.state_at(pc).stack)


def _effect(instr: Instr, state: StackState) -> StackState:
    """Apply one instruction to an abstract state."""
    op = instr.op
    stack = list(state.stack)
    locals_ = state.locals

    def push(t: str) -> None:
        stack.append(t)

    def pop_n(n: int) -> None:
        if len(stack) < n:
            raise BytecodeError(f"stack underflow at {instr}")
        del stack[len(stack) - n:]

    if op == "iconst":
        push(T_INT)
    elif op == "aconst_null":
        push(T_REF)
    elif op == "iload":
        push(T_INT)
    elif op == "rload":
        if locals_[instr.a] == T_CONFLICT:
            raise BytecodeError(f"rload of conflicted local {instr.a}")
        push(T_REF)
    elif op == "istore":
        pop_n(1)
        locals_ = locals_[: instr.a] + (T_INT,) + locals_[instr.a + 1:]
    elif op == "rstore":
        pop_n(1)
        locals_ = locals_[: instr.a] + (T_REF,) + locals_[instr.a + 1:]
    elif op in ("iadd", "isub", "imul", "idiv", "irem", "iand", "ior",
                "ixor", "ishl", "ishr"):
        pop_n(2)
        push(T_INT)
    elif op == "ineg":
        pop_n(1)
        push(T_INT)
    elif op == "dup":
        if not stack:
            raise BytecodeError("dup on empty stack")
        stack.append(stack[-1])
    elif op == "pop":
        pop_n(1)
    elif op == "swap":
        if len(stack) < 2:
            raise BytecodeError("swap needs two operands")
        stack[-1], stack[-2] = stack[-2], stack[-1]
    elif op in ("goto", "nop"):
        pass
    elif op == "if_icmp":
        pop_n(2)
    elif op == "ifz":
        pop_n(1)
    elif op in ("ifnull", "ifnonnull"):
        pop_n(1)
    elif op == "getfield":
        pop_n(1)
        push(T_REF if instr.a.is_ref else T_INT)
    elif op == "putfield":
        pop_n(2)
    elif op == "getstatic":
        push(T_REF if instr.a.is_ref else T_INT)
    elif op == "putstatic":
        pop_n(1)
    elif op == "new":
        push(T_REF)
    elif op == "newarray":
        pop_n(1)
        push(T_REF)
    elif op == "arraylength":
        pop_n(1)
        push(T_INT)
    elif op == "arrload":
        pop_n(2)
        push(T_REF if instr.a == "ref" else T_INT)
    elif op == "arrstore":
        pop_n(3)
    elif op == "invokestatic":
        method: MethodInfo = instr.a
        pop_n(method.num_args)
        if method.return_kind == "int":
            push(T_INT)
        elif method.return_kind == "ref":
            push(T_REF)
    elif op == "invokevirtual":
        klass: ClassInfo = instr.a
        method = klass.method(instr.b)
        pop_n(method.num_args)
        if method.return_kind == "int":
            push(T_INT)
        elif method.return_kind == "ref":
            push(T_REF)
    elif op in ("return", "ireturn", "rreturn"):
        if op == "ireturn" or op == "rreturn":
            pop_n(1)
    else:  # pragma: no cover - assembler already rejects unknown ops
        raise BytecodeError(f"unknown opcode {op!r}")
    return StackState(tuple(stack), locals_)


def analyze(method: MethodInfo) -> Analysis:
    """Abstractly interpret ``method``'s bytecode.

    Returns per-pc stack/locals types.  This single analysis backs the
    baseline compiler's stack-slot assignment, the opt compiler's HIR
    construction, and the ref-maps that become GC maps.
    """
    code = method.code
    if not code:
        raise BytecodeError(f"{method.qualified_name} has no code")
    n_locals = method.max_locals
    if n_locals < method.num_args:
        raise BytecodeError("max_locals smaller than argument count")
    init_locals = tuple(
        (T_REF if kind == "ref" else T_INT) for kind in method.arg_kinds
    ) + tuple(T_INT for _ in range(n_locals - method.num_args))
    states: List[Optional[StackState]] = [None] * len(code)
    states[0] = StackState((), init_locals)
    worklist = [0]
    max_stack = 0
    while worklist:
        pc = worklist.pop()
        state = states[pc]
        instr = code[pc]
        after = _effect(instr, state)
        max_stack = max(max_stack, len(after.stack), len(state.stack))
        successors = []
        if instr.op in BRANCH_OPS:
            successors.append(branch_target(instr))
        if instr.op not in TERMINAL_OPS:
            if pc + 1 >= len(code):
                raise BytecodeError(
                    f"{method.qualified_name}: control falls off the end"
                )
            successors.append(pc + 1)
        for succ in successors:
            if states[succ] is None:
                states[succ] = after
                worklist.append(succ)
            else:
                merged = states[succ].merge(after)
                if merged is not None:
                    states[succ] = merged
                    worklist.append(succ)
    return Analysis(states, max_stack)
