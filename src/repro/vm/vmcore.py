"""The virtual machine: JIT + GC + runtime + monitoring, as one unit.

"We consider the JIT compiler, the virtual machine (VM), and the
runtime system as one unit since all components must cooperate to
perform most interesting optimizations" (section 1, footnote 1).

:class:`VM` wires together:

* the simulated hardware (memory hierarchy, PEBS unit, CPU),
* the compile-only execution strategy of Jikes RVM (baseline compile on
  first invocation; opt recompilation via the AOS or a pseudo-adaptive
  compilation plan),
* a generational GC plan (GenMS with optional HPM-guided co-allocation,
  or GenCopy),
* the three-layer sampling stack (PEBS -> perfmon kernel module ->
  user library -> collector thread) and the online-optimization
  controller that turns samples into GC guidance.

Cycle accounting is split into application, GC, and monitoring buckets
so the Figure 2 overhead and Figure 5/6 time breakdowns can be read off
directly.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.config import SystemConfig
from repro.core.controller import (
    AUTO_INITIAL_INTERVAL,
    OnlineOptimizationController,
)
from repro.gc import layout
from repro.gc.coalloc import CoallocationPolicy
from repro.gc.gencopy import make_plan
from repro.gc.plan import GCHooks
from repro.hw.cpu import CPU
from repro.hw.events import EventCounters
from repro.hw.memsys import MemorySystem
from repro.hw.pebs import PEBSUnit
from repro.jit.aos import AdaptiveOptimizationSystem, CompilationPlan
from repro.jit.baseline import compile_baseline
from repro.jit.codecache import CodeCache, CompiledMethod
from repro.jit.opt import compile_opt
from repro.health import NULL_HEALTH
from repro.lineage import NULL_LEDGER
from repro.perfmon.collector import CollectorThread
from repro.perfmon.kernel import PerfmonKernelModule
from repro.perfmon.userlib import UserSampleLibrary
from repro.telemetry import NULL_TELEMETRY
from repro.vm.model import ClassInfo, FieldInfo, MethodInfo
from repro.vm.program import Program
from repro.vm.scheduler import VirtualTimeScheduler


@dataclass
class RunResult:
    """Everything a harness needs from one execution."""

    program: str
    cycles: int
    instructions: int
    app_cycles: int
    gc_cycles: int
    monitoring_cycles: int
    counters: Dict[str, int]
    gc_stats: object
    monitor_summary: Optional[dict]
    exit_value: object
    #: Live references for deep inspection (time series, map sizes, ...).
    vm: "VM" = field(repr=False, default=None)

    @property
    def l1_misses(self) -> int:
        return self.counters["L1D_MISS"]

    @property
    def l1_miss_rate(self) -> float:
        accesses = self.counters["L1D_ACCESS"]
        return self.counters["L1D_MISS"] / accesses if accesses else 0.0

    @property
    def telemetry(self):
        """The run's telemetry bundle (the shared null one when off)."""
        return self.vm.telemetry if self.vm is not None else None


class VM:
    """One configured execution environment for one guest program."""

    def __init__(self, program: Program, config: Optional[SystemConfig] = None,
                 compilation_plan: Optional[CompilationPlan] = None,
                 hot_field_override=None):
        self.program = program
        self.config = config or SystemConfig()
        self.compilation_plan = compilation_plan
        self.rng = random.Random(self.config.seed)
        #: Observability: a pure observer of the simulation (never
        #: charges cycles or consumes randomness).  Defaults to the
        #: shared null instance, which records nothing.
        self.telemetry = self.config.telemetry or NULL_TELEMETRY
        #: Decision lineage: the second pure observer — an append-only
        #: ledger linking every online-optimization decision back to
        #: the sample evidence that justified it.
        # Explicit None check: an empty ledger is falsy (len() == 0).
        self.lineage = (self.config.lineage
                        if self.config.lineage is not None else NULL_LEDGER)
        #: Run health: the third pure observer — phase segmentation and
        #: pathology detection over the per-period interval stream.
        self.health = (self.config.health
                       if self.config.health is not None else NULL_HEALTH)

        # Hardware.
        self.counters = EventCounters()
        self.memsys = MemorySystem(self.config.machine, self.counters)
        self.scheduler = VirtualTimeScheduler()
        self.codecache = CodeCache()

        # Cycle buckets (application cycles are computed as the rest).
        self.gc_cycles = 0
        self.monitoring_cycles = 0
        self.compile_cycles = 0
        self._gc_disabled = 0

        # Garbage collector.
        self.coalloc_policy: Optional[CoallocationPolicy] = None
        if self.config.coalloc and self.config.gc_plan == "genms":
            provider = hot_field_override or self._hot_field
            self.coalloc_policy = CoallocationPolicy(
                provider, max_combined_bytes=self.config.gc.max_cell_bytes,
                telemetry=self.telemetry, lineage=self.lineage)
        hooks = GCHooks(roots=self._gc_roots, charge=self._charge_gc,
                        pollute_minor=self.memsys.pollute_minor,
                        pollute_full=self.memsys.pollute_full)
        self.plan = make_plan(self.config.gc_plan, self.config.gc, hooks,
                              self.coalloc_policy, telemetry=self.telemetry)

        # CPU.
        self.cpu = CPU(self.config.machine, self.memsys, runtime=self,
                       scheduler=self.scheduler,
                       fastpath=self.config.fastpath)
        # Trace and ledger timestamps come from the simulated cycle
        # clock.  Bound methods, not lambdas: the binding must survive
        # a snapshot pickle (repro.vm.snapshot), which closures cannot.
        self.telemetry.bind_clock(self._cycle_clock)
        self.lineage.bind_clock(self._cycle_clock)
        self.health.bind_clock(self._cycle_clock)
        self.health.bind_telemetry(self.telemetry)
        self.method_profiler = None
        if self.config.method_profiling:
            from repro.core.counting import MethodProfiler

            self.method_profiler = MethodProfiler(
                event_reader=self._read_l1_misses,
                charge=self._charge_monitoring)
            self.cpu.profiler = self.method_profiler

        # JIT.
        self.aos = AdaptiveOptimizationSystem(self.config.jit)
        self._statics_cursor = layout.STATICS_BASE
        self._static_bases: Dict[ClassInfo, int] = {}
        #: Sliced-execution state: frames pushed / final drain done.
        self._began = False
        self._finished = False

        # Monitoring stack.
        self.pebs: Optional[PEBSUnit] = None
        self.kernel: Optional[PerfmonKernelModule] = None
        self.userlib: Optional[UserSampleLibrary] = None
        self.collector: Optional[CollectorThread] = None
        self.controller: Optional[OnlineOptimizationController] = None
        self.interval_tap = None
        if self.config.monitoring:
            self._init_monitoring()

    # -- monitoring stack ----------------------------------------------------------

    def _init_monitoring(self) -> None:
        cfg = self.config
        self.kernel = PerfmonKernelModule(cfg.perfmon,
                                          telemetry=self.telemetry)
        self.pebs = PEBSUnit(
            cfg.pebs, cost_sink=self._charge_monitoring,
            interrupt_handler=self._pebs_interrupt,
            rng=random.Random(cfg.seed ^ 0x5EB5))
        interval = cfg.sampling_interval or AUTO_INITIAL_INTERVAL
        session = self.kernel.create_session(self.pebs, cfg.sampled_event,
                                             interval)
        self.memsys.arm_event(cfg.sampled_event, self.pebs.on_event)
        self.interval_tap = None
        if self.health.enabled:
            from repro.perfmon.tap import IntervalTap

            self.interval_tap = IntervalTap(self)
        self.controller = OnlineOptimizationController(
            self.codecache, cfg.monitor, cfg.perfmon,
            charge=self._charge_monitoring,
            set_sampling_interval=session.set_interval,
            auto_interval=cfg.sampling_interval is None,
            sampling_switch=self._sampling_switch,
            telemetry=self.telemetry, lineage=self.lineage,
            health=self.health,
            interval_tap=(self.interval_tap.on_period
                          if self.interval_tap is not None else None))
        self.controller.current_interval = interval
        self.userlib = UserSampleLibrary(session, cfg.perfmon,
                                         charge=self._charge_monitoring,
                                         gc_guard=self._gc_guard)
        self.collector = CollectorThread(self.userlib,
                                         self.controller.process_samples,
                                         self.scheduler, cfg.perfmon,
                                         telemetry=self.telemetry,
                                         lineage=self.lineage)

    # -- picklable callbacks ---------------------------------------------------------
    # Every callback installed into long-lived simulation state must be
    # a bound method so the object graph survives a snapshot pickle.

    def _cycle_clock(self) -> int:
        return self.cpu.cycles

    def _read_l1_misses(self) -> int:
        return self.memsys.n_l1_miss

    def _pebs_interrupt(self, batch) -> None:
        self.kernel.session.on_interrupt(batch)

    def _sampling_switch(self, enable: bool) -> None:
        if enable:
            self.pebs.configure(self.config.sampled_event,
                                self.controller.current_interval)
        else:
            self.pebs.stop()

    # -- cycle buckets ---------------------------------------------------------------

    def _charge_gc(self, cycles: int) -> None:
        self.gc_cycles += cycles
        self.plan.stats.gc_cycles += cycles
        self.cpu.charge(cycles)

    def _charge_monitoring(self, cycles: int) -> None:
        self.monitoring_cycles += cycles
        self.cpu.charge(cycles)

    def _charge_compile(self, cycles: int) -> None:
        self.compile_cycles += cycles
        self.cpu.charge(cycles)

    # -- GC integration -----------------------------------------------------------------

    def _gc_roots(self):
        if self._gc_disabled:
            raise RuntimeError("GC triggered while disabled (sample copy)")
        roots = self.cpu.gc_roots()
        for klass in self.program.classes.values():
            for fld in klass.static_fields.values():
                if fld.is_ref:
                    value = klass.static_values[fld.index]
                    if value is not None:
                        roots.append(value)
        return roots

    @contextmanager
    def _gc_guard(self):
        """Disable the GC while samples are copied from the native side."""
        self._gc_disabled += 1
        try:
            yield
        finally:
            self._gc_disabled -= 1

    def _hot_field(self, klass: ClassInfo) -> Optional[FieldInfo]:
        if self.controller is None:
            return None
        return self.controller.hot_field(klass)

    # -- JIT integration -----------------------------------------------------------------

    def compiled_code_for(self, method: MethodInfo) -> CompiledMethod:
        """Compile-on-first-invocation (baseline), like Jikes RVM."""
        cm = method.current_code
        if cm is not None:
            return cm
        with self.telemetry.tracer.span("jit.compile_baseline", cat="jit",
                                        method=method.qualified_name):
            cm = compile_baseline(method, telemetry=self.telemetry)
            self.codecache.install(cm)
            self._charge_compile(
                self.config.jit.baseline_cost_per_bc
                * max(1, len(method.code)))
        method.baseline_code = cm
        method.current_code = cm
        method.compile_count += 1
        if self.controller is not None:
            self.controller.on_method_compiled(cm)
        return cm

    def opt_compile(self, method: MethodInfo,
                    reason: str = "manual") -> CompiledMethod:
        """Recompile at the optimizing level; new calls use the new code."""
        with self.telemetry.tracer.span("jit.compile_opt", cat="jit",
                                        method=method.qualified_name):
            cm = compile_opt(method, inline=self.config.jit.inline,
                             inline_max_bytecodes=self.config.jit.inline_max_bytecodes,
                             devirt=self.config.jit.devirtualize,
                             telemetry=self.telemetry)
            self.codecache.install(cm)
            self._charge_compile(
                self.config.jit.opt_cost_per_bc * max(1, len(method.code)))
        if self.lineage.enabled:
            samples, benefit, cost = self.aos.decision_stats(method)
            self.lineage.recompile(method, reason, samples, benefit, cost,
                                   cm.devirt_sites)
        if method.current_code is not None:
            self.codecache.note_replaced(method.current_code)
        method.opt_code = cm
        method.current_code = cm
        method.compile_count += 1
        if self.controller is not None:
            self.controller.on_method_compiled(cm)
        return cm

    def static_addr(self, klass: ClassInfo, fld: FieldInfo) -> int:
        # Keyed by the ClassInfo itself (identity hash) rather than
        # id(klass): ids are not stable across a snapshot round-trip.
        base = self._static_bases.get(klass)
        if base is None:
            base = self._statics_cursor
            self._static_bases[klass] = base
            span = max(64, 4 * len(klass.static_values))
            self._statics_cursor += (span + 63) & ~63
        return base + fld.offset

    def _aos_tick(self, now: int) -> None:
        frames = self.cpu.frames
        method = frames[-1].cm.method if frames else None
        self.aos.sample(method)
        for decided in self.aos.poll_decisions():
            self.opt_compile(decided, reason="aos")

    # -- execution ------------------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute the program's main method to completion."""
        self.begin()
        self.advance()
        return self.finish()

    def begin(self) -> None:
        """Install timers, apply the plan, and push the entry frame.

        Splitting :meth:`run` into begin/advance/finish lets the
        harness execute a program in ``until_cycles`` slices and
        snapshot the VM between slices (see ``repro.vm.snapshot``).
        ``run()`` is exactly ``begin(); advance(); finish()``.
        """
        if self._began:
            raise RuntimeError("VM.begin() called twice")
        if self.program.main is None:
            raise ValueError(f"program {self.program.name} has no main")
        self._began = True

        # Pseudo-adaptive mode: apply the pre-generated compilation plan
        # ("each program runs with a pre-generated compilation plan",
        # section 6.1); otherwise let the AOS sample and decide.
        if self.compilation_plan is not None:
            wanted = set(self.compilation_plan.opt_methods)
            for method in self.program.all_methods():
                if method.qualified_name in wanted:
                    self.opt_compile(method, reason="plan")
        else:
            self.scheduler.every(0, self.config.jit.aos_timer_cycles,
                                 self._aos_tick)

        if self.controller is not None:
            self.scheduler.every(0, self.config.monitor.period_cycles,
                                 self.controller.on_period)
            self.collector.start()

        self.cpu.begin_main(self.program.main)

    def advance(self, until_cycles: Optional[int] = None) -> bool:
        """Run until main returns or the cycle deadline passes.

        Returns True once the program has run to completion.  The
        deadline lands on the same scheduler-quantum boundaries the
        interpreters already honour, so stopping here and resuming
        later (possibly in another process, via a snapshot) is
        bit-identical to an unbroken run.
        """
        if not self._began:
            raise RuntimeError("VM.advance() before begin()")
        self.cpu.run(until_cycles=until_cycles)
        return not self.cpu.frames

    def finish(self) -> RunResult:
        """Drain late samples and assemble the :class:`RunResult`.

        Also valid for a run truncated by an ``until_cycles`` bound
        (frames still live): the result then reports the state at the
        bound and ``exit_value`` is None.  Capture any resume snapshot
        *before* calling this — the final drain mutates collector and
        controller state.
        """
        if self._finished:
            raise RuntimeError("VM.finish() called twice")
        self._finished = True
        exit_value = self.cpu.exit_value

        # Final drain so late samples are not lost to the report.
        if self.collector is not None:
            self.collector.stop()
            self.collector.drain_now()
            self.controller.on_period(self.cpu.cycles)

        self.cpu.sync_counters()
        cycles = self.cpu.cycles
        overhead = self.gc_cycles + self.monitoring_cycles + self.compile_cycles
        self._publish_metrics(cycles, overhead)
        return RunResult(
            program=self.program.name,
            cycles=cycles,
            instructions=self.cpu.instructions,
            app_cycles=cycles - overhead,
            gc_cycles=self.gc_cycles,
            monitoring_cycles=self.monitoring_cycles,
            counters=self.counters.snapshot(),
            gc_stats=self.plan.stats,
            monitor_summary=(self.controller.summary()
                             if self.controller else None),
            exit_value=exit_value,
            vm=self,
        )

    def _publish_metrics(self, cycles: int, overhead: int) -> None:
        """Export the end-of-run aggregates through the metrics registry.

        This is the canonical machine-readable surface for everything
        the CLI prints after a run: cycle buckets, hardware counters,
        and (via :meth:`OnlineOptimizationController.publish_metrics`)
        the controller summary.  A null registry makes it a no-op.
        """
        metrics = self.telemetry.metrics
        if not metrics.enabled:
            return
        gauges = {
            "vm.cycles": cycles,
            "vm.instructions": self.cpu.instructions,
            "vm.app_cycles": cycles - overhead,
            "vm.gc_cycles": self.gc_cycles,
            "vm.monitoring_cycles": self.monitoring_cycles,
            "vm.compile_cycles": self.compile_cycles,
        }
        for name, value in gauges.items():
            metrics.gauge(name).set(value)
        counters = metrics.gauge("hw.counters")
        for event, count in self.counters.snapshot().items():
            counters.labels(event).set(count)
        if self.controller is not None:
            self.controller.publish_metrics()
        if self.health.enabled:
            self.health.publish_metrics(metrics)


def run_program(program: Program, config: Optional[SystemConfig] = None,
                compilation_plan: Optional[CompilationPlan] = None,
                hot_field_override=None) -> RunResult:
    """Convenience one-shot entry point (the library's main API)."""
    vm = VM(program, config, compilation_plan, hot_field_override)
    return vm.run()
