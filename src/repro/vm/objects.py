"""Runtime heap objects (functional state).

The simulator is functionally executed / timing-directed (DESIGN.md §5):
an object's *contents* live in ordinary Python lists here, while its
*placement* is a simulated byte address assigned by the allocators in
:mod:`repro.gc`.  The garbage collector "moves" an object by reassigning
``address``; because reference slots hold Python references to
:class:`HeapObject` instances, pointer forwarding is implicit and cannot
be done inconsistently.

Space identifiers record which heap region an object currently occupies;
the write barrier and the generational collectors dispatch on them.
"""

from __future__ import annotations

from typing import List, Optional

from repro.vm.model import (
    ARRAY_HEADER_BYTES,
    KIND_BYTES,
    ClassInfo,
    array_bytes,
    element_offset,
)

# Space identifiers.
SPACE_NURSERY = 0
SPACE_MATURE = 1
SPACE_LOS = 2
SPACE_IMMORTAL = 3

SPACE_NAMES = {
    SPACE_NURSERY: "nursery",
    SPACE_MATURE: "mature",
    SPACE_LOS: "los",
    SPACE_IMMORTAL: "immortal",
}


class HeapObject:
    """A scalar (non-array) heap object."""

    __slots__ = ("class_info", "address", "space", "slots", "gc_mark",
                 "coallocated", "cell")

    is_array = False

    def __init__(self, class_info: ClassInfo, address: int = 0,
                 space: int = SPACE_NURSERY):
        self.class_info = class_info
        self.address = address
        self.space = space
        # One slot per instance field, in FieldInfo.index order.
        self.slots: List[object] = [
            None if f.is_ref else 0 for f in class_info.fields
        ]
        self.gc_mark = False
        #: True when this object was placed by the co-allocation policy
        #: (used for Figure 3's co-allocated-object counts).
        self.coallocated = False
        #: Free-list cell hosting this object once promoted (GenMS).
        self.cell = None

    @property
    def size(self) -> int:
        return self.class_info.instance_bytes

    def read(self, index: int) -> object:
        return self.slots[index]

    def write(self, index: int, value: object) -> None:
        self.slots[index] = value

    def ref_children(self):
        """Yield (FieldInfo, child) for every non-null reference field."""
        for field in self.class_info.fields:
            if field.kind == "ref":
                child = self.slots[field.index]
                if child is not None:
                    yield field, child

    def __repr__(self) -> str:
        return (f"<{self.class_info.name}@{self.address:#x} "
                f"{SPACE_NAMES.get(self.space, '?')}>")


class HeapArray:
    """An array object.  Element kind determines size and ref-ness."""

    __slots__ = ("kind", "address", "space", "elements", "gc_mark",
                 "coallocated", "cell", "esize")

    is_array = True
    class_info = None  # arrays have no ClassInfo

    def __init__(self, kind: str, length: int, address: int = 0,
                 space: int = SPACE_NURSERY):
        if kind not in KIND_BYTES:
            raise ValueError(f"unknown element kind {kind!r}")
        if length < 0:
            raise ValueError("negative array length")
        self.kind = kind
        self.esize = KIND_BYTES[kind]
        self.address = address
        self.space = space
        self.elements: List[object] = (
            [None] * length if kind == "ref" else [0] * length
        )
        self.gc_mark = False
        self.coallocated = False
        self.cell = None

    @property
    def length(self) -> int:
        return len(self.elements)

    @property
    def size(self) -> int:
        return array_bytes(self.kind, len(self.elements))

    def element_address(self, index: int) -> int:
        return self.address + element_offset(self.kind, index)

    def read(self, index: int) -> object:
        return self.elements[index]

    def write(self, index: int, value: object) -> None:
        self.elements[index] = value

    def ref_children(self):
        """Yield (index, child) for each non-null reference element."""
        if self.kind == "ref":
            for i, child in enumerate(self.elements):
                if child is not None:
                    yield i, child

    def __repr__(self) -> str:
        return (f"<{self.kind}[{len(self.elements)}]@{self.address:#x} "
                f"{SPACE_NAMES.get(self.space, '?')}>")


def object_size(obj) -> int:
    """Size in bytes of any heap object or array."""
    return obj.size


def same_cache_line(a, b, line_bytes: int = 128) -> bool:
    """True when the *headers* of two objects share a cache line.

    This is the spatial-locality predicate the co-allocation optimization
    tries to make true for hot parent/child pairs (section 5.2: "increases
    the chance that both objects lie in the same cache line").
    """
    return (a.address // line_bytes) == (b.address // line_bytes)


def is_adjacent(parent, child) -> bool:
    """True when ``child`` is placed directly after ``parent`` in memory."""
    return child.address == parent.address + parent.size
