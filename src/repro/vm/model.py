"""Class, field, and method model of the Java-like VM.

The reproduction's guest language is a compact Java analog: single
inheritance, typed instance/static fields, virtual and static methods,
and a stack bytecode (see :mod:`repro.vm.bytecode`).  This module defines
the *static* program structure; runtime objects live in
:mod:`repro.vm.objects`.

Field layout matters because the optimization under study works at the
granularity of 128-byte cache lines: offsets are computed here exactly
once per class, using 32-bit-era sizes (4-byte references and ints,
2-byte chars, 8-byte longs/doubles, 8-byte object headers).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Object header size in bytes (status word + type information block).
HEADER_BYTES = 8
#: Array header: object header plus a 4-byte length word.
ARRAY_HEADER_BYTES = 12

#: Field/element kinds with their sizes in bytes.
KIND_BYTES = {
    "byte": 1,
    "char": 2,
    "int": 4,
    "ref": 4,
    "long": 8,
    "double": 8,
}

REF_KIND = "ref"


def _align(offset: int, alignment: int) -> int:
    return (offset + alignment - 1) & ~(alignment - 1)


class FieldInfo:
    """One instance or static field.

    ``offset`` is the byte offset from the object base (instance fields)
    or the slot index in the class statics area (static fields).
    """

    __slots__ = ("name", "kind", "declaring_class", "offset", "index", "is_static")

    def __init__(self, name: str, kind: str, declaring_class: "ClassInfo",
                 offset: int, index: int, is_static: bool = False):
        if kind not in KIND_BYTES:
            raise ValueError(f"unknown field kind {kind!r}")
        self.name = name
        self.kind = kind
        self.declaring_class = declaring_class
        self.offset = offset
        self.index = index
        self.is_static = is_static

    @property
    def is_ref(self) -> bool:
        return self.kind == REF_KIND

    @property
    def size(self) -> int:
        return KIND_BYTES[self.kind]

    @property
    def qualified_name(self) -> str:
        """The paper's ``Class::field`` notation (e.g. ``String::value``)."""
        return f"{self.declaring_class.name}::{self.name}"

    def __repr__(self) -> str:
        return f"<field {self.qualified_name}:{self.kind}@{self.offset}>"


class MethodInfo:
    """One method: signature plus bytecode.

    The JIT attaches compiled-code versions at runtime
    (:class:`repro.jit.codecache.CompiledMethod` instances); those
    attributes start out ``None`` here.
    """

    __slots__ = (
        "name", "declaring_class", "is_static", "arg_kinds", "return_kind",
        "max_locals", "code", "vtable_slot",
        "baseline_code", "opt_code", "current_code", "compile_count",
    )

    def __init__(self, name: str, declaring_class: "ClassInfo", *,
                 is_static: bool, arg_kinds: List[str], return_kind: str,
                 max_locals: int, code: list):
        self.name = name
        self.declaring_class = declaring_class
        self.is_static = is_static
        #: Argument kinds, *including* the receiver for virtual methods.
        self.arg_kinds = arg_kinds
        self.return_kind = return_kind  # "void" | "int" | "ref"
        self.max_locals = max_locals
        self.code = code
        self.vtable_slot: Optional[int] = None
        # JIT state.
        self.baseline_code = None
        self.opt_code = None
        self.current_code = None
        self.compile_count = 0

    @property
    def num_args(self) -> int:
        return len(self.arg_kinds)

    @property
    def qualified_name(self) -> str:
        return f"{self.declaring_class.name}.{self.name}"

    def __repr__(self) -> str:
        return f"<method {self.qualified_name}/{self.num_args}>"


class ClassInfo:
    """A loaded class: fields with computed offsets, methods, and a vtable."""

    def __init__(self, name: str, superclass: Optional["ClassInfo"] = None):
        self.name = name
        self.superclass = superclass
        #: All instance fields including inherited ones, in layout order.
        self.fields: List[FieldInfo] = list(superclass.fields) if superclass else []
        self.fields_by_name: Dict[str, FieldInfo] = (
            dict(superclass.fields_by_name) if superclass else {}
        )
        self.static_fields: Dict[str, FieldInfo] = {}
        self.static_values: List[object] = []
        self.methods: Dict[str, MethodInfo] = {}
        #: Virtual dispatch table: slot -> MethodInfo.
        self.vtable: List[MethodInfo] = list(superclass.vtable) if superclass else []
        self._vtable_slots: Dict[str, int] = (
            dict(superclass._vtable_slots) if superclass else {}
        )
        self.instance_bytes = superclass.instance_bytes if superclass else HEADER_BYTES
        self._sealed = False
        #: Direct subclasses (class-hierarchy analysis for devirtualization).
        self.subclasses: List["ClassInfo"] = []
        if superclass is not None:
            superclass.subclasses.append(self)

    # -- class construction ---------------------------------------------------

    def add_field(self, name: str, kind: str) -> FieldInfo:
        """Append an instance field, computing its aligned offset."""
        self._check_open()
        if name in self.fields_by_name:
            raise ValueError(f"duplicate field {self.name}.{name}")
        if kind not in KIND_BYTES:
            raise ValueError(f"unknown field kind {kind!r}")
        size = KIND_BYTES[kind]
        offset = _align(self.instance_bytes, min(size, 4))
        field = FieldInfo(name, kind, self, offset, index=len(self.fields))
        self.fields.append(field)
        self.fields_by_name[name] = field
        self.instance_bytes = offset + size
        return field

    def add_static(self, name: str, kind: str, initial: object = None) -> FieldInfo:
        if name in self.static_fields:
            raise ValueError(f"duplicate static {self.name}.{name}")
        index = len(self.static_values)
        field = FieldInfo(name, kind, self, offset=index * 4, index=index,
                          is_static=True)
        self.static_fields[name] = field
        if initial is None and kind != REF_KIND:
            initial = 0
        self.static_values.append(initial)
        return field

    def add_method(self, method: MethodInfo) -> MethodInfo:
        if method.name in self.methods:
            raise ValueError(f"duplicate method {self.name}.{method.name}")
        self.methods[method.name] = method
        if not method.is_static:
            slot = self._vtable_slots.get(method.name)
            if slot is None:
                slot = len(self.vtable)
                self.vtable.append(method)
                self._vtable_slots[method.name] = slot
            else:
                self.vtable[slot] = method
            method.vtable_slot = slot
        return method

    def seal(self) -> "ClassInfo":
        """Finalize the layout (alignment of the total instance size)."""
        self.instance_bytes = _align(self.instance_bytes, 4)
        self._sealed = True
        return self

    def _check_open(self) -> None:
        # seal() freezes only the instance layout; methods and statics may
        # still be added afterwards (they do not affect object sizes).
        if self._sealed:
            raise RuntimeError(f"class {self.name} is sealed")

    # -- lookups ---------------------------------------------------------------

    def field(self, name: str) -> FieldInfo:
        try:
            return self.fields_by_name[name]
        except KeyError:
            raise KeyError(f"no field {self.name}.{name}") from None

    def static(self, name: str) -> FieldInfo:
        klass: Optional[ClassInfo] = self
        while klass is not None:
            if name in klass.static_fields:
                return klass.static_fields[name]
            klass = klass.superclass
        raise KeyError(f"no static field {self.name}.{name}")

    def method(self, name: str) -> MethodInfo:
        klass: Optional[ClassInfo] = self
        while klass is not None:
            if name in klass.methods:
                return klass.methods[name]
            klass = klass.superclass
        raise KeyError(f"no method {self.name}.{name}")

    def vtable_slot(self, name: str) -> int:
        try:
            return self._vtable_slots[name]
        except KeyError:
            raise KeyError(f"no virtual method {self.name}.{name}") from None

    def is_subclass_of(self, other: "ClassInfo") -> bool:
        klass: Optional[ClassInfo] = self
        while klass is not None:
            if klass is other:
                return True
            klass = klass.superclass
        return False

    def ref_fields(self) -> List[FieldInfo]:
        """Instance fields of reference kind, in layout order."""
        return [f for f in self.fields if f.is_ref]

    def all_subclasses(self) -> List["ClassInfo"]:
        """Transitive subclasses (excluding self)."""
        out: List[ClassInfo] = []
        stack = list(self.subclasses)
        while stack:
            klass = stack.pop()
            out.append(klass)
            stack.extend(klass.subclasses)
        return out

    def monomorphic_target(self, slot: int) -> "Optional[MethodInfo]":
        """Class-hierarchy analysis: the unique implementation reachable
        from a receiver of (a subclass of) this class at vtable ``slot``,
        or None when any loaded subclass overrides it."""
        target = self.vtable[slot]
        for sub in self.all_subclasses():
            if sub.vtable[slot] is not target:
                return None
        return target

    def __repr__(self) -> str:
        return f"<class {self.name} ({self.instance_bytes}B)>"


def array_bytes(kind: str, length: int) -> int:
    """Total size in bytes of an array object of ``length`` elements."""
    if kind not in KIND_BYTES:
        raise ValueError(f"unknown element kind {kind!r}")
    if length < 0:
        raise ValueError("negative array length")
    return _align(ARRAY_HEADER_BYTES + KIND_BYTES[kind] * length, 4)


def element_offset(kind: str, index: int) -> int:
    """Byte offset of element ``index`` from the array base address."""
    return ARRAY_HEADER_BYTES + KIND_BYTES[kind] * index
