"""Virtual-time event scheduler.

There are no OS threads in the simulation (DESIGN.md §5): the AOS
sampling timer, the sample-collector thread's polling, and the
monitoring module's measurement periods are callbacks scheduled on the
CPU's cycle counter.  The CPU polls :meth:`run_due` between instruction
blocks; callbacks may charge cycles, reschedule themselves, or schedule
new events.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Callable, List, Tuple


class _RepeatingEvent:
    """A self-rescheduling heap entry.

    A class rather than a closure so a scheduler heap caught inside a
    run snapshot pickles: closures cannot be serialized, but an
    instance holding (scheduler, interval, fn) round-trips as long as
    ``fn`` is itself picklable (a bound method in every VM use).
    """

    __slots__ = ("scheduler", "interval", "fn", "cancelled")

    def __init__(self, scheduler: "VirtualTimeScheduler", interval: int,
                 fn: Callable[[int], None]):
        self.scheduler = scheduler
        self.interval = interval
        self.fn = fn
        self.cancelled = False

    def __call__(self, now: int) -> None:
        if self.cancelled:
            return
        self.fn(now)
        self.scheduler.at(now + self.interval, self)

    def cancel(self) -> None:
        self.cancelled = True


class VirtualTimeScheduler:
    """A min-heap of (cycle, callback) events."""

    def __init__(self):
        self._heap: List[Tuple[int, int, Callable[[int], None]]] = []
        self._seq = count()
        self.fired = 0

    def at(self, cycle: int, fn: Callable[[int], None]) -> None:
        """Schedule ``fn(now)`` to run once the clock reaches ``cycle``."""
        heapq.heappush(self._heap, (cycle, next(self._seq), fn))

    def after(self, now: int, delay: int, fn: Callable[[int], None]) -> None:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.at(now + delay, fn)

    def every(self, start: int, interval: int,
              fn: Callable[[int], None]) -> Callable[[], None]:
        """Schedule a repeating event; returns a cancel function."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        event = _RepeatingEvent(self, interval, fn)
        self.at(start + interval, event)
        return event.cancel

    @property
    def next_time(self) -> "int | None":
        return self._heap[0][0] if self._heap else None

    def pending(self) -> int:
        return len(self._heap)

    def run_due(self, now: int) -> int:
        """Fire every event with a deadline <= ``now``; returns the count."""
        fired = 0
        heap = self._heap
        while heap and heap[0][0] <= now:
            _, _, fn = heapq.heappop(heap)
            fn(now)
            fired += 1
        self.fired += fired
        return fired
