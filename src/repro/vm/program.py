"""Program container and "class loader" for the guest VM.

A :class:`Program` owns the set of loaded classes, designates a ``main``
method, and provides the prelude classes every workload shares
(``Object`` and ``String`` — the String/char[] pair is the protagonist of
the paper's db case study, Figures 7 and 8).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.vm.bytecode import Asm, BytecodeError, Instr, analyze
from repro.vm.model import ClassInfo, FieldInfo, MethodInfo


class Program:
    """All static state of one guest program."""

    def __init__(self, name: str):
        self.name = name
        self.classes: Dict[str, ClassInfo] = {}
        self.main: Optional[MethodInfo] = None
        self.object_class = self.define_class("Object")
        self.object_class.seal()
        # java.lang.String analog: a character array plus bookkeeping
        # fields.  Layout (header 8B): value@8 (ref), count@12, hash@16.
        self.string_class = self.define_class("String")
        self.string_class.add_field("value", "ref")
        self.string_class.add_field("count", "int")
        self.string_class.add_field("hash", "int")
        self.string_class.seal()

    # -- class loading ---------------------------------------------------------

    def define_class(self, name: str,
                     superclass: Optional[ClassInfo] = None) -> ClassInfo:
        if name in self.classes:
            raise ValueError(f"class {name} already defined")
        klass = ClassInfo(name, superclass)
        self.classes[name] = klass
        return klass

    def klass(self, name: str) -> ClassInfo:
        try:
            return self.classes[name]
        except KeyError:
            raise KeyError(f"class {name} not loaded") from None

    def define_method(self, klass: ClassInfo, name: str, *,
                      args: List[str], returns: str = "void",
                      max_locals: Optional[int] = None,
                      static: bool = True,
                      code: "List[Instr] | Asm") -> MethodInfo:
        """Declare a method; verifies its bytecode eagerly.

        ``args`` lists argument kinds ("int"/"ref"); for virtual methods
        the receiver must be the first entry.
        """
        if isinstance(code, Asm):
            code = code.finish()
        if not static and (not args or args[0] != "ref"):
            raise BytecodeError("virtual method needs a 'ref' receiver arg")
        if max_locals is None:
            max_locals = len(args)
        method = MethodInfo(
            name, klass, is_static=static, arg_kinds=list(args),
            return_kind=returns, max_locals=max_locals, code=code,
        )
        klass.add_method(method)
        analyze(method)  # eager verification
        return method

    def set_main(self, method: MethodInfo) -> None:
        if method.num_args != 0:
            raise ValueError("main must take no arguments")
        self.main = method

    # -- queries -----------------------------------------------------------------

    def all_methods(self) -> List[MethodInfo]:
        methods: List[MethodInfo] = []
        for klass in self.classes.values():
            methods.extend(klass.methods.values())
        return methods

    def static_roots(self):
        """Yield (ClassInfo, FieldInfo) for every reference-kind static.

        These are GC roots alongside the thread stacks.
        """
        for klass in self.classes.values():
            for field in klass.static_fields.values():
                if field.is_ref:
                    yield klass, field

    def total_bytecodes(self) -> int:
        return sum(len(m.code) for m in self.all_methods())

    def __repr__(self) -> str:
        return (f"<Program {self.name}: {len(self.classes)} classes, "
                f"{len(self.all_methods())} methods>")
