"""Full-fidelity run snapshots: checkpoint a mid-run VM, resume later.

The paper's workloads are *long-running*; our simulator executes them
deterministically, so a run is fully described by (program, config,
cycle count).  A :class:`Snapshot` captures everything that cycle count
implies — guest heap, frames and registers, scheduler heap, CPU cycle /
instruction / counter state, cache, TLB and prefetcher lines, the PEBS
RNG stream and armed countdown, controller / feedback / experiment and
GC bookkeeping, JIT compilation state, and the lineage ledger tail — so
resuming from a snapshot is *bit-identical* to never having stopped.

Mechanism: the whole VM object graph is pickled.  The codebase keeps
that graph picklable by construction (every long-lived callback is a
bound method, every id()-keyed table is keyed by the object itself);
the only deliberately excluded state is each compiled method's
closure-threaded *translation*, which
:func:`repro.hw.translate.translation_for` rebuilds deterministically
from the machine code on first execution after restore.  Snapshots are
only valid at the scheduler-quantum boundaries where
``VM.advance(until_cycles)`` returns: there the interpreters have
flushed their cycle cell, drained pending superblock memory segments,
and anchored ``frame.pc``, so a fresh ``advance()`` continues exactly
where the old one stopped.

A restored VM is a private copy: its telemetry / lineage observers are
the snapshot's own (they continue accumulating, which is what makes the
final ledger of a resumed run identical to an unbroken one).
"""

from __future__ import annotations

import json
import pickle
import random
import struct
import sys
import zlib
from contextlib import contextmanager

from repro.core.config import fastpath_level

#: Recursion headroom for (de)serializing the guest heap: pickling
#: recurses once per edge along reference chains, and guest workloads
#: build linked structures far deeper than the interpreter default.
_PICKLE_RECURSION_LIMIT = 500_000


@contextmanager
def _deep_recursion():
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, _PICKLE_RECURSION_LIMIT))
    try:
        yield
    finally:
        sys.setrecursionlimit(old)

#: Wire format magic + version for :meth:`Snapshot.to_bytes`.
SNAPSHOT_MAGIC = b"RSNP"
SNAPSHOT_VERSION = 1


class SnapshotError(ValueError):
    """Raised for malformed, truncated, or stale snapshot bytes."""


class Snapshot:
    """An inert, self-contained copy of a mid-run VM.

    Instances hold compressed pickle bytes, never live objects — the
    source VM keeps running (and mutating) after capture without
    affecting the snapshot, and one snapshot can be restored any
    number of times, each yielding an independent VM.
    """

    def __init__(self, payload: bytes, cycle: int, program: str,
                 pure: bool = True):
        self._payload = payload
        #: The captured VM's cycle clock (restore resumes from here).
        self.cycle = cycle
        #: Guest program name, for cache bookkeeping and error messages.
        self.program = program
        #: True when the captured VM carries no live observers (null
        #: telemetry, null ledger, null health).  Only pure snapshots may serve
        #: the record cache: a resumed run continues the snapshot's
        #: observers, and cached records must stay pure functions of
        #: the spec — identical whether simulated fresh or resumed.
        self.pure = pure

    # -- capture / restore -------------------------------------------------

    @classmethod
    def capture(cls, vm) -> "Snapshot":
        """Deep-freeze ``vm`` at its current cycle.

        Call only when the VM is paused between ``advance()`` slices
        (or after ``begin()``, before the first slice) — never from
        inside a callback, where interpreter loop state lives in
        locals the pickle cannot see.
        """
        with _deep_recursion():
            raw = pickle.dumps(vm, protocol=pickle.HIGHEST_PROTOCOL)
        pure = not (vm.telemetry.enabled or vm.lineage.enabled
                    or vm.health.enabled)
        return cls(zlib.compress(raw), vm.cpu.cycles, vm.program.name,
                   pure=pure)

    def restore(self, fastpath: "bool | int | None" = None):
        """Materialize an independent VM, ready for ``advance()``.

        ``fastpath`` optionally overrides the execution level for the
        remainder of the run — safe because all three interpreter
        levels are bit-identical, and useful for cross-level replay
        tests.  Translations were dropped at capture; they rebuild
        lazily against the new CPU on first execution.
        """
        with _deep_recursion():
            vm = pickle.loads(zlib.decompress(self._payload))
        if fastpath is not None:
            vm.config.fastpath = fastpath
            vm.cpu.fastpath_level = fastpath_level(fastpath)
            vm.cpu.fastpath = vm.cpu.fastpath_level > 0
        return vm

    # -- serialization -----------------------------------------------------

    @property
    def payload_bytes(self) -> int:
        return len(self._payload)

    def to_bytes(self) -> bytes:
        """Self-describing wire form: magic, JSON header, payload.

        The header pins the snapshot format version and the repo code
        version: restoring pickled simulator internals under different
        source code would silently diverge, so :meth:`from_bytes`
        refuses mismatches instead.
        """
        from repro.harness.diskcache import code_version

        header = json.dumps({
            "version": SNAPSHOT_VERSION,
            "code_version": code_version(),
            "cycle": self.cycle,
            "program": self.program,
            "pure": self.pure,
        }).encode("utf-8")
        return (SNAPSHOT_MAGIC + struct.pack(">I", len(header))
                + header + self._payload)

    @classmethod
    def from_bytes(cls, data: bytes,
                   check_code_version: bool = True) -> "Snapshot":
        if data[:4] != SNAPSHOT_MAGIC:
            raise SnapshotError("not a repro snapshot (bad magic)")
        if len(data) < 8:
            raise SnapshotError("truncated snapshot header")
        (hlen,) = struct.unpack(">I", data[4:8])
        try:
            header = json.loads(data[8:8 + hlen].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SnapshotError(f"corrupt snapshot header: {exc}")
        if header.get("version") != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot format v{header.get('version')} != "
                f"supported v{SNAPSHOT_VERSION}")
        if check_code_version:
            from repro.harness.diskcache import code_version

            if header.get("code_version") != code_version():
                raise SnapshotError(
                    "snapshot was captured under different simulator "
                    "sources (code version mismatch); re-run instead "
                    "of resuming")
        return cls(data[8 + hlen:], header["cycle"], header["program"],
                   pure=bool(header.get("pure", True)))


def reseed(vm, new_seed: int) -> bool:
    """Retarget a restored warmup prefix at a different seed.

    Seeds enter the simulation in exactly two places, both at VM
    construction: ``vm.rng`` (reserved; never consumed during a run)
    and the PEBS jitter stream ``Random(seed ^ 0x5EB5)``.  A snapshot
    taken before the old seed became *observable* — before any sample
    fired and past at most the single configure-time countdown draw —
    is therefore a bit-exact prefix of the new seed's unbroken run,
    provided the new seed's first countdown has not already expired at
    the captured event count.  :meth:`PEBSUnit.reseed` checks exactly
    that; on success the prefix is reusable and ``measure(repeats)``
    skips re-simulating it.  Returns False (VM untouched) otherwise.
    """
    if new_seed == vm.config.seed:
        return True
    if vm.pebs is not None:
        if not vm.pebs.reseed(random.Random(new_seed ^ 0x5EB5)):
            return False
    vm.rng = random.Random(new_seed)
    vm.config.seed = new_seed
    return True
