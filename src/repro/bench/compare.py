"""Regression scoring: the current run vs a baseline history window.

Each current entry is scored against the **median primary-metric value
of the last N compatible history entries** (the baseline window).
Compatibility is deliberately strict — same case, same history schema,
same params fingerprint, same primary metric with a finite value — so
a re-parameterized case can never be judged against numbers measured
under a different configuration; an optional ``code_version`` filter
additionally pins the baseline to one source revision.

Verdicts, for per-case relative threshold *t* on the delta in the
"bad" direction:

* ``improved``  — better than baseline by strictly more than *t*,
* ``ok``        — within ±*t* (a delta of exactly *t* is still ok),
* ``regressed`` — worse than baseline by strictly more than *t*,
* ``no-baseline`` — no compatible history to compare against,
* ``invalid``   — the current primary value is missing or non-finite.

``regressed`` and ``invalid`` are the nonzero-exit verdicts.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional

from repro.bench.history import HISTORY_SCHEMA
from repro.bench.stats import is_finite_number

#: Window size: how many compatible entries form the baseline.
DEFAULT_WINDOW = 5

#: Fallback relative threshold when an entry carries none.
DEFAULT_THRESHOLD = 0.10

#: Verdicts that make ``repro bench compare`` exit nonzero.
FAILING_VERDICTS = ("regressed", "invalid")


def compatible(entry: dict, current: dict,
               code_version: Optional[str] = None) -> bool:
    """Whether ``entry`` may serve as baseline evidence for ``current``."""
    if not isinstance(entry, dict) or entry.get("schema") != HISTORY_SCHEMA:
        return False
    if entry.get("case") != current.get("case"):
        return False
    if entry.get("params_key") != current.get("params_key"):
        return False
    primary = entry.get("primary") or {}
    current_primary = current.get("primary") or {}
    metric = current_primary.get("metric")
    if not metric or primary.get("metric") != metric:
        return False
    if code_version is not None \
            and entry.get("code_version") != code_version:
        return False
    # The entry must not be the current run itself (compare may score a
    # report whose entries were already appended to the history).
    if entry.get("ts") == current.get("ts"):
        return False
    metrics = entry.get("metrics")
    return (isinstance(metrics, dict)
            and is_finite_number(metrics.get(metric)))


def baseline_values(history: List[dict], current: dict,
                    window: int = DEFAULT_WINDOW,
                    code_version: Optional[str] = None) -> List[float]:
    """Primary values of the last ``window`` compatible entries."""
    metric = (current.get("primary") or {}).get("metric")
    usable = [e for e in history if compatible(e, current, code_version)]
    usable.sort(key=lambda e: e.get("ts") or 0.0)
    return [float(e["metrics"][metric]) for e in usable[-window:]]


def score_entry(current: dict, history: List[dict],
                window: int = DEFAULT_WINDOW,
                threshold: Optional[float] = None,
                code_version: Optional[str] = None) -> dict:
    """Verdict for one current entry against the history."""
    primary = current.get("primary") or {}
    metric = primary.get("metric")
    direction = primary.get("direction", "lower")
    thr = threshold if threshold is not None \
        else primary.get("threshold", DEFAULT_THRESHOLD)
    value = (current.get("metrics") or {}).get(metric)
    score = {
        "case": current.get("case"),
        "metric": metric,
        "direction": direction,
        "threshold": thr,
        "value": value if is_finite_number(value) else None,
        "baseline": None,
        "baseline_n": 0,
        "delta": None,
        "verdict": "ok",
    }
    if not is_finite_number(value):
        score["verdict"] = "invalid"
        return score
    values = baseline_values(history, current, window, code_version)
    if not values:
        score["verdict"] = "no-baseline"
        return score
    baseline = statistics.median(values)
    if not is_finite_number(baseline) or baseline <= 0:
        # A degenerate baseline (all-zero wall times, say) cannot
        # anchor a relative verdict; report it rather than dividing.
        score["verdict"] = "no-baseline"
        score["baseline"] = baseline
        score["baseline_n"] = len(values)
        return score
    # delta > 0 means "worse than baseline", whichever way the metric
    # points; a delta of exactly the threshold is still ok.
    delta = (value - baseline) / baseline
    if direction == "higher":
        delta = -delta
    score["baseline"] = baseline
    score["baseline_n"] = len(values)
    score["delta"] = delta
    if delta > thr:
        score["verdict"] = "regressed"
    elif delta < -thr:
        score["verdict"] = "improved"
    return score


def score_run(current_entries: List[dict], history: List[dict],
              window: int = DEFAULT_WINDOW,
              threshold: Optional[float] = None,
              code_version: Optional[str] = None) -> List[dict]:
    return [score_entry(entry, history, window=window, threshold=threshold,
                        code_version=code_version)
            for entry in current_entries]


def has_failures(scores: List[dict]) -> bool:
    return any(s["verdict"] in FAILING_VERDICTS for s in scores)


def _fmt(value) -> str:
    if value is None:
        return "-"
    return f"{value:.4g}" if isinstance(value, float) else str(value)


def format_scores(scores: List[dict]) -> str:
    """Render verdicts as an aligned text table."""
    header = ("case", "metric", "verdict", "current",
              "baseline", "delta", "threshold")
    rows = [header]
    for s in scores:
        delta = f"{s['delta']:+.1%}" if s["delta"] is not None else "-"
        baseline = (f"{_fmt(s['baseline'])} (n={s['baseline_n']})"
                    if s["baseline"] is not None else "-")
        rows.append((str(s["case"]), str(s["metric"]), s["verdict"],
                     _fmt(s["value"]), baseline, delta,
                     f"±{s['threshold']:.0%}"))
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = ["  ".join(cell.ljust(widths[i])
                       for i, cell in enumerate(row)).rstrip()
             for row in rows]
    return "\n".join(lines)
