"""The built-in benchmark cases.

Each case reproduces one of the historical ``scripts/bench_*.py`` CI
gates (same floors and ceilings), plus a full-suite smoke case; the
scripts themselves are now thin wrappers over this registry.  Case
functions return a **flat metrics dict** — booleans for identity
properties, numbers for everything else — and never print or assert:
gate evaluation and reporting belong to the caller.

Cache hygiene: every case must actually simulate, so each one pins the
runner's cache state explicitly (no disk layer unless the case manages
its own, fresh memo).  :func:`repro.bench.execute.run_case` restores
the surrounding state afterwards.
"""

from __future__ import annotations

import tempfile
import time
from typing import Dict

from repro.bench.registry import BenchCase, Gate, register


def _timed_interp_run(spec, fastpath, repeats: int):
    """Best-of-``repeats`` wall time for one interpreter choice.

    ``fastpath`` is any :func:`repro.core.config.fastpath_level`
    setting: a bool (False = reference, True = fastest) or an explicit
    level 0/1/2.
    """
    from repro.harness import runner
    from repro.harness.record import RunRecord

    best = None
    doc = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = runner.execute(spec, fastpath=fastpath)
        elapsed = time.perf_counter() - start
        doc = RunRecord.from_result(result).to_json()
        if best is None or elapsed < best:
            best = elapsed
    return doc, best


def run_interp(params: Dict[str, object]) -> Dict[str, object]:
    """Reference interpreter vs the closure-threaded fast path."""
    from repro.harness import runner
    from repro.harness.runner import RunSpec

    runner.set_disk_cache(None)
    runner.clear_cache()
    repeats = int(params["repeats"])
    spec = RunSpec(benchmark=str(params["benchmark"]), monitoring=True)
    ref_doc, ref_s = _timed_interp_run(spec, False, repeats)
    fast_doc, fast_s = _timed_interp_run(spec, True, repeats)
    speedup = ref_s / fast_s if fast_s else float("inf")
    mips = (fast_doc["instructions"] / fast_s / 1e6) if fast_s else None
    return {
        "benchmark": params["benchmark"],
        "instructions": ref_doc["instructions"],
        "repeats": repeats,
        "reference_seconds": round(ref_s, 3),
        "fastpath_seconds": round(fast_s, 3),
        "speedup": round(speedup, 3),
        "fastpath_mips": round(mips, 3) if mips else None,
        "min_speedup": params["min_speedup"],
        "identical": fast_doc == ref_doc,
    }


register(BenchCase(
    name="interp",
    description="translated fast path vs reference interpreter "
                "(bit-identity + speedup floor)",
    run=run_interp,
    params={"benchmark": "compress", "repeats": 2, "min_speedup": 1.5},
    gates=(
        Gate("identical", "==", True,
             "fast-path record bit-identical to the reference record"),
        Gate("speedup", ">=", "min_speedup",
             "translated/reference speedup floor"),
    ),
    primary_metric="speedup",
    primary_direction="higher",
    compare_threshold=0.15,
))


def run_interp_superblock(params: Dict[str, object]) -> Dict[str, object]:
    """Superblock fast path (level 2) vs per-instruction fast path (1)."""
    from repro.harness import runner
    from repro.harness.runner import RunSpec

    runner.set_disk_cache(None)
    runner.clear_cache()
    repeats = int(params["repeats"])
    spec = RunSpec(benchmark=str(params["benchmark"]), monitoring=True)
    per_doc, per_s = _timed_interp_run(spec, 1, repeats)
    sb_doc, sb_s = _timed_interp_run(spec, 2, repeats)
    speedup = per_s / sb_s if sb_s else float("inf")
    mips = (sb_doc["instructions"] / sb_s / 1e6) if sb_s else None
    return {
        "benchmark": params["benchmark"],
        "instructions": per_doc["instructions"],
        "repeats": repeats,
        "per_instruction_seconds": round(per_s, 3),
        "superblock_seconds": round(sb_s, 3),
        "speedup": round(speedup, 3),
        "superblock_mips": round(mips, 3) if mips else None,
        "min_speedup": params["min_speedup"],
        "identical": sb_doc == per_doc,
    }


register(BenchCase(
    name="interp_superblock",
    description="superblock fast path vs per-instruction fast path "
                "(bit-identity + speedup floor)",
    run=run_interp_superblock,
    params={"benchmark": "compress", "repeats": 2, "min_speedup": 1.5},
    gates=(
        Gate("identical", "==", True,
             "superblock record bit-identical to the per-instruction "
             "record"),
        Gate("speedup", ">=", "min_speedup",
             "superblock/per-instruction speedup floor"),
    ),
    primary_metric="speedup",
    primary_direction="higher",
    compare_threshold=0.15,
))


def run_interp_snapshot(params: Dict[str, object]) -> Dict[str, object]:
    """Snapshot/resume: bit-identity plus the resumed-delta wall bound.

    Splits one run into two legs at ``cut_fraction`` of its cycle
    count.  The second leg (restore the checkpoint from wire bytes,
    advance to the end, finish) must reproduce the unbroken record
    bit-for-bit and cost at most ``max_delta_ratio`` of the full-run
    wall time — the property that makes extending cached runs cheap.
    """
    from dataclasses import replace

    from repro.harness import runner
    from repro.harness.record import RunRecord
    from repro.harness.runner import RunSpec
    from repro.vm.snapshot import Snapshot

    runner.set_disk_cache(None)
    runner.clear_cache()
    repeats = int(params["repeats"])
    spec = RunSpec(benchmark=str(params["benchmark"]), coalloc=True,
                   monitoring=True)
    full_doc, full_s = _timed_interp_run(spec, None, repeats)

    cut = int(full_doc["cycles"] * float(params["cut_fraction"]))
    snaps = []
    runner.execute(replace(spec, until_cycles=cut),
                   on_checkpoint=snaps.append)
    wire = snaps[-1].to_bytes()

    best_delta = None
    resumed_doc = None
    for _ in range(repeats):
        start = time.perf_counter()
        vm = Snapshot.from_bytes(wire).restore()
        vm.advance()
        result = vm.finish()
        elapsed = time.perf_counter() - start
        resumed_doc = RunRecord.from_result(result).to_json()
        if best_delta is None or elapsed < best_delta:
            best_delta = elapsed

    ratio = best_delta / full_s if full_s else float("inf")
    return {
        "benchmark": params["benchmark"],
        "repeats": repeats,
        "cut_fraction": params["cut_fraction"],
        "cut_cycle": snaps[-1].cycle,
        "snapshot_kib": round(len(wire) / 1024, 1),
        "full_seconds": round(full_s, 3),
        "delta_seconds": round(best_delta, 3),
        "delta_ratio": round(ratio, 3),
        "max_delta_ratio": params["max_delta_ratio"],
        "identical": resumed_doc == full_doc,
    }


register(BenchCase(
    name="interp_snapshot",
    description="snapshot/resume: resumed run bit-identical to the "
                "unbroken run, resumed delta within its wall-time bound",
    run=run_interp_snapshot,
    params={"benchmark": "fop", "repeats": 2, "cut_fraction": 0.7,
            "max_delta_ratio": 0.5},
    gates=(
        Gate("identical", "==", True,
             "resumed record bit-identical to the unbroken record"),
        Gate("delta_ratio", "<=", "max_delta_ratio",
             "second-leg wall time / full-run wall time ceiling"),
    ),
    primary_metric="delta_ratio",
    primary_direction="lower",
    compare_threshold=0.20,
))


def run_engine(params: Dict[str, object]) -> Dict[str, object]:
    """Engine cold serial vs cold parallel, then zero-work warm replay."""
    from repro.harness import engine, runner
    from repro.harness import experiments as ex
    from repro.harness.diskcache import DiskCache

    benchmarks = [str(b) for b in params["benchmarks"]]
    jobs = engine.resolve_jobs(params["jobs"])
    specs = ex.figure_specs(benchmarks,
                            heap_mults=tuple(params["heap_mults"]))

    def cold_run(n_jobs, cache_root):
        runner.clear_cache()
        runner.set_disk_cache(DiskCache(root=cache_root))
        start = time.perf_counter()
        records = engine.run_specs(specs, jobs=n_jobs)
        elapsed = time.perf_counter() - start
        return [r.to_json() for r in records], elapsed

    with tempfile.TemporaryDirectory(prefix="bench-serial-") as serial_root, \
            tempfile.TemporaryDirectory(prefix="bench-par-") as par_root:
        serial_docs, serial_s = cold_run(1, serial_root)
        parallel_docs, parallel_s = cold_run(jobs, par_root)

        # Warm replay against the parallel run's disk cache, fresh
        # memo — must perform zero simulation work.
        runner.clear_cache()
        runner.set_disk_cache(DiskCache(root=par_root))
        sims_before = runner.SIM_RUNS
        start = time.perf_counter()
        engine.run_specs(specs, jobs=1)
        warm_s = time.perf_counter() - start
        warm_sims = runner.SIM_RUNS - sims_before
    runner.set_disk_cache(None)
    runner.clear_cache()

    return {
        "benchmarks": ",".join(benchmarks),
        "specs": len(specs),
        "jobs": jobs,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "warm_replay_seconds": round(warm_s, 3),
        "warm_replay_simulations": warm_sims,
        "identical": serial_docs == parallel_docs,
    }


register(BenchCase(
    name="runner",
    description="experiment engine: parallel == serial records, "
                "warm cache replays with zero simulation work",
    run=run_engine,
    params={"benchmarks": ["fop", "compress"], "jobs": None,
            "heap_mults": [1.0, 4.0]},
    gates=(
        Gate("identical", "==", True,
             "parallel records bit-identical to serial records"),
        Gate("warm_replay_simulations", "<=", 0,
             "warm-cache replay performs no simulation work"),
    ),
    primary_metric="serial_seconds",
    primary_direction="lower",
    compare_threshold=0.30,
))


#: Keys every interval entry of an audit report must carry (the shape
#: ``scripts/bench_audit.py`` historically pinned).
AUDIT_INTERVAL_KEYS = frozenset({
    "interval", "scaled_interval", "cycles", "monitoring_cycles",
    "overhead", "samples_taken", "exact_events", "exact_attributed",
    "sampled_attributed", "fidelity", "method_overlap", "field_overlap",
    "method_spearman", "field_spearman", "field_abs_error",
    "top_methods_exact", "top_methods_sampled", "top_fields_exact",
    "top_fields_sampled",
})


def run_audit(params: Dict[str, object]) -> Dict[str, object]:
    """Sampling-fidelity audit: wall time + report-schema invariants."""
    import json

    from repro.analysis import fidelity
    from repro.harness import runner

    runner.set_disk_cache(None)
    runner.clear_cache()
    intervals = tuple(str(v) for v in params["intervals"])
    start = time.perf_counter()
    report = fidelity.audit_benchmark(str(params["benchmark"]),
                                      intervals=intervals)
    elapsed = time.perf_counter() - start
    doc = report.to_json()

    schema_ok = (doc.get("schema") == fidelity.AUDIT_SCHEMA_VERSION
                 and [ia["interval"] for ia in doc["intervals"]]
                 == list(intervals)
                 and all(not (AUDIT_INTERVAL_KEYS - set(entry))
                         and 0.0 <= entry["overhead"] < 1.0
                         and entry["exact_events"] >= entry["samples_taken"]
                         for entry in doc["intervals"]))
    scores = [ia["fidelity"] for ia in doc["intervals"]]
    metrics: Dict[str, object] = {
        "benchmark": params["benchmark"],
        "audit_wall_s": round(elapsed, 3),
        "schema_ok": schema_ok,
        "first_fidelity": scores[0] if scores else float("nan"),
        "monotone": all(a >= b for a, b in zip(scores, scores[1:])),
        "min_fidelity": params["min_fidelity"],
    }
    for entry in doc["intervals"]:
        metrics[f"fidelity_{entry['interval']}"] = entry["fidelity"]
        metrics[f"overhead_{entry['interval']}"] = round(entry["overhead"], 6)
    if params["report"]:
        with open(str(params["report"]), "w") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")
    return metrics


register(BenchCase(
    name="audit",
    description="sampling-fidelity audit: schema invariants, hot-set "
                "overlap floor, monotone fidelity, wall time",
    run=run_audit,
    params={"benchmark": "fop", "intervals": ["25K", "50K", "100K"],
            "min_fidelity": 0.8, "report": None},
    gates=(
        Gate("schema_ok", "==", True,
             "audit report matches its promised schema"),
        Gate("first_fidelity", ">=", "min_fidelity",
             "top-N hot-method overlap floor at the densest interval"),
        Gate("monotone", "==", True,
             "fidelity non-increasing as the interval grows"),
    ),
    primary_metric="audit_wall_s",
    primary_direction="lower",
    compare_threshold=0.30,
))


def _lineage_fingerprint(result) -> dict:
    """Every simulated surface the ledger must leave untouched."""
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "app_cycles": result.app_cycles,
        "gc_cycles": result.gc_cycles,
        "monitoring_cycles": result.monitoring_cycles,
        "counters": dict(result.counters),
        "gc_summary": result.gc_stats.summary(),
        "monitor_summary": result.monitor_summary,
        "samples_taken": result.vm.pebs.samples_taken,
    }


def run_lineage(params: Dict[str, object]) -> Dict[str, object]:
    """Decision-lineage ledger: pure observer + overhead ceiling."""
    from repro.harness import runner
    from repro.harness.runner import RunSpec
    from repro.lineage import DecisionLedger, explain

    runner.set_disk_cache(None)
    runner.clear_cache()
    spec = RunSpec(benchmark=str(params["benchmark"]), coalloc=True)
    repeats = int(params["repeats"])

    off_times, on_times = [], []
    off_fp = on_fp = None
    ledger_doc = None
    for _ in range(repeats):
        start = time.perf_counter()
        r_off = runner.execute(spec)
        off_times.append(time.perf_counter() - start)
        ledger = DecisionLedger()
        start = time.perf_counter()
        r_on = runner.execute(spec, lineage=ledger)
        on_times.append(time.perf_counter() - start)
        off_fp = _lineage_fingerprint(r_off)
        on_fp = _lineage_fingerprint(r_on)
        ledger_doc = ledger.to_json()

    best_off, best_on = min(off_times), min(on_times)
    ratio = best_on / best_off if best_off else float("inf")
    return {
        "benchmark": params["benchmark"],
        "repeats": repeats,
        "wall_off_s": round(best_off, 3),
        "wall_on_s": round(best_on, 3),
        "overhead_ratio": round(ratio, 4),
        "max_ratio": params["max_ratio"],
        "ledger_entries": len(ledger_doc["entries"]),
        "ledger_dropped": ledger_doc["dropped"],
        "ledger_valid": not explain.validate(ledger_doc),
        "bit_identical": off_fp == on_fp,
    }


register(BenchCase(
    name="lineage",
    description="decision-lineage ledger: pure observer (bit-identical "
                "simulated state) within its overhead ceiling",
    run=run_lineage,
    params={"benchmark": "db", "repeats": 3, "max_ratio": 1.10},
    gates=(
        Gate("bit_identical", "==", True,
             "ledger-on run bit-identical to ledger-off run"),
        Gate("ledger_valid", "==", True,
             "captured ledger is non-empty and internally valid"),
        Gate("ledger_entries", ">=", 1, "ledger observed the run"),
        Gate("overhead_ratio", "<=", "max_ratio",
             "ledger-on / ledger-off wall-time ceiling"),
    ),
    primary_metric="overhead_ratio",
    primary_direction="lower",
    compare_threshold=0.15,
))


def _health_fingerprint(result) -> dict:
    """Every simulated surface the health observer must leave untouched:
    the lineage fingerprint plus the feedback engine's revert log."""
    fp = _lineage_fingerprint(result)
    vm = result.vm
    fp["reverted"] = ([e.name for e in
                       vm.controller.feedback.reverted_experiments()]
                      if vm is not None and vm.controller is not None
                      else [])
    return fp


def run_health_overhead(params: Dict[str, object]) -> Dict[str, object]:
    """Run-health observatory: pure observer + overhead ceiling.

    Three properties in one case: (1) a health-on run leaves every
    simulated surface — cycles, counters, PEBS samples, the revert
    log — bit-identical to a health-off run; (2) health riding next to
    a decision ledger does not perturb a single ledger entry (the
    evidence ids findings cite are exactly the ids the ledger would
    have assigned anyway); (3) the wall-time overhead of the interval
    tap + segmentation + detectors stays under ``max_ratio``.
    """
    from repro.harness import runner
    from repro.harness.runner import RunSpec
    from repro.health import HealthMonitor
    from repro.lineage import DecisionLedger

    runner.set_disk_cache(None)
    runner.clear_cache()
    spec = RunSpec(benchmark=str(params["benchmark"]), coalloc=True)
    repeats = int(params["repeats"])

    off_times, on_times = [], []
    off_fp = on_fp = None
    report_doc = None
    for _ in range(repeats):
        start = time.perf_counter()
        r_off = runner.execute(spec)
        off_times.append(time.perf_counter() - start)
        health = HealthMonitor()
        start = time.perf_counter()
        r_on = runner.execute(spec, health=health)
        on_times.append(time.perf_counter() - start)
        off_fp = _health_fingerprint(r_off)
        on_fp = _health_fingerprint(r_on)
        report_doc = health.report(r_on.cycles).to_json()

    # Ledger-id identity: the same ledger entries, byte for byte,
    # whether or not health observed the run alongside it.
    ledger_solo, ledger_obs = DecisionLedger(), DecisionLedger()
    runner.execute(spec, lineage=ledger_solo)
    runner.execute(spec, lineage=ledger_obs, health=HealthMonitor())

    best_off, best_on = min(off_times), min(on_times)
    ratio = best_on / best_off if best_off else float("inf")
    return {
        "benchmark": params["benchmark"],
        "repeats": repeats,
        "wall_off_s": round(best_off, 3),
        "wall_on_s": round(best_on, 3),
        "overhead_ratio": round(ratio, 4),
        "max_ratio": params["max_ratio"],
        "verdict": report_doc["verdict"],
        "phases": len(report_doc["phases"]),
        "intervals": report_doc["intervals"],
        "findings": len(report_doc["findings"]),
        "bit_identical": off_fp == on_fp,
        "ledger_identical": ledger_solo.to_json() == ledger_obs.to_json(),
    }


register(BenchCase(
    name="health_overhead",
    description="run-health observatory: pure observer (bit-identical "
                "simulated state, untouched ledger ids) within its "
                "overhead ceiling",
    run=run_health_overhead,
    params={"benchmark": "db", "repeats": 3, "max_ratio": 1.10},
    gates=(
        Gate("bit_identical", "==", True,
             "health-on run bit-identical to health-off run "
             "(cycles/counters/samples/revert log)"),
        Gate("ledger_identical", "==", True,
             "ledger entries unchanged when health rides along"),
        Gate("phases", ">=", 1, "segmentation produced at least one phase"),
        Gate("overhead_ratio", "<=", "max_ratio",
             "health-on / health-off wall-time ceiling"),
    ),
    primary_metric="overhead_ratio",
    primary_direction="lower",
    compare_threshold=0.15,
))


def run_suite(params: Dict[str, object]) -> Dict[str, object]:
    """End-to-end smoke over a figure-spec slice, cold, serial."""
    from repro.harness import engine, runner
    from repro.harness import experiments as ex

    runner.set_disk_cache(None)
    runner.clear_cache()
    benchmarks = [str(b) for b in params["benchmarks"]]
    specs = ex.figure_specs(benchmarks,
                            heap_mults=tuple(params["heap_mults"]))
    sims_before = runner.SIM_RUNS
    start = time.perf_counter()
    records = engine.run_specs(specs, jobs=1)
    elapsed = time.perf_counter() - start
    sims = runner.SIM_RUNS - sims_before
    return {
        "benchmarks": ",".join(benchmarks),
        "specs": len(specs),
        "suite_wall_s": round(elapsed, 3),
        "simulations": sims,
        "completed": len(records) == len(specs) and sims == len(specs),
    }


register(BenchCase(
    name="suite",
    description="full-pipeline smoke: a figure-spec slice simulated "
                "cold and serially, wall time tracked",
    run=run_suite,
    params={"benchmarks": ["fop"], "heap_mults": [1.0, 4.0]},
    gates=(
        Gate("completed", "==", True,
             "every spec simulated exactly once, no cache interference"),
    ),
    primary_metric="suite_wall_s",
    primary_direction="lower",
    compare_threshold=0.30,
))
