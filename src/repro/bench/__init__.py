"""Host-side performance observatory: the ``repro bench`` subsystem.

The paper's premise is that monitoring must be cheap enough to leave
on; this package applies the same discipline to the repository itself.
Every host-side performance gate the repo cares about — translated
fast path vs reference interpreter, engine warm/cold cache behaviour,
audit wall time, lineage-ledger overhead, a full-suite smoke — is a
declarative :class:`~repro.bench.registry.BenchCase` with its own gate
predicates (speedup floors, overhead ceilings, bit-identity checks).

Around the registry sit four services:

* :mod:`repro.bench.execute` runs cases with warmup/repeats and robust
  wall-time statistics (median, MAD, min),
* :mod:`repro.bench.history` appends every run to the persistent
  ``results/bench_history.jsonl`` trajectory (keyed by code version,
  git sha, and timestamp) and can seed it from legacy ``BENCH_*.json``
  artifacts,
* :mod:`repro.bench.compare` scores a run against a baseline window of
  compatible history entries and emits improved/ok/regressed verdicts,
* :mod:`repro.bench.profile` wraps any case in cProfile, attributes
  wall time to repro subsystems (hw/jit/gc/vm/core/harness/telemetry/
  lineage/...), and exports collapsed stacks for flamegraph.pl or
  speedscope — the host-side mirror of the simulated-cycle tracer.

Everything is reachable through ``python -m repro bench
list|run|history|compare|profile|migrate``; the old ``scripts/
bench_*.py`` entry points are thin back-compat wrappers over the same
cases.
"""

from repro.bench.registry import (BenchCase, Gate, all_cases,  # noqa: F401
                                  get_case, register)
