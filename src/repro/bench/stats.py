"""Robust summary statistics for noisy wall-time samples.

Benchmark wall times on shared machines are contaminated by scheduler
noise that is strictly additive and heavy-tailed, so the summary the
bench subsystem stores is built from order statistics: the **median**
(the value half the repeats beat), the **MAD** (median absolute
deviation — a dispersion measure a single outlier cannot inflate), and
the **min** (the least-disturbed observation, the classic
best-of-N choice for back-to-back A/B timing).  Mean and max ride
along for completeness.
"""

from __future__ import annotations

import math
import statistics
from typing import Dict, Sequence


def robust_stats(samples: Sequence[float]) -> Dict[str, float]:
    """Summarize ``samples`` as ``{n, median, mad, min, max, mean}``.

    An empty sequence yields ``n == 0`` with every statistic ``nan``
    rather than raising — history entries must always be writable.
    """
    values = [float(v) for v in samples]
    if not values:
        nan = float("nan")
        return {"n": 0, "median": nan, "mad": nan, "min": nan,
                "max": nan, "mean": nan}
    med = statistics.median(values)
    mad = statistics.median(abs(v - med) for v in values)
    return {
        "n": len(values),
        "median": med,
        "mad": mad,
        "min": min(values),
        "max": max(values),
        "mean": statistics.fmean(values),
    }


def is_finite_number(value) -> bool:
    """True for int/float values usable as a comparison metric.

    Booleans are numbers to Python but verdict ratios over them are
    meaningless, so they are excluded; NaN and infinities are too.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return False
    return math.isfinite(value)
