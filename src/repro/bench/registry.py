"""Declarative benchmark cases and their pass/fail gates.

A :class:`BenchCase` is a named, parameterized host-side benchmark: a
callable from a params dict to a flat metrics dict, plus the **gates**
that turn those metrics into a pass/fail verdict (speedup floors,
overhead ceilings, bit-identity equalities) and a **primary metric**
that regression detection (:mod:`repro.bench.compare`) tracks over
time.  Gates preserve the semantics of the four historical
``scripts/bench_*.py`` CI gates exactly: a case fails its run when any
gate fails, independent of what the history says.

A :class:`Gate` limit may be a literal number/bool or the *name of a
case parameter* — ``Gate("speedup", ">=", "min_speedup")`` — so
overriding the parameter on the command line moves the gate with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Tuple

from repro.bench.stats import is_finite_number

#: Gate comparison operators.
GATE_OPS = (">=", "<=", "==")

#: Verdict directions for the primary metric.
DIRECTIONS = ("lower", "higher")


@dataclass(frozen=True)
class Gate:
    """One pass/fail predicate over a case's metrics dict."""

    metric: str
    op: str                       # ">=" | "<=" | "=="
    limit: object                 # number/bool, or a param name (str)
    description: str = ""

    def __post_init__(self):
        if self.op not in GATE_OPS:
            raise ValueError(f"unknown gate op {self.op!r}; "
                             f"known: {', '.join(GATE_OPS)}")

    def resolve_limit(self, params: Mapping[str, object]):
        """The concrete limit: literal, or looked up in ``params``."""
        if isinstance(self.limit, str):
            return params[self.limit]
        return self.limit

    def evaluate(self, metrics: Mapping[str, object],
                 params: Mapping[str, object]) -> Dict[str, object]:
        """Score one gate; a missing metric is a failure, not an error."""
        limit = self.resolve_limit(params)
        value = metrics.get(self.metric)
        if value is None:
            passed = False
        elif self.op == "==":
            passed = value == limit
        elif not is_finite_number(value) and not isinstance(value, bool):
            # NaN/inf can never clear a numeric floor or ceiling.
            passed = False
        elif self.op == ">=":
            passed = value >= limit
        else:
            passed = value <= limit
        return {"metric": self.metric, "op": self.op, "limit": limit,
                "value": value, "passed": bool(passed),
                "description": self.description}


@dataclass(frozen=True)
class BenchCase:
    """One registered host-side benchmark."""

    name: str
    description: str
    run: Callable[[Dict[str, object]], Dict[str, object]] = field(repr=False)
    params: Mapping[str, object] = field(default_factory=dict)
    gates: Tuple[Gate, ...] = ()
    primary_metric: str = "wall_s"
    primary_direction: str = "lower"     # "lower" | "higher" is better
    compare_threshold: float = 0.10      # relative delta for verdicts
    default_repeats: int = 1
    default_warmup: int = 0

    def __post_init__(self):
        if self.primary_direction not in DIRECTIONS:
            raise ValueError(f"unknown direction "
                             f"{self.primary_direction!r}; "
                             f"known: {', '.join(DIRECTIONS)}")

    def resolve_params(self, overrides: "Mapping[str, object] | None" = None,
                       strict: bool = True) -> Dict[str, object]:
        """Defaults merged with ``overrides``.

        With ``strict`` (the default) an override key the case does not
        declare raises, so a typo cannot silently benchmark the wrong
        configuration.
        """
        params = dict(self.params)
        for key, value in (overrides or {}).items():
            if key not in params:
                if strict:
                    raise ValueError(
                        f"case {self.name!r} has no parameter {key!r}; "
                        f"known: {', '.join(sorted(params)) or '(none)'}")
                continue
            params[key] = value
        return params

    def evaluate_gates(self, metrics: Mapping[str, object],
                       params: Mapping[str, object]) -> List[dict]:
        return [gate.evaluate(metrics, params) for gate in self.gates]


#: Registration order is display order.
REGISTRY: Dict[str, BenchCase] = {}


def register(case: BenchCase) -> BenchCase:
    """Add ``case`` to the registry (idempotent per name)."""
    REGISTRY[case.name] = case
    return case


def get_case(name: str) -> BenchCase:
    _ensure_cases()
    if name not in REGISTRY:
        known = ", ".join(sorted(REGISTRY))
        raise ValueError(f"unknown bench case {name!r}; known: {known}")
    return REGISTRY[name]


def all_cases() -> List[BenchCase]:
    _ensure_cases()
    return list(REGISTRY.values())


def _ensure_cases() -> None:
    """Import the built-in case definitions exactly once."""
    if not REGISTRY:
        from repro.bench import cases  # noqa: F401  (registers on import)
