"""Persistent bench trajectory: ``results/bench_history.jsonl``.

Every executed case appends one self-describing JSON line keyed by
timestamp, code version (the same source hash that keys the result
disk cache), and git sha.  The file is append-only and tolerated as
hostile input on read: torn writes, hand edits, and foreign lines are
skipped and counted, never trusted — the same corruption posture as
:mod:`repro.harness.diskcache`.

Entries embed everything regression scoring needs (primary metric
name, direction, per-case threshold, a params-key fingerprint), so
:mod:`repro.bench.compare` works on history alone without consulting
the live registry — entries outlive code that renames or retires a
case.

:func:`seed_from_artifacts` is the one-shot migration shim: it lifts
legacy flat ``BENCH_<case>.json`` artifacts (written by the historical
``scripts/bench_*.py``) into history entries so the first ``repro
bench compare`` has a baseline instead of an empty window.
"""

from __future__ import annotations

import glob
import hashlib
import json
import os
import re
import subprocess
import time
from typing import Dict, List, Optional, Tuple

from repro.bench.execute import CaseRun
from repro.bench.stats import is_finite_number, robust_stats

#: History line format version.
HISTORY_SCHEMA = 1

#: Default trajectory location, relative to the working directory.
DEFAULT_HISTORY = os.path.join("results", "bench_history.jsonl")

#: Legacy artifact name pattern -> case name.
ARTIFACT_RE = re.compile(r"BENCH_([A-Za-z0-9_]+)\.json$")


def git_sha() -> Optional[str]:
    """Current HEAD sha, or None outside a git checkout."""
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def params_key(params: Dict[str, object]) -> str:
    """Stable fingerprint of a resolved params dict."""
    canonical = json.dumps(params, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def build_entry(run: CaseRun, now: Optional[float] = None,
                code_version: Optional[str] = None,
                sha: Optional[str] = "auto") -> dict:
    """One history line for an executed case."""
    import platform
    import sys

    from repro.harness import diskcache

    ts = time.time() if now is None else now
    return {
        "schema": HISTORY_SCHEMA,
        "case": run.case.name,
        "ts": ts,
        "iso": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(ts)),
        "code_version": (diskcache.code_version() if code_version is None
                         else code_version),
        "git_sha": git_sha() if sha == "auto" else sha,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "params": dict(run.params),
        "params_key": params_key(run.params),
        "primary": {
            "metric": run.case.primary_metric,
            "direction": run.case.primary_direction,
            "threshold": run.case.compare_threshold,
        },
        "metrics": dict(run.metrics),
        "wall": dict(run.wall),
        "gates": list(run.gates),
        "passed": run.passed,
    }


def append(path: str, entry: dict) -> None:
    """Append one entry; the directory is created on demand."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps(entry, default=str))
        fh.write("\n")


def load(path: str) -> Tuple[List[dict], int]:
    """All well-formed entries plus the count of skipped lines.

    Any line that is not a JSON object with the expected schema marker
    — torn writes, hand edits, blank lines — is skipped, mirroring the
    disk-cache corruption sweep: history degrades to a shorter
    baseline, never to wrong verdicts.
    """
    entries: List[dict] = []
    skipped = 0
    try:
        with open(path, "r") as fh:
            lines = fh.read().splitlines()
    except (FileNotFoundError, OSError):
        return [], 0
    for line in lines:
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except ValueError:
            skipped += 1
            continue
        if (not isinstance(doc, dict) or doc.get("schema") != HISTORY_SCHEMA
                or not isinstance(doc.get("case"), str)
                or not isinstance(doc.get("metrics"), dict)):
            skipped += 1
            continue
        entries.append(doc)
    return entries, skipped


def seed_from_artifacts(paths: Optional[List[str]] = None,
                        history_path: str = DEFAULT_HISTORY) -> List[dict]:
    """Migrate legacy flat ``BENCH_*.json`` reports into the history.

    For each artifact whose name maps to a registered case, the flat
    dict becomes that case's ``metrics``; provenance fields that old
    reports never carried (code version, params) are filled from the
    artifact's mtime and the case's registry defaults — the historical
    scripts always ran their defaults in CI, which is what makes the
    seeded entries comparable.  Unknown artifact names and unreadable
    files are skipped.  Returns the entries appended.
    """
    from repro.bench.registry import REGISTRY, _ensure_cases

    _ensure_cases()
    if paths is None:
        paths = sorted(set(glob.glob("BENCH_*.json")
                           + glob.glob(os.path.join("results",
                                                    "BENCH_*.json"))))
    seeded: List[dict] = []
    for path in paths:
        match = ARTIFACT_RE.search(os.path.basename(path))
        if not match or match.group(1) not in REGISTRY:
            continue
        case = REGISTRY[match.group(1)]
        try:
            with open(path, "r") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            continue
        if not isinstance(doc, dict):
            continue
        # New-style artifacts are already history entries; re-seed
        # their metrics, not the envelope itself.
        metrics = doc.get("metrics") if doc.get("schema") == HISTORY_SCHEMA \
            else doc
        if not isinstance(metrics, dict):
            continue
        primary_value = metrics.get(case.primary_metric)
        if not is_finite_number(primary_value):
            continue
        try:
            ts = os.path.getmtime(path)
        except OSError:
            ts = time.time()
        params = dict(case.params)
        entry = {
            "schema": HISTORY_SCHEMA,
            "case": case.name,
            "ts": ts,
            "iso": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(ts)),
            "code_version": doc.get("code_version"),
            "git_sha": doc.get("git_sha"),
            "migrated": True,
            "source": path,
            "params": params,
            "params_key": params_key(params),
            "primary": {
                "metric": case.primary_metric,
                "direction": case.primary_direction,
                "threshold": case.compare_threshold,
            },
            "metrics": dict(metrics),
            "wall": doc.get("wall") or robust_stats([]),
            "gates": doc.get("gates") or [],
            "passed": bool(doc.get("passed", True)),
        }
        append(history_path, entry)
        seeded.append(entry)
    return seeded
